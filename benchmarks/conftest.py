"""Shared fixtures for the benchmark suite.

Each benchmark regenerates one table or figure of the paper and asserts
its qualitative shape (who wins, by roughly what factor, where the
crossovers fall).  ``benchmark.pedantic(..., rounds=1)`` is used for
the expensive simulation experiments so the suite stays tractable; the
timing numbers then reflect one full regeneration of the artifact.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.data import reference_trace


@pytest.fixture(scope="session")
def full_trace():
    """The paper-scale 171,000-frame reference trace."""
    return reference_trace(n_frames=171_000)


@pytest.fixture(scope="session")
def sim_trace():
    """A 40,000-frame trace for the (lossy) queueing experiments."""
    return reference_trace(n_frames=171_000).segment(0, 40_000)


def run_once(benchmark, func, *args, **kwargs):
    """Benchmark ``func`` with a single round and return its result."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)
