"""Ablation benchmarks for the design choices called out in DESIGN.md.

These go beyond the paper's figures: they quantify *why* each component
of the model matters and compare implementation alternatives.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.analysis.hurst import variance_time, whittle
from repro.core.baselines import AR1Model, DAR1Model
from repro.core.daviesharte import DaviesHarteGenerator
from repro.core.hosking import HoskingGenerator
from repro.core.model import VBRVideoModel
from repro.simulation.queue import max_backlog


def test_ablation_generator_hosking(benchmark):
    """Hosking O(n^2): the paper's exact generator at n = 8192."""
    gen = HoskingGenerator(hurst=0.8)
    x = run_once(benchmark, gen.generate, 8_192, rng=np.random.default_rng(0))
    assert variance_time(x).hurst == np.clip(variance_time(x).hurst, 0.7, 0.9)


def test_ablation_generator_davies_harte(benchmark):
    """Davies-Harte O(n log n): same statistics, ~100x faster.

    Compare this benchmark's time against the Hosking one at identical
    length: the recovered H must agree while the runtime collapses.
    """
    gen = DaviesHarteGenerator(0.8)
    x = run_once(benchmark, gen.generate, 8_192, rng=np.random.default_rng(0))
    assert 0.7 < variance_time(x).hurst < 0.9


def test_ablation_generators_agree_statistically(benchmark):
    """Both generators produce the same Whittle-H at matched length."""

    def compare():
        n = 4_096
        xh = HoskingGenerator(hurst=0.8).generate(n, rng=np.random.default_rng(1))
        xd = DaviesHarteGenerator(0.8).generate(n, rng=np.random.default_rng(1))
        return whittle(xh, normalize=None).hurst, whittle(xd, normalize=None).hurst

    h_hosk, h_dh = run_once(benchmark, compare)
    assert abs(h_hosk - 0.8) < 0.06
    assert abs(h_dh - 0.8) < 0.08


def test_ablation_marginal_transform_preserves_hurst(benchmark):
    """The Gaussian -> Gamma/Pareto distortion leaves H unchanged
    (the paper's Section 4.2 verification)."""
    model = VBRVideoModel(27_791.0, 6_254.0, 12.0, 0.8)

    def measure():
        rng = np.random.default_rng(3)
        x = model.generate_gaussian(2**14, rng=rng, generator="davies-harte")
        from repro.core.transform import marginal_transform
        from repro.distributions.normal import Normal

        y = marginal_transform(x, model.marginal, source=Normal(0, 1))
        return variance_time(x).hurst, variance_time(y).hurst

    h_before, h_after = run_once(benchmark, measure)
    assert abs(h_after - h_before) < 0.05


def test_ablation_srd_models_underestimate_buffers(benchmark, sim_trace):
    """Classical SRD models (AR(1), DAR(1)) with matched lag-1
    correlation need far smaller zero-loss buffers than the real trace
    -- the paper's warning about 'overly optimistic estimates of
    performance' made concrete."""
    x = sim_trace.frame_bytes[:20_000]
    r1 = float(np.corrcoef(x[:-1], x[1:])[0, 1])
    mean, std = float(np.mean(x)), float(np.std(x))

    def buffers():
        rng = np.random.default_rng(4)
        c = mean * 1.10
        from repro.distributions.hybrid import GammaParetoHybrid

        marginal = GammaParetoHybrid.fit(x)
        ar1 = AR1Model(mean, std, r1).generate(x.size, rng=rng)
        dar1 = DAR1Model(marginal, r1).generate(x.size, rng=rng)
        return (
            max_backlog(x, c),
            max_backlog(ar1, c),
            max_backlog(dar1, c),
        )

    q_trace, q_ar1, q_dar1 = run_once(benchmark, buffers)
    assert q_trace > 3 * q_ar1
    assert q_trace > 3 * q_dar1


def test_ablation_hurst_sensitivity_of_buffers(benchmark):
    """Higher H means disproportionately larger zero-loss buffers at
    matched marginals -- H is necessary for characterizing burstiness
    (paper's conclusions section)."""

    def buffers():
        out = []
        for h in (0.6, 0.9):
            model = VBRVideoModel(27_791.0, 6_254.0, 12.0, h)
            y = model.generate(2**14, rng=np.random.default_rng(7), generator="davies-harte")
            out.append(max_backlog(y, float(np.mean(y)) * 1.1))
        return out

    q_low, q_high = run_once(benchmark, buffers)
    assert q_high > 1.5 * q_low


def test_ablation_mapping_table_resolution(benchmark):
    """The paper's 10,000-point table vs the exact transform: bulk
    quantiles agree to <1%, the extreme tail is truncated."""
    model = VBRVideoModel(27_791.0, 6_254.0, 12.0, 0.8)

    def compare():
        rng = np.random.default_rng(9)
        x = model.generate_gaussian(20_000, rng=rng, generator="davies-harte")
        from repro.core.transform import marginal_transform
        from repro.distributions.normal import Normal

        exact = marginal_transform(x, model.marginal, source=Normal(0, 1), method="exact")
        table = marginal_transform(x, model.marginal, source=Normal(0, 1), method="table")
        return exact, table

    exact, table = run_once(benchmark, compare)
    bulk = np.abs(exact - np.median(exact)) < 3 * np.std(exact)
    assert np.max(np.abs(table[bulk] / exact[bulk] - 1.0)) < 0.01
    assert table.max() <= exact.max() + 1e-9


def test_ablation_markov_fluid_baseline(benchmark, sim_trace):
    """The historical Maglaris-style Markov-fluid model, fitted the
    historical way (short-lag ACF), underestimates buffer needs."""

    def compare():
        from repro.core.markov_fluid import MarkovFluidModel

        x = sim_trace.frame_bytes
        fitted = MarkovFluidModel.fit(x, acf_fit_lags=10)
        y = fitted.generate(x.size, rng=np.random.default_rng(5))
        c = float(np.mean(x)) * 1.10
        return max_backlog(x, c), max_backlog(y, c), fitted

    q_trace, q_mmf, fitted = run_once(benchmark, compare)
    # Mean and variance matched by construction ...
    assert fitted.mean() == np.float64(fitted.mean())
    # ... yet the buffer requirement is several-fold optimistic.
    assert q_trace > 1.8 * q_mmf


def test_ablation_norros_formula_vs_simulation(benchmark):
    """Norros' fBm dimensioning formula tracks the simulated capacity
    requirement across buffer sizes (theory <-> simulation)."""

    def compare():
        from repro.core.daviesharte import DaviesHarteGenerator
        from repro.simulation.norros import norros_capacity
        from repro.simulation.qc import required_capacity

        h, mean, sd, eps = 0.8, 10_000.0, 2_000.0, 1e-3
        rng = np.random.default_rng(3)
        x = np.clip(mean + sd * DaviesHarteGenerator(h).generate(2**16, rng=rng), 0, None)
        a = sd**2 / mean
        ratios = []
        for buffer_bytes in (20_000.0, 50_000.0, 200_000.0):
            simulated = required_capacity([x], buffer_bytes, eps)
            theory = norros_capacity(mean, a, buffer_bytes, eps, h)
            ratios.append(theory / simulated)
        return ratios

    ratios = run_once(benchmark, compare)
    for ratio in ratios:
        assert 0.5 < ratio < 2.0


def test_ablation_estimator_panel(benchmark, sim_trace):
    """Five independent H estimators on one trace: all elevated, all
    in one band (the library's estimators cross-validate each other)."""

    def panel():
        from repro.analysis.dispersion import index_of_dispersion
        from repro.analysis.hurst import gph, rs_pox, variance_time
        from repro.analysis.wavelet import wavelet_hurst

        x = sim_trace.frame_bytes
        return {
            "variance_time": variance_time(x).hurst,
            "rs": rs_pox(x).hurst,
            "gph": gph(x).hurst,
            "idc": index_of_dispersion(x).hurst,
            "wavelet": wavelet_hurst(x).hurst,
        }

    estimates = run_once(benchmark, panel)
    for name, h in estimates.items():
        assert 0.7 < h < 1.05, (name, h)
