"""Fleet-allocator benchmarks: throughput and decision overhead.

Recorded -- with budgets, so a slowdown fails ``repro obs bench-diff``
as well as this suite -- in ``BENCH_alloc.json`` at the repo root:

- fleet simulation throughput in user-epochs/s under the harvest
  allocator (the experiment-shaped workload: mixed video/CBR/data
  users on per-user slot-fluid queues, re-partitioned every epoch),
- allocator decision overhead: the fraction of wall time spent inside
  ``decide()`` rather than generating traffic and serving queues --
  the control plane must stay a rounding error next to the data
  plane.

Wall-clock measurements keep the best of several runs and carry the
suite's ``statistical_retry`` marker as a noise backstop.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.alloc import demo_fleet, simulate_fleet
from repro.obs.bench import write_bench

REPO_ROOT = Path(__file__).resolve().parents[1]

_ENTRIES = []

pytestmark = [
    pytest.mark.tier2,  # timing-sensitive: nightly, not PR gate
    pytest.mark.statistical_retry,
]


@pytest.fixture(scope="session", autouse=True)
def _record_bench():
    """Merge recorded costs into BENCH_alloc.json after the run."""
    yield
    if not _ENTRIES:
        return
    write_bench(
        REPO_ROOT / "BENCH_alloc.json", _ENTRIES,
        generated_at=os.environ.get("BENCH_TIMESTAMP"),
    )


class TestFleetThroughput:
    def test_user_epochs_per_second(self):
        """The harvest fleet must process >= 300 user-epochs/s.

        One user-epoch = generating one user's epoch of traffic
        (seeded fGn / CBR / bursts) and serving it through its
        slot-fluid queue.  The budget guards against an accidentally
        per-user FFT (the video group batching is the whole point) or
        a per-epoch allocation spree, not against kernel speed.
        """
        spec = demo_fleet(32, epoch_slots=80, n_epochs=12,
                          utilization=0.8, buffer_slots=12.0, seed=2026)
        best = float("inf")
        for _ in range(3):
            result = simulate_fleet(spec, "harvest")
            best = min(best, result.wall_seconds)
        user_epochs = spec.n_epochs * len(spec.users)
        rate = user_epochs / best
        _ENTRIES.append({
            "name": "alloc_harvest_user_epochs_per_second",
            "value": round(rate, 0),
            "unit": "user-epochs/s",
            "higher_is_better": True,
            "budget": 300.0,
            "context": {"users": len(spec.users), "epochs": spec.n_epochs,
                        "epoch_slots": spec.epoch_slots,
                        "best_seconds": round(best, 4)},
        })
        assert rate >= 300.0, (
            f"fleet processed {rate:,.0f} user-epochs/s < 300 "
            f"({user_epochs} user-epochs in {best:.3f}s)"
        )

    def test_decision_overhead_fraction(self):
        """Causal allocator decisions must cost < 5% of wall time.

        Measured on the trade allocator (the most bookkeeping-heavy
        causal policy) at experiment-scale epochs, where the data
        plane does real work; the oracle is excluded by design --
        rehearsing candidate partitions against the real kernel IS its
        job, so its decide time is data-plane work.
        """
        spec = demo_fleet(32, epoch_slots=800, n_epochs=12,
                          utilization=0.8, buffer_slots=12.0, seed=2026)
        simulate_fleet(spec, "trade")  # warm-up (FFT plans, caches)
        best_fraction = float("inf")
        for _ in range(5):
            result = simulate_fleet(spec, "trade")
            best_fraction = min(
                best_fraction, result.decide_seconds / result.wall_seconds)
        _ENTRIES.append({
            "name": "alloc_trade_decide_overhead_fraction",
            "value": round(best_fraction, 4),
            "unit": "fraction",
            "higher_is_better": False,
            "budget": 0.05,
            "context": {"users": len(spec.users), "epochs": spec.n_epochs,
                        "epoch_slots": spec.epoch_slots},
        })
        assert best_fraction < 0.05, (
            f"trade allocator spent {best_fraction:.1%} of wall time "
            "deciding (budget 5%)"
        )
