"""Batched-synthesis and vectorized-queue speedup benchmarks.

Two fast paths landed behind the bit-exact defaults; these benchmarks
record the speedup each one delivers over the reference path it
replaces, folding the ratios into ``BENCH_stream.json`` (merged by
name with the throughput entries of ``test_stream.py``):

- ``batched_synthesis_speedup_b64``: 64 independent fGn traces through
  one stacked 2-D FFT (``batch_fgn_pool`` with batch-per-worker)
  versus the per-task loop the pool ran before (fresh generator,
  fresh spectral profile, one FFT per trace).  The win is
  dispatch-bound, so it is measured where batching is aimed: many
  short traces.  A companion entry at a streaming-scale block length
  records the honest large-``n`` ratio, where the per-row Gaussian
  draws and the FFT dominate both sides.
- ``vectorized_queue_speedup_10m``: the reflection-identity kernel
  versus the pure-python slot loop on the 10M-sample lossy operating
  point of ``test_stream.py``'s bounded-memory acceptance run.

Both measure best-of-N in one process so CPU frequency scaling hits
both sides alike; the budgets are floors on the *ratio*, which is far
more stable than either absolute rate.
"""

from __future__ import annotations

import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core.transform import marginal_transform
from repro.distributions.hybrid import GammaParetoHybrid
from repro.obs.bench import write_bench
from repro.par.batch import batch_fgn_pool
from repro.simulation.slotfluid import run_slots

REPO_ROOT = Path(__file__).resolve().parents[1]
TARGET = GammaParetoHybrid(27_791.0, 6_254.0, 12.0)

_ENTRIES = []


@pytest.fixture(scope="session", autouse=True)
def _record_bench():
    """Merge the measured ratios into BENCH_stream.json after the run."""
    yield
    if not _ENTRIES:
        return
    write_bench(
        REPO_ROOT / "BENCH_stream.json", _ENTRIES,
        generated_at=os.environ.get("BENCH_TIMESTAMP"),
    )


def _best_of(func, rounds):
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        func()
        best = min(best, time.perf_counter() - start)
    return best


class TestBatchedSynthesisSpeedup:
    B = 64

    def _speedup(self, n, rounds=5):
        reference = batch_fgn_pool(n, 0.8, self.B, seed=0, batch=1)
        batched = batch_fgn_pool(n, 0.8, self.B, seed=0, batch=self.B)
        np.testing.assert_array_equal(batched, reference)  # never a trade
        loop_s = _best_of(
            lambda: batch_fgn_pool(n, 0.8, self.B, seed=0, batch=1), rounds
        )
        batch_s = _best_of(
            lambda: batch_fgn_pool(n, 0.8, self.B, seed=0, batch=self.B), rounds
        )
        return loop_s, batch_s

    def test_dispatch_bound_blocks(self):
        """B=64 short traces: the regime stacking exists for."""
        n = 128
        loop_s, batch_s = self._speedup(n)
        speedup = loop_s / batch_s
        _ENTRIES.append({
            "name": "batched_synthesis_speedup_b64",
            "value": round(speedup, 2),
            "unit": "x",
            "higher_is_better": True,
            "budget": 5.0,
            "context": {
                "batch": self.B, "n": n, "backend": "paxson",
                "loop_seconds": round(loop_s, 4),
                "batched_seconds": round(batch_s, 4),
            },
        })
        assert speedup > 3.0  # hard floor even on a noisy machine

    def test_streaming_scale_blocks(self):
        """B=64 FFT-bound traces: the honest large-n ratio (no budget --
        draws and FFT dominate both sides, so the gain is modest)."""
        n = 4_096
        loop_s, batch_s = self._speedup(n, rounds=3)
        speedup = loop_s / batch_s
        _ENTRIES.append({
            "name": "batched_synthesis_speedup_b64_4k",
            "value": round(speedup, 2),
            "unit": "x",
            "higher_is_better": True,
            "context": {
                "batch": self.B, "n": n, "backend": "paxson",
                "loop_seconds": round(loop_s, 4),
                "batched_seconds": round(batch_s, 4),
            },
        })
        assert speedup > 1.2


class TestVectorizedQueueSpeedup:
    def test_ten_million_bounded_operating_point(self):
        """The acceptance run's exact workload: transformed Paxson fGn
        through the lossy (c = 1.1 mean, Q = 20 mean) queue."""
        n = 10_000_000
        from repro.core.paxson import PaxsonGenerator

        raw = PaxsonGenerator(0.8).generate(n, rng=np.random.default_rng(4))
        arrivals = marginal_transform(raw, TARGET, method="table")
        capacity = 1.1 * 27_791.0
        buffer_bytes = 20.0 * 27_791.0

        reference = run_slots(arrivals, capacity, buffer_bytes,
                              kernel="reference")
        vectorized = run_slots(arrivals, capacity, buffer_bytes,
                               kernel="vectorized")
        np.testing.assert_allclose(vectorized, reference, rtol=1e-9,
                                   atol=1e-6)
        assert reference[1] > 0.0  # a live lossy operating point

        ref_s = _best_of(
            lambda: run_slots(arrivals, capacity, buffer_bytes,
                              kernel="reference"), 3
        )
        vec_s = _best_of(
            lambda: run_slots(arrivals, capacity, buffer_bytes,
                              kernel="vectorized"), 3
        )
        speedup = ref_s / vec_s
        _ENTRIES.append({
            "name": "vectorized_queue_speedup_10m",
            "value": round(speedup, 2),
            "unit": "x",
            "higher_is_better": True,
            "budget": 2.0,
            "context": {
                "samples": n,
                "reference_seconds": round(ref_s, 3),
                "vectorized_seconds": round(vec_s, 3),
                "capacity_per_slot": capacity,
                "buffer_bytes": buffer_bytes,
            },
        })
        assert speedup > 2.0
