"""Distributed-coordinator benchmarks (ISSUE 8 acceptance).

Recorded — with budgets, so a regression fails ``repro obs bench-diff``
as well as this suite — in ``BENCH_dist.json`` at the repo root:

- ``dist_sim_speedup_8w``: near-linear scaling of the fig14-shaped
  sleep grid from 1 to 8 simulated workers.  Sleep tasks overlap
  regardless of host core count, so this isolates the scheduler and
  the budget holds on the 1-CPU CI container;
- ``dist_coordinator_overhead_pct``: coordinator wall time on one
  node vs the ideal serial sleep sum — dispatch, lease bookkeeping,
  heartbeat draining and checkpoint-free completion must all cost
  < 5% of the grid;
- ``dist_node_loss_recovery_s``: informational — wall-clock cost of
  losing a node mid-grid (lease expiry + reassignment), for capacity
  planning of lease_s choices.

Wall-clock comparisons keep each variant's best of several runs and
carry the suite's ``statistical_retry`` marker as a noise backstop.
"""

from __future__ import annotations

import os
import time
from pathlib import Path

import pytest

from repro.dist import FaultEvent, FaultScript, SimCluster, TaskSpec, run_distributed
from repro.obs.bench import write_bench

REPO_ROOT = Path(__file__).resolve().parents[1]

_ENTRIES = []

pytestmark = [
    pytest.mark.tier2,  # timing-sensitive: nightly, not PR gate
    pytest.mark.statistical_retry,
]

GRID_CELLS = 24  # ~fig14: 10 Q-C points x layers, equalized cost
CELL_S = 0.05


@pytest.fixture(scope="session", autouse=True)
def _record_bench():
    """Merge recorded costs into BENCH_dist.json after the run."""
    yield
    if not _ENTRIES:
        return
    write_bench(
        REPO_ROOT / "BENCH_dist.json", _ENTRIES,
        generated_at=os.environ.get("BENCH_TIMESTAMP"),
    )


def _grid_tasks():
    return [
        TaskSpec(f"cell{i:03d}", "sleep", {"duration_s": CELL_S, "value": i})
        for i in range(GRID_CELLS)
    ]


def _grid_wall(n_nodes, script=None, lease_s=5.0, repeats=2):
    best = float("inf")
    for _ in range(repeats):
        with SimCluster(n_nodes, script=script) as cluster:
            start = time.perf_counter()
            report = run_distributed(
                _grid_tasks(), cluster.endpoints(), lease_s=lease_s
            )
            best = min(best, time.perf_counter() - start)
        assert report.ok
    return best


class TestScaling:
    def test_sim_speedup_8_workers_near_linear(self):
        """ISSUE acceptance: near-linear scaling to 8 simulated workers."""
        serial_s = _grid_wall(1)
        parallel_s = _grid_wall(8)
        speedup = serial_s / parallel_s
        _ENTRIES.append({
            "name": "dist_sim_speedup_8w",
            "value": round(speedup, 2),
            "unit": "x",
            "higher_is_better": True,
            "budget": 6.0,
            "context": {"grid_cells": GRID_CELLS, "cell_s": CELL_S,
                        "serial_s": round(serial_s, 3),
                        "parallel_s": round(parallel_s, 3),
                        "ideal_x": 8.0},
        })
        assert speedup >= 6.0, (
            f"8-worker scaling {speedup:.2f}x < 6x "
            f"({serial_s:.2f}s -> {parallel_s:.2f}s)"
        )

    def test_coordinator_overhead_under_5_percent(self):
        """ISSUE acceptance: coordinator overhead < 5% on the fig14 grid.

        One node executing the grid serially has an ideal wall time of
        ``GRID_CELLS * CELL_S``; everything above that is coordinator
        cost (dispatch, heartbeat draining, lease bookkeeping).
        """
        ideal_s = GRID_CELLS * CELL_S
        wall_s = _grid_wall(1, repeats=3)
        overhead_pct = (wall_s - ideal_s) / ideal_s * 100.0
        _ENTRIES.append({
            "name": "dist_coordinator_overhead_pct",
            "value": round(overhead_pct, 2),
            "unit": "%",
            "higher_is_better": False,
            "budget": 5.0,
            "context": {"grid_cells": GRID_CELLS, "cell_s": CELL_S,
                        "ideal_s": round(ideal_s, 3),
                        "wall_s": round(wall_s, 3)},
        })
        assert overhead_pct < 5.0, (
            f"coordinator overhead {overhead_pct:.2f}% >= 5% "
            f"(ideal {ideal_s:.2f}s, measured {wall_s:.2f}s)"
        )


class TestRecoveryCost:
    def test_node_loss_recovery_cost(self):
        """Wall-clock cost of one mid-grid node kill (informational).

        Bounded by the lease: detection costs at most ``lease_s`` plus
        one reassigned cell.  Recorded without a budget — it sizes
        lease_s choices rather than gating."""
        lease_s = 0.3
        clean_s = _grid_wall(4, lease_s=lease_s)
        script = FaultScript([FaultEvent("n0", "kill", at_task=2,
                                         phase="finish")])
        with SimCluster(4, script=script) as cluster:
            start = time.perf_counter()
            report = run_distributed(
                _grid_tasks(), cluster.endpoints(), lease_s=lease_s
            )
            faulted_s = time.perf_counter() - start
        assert report.ok and script.fired
        recovery_s = max(faulted_s - clean_s, 0.0)
        _ENTRIES.append({
            "name": "dist_node_loss_recovery_s",
            "value": round(recovery_s, 3),
            "unit": "s",
            "higher_is_better": False,
            "context": {"lease_s": lease_s, "nodes": 4,
                        "clean_s": round(clean_s, 3),
                        "faulted_s": round(faulted_s, 3)},
        })
