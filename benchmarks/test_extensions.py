"""Benchmarks for the extension experiments (beyond the paper's figures).

Each regenerates one extension artifact described in DESIGN.md: the
aggregated-Whittle plot the paper describes but omits, the peak-clipping
and CBR-vs-VBR recommendations from the Conclusions, layered/priority
transport from Section 5.3, the SRD-augmented model from the Section 4
future work, and the interframe (MPEG) extension the paper points to.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.experiments import ext_layered, ext_shaping, ext_whittle_agg


def test_ext_whittle_aggregation_sweep(benchmark, full_trace):
    """Whittle H^(m) with CIs across aggregation levels (+ GPH)."""
    result = run_once(benchmark, ext_whittle_agg.run, full_trace)
    # Paper's headline reading: H = 0.8 +- 0.088 at m ~= 700.
    headline = result["headline"]
    assert 0.7 < headline["hurst"] < 1.0
    assert headline["ci_halfwidth"] < 0.2
    # CIs widen monotonically in m (fewer points per level).
    widths = result["ci_high"] - result["ci_low"]
    assert widths[-1] > widths[0]
    # GPH cross-check lands in the same band.
    assert 0.65 < result["gph"].hurst < 1.05


def test_ext_peak_clipping(benchmark, full_trace):
    """Clipping the extreme peaks: tiny quality cost, real capacity."""
    result = run_once(benchmark, ext_shaping.run_clipping, full_trace)
    rows = {row["quantile"]: row for row in result["rows"]}
    # Clipping above the 99.9th percentile discards <1% of the bytes...
    assert rows[0.999]["clipped_fraction"] < 0.01
    # ...yet saves a noticeable slice of zero-loss capacity.
    assert rows[0.999]["capacity_saving"] > 0.02
    # Deeper clipping saves more.
    savings = [row["capacity_saving"] for row in result["rows"]]
    assert savings == sorted(savings)


def test_ext_cbr_vs_vbr(benchmark, full_trace):
    """CBR smoothing delay vs multiplexed-VBR buffering."""
    result = run_once(benchmark, ext_shaping.run_cbr_comparison, full_trace)
    delays = {row["utilization"]: row["delay_seconds"] for row in result["cbr"]}
    # CBR at 90% utilization needs seconds of smoothing delay for this
    # LRD source ...
    assert delays[0.9] > 1.0
    # ... while 5-way multiplexed VBR reaches comparable utilization
    # with 10 ms of network buffer.
    assert result["vbr"]["utilization"] > 0.5
    assert result["vbr"]["buffer_delay_seconds"] == 0.010


def test_ext_layered_priority_transport(benchmark, full_trace):
    """Layered coding + priority queueing protects the base layer."""
    result = run_once(benchmark, ext_layered.run, full_trace)
    assert result["fifo_loss_rate"] > 0
    # Base layer is at least an order of magnitude better off than
    # under FIFO, enhancement pays the bill.
    assert result["priority_base_loss_rate"] < 0.1 * result["fifo_loss_rate"]
    assert result["priority_enhancement_loss_rate"] > result["fifo_loss_rate"]


def test_ext_composite_model_short_acf(benchmark, sim_trace):
    """SRD-augmented model matches the trace's short-lag ACF better
    than the plain model (the paper's anticipated improvement)."""

    def compare():
        from repro.analysis.correlation import autocorrelation
        from repro.core.composite import CompositeVBRModel
        from repro.core.fractional import farima_acf
        from repro.core.transform import normal_scores

        x = sim_trace.frame_bytes
        model = CompositeVBRModel.fit(x, ar_order=2)
        z = normal_scores(x)
        # Short lags (1-10) are the augmentation's domain; beyond a few
        # dozen lags the LRD term necessarily dominates either way.
        data_acf = autocorrelation(z, max_lag=10)[1:]
        base_acf = farima_acf(model.base.hurst - 0.5, 10)[1:]
        comp_acf = model.theoretical_short_acf(10)[1:]
        return (
            float(np.mean(np.abs(base_acf - data_acf))),
            float(np.mean(np.abs(comp_acf - data_acf))),
        )

    err_base, err_composite = run_once(benchmark, compare)
    assert err_composite < err_base


def test_ext_mpeg_trace_properties(benchmark):
    """The interframe (MPEG) extension: periodicity + burstiness + LRD."""

    def build():
        from repro.analysis.correlation import aggregate, periodogram
        from repro.analysis.hurst import variance_time
        from repro.video.interframe import DEFAULT_GOP_PATTERN, synthesize_mpeg_trace

        trace = synthesize_mpeg_trace(n_frames=48_000, seed=9)
        x = trace.frame_bytes
        gop = len(DEFAULT_GOP_PATTERN)
        omega, intensity = periodogram(x)
        j_gop = x.size // gop
        peak = intensity[j_gop - 2 : j_gop + 1].max()
        background = float(np.median(intensity[j_gop // 2 : j_gop * 2]))
        h_gop = variance_time(aggregate(x, gop)).hurst
        cov = float(x.std() / x.mean())
        return peak / background, h_gop, cov

    periodicity, h_gop, cov = run_once(benchmark, build)
    # Strong GOP spectral line, LRD beneath it, burstier than intra.
    assert periodicity > 30
    assert 0.7 < h_gop < 0.95
    assert cov > 0.4


def test_ext_cell_level_validation(benchmark, sim_trace):
    """Cell-level simulation validates the byte-fluid model (and the
    paper's spacing-insensitivity claim)."""

    def compare():
        from repro.simulation.cells import CELL_PAYLOAD_BYTES, simulate_cell_queue
        from repro.simulation.queue import simulate_queue

        capacity_bps = sim_trace.mean_rate_bps * 1.05
        buffer_bytes = 200_000.0
        fluid = simulate_queue(
            sim_trace.frame_bytes,
            capacity_bps / 8.0 / sim_trace.frame_rate,
            buffer_bytes,
        )
        uni = simulate_cell_queue(
            sim_trace, capacity_bps, buffer_bytes / CELL_PAYLOAD_BYTES, spacing="uniform"
        )
        ran = simulate_cell_queue(
            sim_trace, capacity_bps, buffer_bytes / CELL_PAYLOAD_BYTES,
            spacing="random", rng=np.random.default_rng(1),
        )
        return fluid.loss_rate, uni.loss_rate, ran.loss_rate

    fluid, uniform, random_ = run_once(benchmark, compare)
    assert uniform == np.clip(uniform, 0.75 * fluid, 1.25 * fluid)
    assert random_ == np.clip(random_, 0.8 * uniform, 1.25 * uniform)


def test_ext_idc_hurst(benchmark, full_trace):
    """Index-of-dispersion growth cross-checks Table 3's H."""

    def measure():
        from repro.analysis.dispersion import index_of_dispersion
        from repro.analysis.hurst import variance_time

        x = full_trace.frame_bytes
        return index_of_dispersion(x).hurst, variance_time(x).hurst

    h_idc, h_vt = run_once(benchmark, measure)
    assert abs(h_idc - h_vt) < 0.05
    assert h_idc > 0.7


def test_ext_model_zoo(benchmark, sim_trace):
    """Eight traffic models through the Fig. 16 harness at once.

    Robust ranking across seeds: the both-features models (composite,
    full, and the Paxson-driven full model) sit at the top, the
    classical Gaussian SRD models (AR(1), Gaussian-fARIMA at these
    lengths) trail.  An honest nuance: DAR(1) with the *exact*
    heavy-tailed marginal is competitive on zero-loss buffers at this
    trace length -- its long geometric holds of Pareto-tail levels
    mimic persistence at the scales that drive the drawdowns.
    """
    from repro.experiments import ext_model_zoo

    result = run_once(benchmark, ext_model_zoo.run, sim_trace, n_frames=30_000)
    offsets = result["offsets"]
    ranking = result["ranking"]
    assert ranking.index("composite") < 4
    assert ranking.index("full-model") < 5
    assert offsets["composite"] < offsets["ar1"]
    assert offsets["composite"] < offsets["gaussian-farima"]
    assert offsets["full-model"] < offsets["ar1"]
    # The approximate generator must land in the same quality band as
    # the exact one: both carry identical marginals and Hurst, so their
    # Q-C offsets from the trace should be comparable.
    assert offsets["full-model-paxson"] < offsets["ar1"]
