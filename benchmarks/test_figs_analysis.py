"""Benchmarks regenerating the analysis figures (Figs. 1-12)."""

import numpy as np

from benchmarks.conftest import run_once
from repro.experiments import (
    fig01_timeseries,
    fig02_lowfreq,
    fig03_segments,
    fig04_ccdf,
    fig05_lefttail,
    fig06_density,
    fig07_acf,
    fig08_periodogram,
    fig09_confidence,
    fig10_selfsimilar,
    fig11_variance_time,
    fig12_pox,
)


def test_fig01_full_time_series(benchmark, full_trace):
    """Fig. 1: the two-hour series with its extreme central peaks."""
    result = run_once(benchmark, fig01_timeseries.run, full_trace)
    assert result["duration_minutes"] > 115  # ~2 hours
    # The top peaks include events near the center (hyperspace /
    # planet explosion) -- between 40% and 60% of the runtime.
    rel = np.asarray(result["peak_minutes"]) / result["duration_minutes"]
    assert np.any((rel > 0.4) & (rel < 0.6))
    assert np.all(result["high"] >= result["mean"])


def test_fig02_low_frequency_content(benchmark, full_trace):
    """Fig. 2: 20,000-frame moving average shows story-arc structure."""
    result = run_once(benchmark, fig02_lowfreq.run, full_trace)
    assert result["window"] == 20_000
    # Strong low-frequency content: the 14-minute average still wanders
    # by a nontrivial fraction of its level.
    assert result["relative_excursion"] > 0.05
    # And it tracks the scripted story arc.
    assert result["arc_correlation"] > 0.2


def test_fig03_segment_distributions(benchmark, full_trace):
    """Fig. 3: two-minute segments deviate wildly from the marginal."""
    result = run_once(benchmark, fig03_segments.run, full_trace)
    assert len(result["segments"]) == 5
    assert result["segment_length"] == 2_880  # 2 min at 24 fps
    # Segment means sit many i.i.d. standard errors from the global
    # mean -- impossible under short-range dependence.
    assert np.max(result["mean_deviation_sigmas"]) > 5.0


def test_fig04_ccdf_tail_comparison(benchmark, full_trace):
    """Fig. 4: Pareto matches the tail; Normal/Gamma/Lognormal fail."""
    result = run_once(benchmark, fig04_ccdf.run, full_trace)
    dev = result["tail_deviation"]
    # The paper's verdict, as an ordering.
    assert result["ranking"][0] in ("pareto", "gamma_pareto")
    assert dev["pareto"] < dev["lognormal"]
    assert dev["pareto"] < dev["normal"]
    assert dev["normal"] > dev["gamma"]  # Normal falls off fastest


def test_fig05_left_tail(benchmark, full_trace):
    """Fig. 5: the Gamma body is adequate at the lower end."""
    result = run_once(benchmark, fig05_lefttail.run, full_trace)
    assert result["left_tail_deviation"]["gamma"] < 0.5
    # The hybrid inherits the Gamma's left tail exactly.
    np.testing.assert_allclose(result["gamma_pareto"], result["gamma"], rtol=1e-6)


def test_fig06_density_fit(benchmark, full_trace):
    """Fig. 6: empirical density vs the Gamma/Pareto model."""
    result = run_once(benchmark, fig06_density.run, full_trace)
    assert result["l1_discrepancy"] < 0.05


def test_fig07_autocorrelation(benchmark, full_trace):
    """Fig. 7: exponential fit collapses beyond a few hundred lags."""
    result = run_once(benchmark, fig07_acf.run, full_trace)
    assert result["acf"].size == 10_001
    # ACF still positive at lag 10,000 (paper: decays extremely slowly).
    assert result["acf"][10_000] > 0.0
    # Exponential extrapolation is off by orders of magnitude at lag
    # 3000.
    assert result["exp_underestimates_tail"] > 100.0


def test_fig08_periodogram(benchmark, full_trace):
    """Fig. 8: omega^-alpha divergence at low frequencies."""
    result = run_once(benchmark, fig08_periodogram.run, full_trace)
    assert result["alpha"] > 0.3
    assert 0.65 < result["hurst"] < 1.1
    # Low-frequency intensity dominates the high end by decades.
    assert result["intensity"][0] > 100 * result["intensity"][-1]


def test_fig09_confidence_intervals(benchmark, full_trace):
    """Fig. 9: i.i.d. CIs are dishonest; LRD CIs behave."""
    result = run_once(benchmark, fig09_confidence.run, full_trace)
    # Paper: 'for most cases, the final mean ... is not even contained
    # in the interval'.
    assert result["iid_coverage"] < 0.6
    assert result["lrd_coverage"] >= result["iid_coverage"]


def test_fig10_self_similarity(benchmark, full_trace):
    """Fig. 10: aggregated series retain significant correlations."""
    result = run_once(benchmark, fig10_selfsimilar.run, full_trace)
    for m in (100, 500, 1000):
        assert result["levels"][m]["significant_lags"] >= 2, m


def test_fig11_variance_time(benchmark, full_trace):
    """Fig. 11: variance-time slope well above the SRD reference."""
    result = run_once(benchmark, fig11_variance_time.run, full_trace)
    # Paper: H = 0.78; SRD would give 0.5.
    assert 0.72 < result["hurst"] < 0.9
    assert result["beta"] < 0.6  # visibly shallower than the -1 line


def test_fig12_rs_pox(benchmark, full_trace):
    """Fig. 12: R/S pox slope near the paper's 0.83."""
    result = run_once(benchmark, fig12_pox.run, full_trace)
    assert 0.72 < result["hurst"] < 0.92
    assert result["hurst"] > result["srd_reference_slope"] + 0.2
