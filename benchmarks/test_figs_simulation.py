"""Benchmarks regenerating the queueing figures (Figs. 14-17)."""

import numpy as np

from benchmarks.conftest import run_once
from repro.experiments import (
    fig13_system,
    fig14_qc,
    fig15_smg,
    fig16_model_vs_trace,
    fig17_loss_process,
)


def test_fig14_qc_curves(benchmark, sim_trace):
    """Fig. 14: the Q-C trade-off family over N and loss targets."""
    result = run_once(
        benchmark,
        fig14_qc.run,
        sim_trace,
        n_sources=(1, 2, 5, 20),
        specs=(("overall", 0.0), ("overall", 1e-4), ("wes", 1e-3)),
        n_frames=40_000,
        n_points=8,
    )
    curves = result["curves"]
    assert len(curves) == 12
    # Strong knee: the delay axis spans decades over the capacity grid.
    c = curves[(1, "overall", 0.0)]
    positive = c.tmax_ms[c.tmax_ms > 0]
    assert positive.max() / max(positive.min(), 1e-6) > 100
    # Vertical family ordering at matched capacity: stricter loss
    # targets need at least the delay of looser ones.
    strict = curves[(5, "overall", 0.0)].tmax_ms
    loose = curves[(5, "overall", 1e-4)].tmax_ms
    assert np.all(strict >= loose - 1e-9)
    # Multiplexing helps: at the same delay target (take T_max <= 10
    # ms), 20 sources need much less per-source capacity than 1.
    def capacity_at_10ms(curve):
        idx = np.searchsorted(-curve.tmax_ms, -10.0)
        return curve.capacity_per_source_mbps[min(idx, curve.tmax_ms.size - 1)]

    assert capacity_at_10ms(curves[(20, "overall", 0.0)]) < 0.75 * capacity_at_10ms(
        curves[(1, "overall", 0.0)]
    )


def test_fig15_statistical_multiplexing_gain(benchmark, sim_trace):
    """Fig. 15: capacity falls from ~peak at N=1 to ~mean at N=20."""
    result = run_once(
        benchmark,
        fig15_smg.run,
        sim_trace,
        n_values=(1, 2, 5, 10, 20),
        loss_targets=(0.0, 1e-4, 1e-3),
        n_frames=40_000,
    )
    zero = result["curves"][0.0]
    caps = zero["capacity_per_source"]
    # Monotone decreasing in N.
    assert np.all(np.diff(caps) < 1e-9)
    # N=1 near peak, N=20 near mean.
    assert caps[0] > 0.75 * zero["peak_rate"]
    assert caps[-1] < 1.4 * zero["mean_rate"]
    # Paper: ~72% of the possible gain by N=5 (we accept 55-95%).
    assert 0.55 < result["mean_gain_at_5"] < 0.95


def test_fig16_model_vs_trace(benchmark, sim_trace):
    """Fig. 16: the full model tracks the trace; both crippled
    variants are worse; all converge as N grows."""
    result = run_once(
        benchmark,
        fig16_model_vs_trace.run,
        sim_trace,
        n_sources=(1, 2, 5, 20),
        n_frames=40_000,
        n_buffers=8,
    )
    offsets = result["offsets"]
    # Full model closest to the trace at low N (the hard case).
    assert offsets[1]["full-model"] <= offsets[1]["gaussian-farima"]
    assert offsets[1]["full-model"] <= offsets[1]["iid-gamma-pareto"] + 0.05
    # Agreement improves with N for the full model.
    assert offsets[20]["full-model"] <= offsets[1]["full-model"] + 0.02
    # The distinction between models also diminishes with N.
    spread_1 = max(offsets[1].values()) - min(offsets[1].values())
    spread_20 = max(offsets[20].values()) - min(offsets[20].values())
    assert spread_20 < spread_1 + 0.05


def test_fig17_loss_processes(benchmark, sim_trace):
    """Fig. 17: same overall loss, very different error processes."""
    result = run_once(
        benchmark,
        fig17_loss_process.run,
        sim_trace,
        n_sources=(1, 20),
        n_frames=40_000,
    )
    p1 = result["processes"][1]
    p20 = result["processes"][20]
    # Both tuned to (near) the same overall loss.
    assert p1["overall_loss"] <= result["target_loss"] * 1.5
    assert p20["overall_loss"] <= result["target_loss"] * 1.5
    # The single source's losses are concentrated into episodes.
    assert p1["concentration"] > 2 * p20["concentration"]
    # The multiplexed system needs less capacity per source.
    assert p20["capacity_per_source"] < p1["capacity_per_source"]


def test_fig13_system_composition(benchmark, sim_trace):
    """Fig. 13: the simulated system, assembled and law-checked."""
    result = run_once(benchmark, fig13_system.run, sim_trace, n_frames=20_000)
    assert result["conservation_ok"]
    assert 0.0 <= result["loss_rate"] < 1.0
    assert result["capacity_mbps"] > 0
