"""Network-simulator benchmarks: event throughput through a tandem.

Recorded -- with a budget, so a slowdown fails ``repro obs bench-diff``
as well as this suite -- in ``BENCH_net.json`` at the repo root:

- event dispatch throughput through a 3-hop FIFO tandem (the
  experiment-shaped workload: one flow, per-slot service at every
  port, store-and-forward deliveries),
- single-hop net-vs-batch overhead: how much the event-driven path
  costs relative to the vectorizable ``simulate_queue`` loop on the
  same arrivals, recorded without a budget as capacity-planning
  context (the network layer buys topology, not speed).

Wall-clock measurements keep the best of several runs and carry the
suite's ``statistical_retry`` marker as a noise backstop.
"""

from __future__ import annotations

import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.net import run_topology
from repro.obs.bench import write_bench
from repro.simulation.queue import simulate_queue

REPO_ROOT = Path(__file__).resolve().parents[1]

_ENTRIES = []

pytestmark = [
    pytest.mark.tier2,  # timing-sensitive: nightly, not PR gate
    pytest.mark.statistical_retry,
]


@pytest.fixture(scope="session", autouse=True)
def _record_bench():
    """Merge recorded costs into BENCH_net.json after the run."""
    yield
    if not _ENTRIES:
        return
    write_bench(
        REPO_ROOT / "BENCH_net.json", _ENTRIES,
        generated_at=os.environ.get("BENCH_TIMESTAMP"),
    )


def _tandem_spec(series, hops, capacity, buffer_bytes):
    names = "abcdefgh"[: hops + 1]
    return {
        "slots": len(series),
        "nodes": [{"name": n, "buffer_bytes": buffer_bytes} for n in names],
        "links": [
            {"src": names[i], "dst": names[i + 1], "capacity_per_slot": capacity}
            for i in range(hops)
        ],
        "flows": [{
            "name": "f", "path": list(names),
            "source": {"kind": "array", "values": series},
        }],
    }


class TestEventThroughput:
    def test_tandem_events_per_second(self):
        """A 3-hop tandem must dispatch >= 50k events/s.

        The workload is the shape every net experiment uses: one flow
        emitting per slot, three ports serving per slot, deliveries
        chained across store-and-forward links.  Python-loop economics:
        the budget guards against an accidentally quadratic queue or a
        per-event allocation spree, not against vectorized speed.
        """
        slots = 20_000
        rng = np.random.default_rng(12345)
        series = rng.gamma(2.0, 14_000.0, size=slots).tolist()
        spec = _tandem_spec(series, hops=3, capacity=31_000.0,
                            buffer_bytes=120_000.0)
        best = float("inf")
        events = None
        for _ in range(3):
            start = time.perf_counter()
            result = run_topology(dict(spec))
            best = min(best, time.perf_counter() - start)
            events = result["events"]
        rate = events / best
        _ENTRIES.append({
            "name": "net_tandem_3hop_events_per_second",
            "value": round(rate, 0),
            "unit": "events/s",
            "higher_is_better": True,
            "budget": 50_000.0,
            "context": {"slots": slots, "hops": 3, "events": events,
                        "best_seconds": round(best, 4)},
        })
        assert rate >= 50_000.0, (
            f"3-hop tandem dispatched {rate:,.0f} events/s < 50,000 "
            f"({events} events in {best:.3f}s)"
        )

    def test_single_hop_overhead_vs_batch(self):
        """Context entry: event-driven vs batch cost on one queue."""
        slots = 20_000
        rng = np.random.default_rng(12345)
        arrivals = rng.gamma(2.0, 14_000.0, size=slots)
        capacity, buffer_bytes = 31_000.0, 120_000.0
        batch = net = float("inf")
        for _ in range(3):
            start = time.perf_counter()
            ref = simulate_queue(arrivals, capacity, buffer_bytes)
            batch = min(batch, time.perf_counter() - start)
        series = arrivals.tolist()
        for _ in range(3):
            start = time.perf_counter()
            result = run_topology(
                _tandem_spec(series, hops=1, capacity=capacity,
                             buffer_bytes=buffer_bytes)
            )
            net = min(net, time.perf_counter() - start)
        # The two paths must agree exactly before their costs compare.
        assert result["ports"]["a->b"]["lost_bytes"] == ref.lost_bytes
        _ENTRIES.append({
            "name": "net_single_hop_overhead_vs_batch",
            "value": round(net / batch, 1),
            "unit": "x",
            "higher_is_better": False,
            "context": {"slots": slots, "batch_seconds": round(batch, 4),
                        "net_seconds": round(net, 4)},
        })
