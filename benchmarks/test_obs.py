"""Observability benchmarks: what the probes cost.

The obs contract is asymmetric: with the global flag off every probe
collapses to a single flag read (the instrumented hot paths must stay
within 1% of an unmetered pipeline), and with it on the per-chunk
granularity keeps the full tracing + metrics stack under 3% on the
paxson streaming path.  Both bounds are recorded -- with budgets, so a
regression fails ``repro obs bench-diff`` as well as this suite -- in
``BENCH_obs.json`` at the repo root.

Single runs of the streamed path vary several percent on a shared
machine, so the overhead comparisons interleave the variants and keep
each one's best of ten -- the minimum converges on the deterministic
floor, which is where a real per-chunk cost would show -- and carry
the suite's ``statistical_retry`` marker as a noise backstop.
"""

from __future__ import annotations

import os
import time
from pathlib import Path

import numpy as np
import pytest

import repro.obs as obs
from repro.distributions.hybrid import GammaParetoHybrid
from repro.obs import metrics, trace
from repro.obs.bench import write_bench
from repro.stream import BlockFGNSource, OnlineMoments, Stream

REPO_ROOT = Path(__file__).resolve().parents[1]
TARGET = GammaParetoHybrid(27_791.0, 6_254.0, 12.0)

_ENTRIES = []

pytestmark = [
    pytest.mark.tier2,  # timing-sensitive: nightly, not PR gate
    pytest.mark.statistical_retry,
]


@pytest.fixture(scope="session", autouse=True)
def _record_bench():
    """Merge recorded costs into BENCH_obs.json after the run."""
    yield
    if not _ENTRIES:
        return
    write_bench(
        REPO_ROOT / "BENCH_obs.json", _ENTRIES,
        generated_at=os.environ.get("BENCH_TIMESTAMP"),
    )


def _paxson_run(n, chunk, seed, metered):
    """Drain an n-sample paxson -> marginal-transform stream, optionally
    with the CLI's per-stage metering attached, and return seconds."""
    src = BlockFGNSource(0.8, block_size=chunk, overlap=1024, backend="paxson")
    stream = Stream.from_source(src, n, chunk, rng=np.random.default_rng(seed))
    if metered:
        stream = stream.metered("source")
    stream = stream.transform(TARGET, method="table")
    if metered:
        stream = stream.metered("transform")
    moments = OnlineMoments()
    start = time.perf_counter()
    stream.drain(moments)
    elapsed = time.perf_counter() - start
    assert moments.count == n
    return elapsed


class TestSpanOverheadDisabled:
    def test_disabled_span_is_nanoseconds(self):
        """A disabled span is one flag read returning a shared null
        object; it must be cheap enough to leave in any hot path."""
        obs.disable()
        trace.reset()
        n = 1_000_000
        start = time.perf_counter()
        for _ in range(n):
            with trace.span("bench.noop"):
                pass
        per_call_ns = (time.perf_counter() - start) / n * 1e9
        assert not trace.snapshot()  # nothing recorded while disabled
        _ENTRIES.append({
            "name": "span_disabled_ns_per_call",
            "value": round(per_call_ns, 1),
            "unit": "ns/call",
            "higher_is_better": False,
            "budget": 2_000,
        })
        assert per_call_ns < 2_000  # generous bound; records the real cost


class TestStreamingOverhead:
    def test_paxson_overhead_budgets(self):
        """ISSUE acceptance: on the 1M-sample streamed paxson path the
        instrumentation costs < 1% while obs is disabled and < 3% with
        the full tracing + metrics stack enabled."""
        n, chunk = 1_000_000, 65_536
        obs.disable()
        _paxson_run(n, chunk, 0, metered=False)  # warm caches / allocator
        bare = disabled = enabled = float("inf")
        for _ in range(10):
            obs.disable()
            bare = min(bare, _paxson_run(n, chunk, 0, metered=False))
            disabled = min(disabled, _paxson_run(n, chunk, 0, metered=True))
            with obs.enabled():
                enabled = min(enabled, _paxson_run(n, chunk, 0, metered=True))
        trace.reset()
        metrics.registry().reset()

        disabled_overhead = disabled / bare - 1.0
        enabled_overhead = enabled / bare - 1.0
        # Negative overhead is timing noise; record 0 so the committed
        # baseline stays stable under the nightly relative diff (the
        # asserts below still see the raw measurement).
        _ENTRIES.extend([
            {
                "name": "paxson_stream_obs_disabled",
                "value": round(n / disabled),
                "unit": "samples/s",
                "higher_is_better": True,
                "context": {"samples": n, "seconds": round(disabled, 4)},
            },
            {
                "name": "paxson_stream_obs_enabled",
                "value": round(n / enabled),
                "unit": "samples/s",
                "higher_is_better": True,
                "context": {"samples": n, "seconds": round(enabled, 4)},
            },
            {
                "name": "paxson_stream_disabled_overhead",
                "value": max(0.0, round(disabled_overhead, 4)),
                "unit": "fraction",
                "higher_is_better": False,
                "budget": 0.01,
                "context": {"bare_seconds": round(bare, 4)},
            },
            {
                "name": "paxson_stream_enabled_overhead",
                "value": max(0.0, round(enabled_overhead, 4)),
                "unit": "fraction",
                "higher_is_better": False,
                "budget": 0.03,
                "context": {"bare_seconds": round(bare, 4)},
            },
        ])
        assert disabled_overhead < 0.01, (
            f"disabled probes cost {disabled_overhead:.2%} "
            f"({bare:.3f}s -> {disabled:.3f}s)"
        )
        assert enabled_overhead < 0.03, (
            f"enabled obs cost {enabled_overhead:.2%} "
            f"({bare:.3f}s -> {enabled:.3f}s)"
        )


class TestFlightRecorderCost:
    def test_flight_append_cost(self):
        """One record() into the ring (no stream) must stay far below
        any dist-protocol action it annotates."""
        from repro.obs.flight import FlightRecorder

        rec = FlightRecorder(capacity=512)
        n = 100_000
        start = time.perf_counter()
        for i in range(n):
            rec.record("bench", task_id="t0", node="n0", attempt=0, seed=i)
        per_call_ns = (time.perf_counter() - start) / n * 1e9
        assert len(rec.events()) == 512
        _ENTRIES.append({
            "name": "flight_append_ns_per_event",
            "value": round(per_call_ns, 1),
            "unit": "ns/event",
            "higher_is_better": False,
            "budget": 50_000,
        })
        assert per_call_ns < 50_000


class TestScrapeOverhead:
    def test_coordinator_scrape_overhead_pct(self):
        """ISSUE 9 acceptance: piggybacked heartbeat metric scraping
        (worker dumps + ScrapeMerger at the coordinator) costs < 2% of
        the coordinator's wall on the BENCH_dist sleep-task grid."""
        from repro.dist import SimCluster, TaskSpec, run_distributed

        # The BENCH_dist grid shape (24 cells at 50ms): long enough
        # that per-campaign fixed costs amortize and the percentage
        # reflects the per-heartbeat/per-result scrape machinery.
        cells, cell_s, nodes = 24, 0.05, 4
        tasks = [
            TaskSpec(f"c{i}", "sleep", {"duration_s": cell_s, "value": i})
            for i in range(cells)
        ]

        def _wall(scraping):
            if scraping:
                ctx = obs.enabled()
            else:
                import contextlib

                obs.disable()
                ctx = contextlib.nullcontext()
            with ctx:
                with SimCluster(nodes) as cluster:
                    start = time.perf_counter()
                    report = run_distributed(
                        tasks, cluster.endpoints(), lease_s=1.0,
                    )
                    elapsed = time.perf_counter() - start
            assert report.ok
            return elapsed

        _wall(False)  # warm-up
        off = on = float("inf")
        for _ in range(5):
            off = min(off, _wall(False))
            on = min(on, _wall(True))
        trace.reset()
        metrics.registry().reset()
        overhead = on / off - 1.0
        _ENTRIES.append({
            "name": "dist_scrape_overhead_pct",
            "value": max(0.0, round(overhead * 100.0, 2)),
            "unit": "percent",
            "higher_is_better": False,
            "budget": 2.0,
            "context": {"cells": cells, "cell_s": cell_s, "nodes": nodes,
                        "off_seconds": round(off, 4),
                        "on_seconds": round(on, 4)},
        })
        assert overhead < 0.02, (
            f"heartbeat scraping cost {overhead:.2%} ({off:.3f}s -> {on:.3f}s)"
        )
