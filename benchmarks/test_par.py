"""Parallel-engine benchmarks: what the pool, shards and cache buy.

Recorded — with budgets, so a regression fails ``repro obs bench-diff``
as well as this suite — in ``BENCH_par.json`` at the repo root:

- the fig14-style Q-C grid sweep speedup at 8 workers vs serial.  The
  >= 3x budget is enforced on the *simulated-latency* harness (a
  fig14-shaped grid of sleep tasks over an 8-node
  :class:`~repro.dist.simcluster.SimCluster` -- sleeping workers
  genuinely overlap, so the measurement holds on any host including
  the 1-CPU CI container).  The real-pool speedup is additionally
  recorded on hosts with >= 4 cores; on smaller hosts the bench JSON
  records the skip and its reason instead of silently omitting the
  entry,
- warm-vs-cold content-cache speedup for Davies-Harte eigenvalue
  tables (meaningful on any host),
- pool dispatch overhead per task and sharded-synthesis throughput,
  recorded without budgets as capacity-planning context.

Wall-clock comparisons keep each variant's best of several interleaved
runs and carry the suite's ``statistical_retry`` marker as a noise
backstop.
"""

from __future__ import annotations

import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core.daviesharte import DaviesHarteGenerator
from repro.obs.bench import write_bench
from repro.par.cache import using
from repro.par.pool import pool_map
from repro.par.shard import shard_fgn
from repro.simulation.qc import qc_curve
from repro.video.starwars import synthesize_starwars_trace

REPO_ROOT = Path(__file__).resolve().parents[1]

_ENTRIES = []

pytestmark = [
    pytest.mark.tier2,  # timing-sensitive: nightly, not PR gate
    pytest.mark.statistical_retry,
]


@pytest.fixture(scope="session", autouse=True)
def _record_bench():
    """Merge recorded costs into BENCH_par.json after the run."""
    yield
    if not _ENTRIES:
        return
    write_bench(
        REPO_ROOT / "BENCH_par.json", _ENTRIES,
        generated_at=os.environ.get("BENCH_TIMESTAMP"),
    )


def _noop(item, seed):
    return item


def _qc_sweep(series, workers):
    start = time.perf_counter()
    curve = qc_curve(
        series, 1.0 / 24.0, n_sources=10, target_loss=1e-3,
        n_points=10, n_lag_draws=4,
        rng=np.random.default_rng(17), workers=workers,
    )
    elapsed = time.perf_counter() - start
    assert curve.capacity_per_source.size == 10
    return elapsed, curve


def _sim_grid_sweep(n_nodes, tasks):
    """Wall time for a fig14-shaped sleep-task grid on a SimCluster."""
    from repro.dist import SimCluster, run_distributed

    with SimCluster(n_nodes) as cluster:
        start = time.perf_counter()
        report = run_distributed(tasks, cluster.endpoints(), lease_s=5.0)
        elapsed = time.perf_counter() - start
    assert report.ok
    return elapsed


class TestGridSpeedup:
    def test_fig14_qc_grid_speedup_8_workers(self):
        """ISSUE acceptance: >= 3x on the fig14-shaped grid at 8 workers.

        Measured on the simulated-latency harness: the grid becomes
        sleep tasks of equal wall cost driven through the real
        coordinator/worker protocol over an 8-node SimCluster.
        Sleeping workers overlap regardless of core count, so this
        isolates scheduler scaling and the 3x budget is enforced on
        every host, including 1-CPU CI.
        """
        from repro.dist import TaskSpec

        cores = os.cpu_count() or 1
        grid_cells, cell_s = 24, 0.05  # ~fig14: 10 points x layers, equalized
        tasks = [
            TaskSpec(f"cell{i:03d}", "sleep", {"duration_s": cell_s, "value": i})
            for i in range(grid_cells)
        ]
        serial_s = min(_sim_grid_sweep(1, tasks) for _ in range(2))
        parallel_s = min(_sim_grid_sweep(8, tasks) for _ in range(2))
        speedup = serial_s / parallel_s
        _ENTRIES.append({
            "name": "fig14_qc_grid_speedup_8w",
            "value": round(speedup, 2),
            "unit": "x",
            "higher_is_better": True,
            "budget": 3.0,
            "context": {"harness": "simcluster_sleep_grid",
                        "grid_cells": grid_cells, "cell_s": cell_s,
                        "serial_s": round(serial_s, 3),
                        "parallel_s": round(parallel_s, 3), "cores": cores},
        })
        assert speedup >= 3.0, (
            f"8-node fig14 grid speedup {speedup:.2f}x < 3x "
            f"({serial_s:.2f}s -> {parallel_s:.2f}s)"
        )

    def test_fig14_qc_grid_realpool_speedup(self):
        """The same grid on the real process pool, where cores permit.

        On hosts with < 4 cores the pool can only timeshare, so instead
        of silently omitting the entry (which ``bench-diff`` would
        report as 'removed', hiding *why*), the bench JSON records a
        ``fig14_qc_grid_realpool_skip`` entry carrying the core count
        and the skip reason.
        """
        cores = os.cpu_count() or 1
        trace = synthesize_starwars_trace(n_frames=30_000, seed=5,
                                          with_slices=False)
        series = trace.frame_bytes
        serial_s, serial_curve = _qc_sweep(series, workers=1)
        _ENTRIES.append({
            "name": "fig14_qc_grid_serial_seconds",
            "value": round(serial_s, 3),
            "unit": "s",
            "higher_is_better": False,
            "context": {"n_frames": 30_000, "n_points": 10, "cores": cores},
        })
        if cores < 4:
            reason = f"real-pool speedup needs >= 4 cores, host has {cores}"
            _ENTRIES.append({
                "name": "fig14_qc_grid_realpool_skip",
                "value": cores,
                "unit": "cores",
                "higher_is_better": True,
                "context": {"reason": reason,
                            "skipped": "fig14_qc_grid_realpool_speedup_8w"},
            })
            pytest.skip(reason)
        parallel_s, parallel_curve = _qc_sweep(series, workers=8)
        np.testing.assert_array_equal(
            parallel_curve.buffer_bytes, serial_curve.buffer_bytes
        )
        speedup = serial_s / parallel_s
        _ENTRIES.append({
            "name": "fig14_qc_grid_realpool_speedup_8w",
            "value": round(speedup, 2),
            "unit": "x",
            "higher_is_better": True,
            "budget": 3.0,
            "context": {"serial_s": round(serial_s, 3),
                        "parallel_s": round(parallel_s, 3), "cores": cores},
        })
        assert speedup >= 3.0, (
            f"8-worker fig14 grid speedup {speedup:.2f}x < 3x "
            f"({serial_s:.2f}s -> {parallel_s:.2f}s)"
        )


class TestCacheSpeedup:
    def test_daviesharte_warm_cache_speedup(self, tmp_path):
        """A warm eigenvalue-table hit must beat recomputation by >= 2x
        (it replaces an O(n log n) FFT with one digest-verified read)."""
        n, hurst = 2**18, 0.8
        cold = warm = float("inf")
        with using(tmp_path):
            for _ in range(5):
                for path in sorted(tmp_path.rglob("*.np*")) + sorted(
                    tmp_path.rglob("*.json")
                ):
                    path.unlink()
                start = time.perf_counter()
                DaviesHarteGenerator(hurst)._sqrt_eigenvalues(n)
                cold = min(cold, time.perf_counter() - start)
                start = time.perf_counter()
                DaviesHarteGenerator(hurst)._sqrt_eigenvalues(n)
                warm = min(warm, time.perf_counter() - start)
        speedup = cold / warm
        _ENTRIES.append({
            "name": "daviesharte_eig_cache_speedup",
            "value": round(speedup, 2),
            "unit": "x",
            "higher_is_better": True,
            "budget": 2.0,
            "context": {"n": n, "cold_ms": round(cold * 1e3, 2),
                        "warm_ms": round(warm * 1e3, 2)},
        })
        assert speedup >= 2.0, (
            f"warm cache hit only {speedup:.2f}x faster "
            f"({cold * 1e3:.1f}ms -> {warm * 1e3:.1f}ms)"
        )


class TestDispatchCosts:
    def test_pool_dispatch_overhead_per_task(self):
        """Per-task cost of the parallel machinery on trivial tasks:
        executor spin-up, pickling, seed derivation and metric merge.
        Informational (no budget) — it bounds the task granularity
        below which sharding is not worth it."""
        tasks = 64
        best = float("inf")
        for _ in range(3):
            start = time.perf_counter()
            pool_map(_noop, range(tasks), workers=2, base_seed=0)
            best = min(best, time.perf_counter() - start)
        per_task_ms = best / tasks * 1e3
        _ENTRIES.append({
            "name": "pool_dispatch_ms_per_task",
            "value": round(per_task_ms, 3),
            "unit": "ms/task",
            "higher_is_better": False,
            "context": {"tasks": tasks, "workers": 2},
        })

    def test_shard_synthesis_throughput(self):
        """Sharded paxson throughput at the host's natural width
        (informational; single-core hosts record the serial rate)."""
        n = 1_000_000
        workers = min(4, os.cpu_count() or 1)
        shard_fgn(65_536, 0.8, seed=0, workers=1)  # warm caches
        best = float("inf")
        for _ in range(3):
            start = time.perf_counter()
            out = shard_fgn(n, 0.8, seed=3, shard_size=131_072,
                            overlap=1_024, workers=workers)
            best = min(best, time.perf_counter() - start)
        assert out.shape == (n,)
        _ENTRIES.append({
            "name": "shard_paxson_samples_per_s",
            "value": round(n / best),
            "unit": "samples/s",
            "higher_is_better": True,
            "context": {"samples": n, "workers": workers,
                        "seconds": round(best, 4)},
        })
