"""Resilience-layer benchmarks: what supervision and checkpointing cost.

The supervisor's contract is that resilience is close to free: running
the quick campaign with per-experiment checkpoints (pickle + digest +
atomic JSON per experiment) must stay within 5% of the plain run, and
the idle ``reach()`` instrumentation hook must be a no-op-scale global
read.  Timings use ``time.perf_counter`` directly (each campaign is one
end-to-end run); results fold into ``BENCH_resilience.json`` at the
repo root, mirroring ``BENCH_stream.json``.
"""

from __future__ import annotations

import os
import time
from pathlib import Path

import pytest

from repro.experiments.data import reference_trace
from repro.experiments.runner import experiment_specs
from repro.obs.bench import write_bench
from repro.resilience.faults import reach
from repro.resilience.runner import run_campaign

REPO_ROOT = Path(__file__).resolve().parents[1]

_ENTRIES = []


@pytest.fixture(scope="session", autouse=True)
def _record_bench():
    """Merge recorded timings into BENCH_resilience.json after the run."""
    yield
    if not _ENTRIES:
        return
    write_bench(
        REPO_ROOT / "BENCH_resilience.json", _ENTRIES,
        generated_at=os.environ.get("BENCH_TIMESTAMP"),
    )


@pytest.fixture(scope="module")
def quick_specs():
    trace = reference_trace(n_frames=40_000)
    return experiment_specs(trace, quick=True)


def _timed_campaign(specs, **kwargs):
    start = time.perf_counter()
    report = run_campaign(specs, **kwargs)
    elapsed = time.perf_counter() - start
    assert report.ok
    assert len(report.results) == 21
    return elapsed


class TestCheckpointOverhead:
    def test_checkpointing_within_5_percent(self, quick_specs, tmp_path):
        """ISSUE acceptance: checkpointing overhead on the quick
        campaign < 5% of the plain supervised run."""
        # Interleave plain/checkpointed and keep each variant's best of
        # 2, damping one-off machine noise without doubling the cost.
        plain = min(
            _timed_campaign(quick_specs),
            _timed_campaign(quick_specs),
        )
        checkpointed = min(
            _timed_campaign(quick_specs, checkpoint_dir=tmp_path / "a", resume=False),
            _timed_campaign(quick_specs, checkpoint_dir=tmp_path / "b", resume=False),
        )
        overhead = checkpointed / plain - 1.0
        _ENTRIES.append({
            "name": "quick_campaign_checkpoint_overhead",
            "value": round(overhead, 4),
            "unit": "fraction",
            "higher_is_better": False,
            "budget": 0.05,
            "context": {
                "plain_seconds": round(plain, 3),
                "checkpointed_seconds": round(checkpointed, 3),
            },
        })
        assert overhead < 0.05, (
            f"checkpointing cost {overhead:.1%} on the quick campaign "
            f"({plain:.2f}s -> {checkpointed:.2f}s)"
        )

    def test_resume_is_fast(self, quick_specs, tmp_path):
        """Resuming a fully checkpointed campaign skips all the work:
        it must cost a small fraction of the original run."""
        ckpt = tmp_path / "full"
        full = _timed_campaign(quick_specs, checkpoint_dir=ckpt, resume=False)
        start = time.perf_counter()
        report = run_campaign(quick_specs, checkpoint_dir=ckpt, resume=True)
        resumed = time.perf_counter() - start
        assert report.ok and len(report.resumed) == 21
        _ENTRIES.append({
            "name": "quick_campaign_resume_speedup",
            "value": round(full / resumed, 1),
            "unit": "x",
            "higher_is_better": True,
            "budget": 2,
            "context": {
                "full_seconds": round(full, 3),
                "resumed_seconds": round(resumed, 3),
            },
        })
        assert resumed < 0.5 * full


class TestReachOverhead:
    def test_idle_hook_is_nanoseconds(self):
        """With no active plan, reach() must stay within a few hundred
        nanoseconds per call so instrumentation can live in hot paths."""
        n = 1_000_000
        start = time.perf_counter()
        for _ in range(n):
            reach("bench:site")
        per_call_ns = (time.perf_counter() - start) / n * 1e9
        _ENTRIES.append({
            "name": "idle_reach_ns_per_call",
            "value": round(per_call_ns, 1),
            "unit": "ns/call",
            "higher_is_better": False,
            "budget": 2_000,
        })
        assert per_call_ns < 2_000  # generous bound; records the real cost
