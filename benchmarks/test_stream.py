"""Streaming-pipeline benchmarks: throughput per backend and the
10M-sample bounded-memory acceptance run.

Timings use ``time.perf_counter`` directly (a stream is consumed once,
so the repeat-calling benchmark fixture does not fit); each test folds
its samples/sec into ``BENCH_stream.json`` at the repo root so the
numbers ride along with the PR.

The throughput hierarchy this records is the paper's Section 4 story:
exact Hosking synthesis is O(n^2) (the "10 hours for 171,000 points"
bottleneck), while the FFT block sources generate and transform
millions of samples per second in constant memory.
"""

from __future__ import annotations

import os
import time
import tracemalloc
from pathlib import Path

import numpy as np
import pytest

from repro.distributions.hybrid import GammaParetoHybrid
from repro.obs.bench import write_bench
from repro.stream import (
    BlockFGNSource,
    HoskingSource,
    OnlineMoments,
    ParallelSources,
    Stream,
    StreamingQueue,
)

REPO_ROOT = Path(__file__).resolve().parents[1]
TARGET = GammaParetoHybrid(27_791.0, 6_254.0, 12.0)

_ENTRIES = []


@pytest.fixture(scope="session", autouse=True)
def _record_bench():
    """Merge every recorded rate into BENCH_stream.json after the run.

    The timestamp comes from the environment (CI passes its pipeline
    stamp via ``BENCH_TIMESTAMP``); locally it stays null so the file
    is a pure function of the measurements.
    """
    yield
    if not _ENTRIES:
        return
    write_bench(
        REPO_ROOT / "BENCH_stream.json", _ENTRIES,
        generated_at=os.environ.get("BENCH_TIMESTAMP"),
    )


def _timed_drain(stream, n, name, budget=None):
    moments = OnlineMoments()
    start = time.perf_counter()
    stream.drain(moments)
    elapsed = time.perf_counter() - start
    assert moments.count == n
    entry = {
        "name": name,
        "value": round(n / elapsed),
        "unit": "samples/s",
        "higher_is_better": True,
        "context": {"samples": n, "seconds": round(elapsed, 4)},
    }
    if budget is not None:
        entry["budget"] = budget
    _ENTRIES.append(entry)
    return moments, elapsed


class TestBackendThroughput:
    def test_paxson_transformed(self):
        n, chunk = 1_000_000, 65_536
        src = BlockFGNSource(0.8, block_size=chunk, overlap=1024, backend="paxson")
        stream = Stream.from_source(src, n, chunk, rng=np.random.default_rng(0)).transform(
            TARGET, method="table"
        )
        moments, elapsed = _timed_drain(stream, n, "paxson_transformed_1m", budget=50_000)
        assert moments.mean == pytest.approx(27_791.0, rel=0.05)
        assert n / elapsed > 50_000  # loose floor; records the real rate

    def test_davies_harte_transformed(self):
        n, chunk = 1_000_000, 65_536
        src = BlockFGNSource(0.8, block_size=chunk, overlap=1024, backend="davies-harte")
        stream = Stream.from_source(src, n, chunk, rng=np.random.default_rng(1)).transform(
            TARGET, method="table"
        )
        moments, elapsed = _timed_drain(stream, n, "davies_harte_transformed_1m")
        assert moments.mean == pytest.approx(27_791.0, rel=0.05)

    def test_hosking_transformed(self):
        """Exact synthesis: O(n^2), so the benchmark stays at 16k."""
        n, chunk = 16_384, 4096
        stream = Stream.from_source(
            HoskingSource(hurst=0.8), n, chunk, rng=np.random.default_rng(2)
        ).transform(TARGET, method="table")
        # ~28k samples/s on the reference machine; the floor sits well
        # below so only an order-of-magnitude regression trips it.
        moments, _ = _timed_drain(stream, n, "hosking_transformed_16k",
                                  budget=8_000)
        assert moments.mean == pytest.approx(27_791.0, rel=0.1)

    def test_parallel_sources(self):
        """Four fGn sources on the worker pool, summed and transformed."""
        n, chunk = 1_000_000, 65_536
        sources = [
            BlockFGNSource(0.8, block_size=chunk, overlap=1024, backend="paxson")
            for _ in range(4)
        ]
        from repro.distributions.normal import Normal

        stream = ParallelSources(sources).stream(
            n, chunk, rng=np.random.default_rng(3)
        ).transform(TARGET, source=Normal(0.0, 2.0), method="table")
        moments, _ = _timed_drain(stream, n, "parallel_4_sources_transformed_1m")
        assert moments.mean == pytest.approx(27_791.0, rel=0.05)


class TestTenMillionBoundedMemory:
    def test_ten_million_samples_constant_memory(self):
        """ISSUE acceptance: >= 10M transformed samples while the traced
        allocation peak stays orders of magnitude below the 80 MB the
        materialized series would need."""
        n, chunk = 10_000_000, 65_536
        src = BlockFGNSource(0.8, block_size=chunk, overlap=1024, backend="paxson")
        stream = (
            Stream.from_source(src, n, chunk, rng=np.random.default_rng(4))
            .transform(TARGET, method="table")
        )
        moments = OnlineMoments()
        queue = StreamingQueue(1.1 * 27_791.0, 20.0 * 27_791.0)
        tracemalloc.start()
        baseline, _ = tracemalloc.get_traced_memory()
        start = time.perf_counter()
        stream.drain(moments, queue)
        elapsed = time.perf_counter() - start
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        assert moments.count == n
        assert queue.slots_seen == n
        peak_mb = (peak - baseline) / 1e6
        assert peak_mb < 20.0  # full series would be 80 MB
        result = queue.result()
        assert 0.0 < result.loss_rate < 0.1  # a live lossy operating point
        _ENTRIES.append({
            "name": "ten_million_bounded",
            "value": round(n / elapsed),
            "unit": "samples/s",
            "higher_is_better": True,
            "context": {
                "samples": n,
                "seconds": round(elapsed, 2),
                "traced_peak_mb": round(peak_mb, 2),
                "loss_rate": round(result.loss_rate, 6),
            },
        })
