"""Benchmarks regenerating Tables 1-3 of the paper."""

import numpy as np

from benchmarks.conftest import run_once
from repro.experiments import table1, table2, table3


def test_table1_trace_parameters(benchmark, full_trace):
    """Table 1: duration, bandwidth and compression ratio."""
    result = run_once(benchmark, table1.run, full_trace)
    # Paper: 5.34 Mb/s average bandwidth, compression ratio 8.70.
    assert abs(result["avg_bandwidth_mbps"] - 5.34) / 5.34 < 0.02
    assert abs(result["avg_compression_ratio"] - 8.70) / 8.70 < 0.02
    assert result["video_frames"] == 171_000


def test_table1_codec_pipeline(benchmark):
    """Table 1 (codec path): the DCT/RLE/Huffman pipeline end-to-end."""
    result = run_once(benchmark, table1.run_codec, n_frames=24)
    assert result["avg_compression_ratio"] > 2.0
    assert result["trace"].has_slice_data


def test_table2_summary_statistics(benchmark, full_trace):
    """Table 2: frame and slice statistics vs the paper."""
    result = run_once(benchmark, table2.run, full_trace)
    frame, paper_f = result["frame"], result["paper"]["frame"]
    assert abs(frame.mean - paper_f["mean"]) / paper_f["mean"] < 0.01
    assert abs(frame.std - paper_f["std"]) / paper_f["std"] < 0.02
    assert abs(frame.peak_to_mean - paper_f["peak_to_mean"]) < 0.5
    sl, paper_s = result["slice"], result["paper"]["slice"]
    assert abs(sl.mean - paper_s["mean"]) / paper_s["mean"] < 0.01
    assert abs(sl.coefficient_of_variation - paper_s["coefficient_of_variation"]) < 0.03


def test_table3_hurst_estimates(benchmark, full_trace):
    """Table 3: every estimator in the paper's band around H ~= 0.8."""
    result = run_once(benchmark, table3.run, full_trace)
    # Paper: VT 0.78, R/S 0.83, R/S agg 0.78, varied 0.81-0.83,
    # Whittle 0.80 +- 0.088.  Shape: all estimates elevated (LRD), all
    # mutually consistent.
    assert 0.72 < result["variance_time"] < 0.92
    assert 0.72 < result["rs"] < 0.92
    assert 0.72 < result["rs_aggregated"] < 0.95
    low, high = result["rs_varied"]
    assert high - low < 0.12
    w = result["whittle"]
    assert w.ci_high - w.ci_low < 0.3
    estimates = [result["variance_time"], result["rs"], result["rs_aggregated"]]
    assert max(estimates) - min(estimates) < 0.15
