#!/usr/bin/env python3
"""Full statistical analysis of a VBR video trace (Section 3 of the paper).

Reproduces the paper's analysis battery on any trace:

- Table 2 summary statistics,
- marginal-distribution comparison (Normal / Gamma / Lognormal /
  Pareto / hybrid Gamma/Pareto) with tail verdicts (Fig. 4),
- long-range dependence: variance-time, R/S pox, Whittle (Table 3),
- LRD-aware confidence intervals for the mean (Fig. 9).

Run on the bundled synthetic trace:
    python examples/analyze_trace.py
Run on your own trace file (one integer byte count per line):
    python examples/analyze_trace.py --trace path/to/trace.dat
"""

import argparse

import numpy as np

from repro.analysis.confidence import mean_confidence_convergence
from repro.analysis.hurst import hurst_summary
from repro.experiments.fig04_ccdf import run as ccdf_run
from repro.experiments.reporting import format_kv, format_table
from repro.video.starwars import synthesize_starwars_trace
from repro.video.tracefile import load_trace


def parse_args():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--trace", help="trace file (one integer per line)")
    parser.add_argument(
        "--frames", type=int, default=40_000,
        help="length of the synthetic trace when no file is given",
    )
    return parser.parse_args()


def main():
    args = parse_args()
    if args.trace:
        trace = load_trace(args.trace)
        print(f"Loaded {trace.n_frames} frames from {args.trace}")
    else:
        trace = synthesize_starwars_trace(n_frames=args.frames, seed=11)
        print(f"Synthesized {trace.n_frames} calibrated frames (pass --trace for real data)")
    x = trace.frame_bytes

    # --- Table 2 ------------------------------------------------------
    print()
    print(format_kv(trace.summary("frame").format_rows(), title="Summary statistics (frame):"))

    # --- Marginal distribution (Fig. 4) -------------------------------
    result = ccdf_run(trace)
    rows = [
        [name, f"{result['tail_deviation'][name]:.3f}"]
        for name in result["ranking"]
    ]
    print()
    print(format_table(
        ["model", "tail log10 deviation"],
        rows,
        title="Right-tail fit (smaller is better; paper: Pareto wins):",
    ))
    hybrid = result["models"]["gamma_pareto"]
    print(f"\nFitted Gamma/Pareto: {hybrid}")
    print(f"  -> Pareto tail holds {hybrid.tail_mass:.1%} of the mass beyond "
          f"{hybrid.x_th:.0f} bytes/frame")

    # --- Long-range dependence (Table 3) -------------------------------
    hs = hurst_summary(x)
    w = hs["whittle"]
    rows = [
        ["Variance-Time", f"{hs['variance_time']:.3f}"],
        ["R/S Analysis", f"{hs['rs']:.3f}"],
        ["R/S Aggregated", f"{hs['rs_aggregated']:.3f}"],
        ["R/S with n, M varied", f"{hs['rs_varied'][0]:.3f}-{hs['rs_varied'][1]:.3f}"],
        ["Whittle estimate", f"{w.hurst:.3f} +- {1.96 * w.std_error:.3f}"],
    ]
    print()
    print(format_table(["method", "H"], rows, title="Hurst parameter (Table 3 style):"))

    # --- Honest confidence intervals (Fig. 9) --------------------------
    h = float(np.clip(hs["variance_time"], 0.55, 0.95))
    conv = mean_confidence_convergence(x, h)
    print(
        f"\nMean-rate estimation honesty (H = {h:.2f}):\n"
        f"  conventional (i.i.d.) 95% CIs contain the final mean for "
        f"{conv.iid_coverage():.0%} of prefixes;\n"
        f"  LRD-corrected CIs for {conv.lrd_coverage():.0%}."
    )
    if hs["variance_time"] > 0.6:
        print("\nVerdict: the trace is long-range dependent -- short-range "
              "models will underestimate resource needs.")


if __name__ == "__main__":
    main()
