#!/usr/bin/env python3
"""Network capacity planning for multiplexed VBR video (Section 5).

Answers the operator's question the paper's Figs. 14-15 answer:
*how much bandwidth and buffer do N statistically multiplexed VBR video
streams need for a given loss target?*

- sweeps the Q-C trade-off (max buffer delay vs per-source capacity),
- locates the knee (the natural operating point),
- prints the statistical-multiplexing-gain table.

Run:  python examples/capacity_planning.py [--frames 30000] [--loss 1e-4]
"""

import argparse

import numpy as np

from repro.experiments.reporting import format_table
from repro.simulation.qc import knee_point, qc_curve, smg_curve
from repro.video.starwars import synthesize_starwars_trace


def parse_args():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--frames", type=int, default=30_000, help="trace length")
    parser.add_argument("--loss", type=float, default=1e-4, help="overall loss target")
    parser.add_argument("--tmax-ms", type=float, default=2.0,
                        help="buffer delay for the SMG table (paper: 2 ms)")
    return parser.parse_args()


def main():
    args = parse_args()
    trace = synthesize_starwars_trace(n_frames=args.frames, seed=5, with_slices=False)
    series = trace.frame_bytes
    slot_seconds = 1.0 / trace.frame_rate
    rng = np.random.default_rng(1)
    min_sep = min(1000, trace.n_frames // 40)

    mean_mbps = trace.mean_rate_bps / 1e6
    peak_mbps = trace.peak_rate_bps / 1e6
    print(f"Source: {trace.n_frames} frames, mean {mean_mbps:.2f} Mb/s, "
          f"peak {peak_mbps:.2f} Mb/s, loss target {args.loss:g}\n")

    # --- Q-C curves with knees (Fig. 14) -------------------------------
    rows = []
    for n in (1, 2, 5, 20):
        curve = qc_curve(
            series, slot_seconds, n_sources=n, target_loss=args.loss,
            n_points=10, min_separation=min_sep, rng=rng,
        )
        k = knee_point(curve)
        rows.append([
            n,
            f"{curve.capacity_per_source_mbps[k]:.2f}",
            f"{curve.tmax_ms[k]:.2f}",
            f"{curve.buffer_bytes[k] / 1e3:.0f}",
        ])
    print(format_table(
        ["N sources", "knee C/N (Mb/s)", "knee T_max (ms)", "knee buffer (kB)"],
        rows,
        title="Q-C operating points (knee of each trade-off curve):",
    ))

    # --- SMG table (Fig. 15) -------------------------------------------
    smg = smg_curve(
        series, slot_seconds, n_values=(1, 2, 5, 10, 20),
        target_loss=args.loss, tmax_ms=args.tmax_ms,
        min_separation=min_sep, rng=rng,
    )
    rows = [
        [int(n), f"{c:.2f}", f"{g:.0%}"]
        for n, c, g in zip(
            smg["n_sources"], smg["capacity_per_source_mbps"], smg["gain_fraction"]
        )
    ]
    print()
    print(format_table(
        ["N sources", "C/N (Mb/s)", "gain realized"],
        rows,
        title=f"Statistical multiplexing gain (buffers sized for T_max = {args.tmax_ms} ms):",
    ))
    print("\n(paper: one source needs ~peak rate; by N=5 about 72% of the "
          "peak-to-mean gap is recovered; by N=20 the allocation "
          "approaches the mean rate)")


if __name__ == "__main__":
    main()
