#!/usr/bin/env python3
"""The intraframe video codec, end to end (Section 2 of the paper).

Renders a short procedural movie, codes it with the DCT / run-length /
Huffman intraframe codec (the paper's "essentially JPEG" coder with a
fixed quantizer), decodes it again, and reports:

- bytes per frame (the VBR bandwidth process itself),
- per-slice byte breakdown,
- compression ratio and reconstruction quality (PSNR),
- how bandwidth tracks scene complexity.

Run:  python examples/codec_demo.py [--frames 24] [--quant 16]
"""

import argparse

import numpy as np

from repro.experiments.reporting import format_table
from repro.video.codec import IntraframeCodec
from repro.video.synthetic import SyntheticMovie


def psnr(original, reconstructed):
    mse = float(np.mean((original.astype(float) - reconstructed) ** 2))
    if mse == 0:
        return float("inf")
    return 10.0 * np.log10(255.0**2 / mse)


def parse_args():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--frames", type=int, default=24, help="frames to code")
    parser.add_argument("--quant", type=float, default=16.0, help="quantizer step size")
    parser.add_argument("--height", type=int, default=120)
    parser.add_argument("--width", type=int, default=128)
    return parser.parse_args()


def main():
    args = parse_args()
    codec = IntraframeCodec(quant_step=args.quant, slices_per_frame=30)
    movie = SyntheticMovie(
        args.frames, height=args.height, width=args.width, seed=42, min_scene_frames=6
    )
    print(f"Coding {args.frames} frames of {args.height}x{args.width} procedural video "
          f"with quantizer step {args.quant} ...\n")

    rows = []
    frame_bytes = []
    quality = []
    for i, frame in enumerate(movie):
        encoded = codec.encode_frame(frame)
        decoded = codec.decode_frame(encoded)
        frame_bytes.append(encoded.total_bytes)
        quality.append(psnr(frame, decoded))
        if i < 8:
            scene = movie.script.scene_at(i)
            rows.append([
                i,
                f"{scene.level:.2f}",
                encoded.total_bytes,
                f"{codec.compression_ratio(frame, encoded):.2f}",
                f"{quality[-1]:.1f}",
                f"{encoded.slice_bytes.min()}-{encoded.slice_bytes.max()}",
            ])
    print(format_table(
        ["frame", "scene level", "bytes", "ratio", "PSNR (dB)", "slice bytes (min-max)"],
        rows,
        title="Per-frame coding results (first 8 frames):",
    ))

    frame_bytes = np.asarray(frame_bytes, dtype=float)
    raw = args.height * args.width
    print(
        f"\nWhole run: mean {frame_bytes.mean():.0f} bytes/frame "
        f"(compression {raw / frame_bytes.mean():.2f}:1), "
        f"peak/mean {frame_bytes.max() / frame_bytes.mean():.2f}, "
        f"mean PSNR {np.mean(quality):.1f} dB"
    )
    levels = movie.script.frame_levels()[: frame_bytes.size]
    corr = np.corrcoef(frame_bytes, levels)[0, 1]
    print(f"Correlation between scene complexity and bytes/frame: {corr:.2f}")
    print("\nThis is the mechanism behind the paper's trace: a fixed "
          "quantizer makes the bit rate follow picture complexity, and the "
          "scene structure of a movie makes that complexity long-range "
          "dependent in time.")


if __name__ == "__main__":
    main()
