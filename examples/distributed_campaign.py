#!/usr/bin/env python3
"""Fault-tolerant distributed campaigns with repro.dist.

A campaign sharded across worker nodes must survive the nodes
themselves: a worker SIGKILLed mid-task, a network partition, a whole
cluster going dark.  The coordinator's contract is that none of that
changes the numbers -- node loss keeps the attempt number, so the
rerun uses the same derived seed and produces the same bits.

This demo drives the production coordinator/worker protocol through
the simulated cluster harness (in-process nodes, injectable faults)
on four scenarios:

1. a clean single-node run -- the golden baseline;
2. a 5-node cluster where one node is killed mid-campaign: the lease
   expires, its task is reassigned, results are digest-identical;
3. every node killed: the coordinator degrades to local serial
   execution and still matches;
4. kill-and-migrate: a campaign dies on node A (no fallback), then
   resumes on node B from digest-verified checkpoints.

Real deployments swap the SimCluster for ``repro dist serve`` worker
processes and ``repro experiments --nodes host:port,...`` -- same
coordinator, same guarantees.

Run:  python examples/distributed_campaign.py [--tasks 8]
"""

import argparse
import json
import tempfile
from pathlib import Path

import numpy as np

from repro.dist import (
    DistError,
    FaultEvent,
    FaultScript,
    SimCluster,
    fgn_tasks,
    run_distributed,
)
from repro.qa.golden import diff_digests, summarize

BASE_SEED = 7


def parse_args():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--tasks", type=int, default=8,
                        help="fGn synthesis tasks in the campaign")
    return parser.parse_args()


def digest(results):
    return json.loads(json.dumps(summarize(results)))


def check_identical(baseline, report, label):
    assert report.ok, report.failures
    drift = diff_digests(digest(baseline.results), digest(report.results))
    assert drift == [], drift
    for task_id, golden in baseline.results.items():
        np.testing.assert_array_equal(golden, report.results[task_id])
    print(f"  -> {label}: digest-identical to the baseline")


def main():
    args = parse_args()
    tasks = fgn_tasks(args.tasks, 4_096, hurst=0.8)

    # 1. Golden baseline: one healthy node.
    print(f"1. Baseline: {len(tasks)} fGn tasks on a single node ...")
    with SimCluster(1) as cluster:
        baseline = run_distributed(tasks, cluster.endpoints(),
                                   base_seed=BASE_SEED, lease_s=5.0)
    assert baseline.ok
    print(f"  -> {len(baseline.results)} tasks completed")

    # 2. Five nodes, one killed mid-campaign.
    print("\n2. Five nodes, node n1 killed mid-campaign ...")
    script = FaultScript([FaultEvent("n1", "kill", at_task=1, phase="finish")])
    events = []
    with SimCluster(5, script=script) as cluster:
        report = run_distributed(
            tasks, cluster.endpoints(), base_seed=BASE_SEED, lease_s=0.3,
            on_event=lambda kind, detail: events.append(kind),
        )
    reassigned = sum(r.reassignments for r in report.records)
    print(f"  lease expired on n1 (state: {report.node_states['n1']}), "
          f"{reassigned} task(s) reassigned to survivors")
    assert "node_lost" in events and "reassign" in events
    check_identical(baseline, report, "node loss")

    # 3. The whole cluster dies.
    print("\n3. Every node killed: graceful degradation to local ...")
    script = FaultScript([FaultEvent("n0", "kill", at_task=1),
                          FaultEvent("n1", "kill", at_task=1)])
    with SimCluster(2, script=script) as cluster:
        report = run_distributed(tasks, cluster.endpoints(),
                                 base_seed=BASE_SEED, lease_s=0.3)
    assert report.degraded_to_local
    print("  coordinator degraded to local serial execution")
    check_identical(baseline, report, "local fallback")

    # 4. Kill on node A, resume on node B.
    print("\n4. Campaign killed on node A, resumed on node B ...")
    with tempfile.TemporaryDirectory() as tmp:
        ckpt = Path(tmp) / "ckpt"
        script = FaultScript([FaultEvent("nA", "kill", at_task=3,
                                         phase="start")])
        try:
            with SimCluster(["nA"], script=script) as cluster:
                run_distributed(tasks, cluster.endpoints(),
                                base_seed=BASE_SEED, lease_s=0.3,
                                checkpoint_dir=ckpt, fallback_local=False)
            raise SystemExit("expected the campaign to die with its node")
        except DistError as exc:
            print(f"  campaign died: {exc}")
        saved = sorted(p.stem for p in ckpt.glob("*.json")
                       if p.stem != "campaign")
        print(f"  {len(saved)} task(s) checkpointed before the kill: {saved}")
        with SimCluster(["nB"]) as cluster:
            report = run_distributed(tasks, cluster.endpoints(),
                                     base_seed=BASE_SEED, lease_s=5.0,
                                     checkpoint_dir=ckpt)
        print(f"  resumed on node B: {sorted(report.resumed)} loaded from "
              f"digest-verified checkpoints")
        assert sorted(report.resumed) == saved
        check_identical(baseline, report, "kill-and-migrate")

    print("\nAll fault scenarios produced bit-identical results.")


if __name__ == "__main__":
    main()
