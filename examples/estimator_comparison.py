#!/usr/bin/env python3
"""Hurst-estimator shoot-out: seven estimators, two data sets.

Runs every H estimator in the library on (a) synthetic fractional
Gaussian noise with *known* H = 0.8 -- a correctness check -- and
(b) the calibrated VBR video trace -- the Table 3 reproduction plus the
newer estimators (GPH, wavelet, IDC) as cross-checks.

Run:  python examples/estimator_comparison.py [--frames 40000]
"""

import argparse

import numpy as np

from repro.analysis.dispersion import index_of_dispersion
from repro.analysis.hurst import gph, rs_pox, variance_time, whittle, whittle_aggregated
from repro.analysis.wavelet import wavelet_hurst
from repro.core.daviesharte import DaviesHarteGenerator
from repro.experiments.fig08_periodogram import run as periodogram_run
from repro.experiments.reporting import format_table
from repro.video.starwars import synthesize_starwars_trace
from repro.video.trace import VBRTrace


def estimate_all(x, trace=None):
    """All estimators on one non-negative series; returns {name: H}."""
    shifted = x - x.min() + 1.0 if np.any(x <= 0) else x
    results = {
        "variance-time": variance_time(x).hurst,
        "R/S pox": rs_pox(x).hurst,
        "Whittle (m=1)": whittle(x).hurst,
        "GPH": gph(x).hurst,
        "wavelet (Haar)": wavelet_hurst(x).hurst,
        "IDC": index_of_dispersion(shifted).hurst,
    }
    agg = whittle_aggregated(x, m_values=[max(x.size // 500, 1)])
    results[f"Whittle (m={agg[0][0]})"] = agg[0][1].hurst
    if trace is not None:
        results["periodogram slope"] = periodogram_run(trace)["hurst"]
    return results


def parse_args():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--frames", type=int, default=40_000)
    return parser.parse_args()


def main():
    args = parse_args()
    rng = np.random.default_rng(7)

    # (a) Known ground truth.
    fgn = DaviesHarteGenerator(0.8).generate(2**15, rng=rng)
    fgn_estimates = estimate_all(fgn)
    rows = [[name, f"{h:.3f}", f"{h - 0.8:+.3f}"] for name, h in fgn_estimates.items()]
    print(format_table(
        ["estimator", "H", "error"],
        rows,
        title="Fractional Gaussian noise, true H = 0.800:",
    ))

    # (b) The VBR video trace.
    trace = synthesize_starwars_trace(n_frames=args.frames, seed=11, with_slices=False)
    estimates = estimate_all(trace.frame_bytes, trace=VBRTrace(trace.frame_bytes))
    rows = [[name, f"{h:.3f}"] for name, h in estimates.items()]
    print()
    print(format_table(
        ["estimator", "H"],
        rows,
        title=f"Calibrated VBR video trace ({args.frames} frames; paper: 0.78-0.83):",
    ))
    values = np.array(list(estimates.values()))
    print(
        f"\nAll {values.size} estimators agree the trace is strongly LRD "
        f"(H in [{values.min():.2f}, {values.max():.2f}]); an SRD process "
        "would read ~0.5 on every one of them."
    )


if __name__ == "__main__":
    main()
