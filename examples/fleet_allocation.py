#!/usr/bin/env python3
"""Closed-loop bandwidth/buffer allocation over a heterogeneous fleet.

The paper multiplexes homogeneous Star Wars sources into one FIFO
queue; this demo runs the control plane it could not: a mixed fleet of
self-similar video, CBR and bursty data users sharing one ``(C, Q)``
pool, re-partitioned every epoch by the ``repro.alloc`` allocators:

1. the policy ladder at equal resources: static partition, reactive
   harvest, paired capacity/buffer trades, and the clairvoyant oracle
   upper bound, compared on total and p99 per-user loss;
2. the conservation contract: every epoch's partition sums to the pool
   totals *exactly* (compensated ``math.fsum``, not approximately);
3. worker-count determinism: the same fleet sharded over 1, 2 and 5
   worker processes produces digest-identical results.

Run:  python examples/fleet_allocation.py [--users 24] [--epochs 16]
"""

import argparse

import numpy as np

from repro.alloc import ALLOCATORS, demo_fleet, exact_sum, simulate_fleet


def parse_args():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--users", type=int, default=24, help="fleet size")
    parser.add_argument("--epochs", type=int, default=16,
                        help="allocation epochs")
    parser.add_argument("--epoch-slots", type=int, default=60,
                        help="slots per epoch")
    return parser.parse_args()


def main():
    args = parse_args()
    spec = demo_fleet(args.users, epoch_slots=args.epoch_slots,
                      n_epochs=args.epochs, utilization=0.8,
                      buffer_slots=12.0, seed=2026)
    capacity, buffer = spec.resolved_totals()
    kinds = [u.kind for u in spec.users]
    print(f"fleet: {args.users} users "
          f"({kinds.count('video')} video, {kinds.count('cbr')} cbr, "
          f"{kinds.count('data')} data), pool C={capacity:.0f} B/slot, "
          f"Q={buffer:.0f} B, {args.epochs} epochs x {args.epoch_slots} slots")

    # --- 1. The policy ladder at equal (C, Q) --------------------------
    print("\nallocator comparison (same pool, same arrivals):")
    results = {}
    for name in ALLOCATORS:
        results[name] = simulate_fleet(spec, name, record_history=True)
    for name, r in sorted(results.items(), key=lambda kv: kv[1].total_loss_rate):
        p = r.loss_percentiles()
        print(f"  {name:8s}: total loss {r.total_loss_rate:.4f}, "
              f"p99 user loss {p['p99']:.4f}, fairness {r.fairness():.3f}, "
              f"{r.reallocations} reallocations")
    assert results["oracle"].total_loss_rate <= min(
        results[n].total_loss_rate for n in ("static", "harvest", "trade"))
    assert results["harvest"].loss_percentiles()["p99"] \
        < results["static"].loss_percentiles()["p99"]
    print("  -> dynamic policies beat the static partition; the oracle's "
          "lookahead is the upper bound")

    # --- 2. Conservation is exact, not approximate ---------------------
    for r in results.values():
        for entry in r.history:
            assert exact_sum(entry["capacity_after"]) == capacity
            assert exact_sum(entry["buffer_after"]) == buffer
    n_checks = sum(2 * len(r.history) for r in results.values())
    print(f"\npool conserved exactly in all {n_checks} epoch partitions "
          "(fsum-compensated, == not approx)")

    # --- 3. Worker-count determinism -----------------------------------
    digests = {w: simulate_fleet(spec, "harvest", workers=w).digest()
               for w in (1, 2, 5)}
    assert len(set(digests.values())) == 1
    np.testing.assert_array_equal(
        results["harvest"].lost, simulate_fleet(spec, "harvest", workers=5).lost)
    print(f"workers 1/2/5 digest-identical: {digests[1][:16]}...")


if __name__ == "__main__":
    main()
