#!/usr/bin/env python3
"""Layered VBR video over a priority queue (Section 5.3's suggestion).

Splits a VBR trace into a base layer (the essential picture) and an
enhancement layer, then pushes both through a congested link twice:

1. plain FIFO -- both layers share fate;
2. strict-priority with pushout -- the base layer is protected,
   enhancement absorbs the loss.

Also demonstrates codec-level layering: the DCT coefficients of each
block are split into a low-frequency base and high-frequency
enhancement, each with its own run-length/Huffman stream.

Run:  python examples/layered_transport.py
"""

import numpy as np

from repro.experiments.reporting import format_table
from repro.simulation.priority import simulate_priority_queue
from repro.simulation.queue import simulate_queue
from repro.video.layering import LayeredIntraframeCodec, layer_series
from repro.video.starwars import synthesize_starwars_trace
from repro.video.synthetic import SyntheticMovie


def main():
    # --- Codec-level layering on real coded frames ----------------------
    print("Codec-level layering (DCT coefficient split):")
    codec = LayeredIntraframeCodec(quant_step=16.0, n_base_coeffs=6)
    movie = SyntheticMovie(6, height=48, width=64, seed=9)
    rows = []
    for i, frame in enumerate(movie):
        layered = codec.encode_frame_layered(frame)
        rows.append([
            i, layered.base_bytes, layered.enhancement_bytes,
            f"{layered.base_fraction:.0%}",
        ])
    print(format_table(["frame", "base bytes", "enhancement bytes", "base share"], rows))

    # --- Transport over a congested link --------------------------------
    trace = synthesize_starwars_trace(n_frames=20_000, seed=4, with_slices=False)
    x = trace.frame_bytes
    base, enh = layer_series(x, base_fraction=0.4)
    capacity = float(np.mean(x)) * 1.03  # only 3% headroom: congestion
    buffer_bytes = 80_000.0

    fifo = simulate_queue(x, capacity, buffer_bytes)
    prio = simulate_priority_queue(base, enh, capacity, buffer_bytes)

    print(f"\nTransport at {capacity * 8 * 24 / 1e6:.2f} Mb/s "
          f"(3% above the mean rate), buffer {buffer_bytes / 1e3:.0f} kB:")
    rows = [
        ["FIFO (no layers)", f"{fifo.loss_rate:.2e}", f"{fifo.loss_rate:.2e}"],
        [
            "priority + pushout",
            f"{prio.high_loss_rate:.2e}",
            f"{prio.low_loss_rate:.2e}",
        ],
    ]
    print(format_table(["discipline", "base-layer loss", "enhancement loss"], rows))
    if prio.high_loss_rate < fifo.loss_rate / 10:
        print("\nThe priority discipline keeps the essential layer nearly "
              "loss-free at identical total resources -- the mechanism the "
              "paper points to for concealing congestion from viewers.")


if __name__ == "__main__":
    main()
