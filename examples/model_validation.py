#!/usr/bin/env python3
"""Model validation: the paper's Fig. 16 "engineering test".

Runs the reference trace and three models through the identical
zero-loss queueing harness and compares their resource requirements:

- the full Garrett-Willinger model (LRD + Gamma/Pareto marginals),
- fractional ARIMA with Gaussian marginals (LRD only),
- i.i.d. Gamma/Pareto (heavy tail only).

The paper's finding: the full model is consistently closest to the
trace; both features (long-range dependence AND the heavy tail) matter;
the models converge as more sources are multiplexed.

Run:  python examples/model_validation.py [--frames 20000]
"""

import argparse

from repro.experiments.fig16_model_vs_trace import run
from repro.experiments.reporting import format_table
from repro.video.starwars import synthesize_starwars_trace


def parse_args():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--frames", type=int, default=20_000, help="trace length")
    return parser.parse_args()


def main():
    args = parse_args()
    trace = synthesize_starwars_trace(n_frames=args.frames, seed=13, with_slices=False)
    print(f"Comparing models against a {trace.n_frames}-frame trace "
          f"(zero-loss Q-C curves, as in Fig. 16) ...\n")
    result = run(trace, n_sources=(1, 2, 5, 20), n_frames=args.frames, n_buffers=8)
    model = result["model"]
    print(f"Fitted model: {model}\n")

    rows = []
    for n in result["n_sources"]:
        offsets = result["offsets"][n]
        rows.append([
            n,
            f"{offsets['full-model']:.3f}",
            f"{offsets['gaussian-farima']:.3f}",
            f"{offsets['iid-gamma-pareto']:.3f}",
        ])
    print(format_table(
        ["N", "full model", "gaussian fARIMA", "iid Gamma/Pareto"],
        rows,
        title="Mean |log capacity offset| from the trace curve (smaller = closer):",
    ))

    n_first = result["n_sources"][0]
    n_last = result["n_sources"][-1]
    off = result["offsets"]
    verdicts = []
    if off[n_first]["full-model"] <= min(
        off[n_first]["gaussian-farima"], off[n_first]["iid-gamma-pareto"] + 0.05
    ):
        verdicts.append("the full model tracks the trace best at low N")
    if off[n_last]["full-model"] <= off[n_first]["full-model"] + 0.02:
        verdicts.append("agreement improves (or holds) as N grows")
    spread_first = max(off[n_first].values()) - min(off[n_first].values())
    spread_last = max(off[n_last].values()) - min(off[n_last].values())
    if spread_last < spread_first:
        verdicts.append("the distinction between models diminishes with N")
    print("\nVerdict (paper's Fig. 16 findings reproduced):")
    for v in verdicts:
        print(f"  - {v}")


if __name__ == "__main__":
    main()
