#!/usr/bin/env python3
"""Interframe (MPEG-style) VBR video: the paper's noted extension.

The paper studies intraframe coding and remarks that interframe (MPEG)
coding yields "greater compression, burstiness and much stronger
dependence on motion", with its main results extending to MPEG as well.
This example synthesizes an MPEG-like trace (GOP pattern IBBPBBPBBPBB
over the same scene-structured activity process) and shows:

- the GOP periodicity dominating the spectrum,
- higher burstiness than intraframe coding at matched content,
- unchanged long-range dependence once whole GOPs are aggregated.

Run:  python examples/mpeg_analysis.py [--frames 24000]
"""

import argparse

import numpy as np

from repro.analysis.correlation import aggregate, periodogram
from repro.analysis.hurst import variance_time
from repro.experiments.reporting import format_table
from repro.video.interframe import DEFAULT_GOP_PATTERN, synthesize_mpeg_trace
from repro.video.starwars import synthesize_starwars_trace


def parse_args():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--frames", type=int, default=24_000)
    return parser.parse_args()


def main():
    args = parse_args()
    gop = len(DEFAULT_GOP_PATTERN)
    mpeg = synthesize_mpeg_trace(n_frames=args.frames, seed=4)
    intra = synthesize_starwars_trace(n_frames=args.frames, seed=4, with_slices=False)

    x = mpeg.frame_bytes
    y = intra.frame_bytes
    rows = [
        ["mean (bytes/frame)", f"{y.mean():.0f}", f"{x.mean():.0f}"],
        ["CoV", f"{y.std() / y.mean():.2f}", f"{x.std() / x.mean():.2f}"],
        ["peak/mean", f"{y.max() / y.mean():.2f}", f"{x.max() / x.mean():.2f}"],
    ]
    print(format_table(
        ["statistic", "intraframe", f"MPEG ({DEFAULT_GOP_PATTERN})"],
        rows,
        title="Intraframe vs interframe coding of the same content:",
    ))

    # Frame-type byte budget.
    per_gop = x[: (x.size // gop) * gop].reshape(-1, gop)
    by_type = {}
    for pos, ch in enumerate(DEFAULT_GOP_PATTERN):
        by_type.setdefault(ch, []).append(per_gop[:, pos].mean())
    rows = [[ch, f"{np.mean(v):.0f}"] for ch, v in sorted(by_type.items())]
    print()
    print(format_table(["frame type", "mean bytes"], rows, title="Per-frame-type budget:"))

    # GOP periodicity in the spectrum.
    omega, intensity = periodogram(x)
    j_gop = x.size // gop
    peak = intensity[j_gop - 2 : j_gop + 1].max()
    background = float(np.median(intensity[j_gop // 2 : j_gop * 2]))
    print(f"\nGOP spectral line: {peak / background:.0f}x the local background "
          f"(at f = frame_rate/{gop}).")

    # LRD beneath the periodicity.
    h_frame = variance_time(x).hurst
    h_gop = variance_time(aggregate(x, gop)).hurst
    print(f"Hurst parameter: {h_frame:.2f} at frame level (periodicity-distorted), "
          f"{h_gop:.2f} after aggregating whole GOPs -- the long-range "
          "dependence of the underlying content is untouched by the coding mode.")


if __name__ == "__main__":
    main()
