#!/usr/bin/env python3
"""An end-to-end profiled pipeline with repro.obs.

The same generate -> transform -> queue pipeline as the streaming demo,
run under full observability: every stage is traced into a span tree,
per-stage sample counters and wait-time histograms accumulate in the
metrics registry, and the whole run is written as a ``run.json``
manifest you can render with ``repro obs report run.json`` or scrape
with ``repro obs export-metrics run.json``.

The point to notice: the instrumentation shown here lives in the
library *permanently*.  Outside the ``profile()`` block every probe
collapses to a single flag read (budgets in ``BENCH_obs.json``), so
observability is something you switch on, not something you add.

Run:  python examples/observed_run.py [--samples 500000]
"""

import argparse

import numpy as np

from repro.distributions.hybrid import GammaParetoHybrid
from repro.obs import metrics, trace
from repro.obs.report import RunReport, profile
from repro.stream import BlockFGNSource, OnlineMoments, Stream, StreamingQueue


def parse_args():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--samples", type=int, default=500_000,
                        help="frames to stream under the profiler")
    parser.add_argument("--chunk", type=int, default=65_536)
    parser.add_argument("--out", default="run.json",
                        help="manifest path (default run.json)")
    parser.add_argument("--memory", action="store_true",
                        help="add tracemalloc peaks to every span (slower)")
    return parser.parse_args()


def main():
    args = parse_args()
    target = GammaParetoHybrid(27_791.0, 6_254.0, 12.0)
    moments = OnlineMoments()
    queue = StreamingQueue(1.1 * 27_791.0, 20.0 * 27_791.0)

    config = {"samples": args.samples, "chunk": args.chunk, "hurst": 0.8}
    with profile("observed-run", config=config, seed=0, path=args.out,
                 memory=args.memory):
        src = BlockFGNSource(0.8, block_size=args.chunk, overlap=1024,
                             backend="paxson")
        stream = (
            Stream.from_source(src, args.samples, args.chunk,
                               rng=np.random.default_rng(0))
            .metered("source")                  # chunk/sample/wait metrics
            .transform(target, method="table")  # spans from the library
            .metered("transform")
        )
        with trace.span("drain", samples=args.samples):  # our own span
            stream.drain(moments, queue)

    # -- Everything below reads what the profiler recorded. ------------
    print(f"drained {moments.count:,} samples  "
          f"mean {moments.mean:.0f}  loss {queue.result().loss_rate:.2e}")
    print()

    print("span totals (from the live collector):")
    for name, stat in trace.aggregate().items():
        print(f"  {name:<24} n={stat['count']:<5} wall {stat['wall_s']:.4f}s")
    print()

    dump = metrics.registry().to_dict()
    print("per-stage sample counters (exactly the configured run length):")
    for key in sorted(dump):
        if key.startswith("repro_stream_samples_total"):
            print(f"  {key} = {dump[key]['value']:.0f}")
    print()

    doc = RunReport.load(args.out)
    print(f"manifest {args.out}: schema={doc['schema']} "
          f"wall={doc['wall_s']:.2f}s spans={len(doc['span_totals'])} names")
    print(f"render it:   repro obs report {args.out}")
    print(f"scrape it:   repro obs export-metrics {args.out}")


if __name__ == "__main__":
    main()
