#!/usr/bin/env python3
"""Deterministic parallelism: same bits at every worker count.

Demonstrates the :mod:`repro.par` execution engine end to end:

- shard-parallel fGn synthesis whose output is bit-identical for
  ``workers = 1`` and ``workers = 4`` (seeds derive from shard *index*,
  never from scheduling),
- a Q-C capacity sweep fanned out over a seeded process pool,
- the content-addressed cache making a repeat sweep cheap, with every
  hit digest-verified before it is served,
- worker-side metrics surviving the pool boundary via the
  child-to-parent merge.

Run:  python examples/parallel_sweep.py [--frames 20000] [--workers 4]
"""

import argparse
import tempfile
import time

import numpy as np

from repro import obs
from repro.obs import metrics
from repro.par.cache import using
from repro.par.shard import shard_fgn
from repro.simulation.qc import qc_curve
from repro.video.starwars import synthesize_starwars_trace


def parse_args():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--frames", type=int, default=20_000, help="trace length")
    parser.add_argument("--samples", type=int, default=200_000,
                        help="fGn samples for the sharding demo")
    parser.add_argument("--workers", type=int, default=4,
                        help="worker processes for the parallel runs")
    return parser.parse_args()


def main():
    args = parse_args()

    # --- 1. Sharded synthesis is worker-count invariant ----------------
    print(f"Sharded fGn synthesis ({args.samples:,} samples, H = 0.8)")
    serial = shard_fgn(args.samples, 0.8, seed=42,
                       shard_size=65_536, overlap=1_024, workers=1)
    parallel = shard_fgn(args.samples, 0.8, seed=42,
                         shard_size=65_536, overlap=1_024, workers=args.workers)
    identical = np.array_equal(serial, parallel)
    print(f"  workers=1 vs workers={args.workers}: "
          f"{'bit-identical' if identical else 'MISMATCH'}")
    if not identical:
        raise SystemExit("determinism contract violated")

    # --- 2. A Q-C sweep on the pool, with live metrics -----------------
    trace = synthesize_starwars_trace(n_frames=args.frames, seed=5,
                                      with_slices=False)
    slot_seconds = 1.0 / trace.frame_rate
    with obs.enabled():
        curve = qc_curve(
            trace.frame_bytes, slot_seconds, n_sources=5, target_loss=1e-3,
            n_points=6, n_lag_draws=2, rng=np.random.default_rng(1),
            workers=args.workers,
        )
        dump = metrics.registry().to_dict()
    tasks = sum(
        doc["value"] for key, doc in dump.items()
        if key.startswith("repro_par_pool_tasks_total")
    )
    print(f"\nQ-C sweep (N = 5) on {args.workers} workers")
    print(f"  {curve.capacity_per_source.size} capacity points, "
          f"{int(tasks)} pool tasks merged back into the parent registry")
    knee = int(np.argmin(np.abs(curve.tmax_ms - 2.0)))
    print(f"  near T_max = 2 ms: C/N = {curve.capacity_per_source_mbps[knee]:.2f} Mb/s")

    # --- 3. The content cache makes the repeat run cheap ---------------
    with tempfile.TemporaryDirectory() as cache_dir:
        with using(cache_dir):
            started = time.perf_counter()
            cold = synthesize_starwars_trace(n_frames=args.frames, seed=5,
                                             with_slices=False)
            cold_s = time.perf_counter() - started
            started = time.perf_counter()
            warm = synthesize_starwars_trace(n_frames=args.frames, seed=5,
                                             with_slices=False)
            warm_s = time.perf_counter() - started
    assert np.array_equal(cold.frame_bytes, warm.frame_bytes)
    assert np.array_equal(cold.frame_bytes, trace.frame_bytes)
    print("\nContent-addressed cache (digest-verified on every hit)")
    print(f"  cold synthesis {cold_s * 1e3:.0f} ms, warm hit {warm_s * 1e3:.0f} ms "
          f"({cold_s / max(warm_s, 1e-9):.0f}x); cached == uncached bit-for-bit")


if __name__ == "__main__":
    main()
