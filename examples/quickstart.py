#!/usr/bin/env python3
"""Quickstart: synthesize VBR video traffic and plan network capacity.

This walks the library's core loop in under a minute:

1. synthesize a calibrated Star-Wars-like VBR trace;
2. fit the four-parameter Garrett-Willinger model to it;
3. generate synthetic traffic from the fitted model;
4. multiplex several sources through a finite-buffer FIFO queue and
   find the capacity that meets a loss target.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import VBRVideoModel
from repro.experiments.reporting import format_kv, format_table
from repro.simulation.multiplex import multiplex_series, random_lags
from repro.simulation.qc import required_capacity
from repro.video.starwars import synthesize_starwars_trace


def main():
    rng = np.random.default_rng(2024)

    # 1. A 20,000-frame (~14 minute) trace with the paper's statistics.
    print("Synthesizing a calibrated VBR video trace ...")
    trace = synthesize_starwars_trace(n_frames=20_000, seed=7)
    summary = trace.summary("frame")
    print(format_kv(summary.format_rows(), title="\nTrace statistics (Table 2 style):"))

    # 2. Fit the four-parameter model: Gamma/Pareto marginal + Hurst.
    model = VBRVideoModel.fit(trace.frame_bytes)
    print("\nFitted model:", model)

    # 3. Generate synthetic traffic with the same statistics.
    synthetic = model.generate(20_000, rng=rng, generator="davies-harte")
    rows = [
        ["mean (bytes/frame)", f"{trace.frame_bytes.mean():.0f}", f"{synthetic.mean():.0f}"],
        ["std (bytes/frame)", f"{trace.frame_bytes.std():.0f}", f"{synthetic.std():.0f}"],
        ["peak/mean", f"{trace.frame_bytes.max() / trace.frame_bytes.mean():.2f}",
         f"{synthetic.max() / synthetic.mean():.2f}"],
    ]
    print()
    print(format_table(["statistic", "trace", "model"], rows, title="Trace vs model traffic:"))

    # 4. Capacity planning: five multiplexed sources, 100 ms of buffer,
    #    overall loss at most 1e-4.
    n_sources = 5
    lags = random_lags(n_sources, trace.n_frames, min_separation=1000, rng=rng)
    arrivals = multiplex_series(trace.frame_bytes, lags)
    slot_seconds = 1.0 / trace.frame_rate
    buffer_bytes = 0.100 * arrivals.mean() / slot_seconds  # ~100 ms at mean rate
    capacity = required_capacity([arrivals], buffer_bytes, target_loss=1e-4)
    per_source_mbps = capacity / n_sources * 8 / slot_seconds / 1e6
    mean_mbps = trace.mean_rate_bps / 1e6
    peak_mbps = trace.peak_rate_bps / 1e6
    print(
        f"\nCapacity planning for {n_sources} multiplexed sources "
        f"(buffer ~100 ms, loss <= 1e-4):\n"
        f"  required capacity per source: {per_source_mbps:.2f} Mb/s\n"
        f"  (single-source mean rate: {mean_mbps:.2f} Mb/s, peak: {peak_mbps:.2f} Mb/s)\n"
        f"  multiplexing recovers "
        f"{(peak_mbps - per_source_mbps) / (peak_mbps - mean_mbps):.0%} "
        f"of the peak-to-mean gap."
    )


if __name__ == "__main__":
    main()
