#!/usr/bin/env python3
"""Kill-and-resume experiment orchestration with repro.resilience.

The full reproduction campaign is 25 experiments; before the
resilience layer one crash at experiment 15 threw away everything.
This demo runs the quick campaign under the supervisor three times:

1. a child process starts the campaign with a checkpoint directory and
   is SIGKILLed as soon as a few experiments have been persisted --
   the crudest possible failure, nothing gets to clean up;
2. the campaign is *resumed* from the same directory: completed
   experiments reload from digest-verified checkpoints and only the
   remainder runs;
3. the same campaign runs under an injected fault plan whose first
   attempts fail with transient errors -- bounded retry on rotated
   seeds completes all 25, and the failure report lists exactly the
   injected faults.

Run:  python examples/resilient_campaign.py [--checkpoints 3]
"""

import argparse
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

from repro.experiments.runner import run_all
from repro.resilience.faults import FaultPlan, TransientFault


def parse_args():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--checkpoints", type=int, default=3,
                        help="checkpoints to wait for before the kill")
    return parser.parse_args()


def kill_mid_campaign(ckpt_dir, wanted):
    """Start the quick campaign in a child and SIGKILL it mid-run."""
    child = subprocess.Popen(
        [
            sys.executable, "-c",
            "from repro.experiments.runner import run_all\n"
            f"run_all(quick=True, checkpoint_dir={str(ckpt_dir)!r})\n",
        ],
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
    )
    deadline = time.monotonic() + 120.0
    while time.monotonic() < deadline:
        done = [p.stem for p in ckpt_dir.glob("*.json") if p.stem != "campaign"]
        if len(done) >= wanted or child.poll() is not None:
            break
        time.sleep(0.05)
    child.send_signal(signal.SIGKILL)
    child.wait()
    return sorted(p.stem for p in ckpt_dir.glob("*.json") if p.stem != "campaign")


def main():
    args = parse_args()
    workdir = Path(tempfile.mkdtemp(prefix="resilient_campaign_"))
    ckpt = workdir / "checkpoints"

    print("=== 1. Campaign killed mid-run (SIGKILL, no cleanup) ===")
    completed = kill_mid_campaign(ckpt, args.checkpoints)
    print(f"child killed; {len(completed)} experiment(s) survived on disk: "
          f"{', '.join(completed)}")

    print()
    print("=== 2. Resume from the checkpoint directory ===")
    start = time.perf_counter()
    report = run_all(quick=True, checkpoint_dir=ckpt, resume=True, report=True)
    elapsed = time.perf_counter() - start
    print(f"campaign completed in {elapsed:.1f}s: "
          f"{len(report.results)} results, {len(report.resumed)} resumed "
          f"from digest-verified checkpoints")
    for line in report.summary_lines():
        print(line)

    print()
    print("=== 3. Injected transient faults, bounded retry ===")
    plan = FaultPlan(seed=11)
    for eid in ("table2", "fig05", "fig11"):
        plan.fail_at(f"experiment:{eid}", call=1, exc=TransientFault)
    report = run_all(quick=True, fault_plan=plan, max_retries=2,
                     report=True, sleep=lambda s: None)
    print(f"all {len(report.results)} experiments completed despite "
          f"{len(report.attempt_failures)} injected first-attempt failure(s)")
    for line in report.summary_lines():
        print(line)
    assert report.ok
    assert sorted(f.experiment_id for f in report.attempt_failures) == sorted(
        ("table2", "fig05", "fig11")
    )
    print()
    print("failure report matches the injected fault plan exactly.")


if __name__ == "__main__":
    main()
