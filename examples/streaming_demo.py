#!/usr/bin/env python3
"""Constant-memory traffic generation with repro.stream.

The paper generated its 171,000-frame synthetic trace in 10 CPU-hours
because exact fARIMA synthesis is O(n^2) and holds the whole path.
This demo builds the same Gamma/Pareto self-similar traffic as a
*stream*: fixed-size chunks flow generate -> transform -> statistics ->
queue, so the memory bound is one chunk no matter how long the run.

It shows the three pieces working together:

1. an approximate FFT fGn source (Paxson blocks, cross-faded seams),
2. the chunkwise marginal transform to the paper's Table 2 hybrid,
3. one-pass validation (moments + variance-time Hurst) and a
   bit-exact streaming FIFO queue, all folded while the chunks fly by.

Run:  python examples/streaming_demo.py [--samples 2000000]
"""

import argparse
import time
import tracemalloc

import numpy as np

from repro.distributions.hybrid import GammaParetoHybrid
from repro.stream import (
    BlockFGNSource,
    OnlineMoments,
    Stream,
    StreamingQueue,
    StreamingVarianceTime,
)


def parse_args():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--samples", type=int, default=2_000_000,
                        help="frames to stream (default 2M; try 10M+)")
    parser.add_argument("--chunk", type=int, default=65_536,
                        help="chunk size = the memory bound")
    parser.add_argument("--hurst", type=float, default=0.8)
    return parser.parse_args()


def main():
    args = parse_args()
    marginal = GammaParetoHybrid(27_791.0, 6_254.0, 12.0)  # Table 2, frame level
    mean_rate = marginal.mean()

    source = BlockFGNSource(args.hurst, block_size=args.chunk, overlap=1024)
    moments = OnlineMoments()
    vt = StreamingVarianceTime()
    # A deliberately tight link: 10% headroom, 20 mean-frames of buffer.
    queue = StreamingQueue(1.1 * mean_rate, 20.0 * mean_rate)

    stream = (
        Stream.from_source(source, args.samples, args.chunk, rng=np.random.default_rng(0))
        .transform(marginal, method="table")
    )

    print(f"Streaming {args.samples:,} frames in {args.chunk:,}-sample chunks "
          f"(H = {args.hurst}) ...")
    tracemalloc.start()
    baseline, _ = tracemalloc.get_traced_memory()
    start = time.perf_counter()
    stream.drain(moments, vt, queue)
    elapsed = time.perf_counter() - start
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    full_mb = 8.0 * args.samples / 1e6
    print(f"  done in {elapsed:.2f}s ({args.samples / elapsed:,.0f} frames/s)")
    print(f"  traced allocation peak: {(peak - baseline) / 1e6:.1f} MB "
          f"(materialized series would be {full_mb:.0f} MB)")

    print("\nOne-pass marginal statistics:")
    print(f"  mean {moments.mean:,.0f} B/frame (model: {mean_rate:,.0f})")
    print(f"  std  {moments.std:,.0f} B/frame")
    print(f"  min/max {moments.minimum:,.0f} / {moments.maximum:,.0f}")

    result = vt.hurst()
    print(f"\nStreaming variance-time Hurst estimate: {result.hurst:.3f} "
          f"(nominal {args.hurst})")

    q = queue.result()
    print(f"\nStreaming FIFO queue at 10% capacity headroom, "
          f"{20.0:.0f} mean-frames of buffer:")
    print(f"  offered {q.total_bytes / 1e9:.2f} GB, loss rate {q.loss_rate:.2e}, "
          f"peak backlog {q.peak_backlog / mean_rate:.1f} mean-frames")
    print("\n(Every number above came from a single pass; the queue result is")
    print(" bit-for-bit what simulate_queue would report on the full series.)")


if __name__ == "__main__":
    main()
