#!/usr/bin/env python3
"""Multi-hop queueing of self-similar video with repro.net.

The paper sizes a single finite buffer for VBR video (Fig. 14); this
demo pushes the same calibrated traffic through a 3-hop tandem and
shows what the network layer adds:

1. the anchor: a one-hop FIFO topology reproduces the verified
   single-queue simulator bit for bit -- same loss, same backlog;
2. a tapered 3-hop tandem, where each downstream link is slightly
   slower: per-hop utilization, loss and delay, and how much shared
   buffer the *path* needs compared with the single queue;
3. scheduling disciplines: the same two flows (video + background)
   through FIFO, strict priority and weighted fair queueing, and what
   each discipline does to the video flow's loss;
4. a capacity sweep fanned out over worker processes -- results are
   identical at every worker count.

Run:  python examples/tandem_queue.py [--frames 4000] [--workers 2]
"""

import argparse

import numpy as np

from repro.net import run_topology, sweep_topologies
from repro.simulation.queue import simulate_queue
from repro.video.starwars import synthesize_starwars_trace


def parse_args():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--frames", type=int, default=4_000, help="trace length")
    parser.add_argument("--workers", type=int, default=2,
                        help="worker processes for the sweep")
    return parser.parse_args()


def tandem_spec(series, capacities, buffer_bytes, flows=None):
    names = "abcdefgh"[: len(capacities) + 1]
    return {
        "slots": len(series),
        "nodes": [{"name": n, "buffer_bytes": buffer_bytes} for n in names],
        "links": [
            {"src": names[i], "dst": names[i + 1], "capacity_per_slot": float(c)}
            for i, c in enumerate(capacities)
        ],
        "flows": flows or [{
            "name": "video", "path": list(names),
            "source": {"kind": "array", "values": list(series)},
        }],
    }


def main():
    args = parse_args()
    trace = synthesize_starwars_trace(n_frames=args.frames, seed=7,
                                      with_slices=False)
    series = trace.frame_bytes.tolist()
    mean = float(np.mean(trace.frame_bytes))
    capacity = 1.15 * mean
    buffer_bytes = 6.0 * mean

    # --- 1. One hop IS the paper's single queue ------------------------
    ref = simulate_queue(trace.frame_bytes, capacity, buffer_bytes)
    one_hop = run_topology(tandem_spec(series, [capacity], buffer_bytes))
    port = one_hop["ports"]["a->b"]
    assert port["lost_bytes"] == ref.lost_bytes
    assert port["final_backlog"] == ref.final_backlog
    print("1-hop FIFO vs simulate_queue: loss and backlog identical "
          f"({port['lost_bytes']:.0f} B lost, bit-for-bit)")

    # --- 2. A tapered 3-hop tandem -------------------------------------
    taper = 0.95
    caps = [capacity * taper**i for i in range(3)]
    tandem = run_topology(tandem_spec(series, caps, buffer_bytes))
    print("\n3-hop tandem (each link 5% slower than the last):")
    for name, p in tandem["ports"].items():
        print(f"  {name}: util {p['utilization']:.3f}, "
              f"loss {p['loss_rate']:.2e}, "
              f"mean delay {p['mean_delay_slots']:.2f} slots")
    flow = tandem["flows"]["video"]
    print(f"  end-to-end: {flow['loss_rate']:.2e} loss, "
          f"{flow['mean_latency_slots']:.1f} slots mean latency")

    # --- 3. Disciplines under contention -------------------------------
    rng = np.random.default_rng(3)
    background = np.maximum(
        rng.normal(0.5 * mean, 0.2 * mean, size=args.frames), 0.0
    ).tolist()
    print("\nVideo + background through one congested hop:")
    for disc in ("fifo", "priority", "wfq"):
        spec = tandem_spec(series, [1.4 * mean], buffer_bytes)
        spec["nodes"][0]["discipline"] = disc
        spec["flows"] = [
            {"name": "video", "path": ["a", "b"], "priority": 0, "weight": 3.0,
             "source": {"kind": "array", "values": series}},
            {"name": "bg", "path": ["a", "b"], "priority": 1, "weight": 1.0,
             "source": {"kind": "array", "values": background}},
        ]
        result = run_topology(spec)
        video = result["flows"]["video"]["loss_rate"]
        bg = result["flows"]["bg"]["loss_rate"]
        print(f"  {disc:8s} video loss {video:.2e}, background loss {bg:.2e}")
    print("  (priority and wfq shield the video class; FIFO cannot)")

    # --- 4. Deterministic capacity sweep -------------------------------
    factors = (1.1, 1.2, 1.3, 1.4)
    specs = [tandem_spec(series, [f * mean] * 2, buffer_bytes) for f in factors]
    serial = sweep_topologies(specs, workers=1)
    parallel = sweep_topologies(specs, workers=args.workers)
    assert all(a["ports"] == b["ports"] for a, b in zip(serial, parallel))
    print(f"\n2-hop capacity sweep at workers=1 and workers={args.workers}: "
          "identical results")
    for f, result in zip(factors, serial):
        flow = result["flows"]["video"]
        print(f"  capacity {f:.1f}x mean: end-to-end loss {flow['loss_rate']:.2e}")


if __name__ == "__main__":
    main()
