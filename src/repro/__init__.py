"""Reproduction of Garrett & Willinger (SIGCOMM 1994).

``repro`` is a library for the analysis, modeling and generation of
self-similar variable-bit-rate (VBR) video traffic.  It reproduces, from
scratch, every system described in the paper:

- ``repro.distributions`` -- Normal / Gamma / Lognormal / Pareto models
  and the hybrid Gamma/Pareto marginal distribution with a slope-matched
  splice point.
- ``repro.core`` -- fractional ARIMA(0, d, 0) noise generation
  (Hosking's exact algorithm and a fast Davies-Harte generator), the
  Gaussian-to-arbitrary-marginal transform, and the four-parameter
  Garrett-Willinger VBR video source model together with the baseline
  models the paper compares against.
- ``repro.analysis`` -- summary statistics, marginal/tail analysis,
  autocorrelation, periodograms, block aggregation, and Hurst-parameter
  estimation (variance-time plots, R/S pox diagrams, Whittle's MLE) plus
  LRD-aware confidence intervals.
- ``repro.video`` -- an intraframe DCT / run-length / Huffman video
  codec, a procedural movie generator, and a calibrated synthesizer for
  a Star-Wars-like two-hour VBR trace.
- ``repro.simulation`` -- a finite-buffer FIFO queueing simulator with
  N-source statistical multiplexing, loss metrics and Q-C resource
  trade-off machinery.
- ``repro.stream`` -- a constant-memory streaming counterpart of the
  whole pipeline: chunked noise sources (resumable Hosking, block-FFT
  fGn), chunkwise marginal transform, lagged multiplexing, an online
  FIFO queue that matches the batch simulator bit-for-bit, and
  one-pass moment/Hurst estimators.
- ``repro.experiments`` -- one module per table and figure of the
  paper's evaluation.
"""

from repro.core.model import VBRVideoModel
from repro.distributions.hybrid import GammaParetoHybrid
from repro.video.trace import VBRTrace

__all__ = ["VBRVideoModel", "GammaParetoHybrid", "VBRTrace"]

__version__ = "1.0.0"
