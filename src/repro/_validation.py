"""Small argument-validation helpers shared across the library.

Every public entry point in :mod:`repro` validates its arguments eagerly
and raises :class:`ValueError` / :class:`TypeError` with a message that
names the offending parameter.  Centralizing the checks keeps the error
messages uniform and the call sites short.
"""

from __future__ import annotations

import numbers

import numpy as np

__all__ = [
    "require_positive",
    "require_nonnegative",
    "require_in_open_interval",
    "require_in_closed_interval",
    "require_positive_int",
    "as_1d_float_array",
    "require_probability",
]


def require_positive(value, name):
    """Raise ``ValueError`` unless ``value`` is a finite number > 0."""
    if not isinstance(value, numbers.Real) or isinstance(value, bool):
        raise TypeError(f"{name} must be a real number, got {value!r}")
    if not np.isfinite(value) or value <= 0:
        raise ValueError(f"{name} must be positive and finite, got {value!r}")
    return float(value)


def require_nonnegative(value, name):
    """Raise ``ValueError`` unless ``value`` is a finite number >= 0."""
    if not isinstance(value, numbers.Real) or isinstance(value, bool):
        raise TypeError(f"{name} must be a real number, got {value!r}")
    if not np.isfinite(value) or value < 0:
        raise ValueError(f"{name} must be non-negative and finite, got {value!r}")
    return float(value)


def require_in_open_interval(value, name, low, high):
    """Raise ``ValueError`` unless ``low < value < high``."""
    if not isinstance(value, numbers.Real) or isinstance(value, bool):
        raise TypeError(f"{name} must be a real number, got {value!r}")
    if not (low < value < high):
        raise ValueError(f"{name} must lie in the open interval ({low}, {high}), got {value!r}")
    return float(value)


def require_in_closed_interval(value, name, low, high):
    """Raise ``ValueError`` unless ``low <= value <= high``."""
    if not isinstance(value, numbers.Real) or isinstance(value, bool):
        raise TypeError(f"{name} must be a real number, got {value!r}")
    if not (low <= value <= high):
        raise ValueError(f"{name} must lie in the interval [{low}, {high}], got {value!r}")
    return float(value)


def require_positive_int(value, name):
    """Raise unless ``value`` is an integer >= 1; returns it as ``int``."""
    if isinstance(value, bool) or not isinstance(value, numbers.Integral):
        raise TypeError(f"{name} must be an integer, got {value!r}")
    if value < 1:
        raise ValueError(f"{name} must be >= 1, got {value!r}")
    return int(value)


def require_probability(value, name):
    """Raise unless ``value`` is a number in [0, 1]."""
    return require_in_closed_interval(value, name, 0.0, 1.0)


def as_1d_float_array(data, name="data", min_length=1):
    """Coerce ``data`` to a 1-D float64 numpy array and validate it.

    Raises ``ValueError`` for empty input, wrong dimensionality, or
    non-finite entries.
    """
    arr = np.asarray(data, dtype=float)
    if arr.ndim != 1:
        raise ValueError(f"{name} must be one-dimensional, got shape {arr.shape}")
    if arr.size < min_length:
        raise ValueError(f"{name} must contain at least {min_length} value(s), got {arr.size}")
    if not np.all(np.isfinite(arr)):
        raise ValueError(f"{name} must not contain NaN or infinite values")
    return arr
