"""Closed-loop dynamic bandwidth/buffer allocation over competing VBR users.

The control plane the 1994 paper could not run: heterogeneous
self-similar video users share one ``(C, Q)`` pool, and an allocator
re-partitions it every epoch from online observations.  See
``docs/allocation.md`` for the contract, the epoch model and the
determinism rules.
"""

from repro.alloc.allocators import (
    ALLOCATORS,
    HarvestAllocator,
    OracleAllocator,
    StaticAllocator,
    TradeAllocator,
    make_allocator,
)
from repro.alloc.base import (
    Allocation,
    AllocationError,
    AllocatorBase,
    EpochObservation,
    exact_sum,
    partition_exact,
    settle_residue,
)
from repro.alloc.fleet import (
    FleetResult,
    FleetSpec,
    UserSpec,
    demo_fleet,
    simulate_fleet,
    user_epoch_seed,
)

__all__ = [
    "ALLOCATORS",
    "Allocation",
    "AllocationError",
    "AllocatorBase",
    "EpochObservation",
    "FleetResult",
    "FleetSpec",
    "HarvestAllocator",
    "OracleAllocator",
    "StaticAllocator",
    "TradeAllocator",
    "UserSpec",
    "demo_fleet",
    "exact_sum",
    "make_allocator",
    "partition_exact",
    "settle_residue",
    "simulate_fleet",
    "user_epoch_seed",
]
