"""The four allocation policies: static, oracle, harvest, trade.

The family mirrors the resource-allocation ladder of the spirit
allocator suite: a do-nothing baseline, an omniscient upper bound and
two causal policies that move grants between users -- one centralized
(harvest a pot from over-served users, grant it to QoS violators) and
one decentralized (direct pairwise trades between the neediest and the
most comfortable user).

Every policy is a pure function of ``(constructor args, observation
stream, epoch seed)``.  None of them draws from a global RNG, reads the
clock or iterates a dict: rankings break ties by user index, masks are
numpy boolean arrays, and the only randomness permitted is an explicit
``default_rng(epoch_seed)`` (none of the current four needs one -- the
seed is threaded so future stochastic policies inherit determinism for
free).

Conservation under reallocation is the delicate part.  ``c - h + g``
re-rounds at every element, so after a harvest or a trade the float sum
can drift a few ulps off the total; :func:`_absorb_residue` pushes the
residue back into the *non-violating* side so that a user currently
violating its QoS target never loses a single bit of grant to
compensation -- that exactness is what the tier-1 monotonicity property
pins.
"""

from __future__ import annotations

import math

import numpy as np

from repro.alloc.base import (
    Allocation,
    AllocationError,
    AllocatorBase,
    exact_sum,
    partition_exact,
    settle_residue,
)

__all__ = [
    "StaticAllocator",
    "OracleAllocator",
    "HarvestAllocator",
    "TradeAllocator",
    "ALLOCATORS",
    "make_allocator",
]


def _absorb_residue(values, total, eligible):
    """Settle the float residue into non-violating entries only (in place).

    Restricting :func:`repro.alloc.base.settle_residue` to users meeting
    their QoS target is what lets the harvest policy promise a violating
    user's grant never decreases, not even by a compensation ulp.  Only
    strictly positive shares participate (a zero share nudged by a
    negative ulp would turn an eligible grant infeasible).

    When the eligible lattice alone cannot express the target (a
    perpetual round-to-even tie -- possible when the only donors live in
    ``total``'s own binade), the fallback completes with the two moves
    the monotonicity contract *does* permit: shaving an eligible share
    downward, and growing a protected share upward.  A protected user's
    grant still never decreases.
    """
    eligible = np.asarray(eligible, dtype=bool)
    keep = np.flatnonzero(eligible & (values > 0.0))
    order = keep[np.argsort(values[keep], kind="stable")[::-1]]
    try:
        return settle_residue(values, total, candidates=order)
    except AllocationError:
        pass
    # The tie can only be broken by a move that is *not* a whole ulp of
    # ``total`` -- a single nextafter step on a protected share from a
    # lower binade (a strictly finer lattice; at most one share in the
    # whole array can occupy total's own binade, so one almost always
    # exists).  Bulk residue adds land back on the tie, so when a full
    # bulk cycle repeats the same positive residue, take one fine step.
    fine = [int(j) for j in np.flatnonzero(~eligible)
            if math.ulp(float(values[j])) < math.ulp(float(total))]
    grow = max(fine, key=lambda j: values[j], default=None)
    shave = int(order[0]) if order.size else None
    last_positive = None
    for _ in range(256):
        err = total - exact_sum(values)
        if err == 0.0:
            return values
        if err < 0.0:
            if shave is None:  # pragma: no cover - defensive
                break
            values[shave] = np.nextafter(values[shave], -np.inf)
            continue
        if grow is None:  # pragma: no cover - defensive
            break
        if err == last_positive:
            values[grow] = np.nextafter(values[grow], np.inf)
        else:
            bumped = values[grow] + err
            values[grow] = bumped if bumped > values[grow] else np.nextafter(values[grow], np.inf)
        last_positive = err
    raise AllocationError(  # pragma: no cover - defensive
        f"restricted residue settling failed (err={total - exact_sum(values)})"
    )


class StaticAllocator(AllocatorBase):
    """Weight-proportional fixed partition -- the open-loop baseline.

    Whatever happens to the fleet, every epoch reissues the initial
    allocation.  This is the paper's own multiplexing regime (a fixed
    (C, Q) share per user) and the yardstick the closed-loop policies
    must beat.
    """

    name = "static"

    def decide(self, epoch_index, observation, current, epoch_seed):
        return current


class OracleAllocator(AllocatorBase):
    """Clairvoyant upper bound: allocates against *next* epoch's true trace.

    The fleet hands the oracle the next epoch's full per-user arrival
    matrix (``requires_lookahead``).  The oracle seeds capacity
    proportional to required service (carried backlog plus incoming
    bytes), then *rehearses* the epoch: it simulates every user's queue
    at the candidate grant through the canonical slot-fluid kernel,
    sizes buffers to the observed zero-clamp peak need, and moves
    capacity from users that would lose nothing (keeping their average
    required rate plus margin) to users that would lose bytes,
    proportional to their rehearsed losses.  ``refine_rounds`` such
    passes give a grant no causal policy can match for information --
    the fleet-total loss lower bound pinned by the dominance property.
    """

    name = "oracle"
    requires_lookahead = True

    def __init__(self, *args, refine_rounds=4, reclaim_fraction=0.6, **kwargs):
        super().__init__(*args, **kwargs)
        if refine_rounds < 0:
            raise ValueError(f"refine_rounds must be >= 0, got {refine_rounds}")
        self.refine_rounds = int(refine_rounds)
        self.reclaim_fraction = float(reclaim_fraction)

    def _rehearse(self, arrivals, backlog, capacity, buffer):
        """Simulate every user's next epoch at the candidate grant.

        Returns ``(lost, peak_need)``: rehearsed lost bytes under the
        candidate ``(C_i, Q_i)`` and the zero-clamp peak backlog (the
        buffer that would have avoided all loss at that capacity).
        """
        from repro.simulation.slotfluid import run_slots

        n = len(capacity)
        lost = np.empty(n)
        peak_need = np.empty(n)
        for i in range(n):
            state = (float(backlog[i]), 0.0, 0.0, 0.0)
            _, lost[i], _, _ = run_slots(
                arrivals[i], float(capacity[i]), float(buffer[i]), state=state
            )
            _, _, peak_need[i], _ = run_slots(
                arrivals[i], float(capacity[i]), np.inf, state=state
            )
        return lost, peak_need

    def decide(self, epoch_index, observation, current, epoch_seed):
        arrivals = observation.lookahead_arrivals
        if arrivals is None:
            # Final epoch: nothing left to allocate for.
            return current
        slots = float(observation.epoch_slots)
        backlog = observation.backlog
        need_rate = (backlog + arrivals.sum(axis=1)) / slots
        capacity = partition_exact(need_rate, self.total_capacity,
                                   floor=self.capacity_floor)
        buffer = partition_exact(arrivals.max(axis=1) + backlog,
                                 self.total_buffer)
        for _ in range(self.refine_rounds):
            lost, peak_need = self._rehearse(arrivals, backlog, capacity, buffer)
            buffer = partition_exact(np.maximum(peak_need, 1.0), self.total_buffer)
            if not np.any(lost > 0.0):
                break
            keep = np.maximum(self.capacity_floor, need_rate)
            headroom = np.maximum(0.0, capacity - keep)
            donors = (lost == 0.0) & (headroom > 0.0)
            take = np.where(donors, self.reclaim_fraction * headroom, 0.0)
            pot = float(np.sum(take))
            if pot <= 0.0:
                break
            capacity -= take
            capacity += partition_exact(lost, pot)
            settle_residue(capacity, self.total_capacity)
        return Allocation(capacity=capacity, buffer=buffer)


class HarvestAllocator(AllocatorBase):
    """Reclaim grants from over-served users, redistribute to violators.

    Each epoch: users whose loss rate exceeds ``qos_loss`` are
    *violators*; users meeting their target with spare headroom
    (utilization below ``util_threshold``) are *donors*.  A fraction
    ``harvest_fraction`` of each donor's headroom above both the floor
    and its own demand is harvested into a pot and granted to violators
    in proportion to their lost bytes; buffers are harvested the same
    way against peak-backlog occupancy.  A violator is never a donor and
    never funds the float-residue compensation, so its grant is
    non-decreasing -- the monotonicity invariant.
    """

    name = "harvest"

    def __init__(self, *args, harvest_fraction=0.25, util_threshold=0.9, **kwargs):
        super().__init__(*args, **kwargs)
        if not 0.0 < harvest_fraction <= 1.0:
            raise ValueError(f"harvest_fraction must be in (0, 1], got {harvest_fraction}")
        if not 0.0 < util_threshold < 1.0:
            raise ValueError(f"util_threshold must be in (0, 1), got {util_threshold}")
        self.harvest_fraction = float(harvest_fraction)
        self.util_threshold = float(util_threshold)

    def decide(self, epoch_index, observation, current, epoch_seed):
        slots = float(observation.epoch_slots)
        loss = observation.loss_rate()
        violating = loss > self.qos_loss
        weight = np.where(violating, observation.lost, 0.0)
        if not np.any(weight > 0.0):
            return current

        capacity = current.capacity.copy()
        buffer = current.buffer.copy()

        # Capacity: a donor keeps max(floor, demand / util_threshold).
        demand_rate = observation.offered / slots
        keep_c = np.maximum(self.capacity_floor, demand_rate / self.util_threshold)
        headroom_c = np.maximum(0.0, capacity - keep_c)
        donors_c = (~violating) & (headroom_c > 0.0)
        take_c = np.where(donors_c, self.harvest_fraction * headroom_c, 0.0)
        pot_c = float(np.sum(take_c))
        if pot_c > 0.0:
            capacity -= take_c
            capacity += partition_exact(weight, pot_c)
            _absorb_residue(capacity, self.total_capacity, ~violating)

        # Buffer: a donor keeps its observed peak occupancy with margin.
        keep_q = observation.peak_backlog / self.util_threshold
        headroom_q = np.maximum(0.0, buffer - keep_q)
        donors_q = (~violating) & (headroom_q > 0.0)
        take_q = np.where(donors_q, self.harvest_fraction * headroom_q, 0.0)
        pot_q = float(np.sum(take_q))
        if pot_q > 0.0:
            buffer -= take_q
            buffer += partition_exact(weight, pot_q)
            _absorb_residue(buffer, self.total_buffer, ~violating)

        return Allocation(capacity=capacity, buffer=buffer)


class TradeAllocator(AllocatorBase):
    """Direct pairwise trades between the neediest and the most comfortable.

    Users are ranked by (loss rate, utilization) -- descending for need,
    ascending for comfort, index-ascending on ties so the matching is a
    pure function of the observation.  The k-th neediest violator is
    paired with the k-th most comfortable non-violator and the pair
    trades ``trade_fraction`` of the donor's capacity headroom (and
    buffer headroom) -- but only when the trade improves both sides'
    projected utility: the donor must retain enough grant to cover its
    own demand at ``util_threshold``, the receiver must actually be
    violating.  Up to ``max_trades`` pairs trade per epoch, so relief
    spreads more slowly than the harvest pot but without any central
    accounting.
    """

    name = "trade"

    def __init__(self, *args, trade_fraction=0.5, util_threshold=0.9,
                 max_trades=None, **kwargs):
        super().__init__(*args, **kwargs)
        if not 0.0 < trade_fraction <= 1.0:
            raise ValueError(f"trade_fraction must be in (0, 1], got {trade_fraction}")
        if not 0.0 < util_threshold < 1.0:
            raise ValueError(f"util_threshold must be in (0, 1), got {util_threshold}")
        self.trade_fraction = float(trade_fraction)
        self.util_threshold = float(util_threshold)
        self.max_trades = max_trades

    def decide(self, epoch_index, observation, current, epoch_seed):
        n = self.n_users
        slots = float(observation.epoch_slots)
        loss = observation.loss_rate()
        violating = loss > self.qos_loss
        if not np.any(violating):
            return current

        capacity = current.capacity.copy()
        buffer = current.buffer.copy()
        util = observation.offered / (capacity * slots)
        index = np.arange(n)
        # np.lexsort keys run last-key-primary; ties fall through to the
        # user index, making both rankings total orders.
        needy = np.lexsort((index, -util, -loss))
        comfy = np.lexsort((index, util, loss))

        demand_rate = observation.offered / slots
        keep_c = np.maximum(self.capacity_floor, demand_rate / self.util_threshold)
        keep_q = observation.peak_backlog / self.util_threshold

        limit = n // 2 if self.max_trades is None else int(self.max_trades)
        donors = np.zeros(n, dtype=bool)
        traded = False
        for k in range(limit):
            receiver = int(needy[k])
            donor = int(comfy[k])
            if receiver == donor or not violating[receiver] or violating[donor]:
                break
            delta_c = self.trade_fraction * max(0.0, capacity[donor] - keep_c[donor])
            if delta_c > 0.0:
                capacity[donor] -= delta_c
                capacity[receiver] += delta_c
                donors[donor] = True
                traded = True
            delta_q = self.trade_fraction * max(0.0, buffer[donor] - keep_q[donor])
            if delta_q > 0.0:
                buffer[donor] -= delta_q
                buffer[receiver] += delta_q
                donors[donor] = True
                traded = True
        if not traded:
            return current
        _absorb_residue(capacity, self.total_capacity, ~violating)
        _absorb_residue(buffer, self.total_buffer, ~violating)
        return Allocation(capacity=capacity, buffer=buffer)


ALLOCATORS = {
    StaticAllocator.name: StaticAllocator,
    OracleAllocator.name: OracleAllocator,
    HarvestAllocator.name: HarvestAllocator,
    TradeAllocator.name: TradeAllocator,
}


def make_allocator(name, total_capacity, total_buffer, n_users, **kwargs):
    """Instantiate a registered allocator by name (``ValueError`` otherwise)."""
    try:
        cls = ALLOCATORS[name]
    except KeyError:
        raise ValueError(
            f"unknown allocator {name!r}; choose from {sorted(ALLOCATORS)}"
        ) from None
    return cls(total_capacity, total_buffer, n_users, **kwargs)
