"""The allocator contract: observe a fleet epoch, emit a feasible partition.

The closed-loop question the 1994 paper could not run: N *heterogeneous*
VBR users share one link of capacity ``C`` bytes/slot and one buffer pool
of ``Q`` bytes, and a control plane re-partitions ``(C, Q)`` into per-user
grants ``(C_i, Q_i)`` once per *epoch* (a fixed block of slots).  An
allocator sees only what a real controller would see -- last epoch's
per-user offered bytes, losses, backlogs and peaks -- and must return a
partition that is

* **conserving** -- ``exact_sum(C_i) == C`` and ``exact_sum(Q_i) == Q``
  *exactly*, in IEEE double arithmetic, where :func:`exact_sum` is the
  correctly-rounded (``math.fsum``) sum and :func:`partition_exact`
  repairs division-rounding residue with a compensation loop, and
* **feasible** -- every grant finite, capacities strictly positive,
  buffers non-negative.

Both invariants are enforced on *every* epoch by :meth:`AllocatorBase.step`,
not merely asserted in tests: a violating allocator raises
:class:`AllocationError` at the decision point, so a buggy policy cannot
silently leak capacity into (or out of) the fleet.

Determinism is part of the contract too.  An allocator decision may
depend only on its constructor arguments, the observation stream and the
sha256-derived ``epoch_seed`` handed to :meth:`AllocatorBase.step` --
never on wall clock, worker identity or dict iteration order.  That is
what makes the fleet campaigns bit-identical at any worker count.
"""

from __future__ import annotations

from dataclasses import dataclass

import math

import numpy as np

from repro._validation import require_positive

__all__ = [
    "AllocationError",
    "Allocation",
    "EpochObservation",
    "AllocatorBase",
    "exact_sum",
    "partition_exact",
    "settle_residue",
]


class AllocationError(ValueError):
    """An allocator emitted a non-conserving or infeasible partition."""


def exact_sum(values):
    """The canonical conservation sum: ``math.fsum`` over the grants.

    ``np.sum``'s pairwise result depends on memory order, so "the sum"
    of a partition is ill-defined under it; ``math.fsum`` is the
    correctly-rounded sum of the exact real values, order-independent
    and reproducible everywhere.  All conservation contracts in
    ``repro.alloc`` -- :meth:`Allocation.validate`, the property-test
    wall, the campaign digests -- compare against this sum.
    """
    arr = np.asarray(values, dtype=float)
    return math.fsum(arr.tolist())


def partition_exact(weights, total, floor=0.0):
    """Split ``total`` proportionally to ``weights`` with an *exact* float sum.

    Every share is at least ``floor``; the remainder ``total - n * floor``
    is distributed proportionally to ``weights`` (equal split when all
    weights vanish).  Proportional division rounds, so the naive shares
    miss ``total`` by a few ulps -- enough to leak capacity over
    thousands of epochs.  :func:`settle_residue` feeds the residue back
    into the shares until :func:`exact_sum` reproduces ``total``
    bit-for-bit (one or two passes in practice).

    Returns a fresh ``float64`` array ``out`` with
    ``exact_sum(out) == float(total)`` exactly, ``out >= 0``, and every
    share within a compensation ulp of ``>= floor``.
    """
    w = np.asarray(weights, dtype=float)
    if w.ndim != 1 or w.size == 0:
        raise ValueError("weights must be a non-empty 1-D array")
    if not np.all(np.isfinite(w)) or np.any(w < 0.0):
        raise ValueError("weights must be finite and non-negative")
    total = float(require_positive(total, "total"))
    floor = float(floor)
    if floor < 0.0:
        raise ValueError(f"floor must be non-negative, got {floor}")
    n = w.size
    if floor * n > total:
        raise ValueError(
            f"floor {floor} infeasible: n * floor = {floor * n} exceeds total {total}"
        )
    spread = total - floor * n
    mass = float(np.sum(w))
    if mass > 0.0:
        out = floor + spread * (w / mass)
    else:
        out = np.full(n, floor + spread / n)
    settle_residue(out, total)
    if np.any(out < 0.0):
        # Compensation can push a zero share a few ulps negative; clip
        # and re-settle (the clip moves the sum by those same ulps).
        np.maximum(out, 0.0, out=out)
        settle_residue(out, total)
    return out


def settle_residue(values, total, candidates=None):
    """Nudge ``values`` in place until ``exact_sum(values) == total``.

    Each pass feeds the residue ``total - exact_sum(values)`` into one
    entry, cycling through ``candidates`` (all indices by default,
    largest share first).  Because :func:`exact_sum` is the correctly
    rounded real sum -- no intermediate quantization -- each absorption
    shrinks the residue toward the rounding error of a single addition,
    and some candidate's magnitude always admits the final sub-ulp
    nudge; the loop converges in a couple of passes.  (Settling against
    ``np.sum`` instead is genuinely impossible for some inputs: its
    pairwise tree can round every reachable sum onto a lattice that
    skips ``total`` entirely.)  Raises :class:`AllocationError` if the
    residue survives every pass, which no finite input does.
    """
    if candidates is None:
        candidates = np.argsort(values, kind="stable")[::-1]
    candidates = [int(k) for k in candidates]
    n_candidates = len(candidates)
    for attempt in range(2 * n_candidates):
        err = total - exact_sum(values)
        if err == 0.0:
            return values
        values[candidates[attempt % n_candidates]] += err
    # The full-residue feed can ping-pong when the exact real sum sits at
    # a round-to-even tie (exactly half an ulp of ``total`` away, with
    # every whole-ulp step jumping across).  Walk one candidate
    # ulp-by-ulp, *smallest share first*: a share below ``total``'s
    # binade has a strictly finer ulp, so its steps move the real sum by
    # a sub-ulp amount that breaks the tie.  At most one share can live
    # in ``total``'s own binade (it would have to exceed total/2), so
    # with two or more candidates a tie-breaking lattice always exists.
    for k in sorted(candidates, key=lambda i: abs(values[i])):
        saved = values[k]
        for _ in range(64):
            err = total - exact_sum(values)
            if err == 0.0:
                return values
            values[k] = np.nextafter(values[k], math.copysign(math.inf, err))
        values[k] = saved
    raise AllocationError(
        f"residue settling failed to converge (err={total - exact_sum(values)})"
    )


@dataclass(frozen=True)
class Allocation:
    """One epoch's partition: per-user capacity (bytes/slot) and buffer (bytes)."""

    capacity: np.ndarray
    buffer: np.ndarray

    def validate(self, total_capacity, total_buffer):
        """Raise :class:`AllocationError` unless conserving and feasible."""
        c, q = self.capacity, self.buffer
        if c.shape != q.shape or c.ndim != 1:
            raise AllocationError("capacity and buffer must be 1-D arrays of equal length")
        if not (np.all(np.isfinite(c)) and np.all(np.isfinite(q))):
            raise AllocationError("allocation contains NaN or infinite grants")
        if np.any(c <= 0.0):
            raise AllocationError("capacity grants must be strictly positive")
        if np.any(q < 0.0):
            raise AllocationError("buffer grants must be non-negative")
        if exact_sum(c) != float(total_capacity):
            raise AllocationError(
                f"capacity not conserved: sum {exact_sum(c)!r} != {float(total_capacity)!r}"
            )
        if exact_sum(q) != float(total_buffer):
            raise AllocationError(
                f"buffer not conserved: sum {exact_sum(q)!r} != {float(total_buffer)!r}"
            )
        return self


@dataclass(frozen=True)
class EpochObservation:
    """What the controller saw last epoch, one entry per user.

    ``offered``/``lost`` are bytes over the epoch, ``backlog`` the
    end-of-epoch queue and ``peak_backlog`` the epoch's high-water mark.
    ``lookahead_arrivals`` is the *next* epoch's true per-user arrival
    matrix (``n_users x epoch_slots``); the fleet passes it only to
    allocators that declare ``requires_lookahead = True`` (the oracle)
    -- causal policies never see it.
    """

    epoch_slots: int
    offered: np.ndarray
    lost: np.ndarray
    backlog: np.ndarray
    peak_backlog: np.ndarray
    lookahead_arrivals: np.ndarray | None = None

    def loss_rate(self):
        """Per-user lost/offered for the epoch (0 where nothing was offered)."""
        with np.errstate(invalid="ignore", divide="ignore"):
            rate = np.where(self.offered > 0.0, self.lost / self.offered, 0.0)
        return rate


class AllocatorBase:
    """Contract base: hold the totals, validate every emitted partition.

    Subclasses implement :meth:`decide`; callers drive :meth:`step`,
    which wraps the decision with the conservation/feasibility check.
    ``capacity_floor`` is the minimum per-user capacity grant (a
    fraction of the equal share) -- no policy may starve a user to zero,
    which would stall its queue forever and break the loss accounting.
    """

    name = "base"
    requires_lookahead = False

    def __init__(self, total_capacity, total_buffer, n_users, *,
                 qos_loss=1e-3, floor_fraction=0.05, weights=None):
        self.total_capacity = float(require_positive(total_capacity, "total_capacity"))
        self.total_buffer = float(require_positive(total_buffer, "total_buffer"))
        self.n_users = int(n_users)
        if self.n_users < 1:
            raise ValueError(f"n_users must be >= 1, got {n_users}")
        self.qos_loss = float(qos_loss)
        if not 0.0 <= self.qos_loss < 1.0:
            raise ValueError(f"qos_loss must be in [0, 1), got {qos_loss}")
        if not 0.0 <= float(floor_fraction) < 1.0:
            raise ValueError(f"floor_fraction must be in [0, 1), got {floor_fraction}")
        self.capacity_floor = float(floor_fraction) * self.total_capacity / self.n_users
        if weights is None:
            self.weights = np.ones(self.n_users)
        else:
            self.weights = np.asarray(weights, dtype=float)
            if self.weights.shape != (self.n_users,):
                raise ValueError("weights must have one entry per user")

    def initial_allocation(self):
        """The epoch-0 partition: weight-proportional, before any observation."""
        alloc = Allocation(
            capacity=partition_exact(self.weights, self.total_capacity,
                                     floor=self.capacity_floor),
            buffer=partition_exact(self.weights, self.total_buffer),
        )
        return alloc.validate(self.total_capacity, self.total_buffer)

    def decide(self, epoch_index, observation, current, epoch_seed):
        """Return the next :class:`Allocation` (subclass responsibility)."""
        raise NotImplementedError

    def step(self, epoch_index, observation, current, epoch_seed):
        """Run :meth:`decide` and enforce the contract on its output."""
        alloc = self.decide(epoch_index, observation, current, epoch_seed)
        return alloc.validate(self.total_capacity, self.total_buffer)
