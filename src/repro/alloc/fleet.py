"""Epoch-stepped fleet simulator: heterogeneous VBR users under an allocator.

The closed loop runs in epochs of ``epoch_slots`` slots.  Each epoch:

1. **Synthesize** every user's arrivals for the epoch.  Video users are
   fGn with per-class Hurst/mean/std (all users of one Hurst class are
   synthesized in a single stacked :func:`repro.core.batch.batch_fgn`
   call with explicit per-(user, epoch) sha256 seeds); CBR users send a
   constant rate; data users send seeded geometric on/off bursts.
2. **Serve** each user's queue for the epoch with its current grant
   ``(C_i, Q_i)`` via the canonical slot-fluid kernel
   (:func:`repro.simulation.slotfluid.run_slots`), carrying the backlog
   across epoch boundaries.  Users fan out over a
   :func:`repro.par.pool.pool_map` process pool in fixed-size chunks --
   per-user state is threaded explicitly, so the results are
   bit-identical at every worker count.
3. **Observe and reallocate**: the epoch's per-user offered/lost/backlog
   /peak statistics become an :class:`~repro.alloc.base.EpochObservation`
   and the allocator emits next epoch's partition, validated for
   conservation and feasibility on the spot.

Memory stays constant in the number of epochs: only one epoch's arrival
matrix is alive at a time (plus the next epoch's, generated early so the
oracle can see its true demand) and per-user statistics are running
accumulators, exactly the streaming discipline of ``repro.stream``.

Determinism: every random draw descends from
``derive_task_seed(derive_task_seed(fleet_seed, user, label="alloc.user"),
epoch, label="alloc.epoch")`` -- per-(user, epoch), independent of worker
count, chunking, ``REPRO_BATCH`` and allocator choice.  The result
digest is a sha256 over the raw float bytes of the per-user statistics,
so "bit-identical" is checkable with a string compare.
"""

from __future__ import annotations

import hashlib
import math
import time
from dataclasses import dataclass, field

import numpy as np

from repro._validation import require_positive
from repro.alloc.allocators import ALLOCATORS, make_allocator
from repro.alloc.base import AllocatorBase, EpochObservation
from repro.core.batch import batch_fgn
from repro.obs import metrics, trace
from repro.par.pool import derive_task_seed, pool_map
from repro.simulation.slotfluid import run_slots

__all__ = [
    "UserSpec",
    "FleetSpec",
    "FleetResult",
    "demo_fleet",
    "simulate_fleet",
    "user_epoch_seed",
]

#: Users per pool task -- fixed (never derived from the worker count) so
#: the chunking, and with it every accumulated statistic, is identical
#: at workers 1, 2, 5 or any other width.
CHUNK_USERS = 32

_EPOCHS = metrics.registry().counter(
    "repro_alloc_epochs_total", help="Fleet epochs simulated", unit="epochs"
)
_USER_EPOCHS = metrics.registry().counter(
    "repro_alloc_user_epochs_total", help="User-epochs simulated", unit="user-epochs"
)
_MOVED = metrics.registry().counter(
    "repro_alloc_capacity_moved_total",
    help="Capacity moved between users by reallocation",
    unit="bytes-per-slot",
)
_LOST = metrics.registry().counter(
    "repro_alloc_lost_bytes_total", help="Bytes lost across fleet queues", unit="bytes"
)


@dataclass(frozen=True)
class UserSpec:
    """One fleet member's traffic model.

    ``kind`` selects the generator: ``"video"`` (fGn, truncated-affine
    marginal with ``mean``/``std`` bytes per slot and Hurst ``hurst``),
    ``"cbr"`` (constant ``mean`` bytes every slot) or ``"data"``
    (geometric on/off bursts at duty cycle ``duty``, peak ``mean/duty``,
    mean on-run ``burst_slots`` slots).
    """

    kind: str
    mean: float
    std: float = 0.0
    hurst: float = 0.8
    duty: float = 0.2
    burst_slots: float = 8.0

    def __post_init__(self):
        if self.kind not in ("video", "cbr", "data"):
            raise ValueError(f"kind must be video|cbr|data, got {self.kind!r}")
        require_positive(self.mean, "mean")


@dataclass(frozen=True)
class FleetSpec:
    """A fleet: the users, the epoch grid and the shared (C, Q) pool.

    ``total_capacity`` defaults to the aggregate mean rate divided by
    ``utilization``; ``total_buffer`` to ``buffer_slots`` slots' worth of
    drain at that capacity.
    """

    users: tuple
    epoch_slots: int
    n_epochs: int
    total_capacity: float | None = None
    total_buffer: float | None = None
    utilization: float = 0.85
    buffer_slots: float = 4.0
    qos_loss: float = 1e-3
    seed: int = 0

    def __post_init__(self):
        if not self.users:
            raise ValueError("fleet needs at least one user")
        if self.epoch_slots < 1 or self.n_epochs < 1:
            raise ValueError("epoch_slots and n_epochs must be >= 1")

    @property
    def n_users(self):
        return len(self.users)

    def resolved_totals(self):
        """The concrete (C, Q) pool in (bytes/slot, bytes)."""
        mean_rate = float(sum(u.mean for u in self.users))
        capacity = (
            mean_rate / self.utilization
            if self.total_capacity is None
            else float(self.total_capacity)
        )
        buffer_bytes = (
            self.buffer_slots * capacity
            if self.total_buffer is None
            else float(self.total_buffer)
        )
        return capacity, buffer_bytes


def user_epoch_seed(fleet_seed, user_index, epoch_index):
    """The sha256 seed for (user, epoch) -- the root of all fleet randomness."""
    user_seed = derive_task_seed(fleet_seed, user_index, label="alloc.user")
    return derive_task_seed(user_seed, epoch_index, label="alloc.epoch")


def demo_fleet(n_users=64, *, epoch_slots=100, n_epochs=40, utilization=0.8,
               buffer_slots=12.0, qos_loss=1e-3, seed=2026):
    """A seeded heterogeneous fleet: half video (three Hurst classes,

    spanning smooth to heavily bursty), a quarter CBR voice-like flows,
    a quarter on/off data -- the mix the multiplexing chapters of the
    paper motivate.  Deterministic in ``(n_users, seed)``.
    """
    if n_users < 4:
        raise ValueError(f"demo fleet needs >= 4 users, got {n_users}")
    rng = np.random.default_rng(derive_task_seed(seed, 0, label="alloc.fleet"))
    video_classes = (
        (0.70, 1_000.0, 0.35),
        (0.80, 2_000.0, 0.55),
        (0.89, 1_500.0, 0.80),
    )
    users = []
    for i in range(n_users):
        jitter = float(rng.uniform(0.7, 1.3))
        slot = i % 4
        if slot < 2:
            hurst, mean, cov = video_classes[(i // 4) % len(video_classes)]
            users.append(UserSpec("video", mean=mean * jitter,
                                  std=mean * jitter * cov, hurst=hurst))
        elif slot == 2:
            users.append(UserSpec("cbr", mean=800.0 * jitter))
        else:
            duty = 0.15 if i % 8 < 4 else 0.3
            users.append(UserSpec("data", mean=900.0 * jitter, duty=duty,
                                  burst_slots=8.0))
    return FleetSpec(users=tuple(users), epoch_slots=epoch_slots,
                     n_epochs=n_epochs, utilization=utilization,
                     buffer_slots=buffer_slots, qos_loss=qos_loss, seed=seed)


def _video_groups(users):
    """Video users grouped by (hurst), keys sorted -- deterministic order."""
    groups = {}
    for i, u in enumerate(users):
        if u.kind == "video":
            groups.setdefault(float(u.hurst), []).append(i)
    return [(h, groups[h]) for h in sorted(groups)]


def _data_arrivals(user, n_slots, rng):
    """Geometric on/off bursts: peak rate ``mean/duty`` during on-runs."""
    peak = user.mean / user.duty
    mean_on = max(user.burst_slots, 1.0)
    mean_off = max(mean_on * (1.0 - user.duty) / user.duty, 1.0)
    arr = np.zeros(n_slots)
    t = 0
    on = bool(rng.random() < user.duty)
    while t < n_slots:
        run = int(rng.geometric(1.0 / (mean_on if on else mean_off)))
        if on:
            arr[t:t + run] = peak
        t += run
        on = not on
    return arr


def _epoch_arrivals(spec, epoch_index, groups):
    """The (n_users, epoch_slots) arrival matrix for one epoch.

    A pure function of ``(spec, epoch_index)``: video rows come from one
    stacked ``batch_fgn`` call per Hurst class with explicit per-(user,
    epoch) seeds, CBR rows are constants and data rows draw from their
    own per-(user, epoch) generator.
    """
    n, slots = spec.n_users, spec.epoch_slots
    arrivals = np.empty((n, slots))
    for hurst, indices in groups:
        seeds = [user_epoch_seed(spec.seed, i, epoch_index) for i in indices]
        rows = batch_fgn(slots, hurst, len(indices), seeds=seeds)
        for row, i in zip(rows, indices):
            user = spec.users[i]
            np.maximum(user.mean + user.std * row, 0.0, out=arrivals[i])
    for i, user in enumerate(spec.users):
        if user.kind == "cbr":
            arrivals[i] = user.mean
        elif user.kind == "data":
            rng = np.random.default_rng(user_epoch_seed(spec.seed, i, epoch_index))
            arrivals[i] = _data_arrivals(user, slots, rng)
    return arrivals


def _serve_chunk(item, common):
    """Pool task: advance the queues of users [start, stop) one epoch.

    Returns a (chunk, 4) array of (backlog, lost, peak, offered) -- the
    slot-fluid state advanced from each user's carried backlog.  Pure:
    everything it reads arrives through ``common``.
    """
    start, stop = item
    arrivals = common["arrivals"]
    capacity = common["capacity"]
    buffer = common["buffer"]
    backlog = common["backlog"]
    kernel = common.get("kernel")
    out = np.empty((stop - start, 4))
    for j, i in enumerate(range(start, stop)):
        out[j] = run_slots(
            arrivals[i], float(capacity[i]), float(buffer[i]),
            state=(float(backlog[i]), 0.0, 0.0, 0.0), kernel=kernel,
        )
    return out


@dataclass(frozen=True)
class FleetResult:
    """Cumulative per-user statistics of one fleet run."""

    allocator: str
    n_users: int
    n_epochs: int
    epoch_slots: int
    total_capacity: float
    total_buffer: float
    qos_loss: float
    offered: np.ndarray
    lost: np.ndarray
    peak_backlog: np.ndarray
    mean_delay_slots: np.ndarray
    final_capacity: np.ndarray
    final_buffer: np.ndarray
    reallocations: int
    capacity_moved: float
    decide_seconds: float
    wall_seconds: float
    history: list = field(default_factory=list, repr=False, compare=False)

    @property
    def loss_rate(self):
        """Per-user lifetime lost/offered."""
        with np.errstate(invalid="ignore", divide="ignore"):
            return np.where(self.offered > 0.0, self.lost / self.offered, 0.0)

    @property
    def total_loss_rate(self):
        offered = float(np.sum(self.offered))
        return float(np.sum(self.lost)) / offered if offered > 0.0 else 0.0

    def loss_percentiles(self, qs=(50.0, 90.0, 99.0)):
        values = np.percentile(self.loss_rate, list(qs))
        return {f"p{q:g}": float(v) for q, v in zip(qs, values)}

    def delay_percentiles(self, qs=(50.0, 90.0, 99.0)):
        values = np.percentile(self.mean_delay_slots, list(qs))
        return {f"p{q:g}": float(v) for q, v in zip(qs, values)}

    def fairness(self):
        """Jain's index over per-user goodput ratios (1 == perfectly fair)."""
        x = np.where(self.offered > 0.0,
                     (self.offered - self.lost) / self.offered, 1.0)
        total = float(np.sum(x))
        square = float(np.sum(x * x))
        return total * total / (self.n_users * square) if square > 0.0 else 1.0

    def violators(self):
        """How many users ended the run above the QoS loss target."""
        return int(np.sum(self.loss_rate > self.qos_loss))

    def digest(self):
        """sha256 over the raw result bytes: bit-identical runs, equal digests."""
        h = hashlib.sha256()
        h.update(f"{self.allocator}:{self.n_users}:{self.n_epochs}:"
                 f"{self.epoch_slots}:{self.total_capacity!r}:"
                 f"{self.total_buffer!r}".encode())
        for arr in (self.offered, self.lost, self.peak_backlog,
                    self.mean_delay_slots, self.final_capacity,
                    self.final_buffer):
            h.update(np.ascontiguousarray(arr, dtype=np.float64).tobytes())
        return h.hexdigest()

    def summary(self):
        """The JSON-able rollup the CLI and experiments report."""
        return {
            "allocator": self.allocator,
            "n_users": self.n_users,
            "n_epochs": self.n_epochs,
            "epoch_slots": self.epoch_slots,
            "total_capacity": self.total_capacity,
            "total_buffer": self.total_buffer,
            "total_loss_rate": self.total_loss_rate,
            "loss": self.loss_percentiles(),
            "delay_slots": self.delay_percentiles(),
            "fairness": self.fairness(),
            "violators": self.violators(),
            "reallocations": self.reallocations,
            "capacity_moved": self.capacity_moved,
            "digest": self.digest(),
        }


def simulate_fleet(spec, allocator="static", *, workers=1, kernel=None,
                   record_history=False, allocator_options=None):
    """Run one fleet under one allocator; returns a :class:`FleetResult`.

    ``allocator`` is a registered name (see
    :data:`repro.alloc.allocators.ALLOCATORS`) or a ready
    :class:`~repro.alloc.base.AllocatorBase` instance.  ``workers`` fans
    the per-user queue stepping out over a seeded process pool; the
    result is bit-identical at every worker count.  ``record_history``
    keeps every epoch's observation and partition (memory grows with
    ``n_epochs``; the property tests use it, campaigns should not).
    """
    capacity, buffer_bytes = spec.resolved_totals()
    n = spec.n_users
    if isinstance(allocator, AllocatorBase):
        policy = allocator
        if policy.n_users != n:
            raise ValueError(
                f"allocator sized for {policy.n_users} users, fleet has {n}"
            )
    else:
        policy = make_allocator(allocator, capacity, buffer_bytes, n,
                                qos_loss=spec.qos_loss,
                                **(allocator_options or {}))

    groups = _video_groups(spec.users)
    chunks = [(start, min(start + CHUNK_USERS, n))
              for start in range(0, n, CHUNK_USERS)]

    offered = np.zeros(n)
    lost = np.zeros(n)
    peak = np.zeros(n)
    delay_sum = np.zeros(n)
    backlog = np.zeros(n)
    capacity_moved = 0.0
    reallocations = 0
    decide_seconds = 0.0
    history = []

    started = time.perf_counter()
    with trace.span("alloc.fleet", allocator=policy.name, users=n,
                    epochs=spec.n_epochs, workers=workers):
        alloc = policy.initial_allocation()
        arrivals = _epoch_arrivals(spec, 0, groups)
        for epoch in range(spec.n_epochs):
            with trace.span("alloc.epoch", epoch=epoch):
                common = {
                    "arrivals": arrivals,
                    "capacity": alloc.capacity,
                    "buffer": alloc.buffer,
                    "backlog": backlog,
                    "kernel": kernel,
                }
                results = pool_map(_serve_chunk, chunks, workers=workers,
                                   common=common, label="alloc.epoch")
                stats = np.concatenate(results, axis=0)
                epoch_backlog = stats[:, 0]
                epoch_lost = stats[:, 1]
                epoch_peak = stats[:, 2]
                epoch_offered = stats[:, 3]

                offered += epoch_offered
                lost += epoch_lost
                np.maximum(peak, epoch_peak, out=peak)
                delay_sum += epoch_backlog / alloc.capacity
                backlog = epoch_backlog
                _EPOCHS.inc()
                _USER_EPOCHS.inc(n)
                _LOST.inc(float(np.sum(epoch_lost)))

                next_arrivals = (
                    _epoch_arrivals(spec, epoch + 1, groups)
                    if epoch + 1 < spec.n_epochs else None
                )
                observation = EpochObservation(
                    epoch_slots=spec.epoch_slots,
                    offered=epoch_offered,
                    lost=epoch_lost,
                    backlog=epoch_backlog,
                    peak_backlog=epoch_peak,
                    lookahead_arrivals=(
                        next_arrivals if policy.requires_lookahead else None
                    ),
                )
                epoch_seed = derive_task_seed(spec.seed, epoch + 1,
                                              label="alloc.decide")
                decide_started = time.perf_counter()
                next_alloc = policy.step(epoch, observation, alloc, epoch_seed)
                decide_seconds += time.perf_counter() - decide_started
                moved = float(np.sum(np.abs(next_alloc.capacity - alloc.capacity))) / 2.0
                if moved > 0.0:
                    reallocations += 1
                    capacity_moved += moved
                    _MOVED.inc(moved)
                if record_history:
                    history.append({
                        "epoch": epoch,
                        "loss_rate": observation.loss_rate(),
                        "violating": observation.loss_rate() > policy.qos_loss,
                        "capacity_before": alloc.capacity.copy(),
                        "capacity_after": next_alloc.capacity.copy(),
                        "buffer_before": alloc.buffer.copy(),
                        "buffer_after": next_alloc.buffer.copy(),
                    })
                alloc = next_alloc
                arrivals = next_arrivals

    return FleetResult(
        allocator=policy.name,
        n_users=n,
        n_epochs=spec.n_epochs,
        epoch_slots=spec.epoch_slots,
        total_capacity=capacity,
        total_buffer=buffer_bytes,
        qos_loss=spec.qos_loss,
        offered=offered,
        lost=lost,
        peak_backlog=peak,
        mean_delay_slots=delay_sum / spec.n_epochs,
        final_capacity=alloc.capacity,
        final_buffer=alloc.buffer,
        reallocations=reallocations,
        capacity_moved=capacity_moved,
        decide_seconds=decide_seconds,
        wall_seconds=time.perf_counter() - started,
        history=history,
    )
