"""Statistical analysis toolkit (Section 3 of the paper).

Provides the machinery behind every analysis figure/table:

- :mod:`repro.analysis.summary` -- Table 2 style summary statistics,
- :mod:`repro.analysis.marginals` -- histograms, empirical CDF/CCDF and
  candidate-model comparisons (Figs. 3-6),
- :mod:`repro.analysis.correlation` -- autocorrelation, periodogram,
  moving averages and block aggregation (Figs. 2, 7, 8, 10),
- :mod:`repro.analysis.hurst` -- variance-time plots, R/S pox diagrams
  and Whittle's MLE for the Hurst parameter (Figs. 11-12, Table 3),
- :mod:`repro.analysis.confidence` -- i.i.d. versus LRD-aware
  confidence intervals for the sample mean (Fig. 9).
"""

from repro.analysis.summary import TraceSummary, summarize
from repro.analysis.correlation import (
    autocorrelation,
    periodogram,
    moving_average,
    aggregate,
    exponential_acf_fit,
)
from repro.analysis.hurst import (
    variance_time,
    rs_pox,
    rs_aggregated,
    rs_sensitivity,
    whittle,
    whittle_aggregated,
    gph,
    hurst_summary,
)
from repro.analysis.confidence import mean_confidence_convergence, lrd_mean_ci
from repro.analysis.dispersion import IDCResult, index_of_dispersion
from repro.analysis.wavelet import WaveletResult, haar_detail_energy, wavelet_hurst
from repro.analysis.scenedetect import SceneAnalysis, analyze_scenes, detect_scene_changes
from repro.analysis.crosscorr import lagged_copy_correlation, effective_independent_sources
from repro.analysis.report import TraceReport, analyze_trace
from repro.analysis.stationarity import (
    StationarityReport,
    lrd_stationarity_check,
    segment_mean_dispersion,
)
from repro.analysis.marginals import (
    histogram_density,
    segment_histograms,
    ccdf_model_comparison,
    left_tail_comparison,
)

__all__ = [
    "TraceSummary",
    "summarize",
    "autocorrelation",
    "periodogram",
    "moving_average",
    "aggregate",
    "exponential_acf_fit",
    "variance_time",
    "rs_pox",
    "rs_aggregated",
    "rs_sensitivity",
    "whittle",
    "whittle_aggregated",
    "gph",
    "hurst_summary",
    "mean_confidence_convergence",
    "lrd_mean_ci",
    "IDCResult",
    "index_of_dispersion",
    "TraceReport",
    "analyze_trace",
    "lagged_copy_correlation",
    "effective_independent_sources",
    "SceneAnalysis",
    "analyze_scenes",
    "detect_scene_changes",
    "WaveletResult",
    "haar_detail_energy",
    "wavelet_hurst",
    "StationarityReport",
    "lrd_stationarity_check",
    "segment_mean_dispersion",
    "histogram_density",
    "segment_histograms",
    "ccdf_model_comparison",
    "left_tail_comparison",
]
