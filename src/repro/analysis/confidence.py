"""Confidence intervals for the mean under LRD (Fig. 9 of the paper).

The conventional 95% CI, ``xbar +- 1.96 s / sqrt(n)``, assumes i.i.d.
(or at least short-range dependent) errors.  For a long-range
dependent process the variance of the sample mean decays like
``sigma^2 n^{2H-2}`` instead of ``sigma^2 / n`` (for fractional
Gaussian noise this is *exact*), so the honest interval is wider:

    ``xbar +- 1.96 s n^{H-1}``.

Fig. 9 shows the consequence: for the VBR trace, the i.i.d.-based CIs
shrink so fast that the final mean is not even contained in most of
them, while the LRD-aware CIs converge slowly but honestly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro._validation import as_1d_float_array, require_in_open_interval

__all__ = ["MeanConvergence", "lrd_mean_ci", "mean_confidence_convergence"]


def lrd_mean_ci(data, hurst, confidence=0.95):
    """LRD-aware confidence interval for the mean of ``data``.

    Returns ``(mean, halfwidth)`` with
    ``halfwidth = z * s * n^(H-1)``; for ``hurst=0.5`` this reduces to
    the classical i.i.d. interval ``z * s / sqrt(n)``.
    """
    arr = as_1d_float_array(data, "data", min_length=2)
    hurst = require_in_open_interval(hurst, "hurst", 0.0, 1.0)
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must lie in (0, 1), got {confidence!r}")
    from scipy import special

    z = np.sqrt(2.0) * special.erfinv(confidence)
    s = float(np.std(arr, ddof=1))
    n = arr.size
    return float(np.mean(arr)), float(z * s * n ** (hurst - 1.0))


@dataclass(frozen=True)
class MeanConvergence:
    """Mean estimates from growing prefixes, with both CI families."""

    sample_sizes: np.ndarray = field(repr=False)
    """Prefix lengths ``n`` at which the mean was estimated."""

    means: np.ndarray = field(repr=False)
    """``mean(X_1 .. X_n)`` for each prefix."""

    iid_halfwidths: np.ndarray = field(repr=False)
    """Conventional 95% CI half-widths, ``1.96 s / sqrt(n)``."""

    lrd_halfwidths: np.ndarray = field(repr=False)
    """LRD-corrected half-widths, ``1.96 s n^(H-1)``."""

    final_mean: float
    """The mean over the entire series."""

    hurst: float
    """Hurst parameter used for the LRD correction."""

    def iid_coverage(self):
        """Fraction of prefix CIs (i.i.d. flavor) containing the final mean."""
        inside = np.abs(self.means - self.final_mean) <= self.iid_halfwidths
        return float(np.mean(inside))

    def lrd_coverage(self):
        """Fraction of prefix CIs (LRD flavor) containing the final mean."""
        inside = np.abs(self.means - self.final_mean) <= self.lrd_halfwidths
        return float(np.mean(inside))


def mean_confidence_convergence(data, hurst, sample_sizes=None, confidence=0.95):
    """Reproduce Fig. 9: mean of the first ``n`` observations with CIs.

    Parameters
    ----------
    data:
        The full series.
    hurst:
        Hurst parameter for the LRD-corrected intervals.
    sample_sizes:
        Prefix lengths; default is 12 log-spaced sizes from 100 to the
        full length.
    """
    arr = as_1d_float_array(data, "data", min_length=200)
    hurst = require_in_open_interval(hurst, "hurst", 0.0, 1.0)
    n = arr.size
    if sample_sizes is None:
        sample_sizes = np.unique(
            np.round(np.logspace(np.log10(100), np.log10(n), 12)).astype(int)
        )
    sizes = np.asarray(sample_sizes, dtype=int)
    if np.any(sizes < 2) or np.any(sizes > n):
        raise ValueError(f"sample sizes must lie in [2, {n}]")
    from scipy import special

    z = np.sqrt(2.0) * special.erfinv(confidence)
    means = np.empty(sizes.size)
    iid_hw = np.empty(sizes.size)
    lrd_hw = np.empty(sizes.size)
    for i, size in enumerate(sizes):
        prefix = arr[:size]
        s = float(np.std(prefix, ddof=1))
        means[i] = float(np.mean(prefix))
        iid_hw[i] = z * s / np.sqrt(size)
        lrd_hw[i] = z * s * size ** (hurst - 1.0)
    return MeanConvergence(
        sample_sizes=sizes,
        means=means,
        iid_halfwidths=iid_hw,
        lrd_halfwidths=lrd_hw,
        final_mean=float(np.mean(arr)),
        hurst=hurst,
    )
