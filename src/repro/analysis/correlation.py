"""Time-correlation analysis: ACF, periodogram, aggregation (Sec. 3.2).

The empirical autocorrelation of the VBR trace decays exponentially
only up to ~100-300 lags, then hyperbolically (Fig. 7); the
periodogram diverges like ``omega^-alpha`` at low frequencies (Fig. 8);
and block-aggregated versions of the series retain significant,
similar-looking correlations at every aggregation level (Fig. 10) --
the signature of (second-order) self-similarity.
"""

from __future__ import annotations

import numpy as np

from repro._validation import as_1d_float_array, require_positive_int

__all__ = [
    "autocorrelation",
    "periodogram",
    "moving_average",
    "aggregate",
    "exponential_acf_fit",
]


def autocorrelation(data, max_lag=None):
    """Sample autocorrelation ``r(n)`` for lags ``0 .. max_lag``.

    Uses the standard biased estimator (normalizing every lag by the
    full sample size), computed with an FFT in O(n log n) so that
    Fig. 7's 10,000-lag curve over a 171,000-point trace is cheap.

    Returns an array ``r`` with ``r[0] == 1``.
    """
    arr = as_1d_float_array(data, "data", min_length=2)
    n = arr.size
    if max_lag is None:
        max_lag = n - 1
    max_lag = int(max_lag)
    if not 0 <= max_lag < n:
        raise ValueError(f"max_lag must lie in [0, {n - 1}], got {max_lag}")
    centered = arr - arr.mean()
    var = float(np.dot(centered, centered))
    if var <= 0:
        raise ValueError("series is constant; autocorrelation is undefined")
    # FFT-based autocovariance with zero padding to avoid circular wrap.
    size = 1 << int(np.ceil(np.log2(2 * n - 1)))
    spec = np.fft.rfft(centered, size)
    acov = np.fft.irfft(spec * np.conj(spec), size)[: max_lag + 1]
    return acov / var


def periodogram(data, detrend=True):
    """Periodogram ``I(omega_j)`` at the Fourier frequencies.

    Returns ``(omega, intensity)`` with
    ``omega_j = 2 pi j / n`` for ``j = 1 .. floor(n/2)`` and
    ``I(omega_j) = |sum_t x_t exp(-i omega_j t)|^2 / (2 pi n)``.

    For an LRD process the intensity grows like ``omega^-alpha`` with
    ``alpha = 2H - 1`` as ``omega -> 0`` (Fig. 8); the Whittle
    estimator in :mod:`repro.analysis.hurst` is built on exactly this
    periodogram.
    """
    arr = as_1d_float_array(data, "data", min_length=4)
    n = arr.size
    x = arr - arr.mean() if detrend else arr
    spec = np.fft.rfft(x)
    j = np.arange(1, n // 2 + 1)
    omega = 2.0 * np.pi * j / n
    intensity = (np.abs(spec[1 : n // 2 + 1]) ** 2) / (2.0 * np.pi * n)
    return omega, intensity


def moving_average(data, window):
    """Centered moving average (the low-pass filter of Fig. 2).

    Returns ``(positions, averages)`` where ``positions`` are the
    indices of the window centers; only full windows are evaluated
    (``len(data) - window + 1`` points).  The paper uses a 20,000-frame
    (~14 minute) window to expose the story-arc-scale low-frequency
    content of the trace.
    """
    arr = as_1d_float_array(data, "data", min_length=1)
    window = require_positive_int(window, "window")
    if window > arr.size:
        raise ValueError(f"window ({window}) exceeds series length ({arr.size})")
    csum = np.concatenate(([0.0], np.cumsum(arr)))
    averages = (csum[window:] - csum[:-window]) / window
    positions = np.arange(arr.size - window + 1) + (window - 1) / 2.0
    return positions, averages


def aggregate(data, m):
    """Block-aggregated series ``X^(m)``: means over blocks of size m.

    This is the aggregation operator of the self-similarity definition
    (Section 3.2.2): a covariance-stationary process is second-order
    exactly self-similar when ``X^(m)`` has the same autocorrelation as
    ``X`` for every ``m``.  A trailing partial block is dropped.
    """
    arr = as_1d_float_array(data, "data", min_length=1)
    m = require_positive_int(m, "m")
    n_blocks = arr.size // m
    if n_blocks == 0:
        raise ValueError(f"block size m={m} exceeds series length {arr.size}")
    return arr[: n_blocks * m].reshape(n_blocks, m).mean(axis=1)


def exponential_acf_fit(acf_values, fit_lags):
    """Fit ``r(n) ~ rho^n`` to the early autocorrelation lags.

    The paper notes the empirical ACF is matched by an exponential
    decay only up to ~100-300 lags (Fig. 7).  This helper regresses
    ``log r(n)`` on ``n`` over ``fit_lags`` (positive lags with
    ``r > 0``) and returns ``(rho, fitted_curve)`` where
    ``fitted_curve[n] = rho ** n`` for every lag of ``acf_values``.
    """
    acf_values = as_1d_float_array(acf_values, "acf_values", min_length=3)
    fit_lags = np.asarray(fit_lags, dtype=int)
    if fit_lags.ndim != 1 or fit_lags.size < 2:
        raise ValueError("fit_lags must contain at least two lags")
    if np.any(fit_lags < 1) or np.any(fit_lags >= acf_values.size):
        raise ValueError("fit_lags must be positive and within the ACF range")
    r = acf_values[fit_lags]
    usable = r > 0
    if usable.sum() < 2:
        raise ValueError("not enough positive ACF values to fit an exponential")
    slope, _ = np.polyfit(fit_lags[usable], np.log(r[usable]), 1)
    rho = float(np.exp(slope))
    lags = np.arange(acf_values.size, dtype=float)
    return rho, rho**lags
