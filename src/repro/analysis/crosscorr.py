"""Cross-correlation between lagged copies of an LRD trace.

Section 5.1 of the paper: "Long-range dependence implies that the
cross-correlation between sources may be significant even for such
long lags" -- the reason the multiplexing experiments force lags at
least 1,000 frames apart and average over several lag draws.  For a
stationary process, the cross-correlation of two copies offset by
``L`` is simply the autocorrelation at lag ``L``: ``r(L) ~ L^{2H-2}``
decays so slowly that even multi-minute offsets leave measurable
coupling.

:func:`lagged_copy_correlation` measures the actual sample correlation
between the aggregate-forming copies, and
:func:`effective_independent_sources` summarizes how far from
independent an N-copy multiplex really is (via the variance ratio of
the aggregate against the independent-sources prediction).
"""

from __future__ import annotations

import numpy as np

from repro._validation import as_1d_float_array, require_positive_int

__all__ = ["lagged_copy_correlation", "effective_independent_sources"]


def lagged_copy_correlation(series, lags):
    """Sample correlation between the series and its shifted copies.

    Returns an array with one correlation per lag (circular shift, as
    used by the multiplexer).  For an SRD process these are ~0 beyond
    the correlation time; for LRD they decay like ``lag^{2H-2}``.
    """
    arr = as_1d_float_array(series, "series", min_length=4)
    lags = np.asarray(lags, dtype=int)
    if lags.ndim != 1 or lags.size < 1:
        raise ValueError("lags must be a non-empty 1-D integer array")
    out = np.empty(lags.size)
    for i, lag in enumerate(lags):
        shifted = np.roll(arr, -int(lag) % arr.size)
        out[i] = float(np.corrcoef(arr, shifted)[0, 1])
    return out


def effective_independent_sources(series, lags_list):
    """How independent are N lag-shifted copies, really?

    For truly independent copies, ``Var(aggregate) = N Var(X)``.  The
    measured ratio ``Var(aggregate) / (N Var(X))`` exceeds 1 exactly by
    the pairwise cross-correlations; its inverse times N is the
    *effective* number of independent sources.

    Parameters
    ----------
    series:
        The single-source series.
    lags_list:
        The lag of each copy (first conventionally 0).

    Returns a dict with ``"variance_ratio"`` (1 = independent) and
    ``"effective_sources"`` (= N for independent copies).
    """
    arr = as_1d_float_array(series, "series", min_length=4)
    lags = np.asarray(lags_list, dtype=int)
    n = require_positive_int(int(lags.size), "number of copies")
    aggregate = np.zeros_like(arr)
    for lag in lags:
        aggregate += np.roll(arr, -int(lag) % arr.size)
    ratio = float(np.var(aggregate) / (n * np.var(arr)))
    return {
        "variance_ratio": ratio,
        "effective_sources": n / ratio if ratio > 0 else float("inf"),
        "n_sources": int(n),
    }
