"""Index of dispersion for counts (IDC): another face of LRD.

The IDC at time scale ``m`` is the variance of the traffic arriving in
``m`` consecutive slots normalized by its mean:

    ``IDC(m) = Var(X_1 + ... + X_m) / E[X_1 + ... + X_m]``.

For Poisson-like (SRD) traffic the IDC converges to a constant; for
long-range dependent traffic it grows without bound like ``m^(2H-1)``
-- the characterization used throughout the self-similar traffic
literature the paper belongs to (e.g. Leland et al. 1993).  The IDC
slope therefore provides one more Hurst estimator, cross-checking the
variance-time, R/S and Whittle estimates of Table 3.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro._validation import as_1d_float_array
from repro.analysis.correlation import aggregate

__all__ = ["IDCResult", "index_of_dispersion"]


@dataclass(frozen=True)
class IDCResult:
    """Outcome of an IDC analysis."""

    hurst: float
    """Estimated Hurst parameter from the IDC slope ``(slope+1)/2``."""

    slope: float
    """Fitted log-log growth rate of IDC(m) (0 for SRD, 2H-1 for LRD)."""

    m_values: np.ndarray = field(repr=False)
    """Time scales at which the IDC was evaluated."""

    idc: np.ndarray = field(repr=False)
    """IDC(m) at each scale."""

    fit_mask: np.ndarray = field(repr=False)
    """Points used in the slope regression."""


def index_of_dispersion(data, m_values=None, fit_range=None, n_points=30, min_blocks=10):
    """Compute IDC(m) over a range of scales and fit its growth rate.

    Parameters mirror :func:`repro.analysis.hurst.variance_time`; the
    default fit range starts at m = 10 so short-range structure does
    not bias the asymptotic slope.
    """
    arr = as_1d_float_array(data, "data", min_length=100)
    if np.any(arr < 0):
        raise ValueError("IDC is defined for non-negative (count/byte) data")
    mean = float(np.mean(arr))
    if mean <= 0:
        raise ValueError("series must have positive mean")
    n = arr.size
    if m_values is None:
        top = max(n // min_blocks, 2)
        m_values = np.unique(np.round(np.geomspace(1, top, n_points)).astype(int))
    m_values = np.asarray(m_values, dtype=int)
    if np.any(m_values < 1):
        raise ValueError("all time scales must be >= 1")
    idc = np.empty(m_values.size)
    for i, m in enumerate(m_values):
        block_sums = aggregate(arr, int(m)) * m
        idc[i] = float(np.var(block_sums)) / (mean * m)
    if fit_range is None:
        fit_range = (10, max(n // 100, 20))
    lo, hi = fit_range
    mask = (m_values >= lo) & (m_values <= hi) & (idc > 0)
    if mask.sum() < 2:
        raise ValueError(f"fewer than 2 usable scales in fit range {fit_range}")
    slope, _ = np.polyfit(np.log10(m_values[mask]), np.log10(idc[mask]), 1)
    slope = float(slope)
    return IDCResult(
        hurst=(slope + 1.0) / 2.0,
        slope=slope,
        m_values=m_values,
        idc=idc,
        fit_mask=mask,
    )
