"""Hurst-parameter estimation (Section 3.2.3 and Table 3 of the paper).

Three families of estimators are implemented:

- **Variance-time plot** (Fig. 11): the variance of the block-mean
  series ``X^(m)`` decays like ``m^-beta`` with ``beta = 2 - 2H``;
  regressing ``log Var(X^(m))`` on ``log m`` yields ``H = 1 - beta/2``.
- **R/S analysis** (Fig. 12): the rescaled adjusted range statistic
  ``R(n)/S(n)`` grows like ``n^H``; the pox diagram evaluates it at
  many lags and partition start points and regresses on log-log axes.
  Variants on aggregated series and with varied lag/partition densities
  reproduce the robustness checks in Table 3.
- **Whittle's approximate MLE**: minimizes the frequency-domain
  likelihood built from the periodogram and the fARIMA(0, d, 0)
  spectral density ``f(w; d) ~ |2 sin(w/2)|^{-2d}``; asymptotic theory
  yields a standard error and hence the confidence interval the paper
  quotes (``H = 0.8 +- 0.088``).  Following the paper, the series can
  first be transformed to (near-)Normal marginals and aggregated to
  filter out high-frequency (short-range) effects.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy import optimize

from repro._validation import as_1d_float_array, require_positive_int
from repro.analysis.correlation import aggregate, periodogram

__all__ = [
    "VarianceTimeResult",
    "RSResult",
    "WhittleResult",
    "GPHResult",
    "variance_time",
    "rs_statistic",
    "rs_pox",
    "rs_aggregated",
    "rs_sensitivity",
    "whittle",
    "whittle_aggregated",
    "gph",
    "hurst_summary",
]


def _log_spaced_ints(low, high, n_points):
    """Distinct integers approximately log-uniform on [low, high]."""
    if high < low:
        raise ValueError(f"empty integer range [{low}, {high}]")
    values = np.unique(
        np.round(np.logspace(np.log10(low), np.log10(high), n_points)).astype(int)
    )
    return values[(values >= low) & (values <= high)]


# ----------------------------------------------------------------------
# Variance-time plot
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class VarianceTimeResult:
    """Outcome of a variance-time analysis (Fig. 11)."""

    hurst: float
    """Estimated Hurst parameter ``H = 1 - beta / 2``."""

    beta: float
    """Fitted decay exponent of ``Var(X^(m)) / Var(X) ~ m^-beta``."""

    m_values: np.ndarray = field(repr=False)
    """Block sizes at which the aggregated variance was evaluated."""

    normalized_variances: np.ndarray = field(repr=False)
    """``Var(X^(m)) / Var(X)`` for each block size."""

    fit_mask: np.ndarray = field(repr=False)
    """Boolean mask of the points used in the log-log regression."""


def variance_time(data, m_values=None, fit_range=None, n_points=40, min_blocks=5):
    """Estimate H from the variance of aggregated series (eq. 1).

    Parameters
    ----------
    data:
        The bandwidth series.
    m_values:
        Block sizes; default is ~``n_points`` log-spaced sizes from 1
        to ``len(data) / min_blocks``.
    fit_range:
        ``(m_lo, m_hi)`` range used for the slope regression.  The
        paper measures the slope away from the smallest blocks (where
        short-range structure dominates); the default fits m in
        ``[10, len(data) / 100]``.
    min_blocks:
        Smallest number of blocks for which a variance is trusted.
    """
    arr = as_1d_float_array(data, "data", min_length=100)
    n = arr.size
    var0 = float(np.var(arr))
    if var0 <= 0:
        raise ValueError("series is constant; variance-time analysis is undefined")
    if m_values is None:
        m_values = _log_spaced_ints(1, max(n // min_blocks, 2), n_points)
    m_values = np.asarray(m_values, dtype=int)
    if np.any(m_values < 1):
        raise ValueError("all block sizes must be >= 1")
    variances = np.array([float(np.var(aggregate(arr, int(m)))) for m in m_values])
    normalized = variances / var0
    if fit_range is None:
        fit_range = (10, max(n // 100, 20))
    lo, hi = fit_range
    mask = (m_values >= lo) & (m_values <= hi) & (normalized > 0)
    if mask.sum() < 2:
        raise ValueError(f"fewer than 2 usable block sizes in fit range {fit_range}")
    slope, _ = np.polyfit(np.log10(m_values[mask]), np.log10(normalized[mask]), 1)
    beta = -float(slope)
    return VarianceTimeResult(
        hurst=1.0 - beta / 2.0,
        beta=beta,
        m_values=m_values,
        normalized_variances=normalized,
        fit_mask=mask,
    )


# ----------------------------------------------------------------------
# R/S analysis
# ----------------------------------------------------------------------
def rs_statistic(segment):
    """Rescaled adjusted range ``R(n)/S(n)`` of one segment.

    Implements Hurst's statistic exactly as defined in the paper:
    adjusted partial sums ``W_j = sum_{i<=j} X_i - j * mean``, range
    ``R = max(0, W_1..W_n) - min(0, W_1..W_n)``, normalized by the
    sample standard deviation ``S``.
    """
    seg = as_1d_float_array(segment, "segment", min_length=2)
    s = float(np.std(seg, ddof=0))
    if s <= 0:
        return float("nan")
    w = np.cumsum(seg - seg.mean())
    r = max(0.0, float(w.max())) - min(0.0, float(w.min()))
    return r / s


@dataclass(frozen=True)
class RSResult:
    """Outcome of an R/S pox-diagram analysis (Fig. 12)."""

    hurst: float
    """Slope of the least-squares line through the pox points."""

    lags: np.ndarray = field(repr=False)
    """Lag ``n`` of every pox point."""

    rs_values: np.ndarray = field(repr=False)
    """``R(n)/S(n)`` of every pox point."""

    fit_mask: np.ndarray = field(repr=False)
    """Points used in the regression (middle lag range)."""


def rs_pox(data, lags=None, n_partitions=10, n_lag_points=30, fit_range=None):
    """R/S pox diagram and Hurst estimate.

    For each lag ``n`` (log-spaced by default) the series is cut into
    ``n_partitions`` equally spaced starting points; every start that
    leaves a full segment of length ``n`` contributes one pox point
    ``R(n)/S(n)``.  ``H`` is the least-squares slope of
    ``log10 R/S`` against ``log10 n`` over the ``fit_range`` of lags
    (defaults to ``[10, len(data)/5]`` -- trimming the smallest lags,
    where short-range dependence distorts the statistic, and the very
    largest, where few segments exist).
    """
    arr = as_1d_float_array(data, "data", min_length=50)
    n = arr.size
    n_partitions = require_positive_int(n_partitions, "n_partitions")
    if lags is None:
        lags = _log_spaced_ints(8, max(n // 2, 9), n_lag_points)
    lags = np.asarray(lags, dtype=int)
    if np.any(lags < 2) or np.any(lags > n):
        raise ValueError(f"lags must lie in [2, {n}]")
    pox_lags = []
    pox_values = []
    for lag in lags:
        lag = int(lag)
        max_start = n - lag
        if max_start < 0:
            continue
        starts = np.unique(np.linspace(0, max_start, n_partitions).astype(int))
        for start in starts:
            value = rs_statistic(arr[start : start + lag])
            if np.isfinite(value) and value > 0:
                pox_lags.append(lag)
                pox_values.append(value)
    pox_lags = np.asarray(pox_lags, dtype=float)
    pox_values = np.asarray(pox_values, dtype=float)
    if pox_lags.size < 2:
        raise ValueError("not enough valid R/S points; series may be too short or constant")
    if fit_range is None:
        fit_range = (10, max(n // 5, 12))
    lo, hi = fit_range
    mask = (pox_lags >= lo) & (pox_lags <= hi)
    if mask.sum() < 2:
        raise ValueError(f"fewer than 2 pox points in fit range {fit_range}")
    slope, _ = np.polyfit(np.log10(pox_lags[mask]), np.log10(pox_values[mask]), 1)
    return RSResult(hurst=float(slope), lags=pox_lags, rs_values=pox_values, fit_mask=mask)


def rs_aggregated(data, m=10, **kwargs):
    """R/S analysis on the aggregated series ``X^(m)``.

    Aggregation filters out a particular short-range dependence
    structure that could distort the plain R/S slope; the paper reports
    this variant as a separate Table 3 row (H = 0.78).
    """
    m = require_positive_int(m, "m")
    return rs_pox(aggregate(as_1d_float_array(data, "data"), m), **kwargs)


def rs_sensitivity(data, partition_counts=(5, 10, 20), lag_point_counts=(15, 30, 60)):
    """Robustness sweep over pox-diagram densities (Table 3's last row).

    Re-runs :func:`rs_pox` for every combination of vertical density
    (``n_partitions``) and horizontal density (``n_lag_points``) and
    returns ``(h_min, h_max, estimates)`` where ``estimates`` maps the
    ``(n_partitions, n_lag_points)`` pair to its Hurst estimate.
    """
    estimates = {}
    for n_part in partition_counts:
        for n_lagpts in lag_point_counts:
            result = rs_pox(data, n_partitions=n_part, n_lag_points=n_lagpts)
            estimates[(int(n_part), int(n_lagpts))] = result.hurst
    values = list(estimates.values())
    return min(values), max(values), estimates


# ----------------------------------------------------------------------
# Whittle's approximate MLE
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class WhittleResult:
    """Outcome of a Whittle estimation."""

    hurst: float
    """Point estimate ``H = d + 1/2``."""

    d: float
    """Fractional differencing parameter estimate."""

    std_error: float
    """Asymptotic standard error of ``d`` (and of ``H``)."""

    ci_low: float
    """Lower end of the 95% confidence interval for ``H``."""

    ci_high: float
    """Upper end of the 95% confidence interval for ``H``."""

    n_used: int
    """Length of the (possibly aggregated/transformed) series used."""


def _whittle_objective(d, log_g, intensity):
    """Scale-free Whittle likelihood for fARIMA(0, d, 0).

    With ``g(w; d) = |2 sin(w/2)|^{-2d}`` and the innovation variance
    profiled out, the objective is
    ``log(mean(I / g)) + mean(log g)``.
    """
    g_log = -2.0 * d * log_g
    ratio = intensity * np.exp(-g_log)
    return float(np.log(np.mean(ratio)) + np.mean(g_log))


def whittle(data, normalize="normal-scores"):
    """Whittle's approximate MLE of H for a fARIMA(0, d, 0) spectrum.

    Parameters
    ----------
    data:
        The (bandwidth) series.
    normalize:
        Marginal pre-transform: ``"normal-scores"`` (rank-based
        Gaussianization; plays the role of the paper's log transform,
        which "typically results in approximately Normal looking
        distributions and exhibits the same H-value"), ``"log"`` for
        the paper's literal choice, or ``None`` to use the raw series.

    Returns a :class:`WhittleResult` with the 95% CI derived from the
    asymptotic variance ``Var(d_hat) = 6 / (pi^2 n)`` of the
    one-parameter fARIMA Whittle estimator.
    """
    arr = as_1d_float_array(data, "data", min_length=32)
    if normalize == "normal-scores":
        from repro.core.transform import normal_scores

        arr = normal_scores(arr)
    elif normalize == "log":
        if np.any(arr <= 0):
            raise ValueError("log normalization requires strictly positive data")
        arr = np.log(arr)
    elif normalize is not None:
        raise ValueError(f'normalize must be "normal-scores", "log" or None, got {normalize!r}')
    omega, intensity = periodogram(arr)
    # Drop the Nyquist point if n is even and any zero intensities.
    usable = intensity > 0
    omega, intensity = omega[usable], intensity[usable]
    if omega.size < 8:
        raise ValueError("too few usable periodogram ordinates for Whittle estimation")
    log_g = np.log(2.0 * np.sin(omega / 2.0))
    result = optimize.minimize_scalar(
        _whittle_objective,
        bounds=(-0.49, 0.49),
        args=(log_g, intensity),
        method="bounded",
        options={"xatol": 1e-6},
    )
    d_hat = float(result.x)
    n = arr.size
    std_error = float(np.sqrt(6.0 / (np.pi**2 * n)))
    h = d_hat + 0.5
    return WhittleResult(
        hurst=h,
        d=d_hat,
        std_error=std_error,
        ci_low=h - 1.96 * std_error,
        ci_high=h + 1.96 * std_error,
        n_used=n,
    )


def whittle_aggregated(data, m_values=None, normalize="normal-scores", min_points=128):
    """Whittle estimates across aggregation levels (paper Section 3.2.3).

    Aggregating before estimating filters out the high-frequency
    (short-range) components, at the price of wider confidence
    intervals; the paper reads off its headline ``H = 0.8 +- 0.088`` at
    aggregation level ``m ~= 700``.  Returns a list of
    ``(m, WhittleResult)`` pairs for every level that leaves at least
    ``min_points`` observations.
    """
    arr = as_1d_float_array(data, "data", min_length=min_points)
    if m_values is None:
        m_values = _log_spaced_ints(1, max(arr.size // min_points, 1), 12)
    results = []
    for m in np.asarray(m_values, dtype=int):
        if arr.size // int(m) < min_points:
            continue
        agg = aggregate(arr, int(m)) if m > 1 else arr
        results.append((int(m), whittle(agg, normalize=normalize)))
    if not results:
        raise ValueError("no aggregation level leaves enough points for Whittle estimation")
    return results


@dataclass(frozen=True)
class GPHResult:
    """Outcome of a log-periodogram (Geweke-Porter-Hudak) regression."""

    hurst: float
    """Point estimate ``H = d + 1/2``."""

    d: float
    """Fractional differencing estimate (minus half the log-log slope)."""

    std_error: float
    """Asymptotic standard error of ``d``."""

    n_frequencies: int
    """Number of low-frequency ordinates used in the regression."""


def gph(data, bandwidth_exponent=0.5, normalize="normal-scores"):
    """Geweke-Porter-Hudak log-periodogram estimator of H.

    Regresses ``log I(w_j)`` on ``log(4 sin^2(w_j / 2))`` over the
    ``m = n**bandwidth_exponent`` lowest Fourier frequencies; the slope
    is ``-d``.  GPH is the classical semi-parametric alternative to the
    parametric Whittle estimator: it only assumes the ``w^{-2d}``
    divergence at the origin, so it is robust to short-range structure
    at the cost of wider confidence intervals
    (``Var(d) = pi^2 / (24 m)``).
    """
    arr = as_1d_float_array(data, "data", min_length=64)
    if not 0.0 < bandwidth_exponent < 1.0:
        raise ValueError(
            f"bandwidth_exponent must lie in (0, 1), got {bandwidth_exponent!r}"
        )
    if normalize == "normal-scores":
        from repro.core.transform import normal_scores

        arr = normal_scores(arr)
    elif normalize == "log":
        if np.any(arr <= 0):
            raise ValueError("log normalization requires strictly positive data")
        arr = np.log(arr)
    elif normalize is not None:
        raise ValueError(f'normalize must be "normal-scores", "log" or None, got {normalize!r}')
    omega, intensity = periodogram(arr)
    m = int(arr.size**bandwidth_exponent)
    m = min(max(m, 8), omega.size)
    omega_m = omega[:m]
    i_m = intensity[:m]
    usable = i_m > 0
    if usable.sum() < 8:
        raise ValueError("too few usable periodogram ordinates for GPH")
    x = np.log(4.0 * np.sin(omega_m[usable] / 2.0) ** 2)
    y = np.log(i_m[usable])
    slope, _ = np.polyfit(x, y, 1)
    d_hat = -float(slope)
    std_error = float(np.sqrt(np.pi**2 / (24.0 * usable.sum())))
    return GPHResult(
        hurst=d_hat + 0.5, d=d_hat, std_error=std_error, n_frequencies=int(usable.sum())
    )


def hurst_summary(data, whittle_m=None):
    """All Table 3 estimates for one series.

    Returns a dict with keys ``"variance_time"``, ``"rs"``,
    ``"rs_aggregated"``, ``"rs_varied"`` (a ``(low, high)`` tuple) and
    ``"whittle"`` (a :class:`WhittleResult`).  ``whittle_m`` selects
    the aggregation level for the Whittle row; by default the level
    closest to ``len(data) / 250`` is used, mirroring the paper's
    choice of m ~= 700 for the 171,000-frame trace.
    """
    arr = as_1d_float_array(data, "data", min_length=1000)
    if whittle_m is None:
        whittle_m = max(arr.size // 250, 1)
    agg = aggregate(arr, int(whittle_m)) if whittle_m > 1 else arr
    low, high, _ = rs_sensitivity(arr)
    return {
        "variance_time": variance_time(arr).hurst,
        "rs": rs_pox(arr).hurst,
        "rs_aggregated": rs_aggregated(arr, m=10).hurst,
        "rs_varied": (low, high),
        "whittle": whittle(agg),
    }
