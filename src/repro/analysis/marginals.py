"""Marginal-distribution analysis (Figs. 3-6 of the paper).

Figure 3 compares per-segment bandwidth histograms against the full
trace -- short segments deviate strongly from the long-term marginal.
Figures 4-6 compare the empirical CCDF (right tail), CDF (left tail)
and density against the fitted Normal, Gamma, Lognormal, Pareto and
hybrid Gamma/Pareto models.
"""

from __future__ import annotations

import numpy as np

from repro._validation import as_1d_float_array, require_positive_int
from repro.distributions.fitting import empirical_ccdf, empirical_cdf, fit_all_candidates

__all__ = [
    "histogram_density",
    "segment_histograms",
    "ccdf_model_comparison",
    "left_tail_comparison",
]


def histogram_density(data, n_bins=100, data_range=None):
    """Normalized histogram: ``(bin_centers, density)``.

    Density integrates to one, making it directly comparable with
    model ``pdf`` curves (Fig. 6).
    """
    arr = as_1d_float_array(data, "data", min_length=2)
    n_bins = require_positive_int(n_bins, "n_bins")
    density, edges = np.histogram(arr, bins=n_bins, range=data_range, density=True)
    centers = 0.5 * (edges[:-1] + edges[1:])
    return centers, density


def segment_histograms(data, n_segments=5, segment_length=None, n_bins=60):
    """Per-segment histograms plus the full-series histogram (Fig. 3).

    The paper uses five two-minute (2,880-frame) segments drawn from
    across the movie plus the complete trace.  Segments are evenly
    spaced across the series.  Returns a dict with ``"segments"`` -- a
    list of ``(start_index, centers, density)`` tuples -- and
    ``"full"`` -- ``(centers, density)`` for the entire series.  All
    histograms share the full-series bin range so they are directly
    comparable.
    """
    arr = as_1d_float_array(data, "data", min_length=10)
    n_segments = require_positive_int(n_segments, "n_segments")
    if segment_length is None:
        segment_length = max(arr.size // 60, 10)
    segment_length = require_positive_int(segment_length, "segment_length")
    if segment_length > arr.size:
        raise ValueError(
            f"segment_length ({segment_length}) exceeds series length ({arr.size})"
        )
    data_range = (float(arr.min()), float(arr.max()))
    starts = np.linspace(0, arr.size - segment_length, n_segments).astype(int)
    segments = []
    for start in starts:
        centers, density = histogram_density(
            arr[start : start + segment_length], n_bins=n_bins, data_range=data_range
        )
        segments.append((int(start), centers, density))
    full = histogram_density(arr, n_bins=n_bins, data_range=data_range)
    return {"segments": segments, "full": full}


def ccdf_model_comparison(data, tail_fraction=0.03, n_grid=200):
    """Empirical vs model complementary CDFs on the right tail (Fig. 4).

    Fits all candidate models and evaluates their survival functions on
    a grid spanning the upper half of the data range.  Returns a dict
    with ``"x"`` (grid), ``"empirical"`` -- the empirical CCDF
    evaluated by interpolation on the grid -- and one survival curve
    per fitted model (keys as in
    :func:`repro.distributions.fitting.fit_all_candidates`), plus the
    fitted ``"models"`` themselves.
    """
    arr = as_1d_float_array(data, "data", min_length=100)
    models = fit_all_candidates(arr, tail_fraction=tail_fraction)
    x_emp, s_emp = empirical_ccdf(arr)
    median = float(np.median(arr))
    grid = np.logspace(np.log10(median), np.log10(float(arr.max())), n_grid)
    # Step-function interpolation of the empirical CCDF on the grid:
    # with idx sample points <= g, the fraction above g is (n - idx)/n,
    # which is s_emp[idx - 1] (and 1 when no points lie at or below g).
    idx = np.searchsorted(x_emp, grid, side="right")
    empirical = np.where(idx > 0, s_emp[np.maximum(idx - 1, 0)], 1.0)
    out = {"x": grid, "empirical": empirical, "models": models}
    for name, model in models.items():
        out[name] = np.asarray(model.sf(grid), dtype=float)
    return out


def left_tail_comparison(data, tail_fraction=0.03, n_grid=200):
    """Empirical vs model CDFs on the left tail (Fig. 5).

    Same structure as :func:`ccdf_model_comparison` but with CDF values
    on a grid spanning from the sample minimum up to the median.  The
    paper uses this plot to confirm that the Gamma body fits the lower
    end adequately (the left tail is not symmetric to the right one).
    """
    arr = as_1d_float_array(data, "data", min_length=100)
    if np.any(arr <= 0):
        raise ValueError("bandwidth data must be strictly positive")
    models = fit_all_candidates(arr, tail_fraction=tail_fraction)
    x_emp, f_emp = empirical_cdf(arr)
    median = float(np.median(arr))
    grid = np.logspace(np.log10(float(arr.min())), np.log10(median), n_grid)
    idx = np.searchsorted(x_emp, grid, side="right")
    empirical = np.where(idx > 0, f_emp[np.maximum(idx - 1, 0)], 0.0)
    out = {"x": grid, "empirical": empirical, "models": models}
    for name, model in models.items():
        out[name] = np.asarray(model.cdf(grid), dtype=float)
    return out
