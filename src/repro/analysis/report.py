"""One-call statistical report for a VBR trace.

Combines everything Section 3 of the paper does -- summary statistics,
marginal model comparison, the full Hurst-estimator panel, honest
confidence intervals and the stationarity verdict -- into a single
structured object with a formatted text rendering.  This is what the
CLI's ``analyze`` command and downstream users get as the library's
"tell me about this trace" entry point.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro._validation import as_1d_float_array

__all__ = ["TraceReport", "analyze_trace"]


@dataclass(frozen=True)
class TraceReport:
    """Everything Section 3 of the paper says about one trace."""

    summary: object
    """The :class:`~repro.analysis.summary.TraceSummary`."""

    marginal: object
    """The fitted :class:`~repro.distributions.hybrid.GammaParetoHybrid`."""

    tail_ranking: list
    """Candidate models sorted by right-tail fit (best first)."""

    hurst_estimates: dict = field(repr=False)
    """``{estimator_name: H}`` over the full panel."""

    hurst: float
    """Consensus H (median of the panel)."""

    mean_ci_halfwidth: float
    """LRD-honest 95% CI half-width for the mean rate."""

    stationarity: object = field(repr=False)
    """The :class:`~repro.analysis.stationarity.StationarityReport`."""

    is_lrd: bool
    """Whether the consensus H exceeds 0.6 (clearly long-range dependent)."""

    def format(self):
        """Human-readable multi-paragraph report."""
        from repro.experiments.reporting import format_kv, format_table

        lines = [format_kv(self.summary.format_rows(), title="Summary statistics:")]
        lines.append("")
        lines.append(f"Marginal model: {self.marginal!r}")
        lines.append("Tail ranking (best first): " + ", ".join(self.tail_ranking))
        lines.append("")
        rows = [[name, f"{h:.3f}"] for name, h in self.hurst_estimates.items()]
        lines.append(format_table(["estimator", "H"], rows, title="Hurst panel:"))
        lines.append("")
        lines.append(
            f"Consensus H = {self.hurst:.2f}; mean rate 95% CI half-width "
            f"(LRD-honest) = {self.mean_ci_halfwidth:.0f} bytes/slot."
        )
        s = self.stationarity
        lines.append(
            f"Stationarity: segment means wander {s.iid_ratio:.1f}x the i.i.d. "
            f"prediction but {s.lrd_ratio:.2f}x the stationary-LRD prediction"
            + (" -- stationary LRD explains the data." if s.lrd_explains_dispersion
               else " -- inspect for genuine non-stationarity.")
        )
        verdict = (
            "VERDICT: long-range dependent, heavy-tailed traffic; use LRD-aware "
            "models and resource allocation."
            if self.is_lrd
            else "VERDICT: no strong long-range dependence detected."
        )
        lines.append(verdict)
        return "\n".join(lines)


def analyze_trace(trace_or_series, time_unit_ms=1000.0 / 24.0, tail_fraction=0.03):
    """Run the complete Section 3 analysis battery on a trace.

    Accepts a :class:`~repro.video.trace.VBRTrace` (frame resolution is
    analysed) or a plain series with an explicit ``time_unit_ms``.
    Returns a :class:`TraceReport`.
    """
    from repro.analysis.confidence import lrd_mean_ci
    from repro.analysis.dispersion import index_of_dispersion
    from repro.analysis.hurst import gph, rs_pox, variance_time, whittle_aggregated
    from repro.analysis.stationarity import lrd_stationarity_check
    from repro.analysis.summary import summarize
    from repro.analysis.wavelet import wavelet_hurst
    from repro.experiments.fig04_ccdf import run as ccdf_run
    from repro.video.trace import VBRTrace

    if isinstance(trace_or_series, VBRTrace):
        x = trace_or_series.frame_bytes
        time_unit_ms = trace_or_series.frame_interval_ms
        trace = trace_or_series
    else:
        x = as_1d_float_array(trace_or_series, "series", min_length=1000)
        trace = VBRTrace(x, frame_rate=1000.0 / time_unit_ms)
    summary = summarize(x, time_unit_ms)
    ccdf = ccdf_run(trace, tail_fraction=tail_fraction)
    estimates = {
        "variance-time": variance_time(x).hurst,
        "R/S": rs_pox(x).hurst,
        "GPH": gph(x).hurst,
        "IDC": index_of_dispersion(x).hurst,
        "wavelet": wavelet_hurst(x).hurst,
    }
    agg = whittle_aggregated(x, m_values=[max(x.size // 500, 1)])
    estimates[f"Whittle (m={agg[0][0]})"] = agg[0][1].hurst
    consensus = float(np.median(list(estimates.values())))
    h_for_ci = float(np.clip(consensus, 0.51, 0.97))
    _, halfwidth = lrd_mean_ci(x, h_for_ci)
    stationarity = lrd_stationarity_check(x, h_for_ci)
    return TraceReport(
        summary=summary,
        marginal=ccdf["models"]["gamma_pareto"],
        tail_ranking=list(ccdf["ranking"]),
        hurst_estimates=estimates,
        hurst=consensus,
        mean_ci_halfwidth=float(halfwidth),
        stationarity=stationarity,
        is_lrd=consensus > 0.6,
    )
