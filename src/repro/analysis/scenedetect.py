"""Scene-change detection from a bandwidth trace.

The paper attributes the trace's structure to scenes: "the camera shows
a scene with little change for a time, and then switches to another
one", and leaves explicit scene modeling as an open question.  This
module closes the loop for the scene-based synthesizer: it detects
scene boundaries directly from the byte-per-frame series (intraframe
coding makes the rate piecewise-stable within a scene), measures the
scene-duration distribution, and -- via the heavy-tailed-renewal
connection ``H = (3 - alpha) / 2`` -- predicts the Hurst parameter
from the duration tail alone.

Detection is a simple two-window mean-shift test: a boundary is
declared where the means of the adjacent windows differ by more than
``threshold`` times the local scale, subject to a minimum scene
length.  This is deliberately the kind of detector a 1994 tool chain
could run; it recovers the synthesizer's scripted boundaries well
enough to reproduce the duration-tail statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro._validation import as_1d_float_array, require_positive, require_positive_int

__all__ = ["SceneAnalysis", "detect_scene_changes", "analyze_scenes"]


def detect_scene_changes(data, window=12, threshold=0.35, min_scene_frames=12):
    """Detect scene boundaries in a bandwidth series.

    Parameters
    ----------
    data:
        Bytes per frame.
    window:
        Half-window length for the two-sample mean comparison.
    threshold:
        Relative mean shift that declares a boundary:
        ``|mean_right - mean_left| > threshold * mean_left``.
    min_scene_frames:
        Boundaries closer than this to the previous one are suppressed.

    Returns a sorted integer array of boundary indices (frame where a
    new scene starts), always beginning with 0.
    """
    arr = as_1d_float_array(data, "data", min_length=4 * window)
    window = require_positive_int(window, "window")
    threshold = require_positive(threshold, "threshold")
    min_scene_frames = require_positive_int(min_scene_frames, "min_scene_frames")
    csum = np.concatenate(([0.0], np.cumsum(arr)))
    n = arr.size
    t = np.arange(window, n - window)
    left = (csum[t] - csum[t - window]) / window
    right = (csum[t + window] - csum[t]) / window
    shift = np.abs(right - left) / np.maximum(left, 1e-12)
    candidates = t[shift > threshold]
    boundaries = [0]
    # Greedy suppression: keep the locally strongest candidate of each
    # run of consecutive candidates, honoring the minimum scene length.
    shift_by_t = dict(zip(t.tolist(), shift.tolist()))
    i = 0
    while i < candidates.size:
        j = i
        while j + 1 < candidates.size and candidates[j + 1] - candidates[j] <= window:
            j += 1
        run = candidates[i : j + 1]
        best = int(run[np.argmax([shift_by_t[int(c)] for c in run])])
        if best - boundaries[-1] >= min_scene_frames:
            boundaries.append(best)
        i = j + 1
    return np.asarray(boundaries, dtype=int)


@dataclass(frozen=True)
class SceneAnalysis:
    """Scene statistics extracted from a bandwidth trace."""

    boundaries: np.ndarray = field(repr=False)
    """Scene start indices (first entry 0)."""

    durations: np.ndarray = field(repr=False)
    """Scene durations in frames (the final, censored scene included)."""

    mean_duration: float
    """Average scene duration in frames."""

    median_duration: float
    """Median scene duration in frames."""

    duration_tail_shape: float
    """Pareto shape ``alpha`` fitted to the duration tail."""

    implied_hurst: float
    """``(3 - alpha) / 2`` (clipped to [0.5, 1]): the Hurst parameter
    the heavy-tailed-renewal mechanism predicts from the durations."""

    scene_levels: np.ndarray = field(repr=False)
    """Mean bytes/frame within each scene."""

    @property
    def n_scenes(self):
        """Number of detected scenes."""
        return int(self.durations.size)


def analyze_scenes(data, window=12, threshold=0.35, min_scene_frames=12, tail_fraction=0.25):
    """Detect scenes and fit the duration-tail / Hurst connection.

    ``tail_fraction`` selects the upper quantile of durations used for
    the Pareto-tail fit (scene durations are far fewer than frames, so
    a broad tail window is needed for a stable slope).
    """
    arr = as_1d_float_array(data, "data", min_length=100)
    boundaries = detect_scene_changes(
        arr, window=window, threshold=threshold, min_scene_frames=min_scene_frames
    )
    edges = np.concatenate((boundaries, [arr.size]))
    durations = np.diff(edges).astype(float)
    levels = np.array([float(np.mean(arr[a:b])) for a, b in zip(edges[:-1], edges[1:])])
    if durations.size < 10:
        raise ValueError(
            f"only {durations.size} scenes detected; lower the threshold or "
            "provide a longer trace"
        )
    from repro.distributions.fitting import fit_pareto_tail_slope

    alpha = fit_pareto_tail_slope(
        durations, tail_fraction=tail_fraction, min_points=min(10, durations.size // 2)
    )
    implied = float(np.clip((3.0 - alpha) / 2.0, 0.5, 1.0))
    return SceneAnalysis(
        boundaries=boundaries,
        durations=durations,
        mean_duration=float(np.mean(durations)),
        median_duration=float(np.median(durations)),
        duration_tail_shape=float(alpha),
        implied_hurst=implied,
        scene_levels=levels,
    )
