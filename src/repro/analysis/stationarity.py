"""Stationarity versus long-range dependence (Section 3.2.2).

The paper argues that VBR video's apparent non-stationarity is better
modeled as *stationary long-range dependence*: "non-stationarity may
mean that one has simply not yet found a satisfactory description of
the process ... Long-range dependent processes provide a convenient
theory within the framework of stationarity that accounts for the
observed low-frequency modulation of the statistics."

This module turns that argument into a test.  For a stationary process
with Hurst parameter H, the means of length-``m`` segments have
standard deviation ``~ sigma * m^(H-1)``.  Comparing the *observed*
dispersion of segment means against the i.i.d. prediction
(``sigma / sqrt(m)``) and the LRD prediction (``sigma * m^(H-1)``)
shows which stationary model explains the data:

- i.i.d./SRD: observed dispersion far exceeds the prediction (the
  "non-stationarity illusion" of Fig. 3);
- stationary LRD: observed dispersion matches the prediction, so no
  trend-removal or non-stationary modeling is needed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro._validation import as_1d_float_array, require_in_open_interval, require_positive_int

__all__ = ["StationarityReport", "segment_mean_dispersion", "lrd_stationarity_check"]


@dataclass(frozen=True)
class StationarityReport:
    """Dispersion of segment means versus stationary predictions."""

    segment_length: int
    """Length ``m`` of each (non-overlapping) segment."""

    n_segments: int
    """Number of segments analysed."""

    observed_dispersion: float
    """Sample standard deviation of the segment means."""

    iid_prediction: float
    """``sigma / sqrt(m)``: the i.i.d./SRD stationary prediction."""

    lrd_prediction: float
    """``sigma * m^(H-1)``: the stationary-LRD prediction."""

    hurst: float
    """Hurst parameter used for the LRD prediction."""

    @property
    def iid_ratio(self):
        """Observed over i.i.d.-predicted dispersion (>> 1 for LRD data)."""
        return self.observed_dispersion / self.iid_prediction

    @property
    def lrd_ratio(self):
        """Observed over LRD-predicted dispersion (~ 1 if LRD explains it)."""
        return self.observed_dispersion / self.lrd_prediction

    @property
    def lrd_explains_dispersion(self):
        """Whether stationary LRD accounts for the wandering means.

        True when the LRD ratio is within a factor ~2 of unity while
        the i.i.d. ratio is far above it -- the paper's qualitative
        criterion made explicit.
        """
        return 0.4 < self.lrd_ratio < 2.5 and self.iid_ratio > 2.0 * self.lrd_ratio


def segment_mean_dispersion(data, segment_length):
    """Sample standard deviation of non-overlapping segment means."""
    arr = as_1d_float_array(data, "data", min_length=4)
    segment_length = require_positive_int(segment_length, "segment_length")
    n_segments = arr.size // segment_length
    if n_segments < 2:
        raise ValueError(
            f"need at least 2 segments; {arr.size} points give {n_segments} "
            f"of length {segment_length}"
        )
    means = arr[: n_segments * segment_length].reshape(n_segments, segment_length).mean(axis=1)
    return float(np.std(means, ddof=1)), int(n_segments)


def lrd_stationarity_check(data, hurst, segment_length=None):
    """Does stationary LRD explain the wandering of segment means?

    Parameters
    ----------
    data:
        The series.
    hurst:
        Hurst parameter (e.g. from
        :func:`repro.analysis.hurst.variance_time`).
    segment_length:
        Segment size ``m``; defaults to ``len(data) // 20``.

    Returns a :class:`StationarityReport`.
    """
    arr = as_1d_float_array(data, "data", min_length=100)
    hurst = require_in_open_interval(hurst, "hurst", 0.0, 1.0)
    if segment_length is None:
        segment_length = max(arr.size // 20, 2)
    observed, n_segments = segment_mean_dispersion(arr, segment_length)
    sigma = float(np.std(arr, ddof=0))
    return StationarityReport(
        segment_length=int(segment_length),
        n_segments=n_segments,
        observed_dispersion=observed,
        iid_prediction=sigma / np.sqrt(segment_length),
        lrd_prediction=sigma * segment_length ** (hurst - 1.0),
        hurst=hurst,
    )
