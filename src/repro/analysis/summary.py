"""Summary statistics of a bandwidth series (Table 2 of the paper).

For the Star-Wars trace the paper reports, at frame (41.67 ms) and
slice (1.389 ms) resolution: mean, standard deviation, coefficient of
variation, maximum, minimum, and the peak-to-mean "burstiness" ratio,
which bounds the statistical multiplexing gain.
"""

from __future__ import annotations

from dataclasses import dataclass, asdict

import numpy as np

from repro._validation import as_1d_float_array, require_positive

__all__ = ["TraceSummary", "summarize"]


@dataclass(frozen=True)
class TraceSummary:
    """Distributional summary of one time series (one Table 2 column)."""

    time_unit_ms: float
    """Duration of one observation slot in milliseconds."""

    n_observations: int
    """Number of observations in the series."""

    mean: float
    """Mean bandwidth in bytes per slot (the paper's ``mu``)."""

    std: float
    """Standard deviation in bytes per slot (the paper's ``sigma``)."""

    coefficient_of_variation: float
    """``sigma / mu`` -- dimensionless spread."""

    maximum: float
    """Largest observed bandwidth per slot."""

    minimum: float
    """Smallest observed bandwidth per slot."""

    peak_to_mean: float
    """Burstiness: peak over mean; bounds the multiplexing gain."""

    @property
    def mean_rate_bps(self):
        """Mean bandwidth expressed in bits per second."""
        return self.mean * 8.0 / (self.time_unit_ms / 1000.0)

    def as_dict(self):
        """Plain-dict view (for tabulation and JSON export)."""
        return asdict(self)

    def format_rows(self):
        """Human-readable ``(label, value)`` rows mirroring Table 2."""
        return [
            ("Time unit (msec)", f"{self.time_unit_ms:.4g}"),
            ("Mean bandwidth (bytes/slot)", f"{self.mean:.1f}"),
            ("Standard deviation (bytes/slot)", f"{self.std:.1f}"),
            ("Coef. of variation", f"{self.coefficient_of_variation:.2f}"),
            ("Maximum bandwidth (bytes/slot)", f"{self.maximum:.0f}"),
            ("Minimum bandwidth (bytes/slot)", f"{self.minimum:.0f}"),
            ("Peak/mean bandwidth", f"{self.peak_to_mean:.2f}"),
            ("Mean rate (Mb/s)", f"{self.mean_rate_bps / 1e6:.2f}"),
        ]


def summarize(data, time_unit_ms):
    """Compute a :class:`TraceSummary` for a bandwidth series.

    Parameters
    ----------
    data:
        Bytes per slot, one entry per time slot.
    time_unit_ms:
        Slot duration in milliseconds (41.67 for 24 fps frames, 1.389
        for 30 slices per frame).
    """
    arr = as_1d_float_array(data, "data")
    time_unit_ms = require_positive(time_unit_ms, "time_unit_ms")
    mean = float(np.mean(arr))
    if mean <= 0:
        raise ValueError("bandwidth series must have a positive mean")
    std = float(np.std(arr, ddof=0))
    return TraceSummary(
        time_unit_ms=time_unit_ms,
        n_observations=int(arr.size),
        mean=mean,
        std=std,
        coefficient_of_variation=std / mean,
        maximum=float(np.max(arr)),
        minimum=float(np.min(arr)),
        peak_to_mean=float(np.max(arr)) / mean,
    )
