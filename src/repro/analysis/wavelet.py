"""Wavelet (Abry-Veitch style) Hurst estimation with Haar wavelets.

The wavelet energy of an LRD process scales across octaves: if
``d_{j,k}`` are the detail coefficients at octave ``j`` then

    ``E[d_j^2] ~ 2^{j (2H - 1)}``

so regressing ``log2`` of the per-octave mean energy on ``j`` yields
``H``.  The estimator is naturally robust to polynomial trends (the
Haar wavelet has one vanishing moment, killing constants) and to
short-range structure (fit over the coarse octaves only), making it a
strong cross-check on the variance-time, R/S and Whittle estimates of
Table 3.  The Haar transform is implemented directly -- no wavelet
library required.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro._validation import as_1d_float_array

__all__ = ["WaveletResult", "haar_detail_energy", "wavelet_hurst"]


@dataclass(frozen=True)
class WaveletResult:
    """Outcome of a wavelet-energy Hurst estimation."""

    hurst: float
    """Estimated Hurst parameter ``(slope + 1) / 2``."""

    slope: float
    """Fitted log2-energy slope across octaves (``2H - 1`` for FGN)."""

    octaves: np.ndarray = field(repr=False)
    """Octave indices ``j`` (1 = finest scale)."""

    energies: np.ndarray = field(repr=False)
    """Mean squared detail coefficient per octave."""

    counts: np.ndarray = field(repr=False)
    """Number of detail coefficients per octave."""

    fit_mask: np.ndarray = field(repr=False)
    """Octaves used in the regression."""


def haar_detail_energy(data, max_octaves=None):
    """Per-octave mean Haar detail energy.

    Octave ``j`` coefficients are
    ``d_{j,k} = (s_{j-1,2k} - s_{j-1,2k+1}) / sqrt(2)`` with ``s_0`` the
    data and ``s_j`` the running pairwise means scaled by ``sqrt(2)``
    (the standard orthonormal Haar pyramid).  Returns
    ``(octaves, energies, counts)``.
    """
    arr = as_1d_float_array(data, "data", min_length=8)
    if max_octaves is None:
        max_octaves = int(np.log2(arr.size)) - 2
    max_octaves = max(int(max_octaves), 1)
    smooth = arr.copy()
    octaves = []
    energies = []
    counts = []
    for j in range(1, max_octaves + 1):
        n_pairs = smooth.size // 2
        if n_pairs < 2:
            break
        pairs = smooth[: 2 * n_pairs].reshape(n_pairs, 2)
        details = (pairs[:, 0] - pairs[:, 1]) / np.sqrt(2.0)
        smooth = (pairs[:, 0] + pairs[:, 1]) / np.sqrt(2.0)
        octaves.append(j)
        energies.append(float(np.mean(details**2)))
        counts.append(int(n_pairs))
    return np.asarray(octaves), np.asarray(energies), np.asarray(counts, dtype=int)


def wavelet_hurst(data, octave_range=None, max_octaves=None):
    """Estimate H from the Haar wavelet energy cascade.

    Parameters
    ----------
    data:
        The series (length >= 256 recommended).
    octave_range:
        ``(j_lo, j_hi)`` octaves for the weighted regression; defaults
        to octave 3 (skipping the finest scales, where short-range
        structure lives) through the coarsest octave with at least 8
        coefficients.

    The regression of ``log2(energy_j)`` on ``j`` is weighted by the
    coefficient counts (variance of the log-energy estimate scales like
    ``1/n_j``).
    """
    arr = as_1d_float_array(data, "data", min_length=256)
    octaves, energies, counts = haar_detail_energy(arr, max_octaves=max_octaves)
    if octave_range is None:
        coarse_ok = octaves[counts >= 8]
        octave_range = (3, int(coarse_ok.max()) if coarse_ok.size else int(octaves.max()))
    lo, hi = octave_range
    mask = (octaves >= lo) & (octaves <= hi) & (energies > 0)
    if mask.sum() < 2:
        raise ValueError(f"fewer than 2 usable octaves in range {octave_range}")
    x = octaves[mask].astype(float)
    y = np.log2(energies[mask])
    w = counts[mask].astype(float)
    slope, _ = np.polyfit(x, y, 1, w=np.sqrt(w))
    slope = float(slope)
    return WaveletResult(
        hurst=(slope + 1.0) / 2.0,
        slope=slope,
        octaves=octaves,
        energies=energies,
        counts=counts,
        fit_mask=mask,
    )
