"""Command-line interface: synthesize, analyze, simulate, reproduce.

Usage (also via ``python -m repro``):

    repro synthesize --frames 20000 --out trace.dat
    repro analyze trace.dat
    repro analyze --synthetic --frames 40000
    repro report trace.dat
    repro simulate trace.dat --sources 5 --capacity-mbps 7.0 --buffer-ms 10
    repro stream --samples 10000000 --backend paxson --out frames.npy --stats
    repro stream --samples 1000000 --profile --run-report run.json
    repro experiments --quick
    repro experiments --quick --checkpoint-dir ckpt --resume --max-retries 2
    repro experiments --quick --profile fig14
    repro alloc --demo --users 32 --epochs 24 --workers 2
    repro alloc --demo --allocator harvest --json
    repro obs report run.json
    repro obs export-metrics run.json
    repro obs bench-diff baseline.json BENCH_obs.json --tolerance 0.2
    repro net topology.json --record-events
    repro net --demo --frames 4000 --json
    repro doctor trace.dat

Stream discipline: *data products* (tables, summaries, streamed
samples) go to stdout; *diagnostics* (progress, timings, "wrote ...")
go through :mod:`repro.obs.log` to stderr, so piping any command's
stdout stays clean.  ``--log-level``/``--log-json``/``--quiet`` are
accepted both before and after the subcommand.

Exit status: 0 on success, 1 for internal errors, failed experiments
or benchmark regressions, 2 for bad user input (missing or malformed
trace files).
"""

from __future__ import annotations

import argparse
import json
import sys

import numpy as np

from repro.obs import log as obs_log

__all__ = ["main", "build_parser"]

_LOGGER = obs_log.get_logger("cli")


def _logging_options():
    """Shared ``--log-*`` options, accepted before or after the subcommand.

    Defaults are ``SUPPRESS`` so a subparser never clobbers a value the
    user passed at the top level.
    """
    common = argparse.ArgumentParser(add_help=False)
    group = common.add_argument_group("logging")
    group.add_argument("--log-level", default=argparse.SUPPRESS,
                       choices=("DEBUG", "INFO", "WARNING", "ERROR"),
                       help="diagnostic verbosity on stderr (default INFO)")
    group.add_argument("--log-json", action="store_true", default=argparse.SUPPRESS,
                       help="emit diagnostics as one JSON object per line")
    group.add_argument("--quiet", action="store_true", default=argparse.SUPPRESS,
                       help="suppress diagnostics below WARNING")
    return common


def build_parser():
    """The argparse parser for the ``repro`` command."""
    common = _logging_options()
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Self-similar VBR video traffic: analysis, modeling, generation",
        parents=[common],
    )
    sub = parser.add_subparsers(dest="command", required=True, parser_class=(
        lambda **kw: argparse.ArgumentParser(parents=[common], **kw)
    ))

    p_syn = sub.add_parser("synthesize", help="synthesize a calibrated VBR trace")
    p_syn.add_argument("--frames", type=int, default=20_000)
    p_syn.add_argument("--seed", type=int, default=0)
    p_syn.add_argument("--out", required=True, help="output trace file")
    p_syn.add_argument("--unit", choices=("frame", "slice"), default="frame")
    p_syn.add_argument("--mpeg", action="store_true",
                       help="synthesize an MPEG-like (interframe) trace instead")

    p_ana = sub.add_parser("analyze", help="analyze a trace (Tables 2-3 style)")
    p_ana.add_argument("trace", nargs="?", help="trace file (omit with --synthetic)")
    p_ana.add_argument("--synthetic", action="store_true")
    p_ana.add_argument("--frames", type=int, default=40_000)
    p_ana.add_argument("--seed", type=int, default=0)

    p_sim = sub.add_parser("simulate", help="queueing simulation of multiplexed sources")
    p_sim.add_argument("trace", nargs="?", help="trace file (omit with --synthetic)")
    p_sim.add_argument("--synthetic", action="store_true")
    p_sim.add_argument("--frames", type=int, default=40_000)
    p_sim.add_argument("--seed", type=int, default=0)
    p_sim.add_argument("--sources", type=int, default=1)
    p_sim.add_argument("--capacity-mbps", type=float, required=True,
                       help="aggregate channel capacity in Mb/s")
    p_sim.add_argument("--buffer-ms", type=float, default=10.0,
                       help="buffer size as delay at full capacity")

    p_str = sub.add_parser(
        "stream",
        help="stream model traffic in constant memory (chunked generate+transform)",
    )
    p_str.add_argument("--samples", type=int, default=1_000_000,
                       help="total samples to emit")
    p_str.add_argument("--chunk", type=int, default=65_536,
                       help="samples per chunk (the memory bound)")
    p_str.add_argument("--backend", choices=("hosking", "davies-harte", "paxson"),
                       default="paxson")
    p_str.add_argument("--hurst", type=float, default=0.8)
    p_str.add_argument("--block-size", type=int, default=65_536,
                       help="synthesis block for the approximate backends")
    p_str.add_argument("--overlap", type=int, default=1_024,
                       help="cross-fade overlap between synthesis blocks")
    p_str.add_argument("--batch", type=int, default=None, metavar="B",
                       help="blocks pre-synthesized per stacked FFT "
                            "(bit-identical output; default 1 or $REPRO_BATCH)")
    p_str.add_argument("--sources", type=int, default=1,
                       help="independent sources generated on a worker pool and summed")
    p_str.add_argument("--seed", type=int, default=0)
    p_str.add_argument("--gaussian", action="store_true",
                       help="emit the raw Gaussian noise (skip the marginal transform)")
    p_str.add_argument("--table", action="store_true",
                       help="use the paper's 10,000-point transform table (faster)")
    p_str.add_argument("--out", default="-",
                       help='output .npy file, or "-" for one sample per stdout line')
    p_str.add_argument("--stats", action="store_true",
                       help="fold online moments + streaming Hurst, report on stderr")
    p_str.add_argument("--profile", action="store_true",
                       help="trace and meter the run; write a run.json manifest")
    p_str.add_argument("--run-report", default="run.json", metavar="PATH",
                       help="manifest path for --profile (default run.json)")
    p_str.add_argument("--profile-memory", action="store_true",
                       help="with --profile, also record tracemalloc peaks (slower)")
    p_str.add_argument("--cache-dir", default=None, metavar="DIR",
                       help="content-addressed cache for generator tables "
                            "(eigenvalues, ACF coefficients)")

    p_exp = sub.add_parser("experiments", help="run the full reproduction suite")
    p_exp.add_argument("--quick", action="store_true")
    p_exp.add_argument("--checkpoint-dir", default=None,
                       help="persist each completed experiment here")
    p_exp.add_argument("--resume", action="store_true",
                       help="skip digest-verified checkpoints from a previous run")
    p_exp.add_argument("--max-retries", type=int, default=0,
                       help="retries per experiment for transient failures")
    p_exp.add_argument("--timeout-s", type=float, default=None,
                       help="per-experiment soft timeout in seconds")
    p_exp.add_argument("--seed", type=int, default=0,
                       help="base seed for per-attempt seed rotation")
    p_exp.add_argument("--profile", nargs="?", const="", default=None,
                       metavar="EXPERIMENT",
                       help="trace and meter the suite (optionally one experiment "
                            "id, e.g. fig14); writes a run.json manifest")
    p_exp.add_argument("--run-report", default="run.json", metavar="PATH",
                       help="manifest path for --profile (default run.json)")
    p_exp.add_argument("--profile-memory", action="store_true",
                       help="with --profile, also record tracemalloc peaks (slower)")
    p_exp.add_argument("--batch", type=int, default=None, metavar="B",
                       help="default rows per stacked fGn synthesis for the "
                            "run (golden digests are batch-invariant)")
    p_exp.add_argument("--workers", type=int, default=1,
                       help="experiments run concurrently through the supervisor; "
                            "results are identical at every worker count")
    p_exp.add_argument("--cache-dir", default=None, metavar="DIR",
                       help="content-addressed cache for generator tables and "
                            "synthesized traces (digest-verified on every hit)")
    p_exp.add_argument("--nodes", default=None, metavar="NODES",
                       help='distribute over worker nodes: "sim:3" for a '
                            'simulated cluster, or "host:port,..." for '
                            '"repro dist serve" workers')
    p_exp.add_argument("--lease-s", type=float, default=10.0,
                       help="with --nodes: per-task lease renewed by worker "
                            "heartbeats (default 10s)")
    p_exp.add_argument("--task-timeout-s", type=float, default=None,
                       help="with --nodes: hard per-attempt cap, catches "
                            "workers that heartbeat but never finish")
    p_exp.add_argument("--authkey", default=None,
                       help="with --nodes: shared secret for the socket "
                            "transport (or $REPRO_DIST_AUTHKEY)")
    p_exp.add_argument("--flight", default=None, metavar="PATH",
                       help="with --nodes: stream a flight recording of the "
                            "campaign here (live-tailable with "
                            '"repro dist top PATH --follow"; persisted '
                            "atomically on exit, crash, or SIGTERM)")

    p_obs = sub.add_parser("obs", help="inspect run manifests, metrics and benchmarks")
    obs_sub = p_obs.add_subparsers(dest="obs_command", required=True)
    p_obs_rep = obs_sub.add_parser("report", help="pretty-print a run.json manifest")
    p_obs_rep.add_argument("run_json", help="manifest written by --profile")
    p_obs_exp = obs_sub.add_parser(
        "export-metrics", help="re-render a manifest's metrics as Prometheus text"
    )
    p_obs_exp.add_argument("run_json", help="manifest written by --profile")
    p_obs_diff = obs_sub.add_parser(
        "bench-diff", help="compare two BENCH_*.json files; exit 1 on regression"
    )
    p_obs_diff.add_argument("baseline", help="baseline BENCH_*.json")
    p_obs_diff.add_argument("current", help="current BENCH_*.json")
    p_obs_diff.add_argument("--tolerance", type=float, default=0.2,
                            help="relative change treated as a regression (default 0.2)")

    p_net = sub.add_parser(
        "net", help="multi-hop network simulation from a topology spec"
    )
    p_net.add_argument("specs", nargs="*", metavar="SPEC",
                       help="topology spec JSON file(s); omit with --demo")
    p_net.add_argument("--demo", action="store_true",
                       help="run a built-in 3-hop tandem fed by the synthetic trace")
    p_net.add_argument("--frames", type=int, default=4_000,
                       help="demo trace length in frames (default 4000)")
    p_net.add_argument("--seed", type=int, default=0, help="demo trace seed")
    p_net.add_argument("--capacity-factor", type=float, default=1.1,
                       help="demo per-hop capacity as a multiple of the mean rate")
    p_net.add_argument("--buffer-ms", type=float, default=250.0,
                       help="demo per-hop buffer as delay at link capacity")
    p_net.add_argument("--workers", type=int, default=1,
                       help="run multiple specs on a process pool; results are "
                            "identical at every worker count")
    p_net.add_argument("--record-events", action="store_true",
                       help="record the event trace and report its sha256 digest")
    p_net.add_argument("--json", action="store_true", dest="as_json",
                       help="emit full results as JSON on stdout")

    p_doc = sub.add_parser(
        "doctor", help="diagnose a trace file and/or preflight a worker cluster"
    )
    p_doc.add_argument("trace", nargs="?", default=None,
                       help="trace file to examine (optional with --nodes)")
    p_doc.add_argument("--repair-budget", type=int, default=64,
                       help="maximum bad lines the lenient loader may repair")
    p_doc.add_argument("--nodes", default=None, metavar="NODES",
                       help='probe "repro dist serve" endpoints '
                            '("host:port,host:port,...") before a campaign')
    p_doc.add_argument("--authkey", default=None,
                       help="shared secret for the probe (or $REPRO_DIST_AUTHKEY)")
    p_doc.add_argument("--probe-timeout-s", type=float, default=2.0,
                       help="per-node probe deadline in seconds (default 2)")
    p_doc.add_argument("--slow-ms", type=float, default=250.0,
                       help="round-trip above this is reported as slow (default 250)")

    p_dist = sub.add_parser("dist", help="distributed campaign worker nodes")
    dist_sub = p_dist.add_subparsers(dest="dist_command", required=True)
    p_dist_srv = dist_sub.add_parser(
        "serve", help="run a worker node serving distributed campaigns"
    )
    p_dist_srv.add_argument("address",
                            help='bind address: "host:port" ("host:0" picks a '
                                 'free port) or "unix:/path"')
    p_dist_srv.add_argument("--name", default=None,
                            help="node name announced to coordinators "
                                 "(default hostname-pid)")
    p_dist_srv.add_argument("--authkey", default=None,
                            help="shared secret coordinators must present "
                                 "(or $REPRO_DIST_AUTHKEY)")
    p_dist_srv.add_argument("--cache-dir", default=None, metavar="DIR",
                            help="shared content-addressed artifact store; "
                                 "fGn payloads travel as digest-verified "
                                 "references instead of over the socket")
    p_dist_srv.add_argument("--once", action="store_true",
                            help="serve a single coordinator connection, "
                                 "then exit (for tests)")
    p_dist_top = dist_sub.add_parser(
        "top", help="live console over a campaign's flight recording"
    )
    p_dist_top.add_argument("flight", metavar="FLIGHT_JSONL",
                            help="flight.jsonl streamed by a coordinator "
                                 "started with --flight")
    p_dist_top.add_argument("--follow", action="store_true",
                            help="tail the file live (curses on a terminal, "
                                 "plain text otherwise) until the campaign ends")
    p_dist_top.add_argument("--interval", type=float, default=1.0,
                            help="refresh interval in seconds for --follow "
                                 "(default 1.0)")

    p_alc = sub.add_parser(
        "alloc",
        help="closed-loop bandwidth/buffer allocation over a competing fleet",
    )
    p_alc.add_argument("--demo", action="store_true",
                       help="run the built-in heterogeneous demo fleet "
                            "(mixed-Hurst video + CBR + bursty data)")
    p_alc.add_argument("--allocator", default="all", metavar="NAME",
                       help='policy to run: static, oracle, harvest, trade, '
                            'or "all" (default)')
    p_alc.add_argument("--users", type=int, default=32,
                       help="fleet size (default 32)")
    p_alc.add_argument("--epochs", type=int, default=24,
                       help="number of reallocation epochs (default 24)")
    p_alc.add_argument("--epoch-slots", type=int, default=80,
                       help="slots per epoch (default 80)")
    p_alc.add_argument("--utilization", type=float, default=0.8,
                       help="pool capacity as mean-rate/C (default 0.8)")
    p_alc.add_argument("--buffer-slots", type=float, default=12.0,
                       help="pool buffer as slots at full capacity (default 12)")
    p_alc.add_argument("--qos-loss", type=float, default=1e-3,
                       help="per-user QoS loss-rate target (default 1e-3)")
    p_alc.add_argument("--seed", type=int, default=2026,
                       help="fleet seed (sha256-derived per user and epoch)")
    p_alc.add_argument("--workers", type=int, default=1,
                       help="process-pool workers; digests are identical at "
                            "every worker count")
    p_alc.add_argument("--json", action="store_true", dest="as_json",
                       help="emit full per-allocator summaries as JSON on stdout")

    p_rep = sub.add_parser("report", help="full Section-3 analysis report")
    p_rep.add_argument("trace", nargs="?", help="trace file (omit with --synthetic)")
    p_rep.add_argument("--synthetic", action="store_true")
    p_rep.add_argument("--frames", type=int, default=40_000)
    p_rep.add_argument("--seed", type=int, default=0)

    p_gen = sub.add_parser("generate", help="generate traffic from the fitted model")
    p_gen.add_argument("trace", nargs="?", help="trace file to fit (omit with --synthetic)")
    p_gen.add_argument("--synthetic", action="store_true")
    p_gen.add_argument("--frames", type=int, default=20_000)
    p_gen.add_argument("--seed", type=int, default=0)
    p_gen.add_argument("--out", required=True, help="output trace file")
    return parser


def _load_or_synthesize(args):
    from repro.video.starwars import synthesize_starwars_trace
    from repro.video.tracefile import load_trace

    if getattr(args, "synthetic", False) or not args.trace:
        return synthesize_starwars_trace(
            n_frames=args.frames, seed=args.seed, with_slices=False
        )
    return load_trace(args.trace)


def _cmd_synthesize(args):
    from repro.video.interframe import synthesize_mpeg_trace
    from repro.video.starwars import synthesize_starwars_trace
    from repro.video.tracefile import save_trace

    if args.mpeg:
        trace = synthesize_mpeg_trace(n_frames=args.frames, seed=args.seed)
        if args.unit == "slice":
            raise SystemExit("--unit slice is not available for MPEG synthesis")
    else:
        trace = synthesize_starwars_trace(
            n_frames=args.frames, seed=args.seed, with_slices=args.unit == "slice"
        )
    save_trace(trace, args.out, unit=args.unit)
    _LOGGER.info(
        "wrote %d frames (%s resolution) to %s", args.frames, args.unit, args.out,
        extra={"frames": args.frames, "unit": args.unit, "out": args.out},
    )
    _LOGGER.info("%s", trace)
    return 0


def _cmd_analyze(args):
    from repro.analysis.hurst import hurst_summary
    from repro.experiments.fig04_ccdf import run as ccdf_run
    from repro.experiments.reporting import format_kv, format_table

    trace = _load_or_synthesize(args)
    print(format_kv(trace.summary("frame").format_rows(), title="Summary (frame):"))
    result = ccdf_run(trace)
    hybrid = result["models"]["gamma_pareto"]
    print(f"\nMarginal: {hybrid}")
    print("Tail ranking (best first):", ", ".join(result["ranking"]))
    hs = hurst_summary(trace.frame_bytes)
    w = hs["whittle"]
    rows = [
        ["Variance-Time", f"{hs['variance_time']:.3f}"],
        ["R/S", f"{hs['rs']:.3f}"],
        ["R/S aggregated", f"{hs['rs_aggregated']:.3f}"],
        ["Whittle", f"{w.hurst:.3f} +- {1.96 * w.std_error:.3f}"],
    ]
    print()
    print(format_table(["method", "H"], rows, title="Hurst estimates:"))
    return 0


def _cmd_simulate(args):
    from repro.simulation.multiplex import multiplex_series, random_lags
    from repro.simulation.queue import simulate_queue

    trace = _load_or_synthesize(args)
    x = trace.frame_bytes
    slot_seconds = 1.0 / trace.frame_rate
    rng = np.random.default_rng(args.seed)
    if args.sources > 1:
        min_sep = min(1000, x.size // (2 * args.sources))
        lags = random_lags(args.sources, x.size, min_separation=min_sep, rng=rng)
        arrivals = multiplex_series(x, lags)
    else:
        arrivals = x
    capacity = args.capacity_mbps * 1e6 / 8.0 * slot_seconds  # bytes per slot
    buffer_bytes = args.buffer_ms / 1000.0 * args.capacity_mbps * 1e6 / 8.0
    result = simulate_queue(arrivals, capacity, buffer_bytes)
    print(
        f"{args.sources} source(s), capacity {args.capacity_mbps:.2f} Mb/s, "
        f"buffer {buffer_bytes / 1e3:.0f} kB ({args.buffer_ms:g} ms)"
    )
    print(f"  offered:  {result.total_bytes / 1e6:.1f} MB")
    print(f"  lost:     {result.lost_bytes / 1e6:.3f} MB")
    print(f"  loss rate P_l = {result.loss_rate:.3e}")
    utilization = arrivals.mean() / capacity
    print(f"  utilization: {utilization:.2f}")
    return 0


def _write_npy_header(fh, n):
    """Write a v1.0 .npy header for a 1-D float64 array of length ``n``.

    The total length is known up front, so the file can be filled one
    chunk at a time without ever holding the array.
    """
    np.lib.format.write_array_header_1_0(
        fh, {"descr": "<f8", "fortran_order": False, "shape": (int(n),)}
    )


def _cmd_stream(args):
    import contextlib

    from repro.obs import report as obs_report

    if args.samples < 1:
        raise SystemExit("--samples must be >= 1")
    if args.chunk < 1:
        raise SystemExit("--chunk must be >= 1")
    if args.batch is not None and args.batch < 1:
        raise SystemExit("--batch must be >= 1")
    _configure_cache(args)

    profiler = contextlib.nullcontext()
    if args.profile:
        profiler = obs_report.profile(
            "stream",
            config={
                "samples": args.samples, "chunk": args.chunk,
                "backend": args.backend, "hurst": args.hurst,
                "sources": args.sources, "gaussian": bool(args.gaussian),
                "table": bool(args.table), "batch": args.batch,
            },
            seed=args.seed,
            path=args.run_report,
            memory=args.profile_memory,
            argv=sys.argv[1:],
        )
    with profiler:
        status = _stream_body(args)
    if args.profile:
        _LOGGER.info("wrote run report to %s", args.run_report,
                     extra={"out": args.run_report})
    return status


def _stream_body(args):
    import time

    from repro.distributions.hybrid import GammaParetoHybrid
    from repro.stream import (
        OnlineMoments,
        ParallelSources,
        Stream,
        StreamingVarianceTime,
        make_source,
    )

    rng = np.random.default_rng(args.seed)

    def build_source():
        return make_source(
            args.backend, hurst=args.hurst,
            block_size=args.block_size, overlap=args.overlap,
            batch=args.batch,
        )

    if args.sources > 1:
        pool = ParallelSources([build_source() for _ in range(args.sources)])
        stream = pool.stream(args.samples, args.chunk, rng=rng)
    else:
        stream = Stream.from_source(build_source(), args.samples, args.chunk, rng=rng)
    stream = stream.metered("source")
    if not args.gaussian:
        # The paper's Table 2 frame-level marginal; aggregated sources
        # get the transform per source-equivalent via the N(0, sqrt(N))
        # law of the summed Gaussians.
        marginal = GammaParetoHybrid(27_791.0, 6_254.0, 12.0)
        from repro.distributions.normal import Normal

        source_law = Normal(0.0, np.sqrt(float(max(args.sources, 1))))
        stream = stream.transform(
            marginal, source=source_law,
            method="table" if args.table else "exact",
        ).metered("transform")
    folders = []
    if args.stats:
        moments = OnlineMoments()
        vt = StreamingVarianceTime()
        folders = [moments, vt]
        stream = stream.observe(*folders)

    start = time.perf_counter()
    emitted = 0
    if args.out == "-":
        try:
            for chunk in stream:
                emitted += chunk.size
                sys.stdout.write("\n".join(f"{x:.6f}" for x in chunk) + "\n")
        except BrokenPipeError:
            # Downstream closed the pipe (e.g. `| head`): stop quietly,
            # pointing stdout at devnull so the interpreter's exit-time
            # flush does not raise again.
            import os

            os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
            return 0
    else:
        with open(args.out, "wb") as fh:
            _write_npy_header(fh, args.samples)
            for chunk in stream:
                emitted += chunk.size
                fh.write(np.ascontiguousarray(chunk, dtype="<f8").tobytes())
    elapsed = time.perf_counter() - start

    rate = emitted / elapsed if elapsed > 0 else float("inf")
    _LOGGER.info(
        "streamed %d samples (%s, chunk %d) in %.2fs (%s samples/s)",
        emitted, args.backend, args.chunk, elapsed, f"{rate:,.0f}",
        extra={"samples": emitted, "backend": args.backend,
               "chunk": args.chunk, "wall_s": round(elapsed, 3)},
    )
    if args.out != "-":
        _LOGGER.info("wrote %s", args.out, extra={"out": args.out})
    if args.stats:
        _LOGGER.info(
            "mean %.1f  std %.1f  min %.1f  max %.1f",
            moments.mean, moments.std, moments.minimum, moments.maximum,
        )
        try:
            _LOGGER.info("variance-time Hurst estimate: %.3f", vt.hurst().hurst)
        except ValueError as exc:
            _LOGGER.info("variance-time Hurst estimate unavailable: %s", exc)
    return 0


def _configure_cache(args):
    """Activate the on-disk content cache when ``--cache-dir`` was given."""
    cache_dir = getattr(args, "cache_dir", None)
    if cache_dir:
        from repro.par import cache as par_cache

        par_cache.configure(cache_dir)
        _LOGGER.info("content cache at %s", cache_dir, extra={"cache_dir": cache_dir})


def _cmd_experiments(args):
    import contextlib

    from repro.experiments.runner import run_all, summary_lines
    from repro.obs import report as obs_report

    if args.resume and not args.checkpoint_dir:
        raise SystemExit("--resume requires --checkpoint-dir")
    if args.workers < 1:
        raise SystemExit("--workers must be >= 1")
    if args.batch is not None:
        if args.batch < 1:
            raise SystemExit("--batch must be >= 1")
        from repro.par.batch import set_default_batch

        set_default_batch(args.batch)
    _configure_cache(args)
    only = args.profile if args.profile else None
    profiler = contextlib.nullcontext()
    if args.profile is not None:
        profiler = obs_report.profile(
            "experiments",
            config={"quick": bool(args.quick), "only": only,
                    "checkpoint_dir": args.checkpoint_dir,
                    "max_retries": args.max_retries,
                    "timeout_s": args.timeout_s,
                    "workers": args.workers, "batch": args.batch},
            seed=args.seed,
            path=args.run_report,
            memory=args.profile_memory,
            argv=sys.argv[1:],
        )
    supervised = (
        args.checkpoint_dir is not None or args.max_retries > 0
        or args.timeout_s is not None
    )
    with profiler:
        if args.nodes:
            from repro.dist.campaign import run_suite

            campaign = run_suite(
                args.nodes,
                quick=args.quick,
                only=only,
                base_seed=args.seed,
                max_retries=args.max_retries,
                lease_s=args.lease_s,
                task_timeout_s=args.task_timeout_s,
                checkpoint_dir=args.checkpoint_dir,
                resume=args.resume,
                authkey=_dist_authkey(args),
                flight_path=args.flight,
            )
            results = campaign.results
        elif not supervised:
            results = run_all(quick=args.quick, only=only, workers=args.workers)
            campaign = None
        else:
            campaign = run_all(
                quick=args.quick,
                only=only,
                checkpoint_dir=args.checkpoint_dir,
                resume=args.resume,
                max_retries=args.max_retries,
                timeout_s=args.timeout_s,
                base_seed=args.seed,
                report=True,
                workers=args.workers,
            )
            results = campaign.results
    if only is None and (campaign is None or campaign.ok):
        # The full-suite comparison table needs every experiment's result.
        for line in summary_lines(results):
            print(line)
    else:
        for eid in sorted(results):
            print(f"completed: {eid}")
    if campaign is not None:
        for line in campaign.summary_lines():
            print(line)
    if args.profile is not None:
        _LOGGER.info("wrote run report to %s", args.run_report,
                     extra={"out": args.run_report})
    return 0 if campaign is None or campaign.ok else 1


def _demo_net_spec(args):
    """A 3-hop tandem spec fed by the calibrated synthetic trace."""
    slot_seconds = 1.0 / 24.0
    capacity = args.capacity_factor * 27_791.0
    buffer_bytes = args.buffer_ms / 1e3 * capacity / slot_seconds
    return {
        "slots": args.frames,
        "slot_seconds": slot_seconds,
        "nodes": [{"name": n, "buffer_bytes": buffer_bytes} for n in "abcd"],
        "links": [
            {"src": s, "dst": d, "capacity_per_slot": capacity}
            for s, d in (("a", "b"), ("b", "c"), ("c", "d"))
        ],
        "flows": [{
            "name": "video",
            "path": ["a", "b", "c", "d"],
            "source": {"kind": "trace", "frames": args.frames, "seed": args.seed},
        }],
    }


def _cmd_net(args):
    from repro.net import run_topology_task, spec_from_json, sweep_topologies

    try:
        return _net_body(args, run_topology_task, spec_from_json,
                         sweep_topologies)
    except (OSError, json.JSONDecodeError, ValueError, KeyError) as exc:
        # A spec file that is missing, unreadable JSON, or an invalid
        # topology is bad user input, not an internal error.
        detail = f"missing spec key {exc}" if isinstance(exc, KeyError) else exc
        print(f"error: {detail}", file=sys.stderr)
        return 2


def _net_body(args, run_topology_task, spec_from_json, sweep_topologies):
    from repro.experiments.reporting import format_table

    if args.demo:
        specs = [_demo_net_spec(args)]
        names = ["demo-tandem"]
    elif args.specs:
        specs = [spec_from_json(path) for path in args.specs]
        names = list(args.specs)
    else:
        raise SystemExit("error: pass topology spec file(s) or --demo")
    if args.record_events:
        specs = [{**spec, "record_events": True} for spec in specs]
    if len(specs) > 1:
        results = sweep_topologies(specs, workers=args.workers)
    else:
        results = [run_topology_task(specs[0])]
    if args.as_json:
        docs = []
        for name, result in zip(names, results):
            result.pop("series", None)
            docs.append({"spec": name, **result})
        json.dump(docs if len(docs) > 1 else docs[0], sys.stdout, indent=2,
                  default=list)
        print()
        return 0
    for name, result in zip(names, results):
        print(f"{name}: {result['slots']} slots, {result['events']} events")
        rows = [
            [
                p["port"], p["discipline"],
                f"{p['utilization']:.3f}", f"{p['loss_rate']:.2e}",
                f"{p['mean_delay_slots']:.2f}", f"{p['peak_backlog']:.0f}",
            ]
            for p in result["ports"].values()
        ]
        print(format_table(
            ["port", "disc", "util", "loss", "delay(slots)", "peak(B)"], rows
        ))
        rows = [
            [
                fname, f"{f['offered_bytes']:.3e}", f"{f['loss_rate']:.2e}",
                f"{f['delivered_fraction']:.4f}", f"{f['mean_latency_slots']:.2f}",
            ]
            for fname, f in result["flows"].items()
        ]
        print(format_table(
            ["flow", "offered(B)", "loss", "delivered", "latency(slots)"], rows
        ))
        if "event_trace_sha256" in result:
            print(f"event trace sha256: {result['event_trace_sha256']}")
    return 0


def _dist_authkey(args):
    """``--authkey`` / ``$REPRO_DIST_AUTHKEY`` / built-in default, as bytes."""
    import os

    key = getattr(args, "authkey", None) or os.environ.get("REPRO_DIST_AUTHKEY")
    if key is None:
        from repro.dist.transport import DEFAULT_AUTHKEY

        return DEFAULT_AUTHKEY
    return key.encode() if isinstance(key, str) else key


def _doctor_nodes(args):
    """Cluster preflight: probe each worker endpoint, one line per node."""
    from repro.dist.campaign import parse_nodes
    from repro.dist.transport import probe

    try:
        kind, addresses = parse_nodes(args.nodes)
        if kind == "sim":
            raise ValueError(
                "simulated nodes exist only inside a campaign process; "
                "give real worker addresses to preflight"
            )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    authkey = _dist_authkey(args)
    status = 0
    for address in addresses:
        ok, rtt, detail = probe(address, authkey=authkey,
                                timeout_s=args.probe_timeout_s)
        if not ok:
            print(f"node {address}: UNREACHABLE ({detail})", file=sys.stderr)
            status = 2
        elif rtt * 1e3 > args.slow_ms:
            print(f"node {address}: SLOW (round trip {rtt * 1e3:.0f} ms "
                  f"> {args.slow_ms:g} ms)", file=sys.stderr)
            status = 2
        else:
            name = f" ({detail})" if detail else ""
            print(f"node {address}: ok, round trip {rtt * 1e3:.1f} ms{name}")
    if status == 0:
        print(f"cluster ok: {len(addresses)} node(s) reachable")
    return status


def _cmd_doctor(args):
    from repro.video.tracefile import TraceFormatError, load_trace_lenient

    if args.trace is None and not args.nodes:
        print("error: pass a trace file and/or --nodes", file=sys.stderr)
        return 2
    status = 0
    if args.nodes:
        status = _doctor_nodes(args)
    if args.trace is None:
        return status
    try:
        trace, report = load_trace_lenient(
            args.trace, repair_budget=args.repair_budget
        )
    except TraceFormatError as exc:
        print(f"unusable: {exc}")
        return 2
    for line in report.summary_lines():
        print(line)
    verdict = "clean" if report.is_clean else "repaired"
    print(f"{verdict}: {trace}")
    return status


def _cmd_dist(args):
    if args.dist_command == "top":
        from pathlib import Path

        from repro.dist.top import run_top

        if not args.follow and not Path(args.flight).exists():
            print(f"error: no flight recording at {args.flight}", file=sys.stderr)
            return 2
        try:
            run_top(args.flight, follow=args.follow, interval=args.interval)
        except KeyboardInterrupt:
            pass
        return 0

    from repro.dist.worker import serve

    try:
        serve(args.address, authkey=_dist_authkey(args), name=args.name,
              once=args.once, cache_dir=args.cache_dir)
    except (OSError, ValueError) as exc:
        # An unbindable or malformed address is bad user input.
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        _LOGGER.info("dist worker interrupted; exiting")
    return 0


def _cmd_alloc(args):
    from repro.alloc import ALLOCATORS, demo_fleet, simulate_fleet
    from repro.experiments.reporting import format_table

    if args.users < 1 or args.epochs < 1 or args.epoch_slots < 1:
        raise SystemExit("--users, --epochs and --epoch-slots must be >= 1")
    if args.workers < 1:
        raise SystemExit("--workers must be >= 1")
    names = sorted(ALLOCATORS) if args.allocator == "all" else [args.allocator]
    unknown = sorted(set(names) - set(ALLOCATORS))
    if unknown:
        print(
            f"error: unknown allocator {unknown[0]!r}; choose from "
            f"{sorted(ALLOCATORS)} or \"all\"", file=sys.stderr,
        )
        return 2
    spec = demo_fleet(
        args.users, epoch_slots=args.epoch_slots, n_epochs=args.epochs,
        utilization=args.utilization, buffer_slots=args.buffer_slots,
        qos_loss=args.qos_loss, seed=args.seed,
    )
    results = {
        name: simulate_fleet(spec, name, workers=args.workers) for name in names
    }
    if args.as_json:
        json.dump({name: r.summary() for name, r in results.items()},
                  sys.stdout, indent=2, default=float)
        print()
        return 0
    capacity, buffer = spec.resolved_totals()
    print(
        f"fleet: {args.users} users x {args.epochs} epochs x "
        f"{args.epoch_slots} slots, C={capacity:.0f} B/slot, "
        f"Q={buffer:.0f} B, seed {args.seed}"
    )
    rows = []
    for name, r in results.items():
        loss = r.loss_percentiles()
        rows.append([
            name, f"{r.total_loss_rate:.3e}", f"{loss['p99']:.3e}",
            f"{r.fairness():.3f}", str(r.violators()), str(r.reallocations),
            f"{r.capacity_moved:.3g}",
        ])
    print(format_table(
        ["allocator", "loss", "p99 loss", "fairness", "violators",
         "reallocs", "C moved"], rows,
    ))
    for name, r in results.items():
        print(f"digest {name}: {r.digest()}")
    return 0


def _cmd_generate(args):
    from repro.core.model import VBRVideoModel
    from repro.video.tracefile import save_trace

    trace = _load_or_synthesize(args)
    model = VBRVideoModel.fit(trace.frame_bytes)
    _LOGGER.info("fitted: %s", model)
    synthetic = model.generate_trace(
        args.frames, rng=np.random.default_rng(args.seed), generator="davies-harte"
    )
    save_trace(synthetic, args.out)
    _LOGGER.info(
        "wrote %d generated frames to %s", args.frames, args.out,
        extra={"frames": args.frames, "out": args.out},
    )
    return 0


def _cmd_report(args):
    from repro.analysis.report import analyze_trace

    trace = _load_or_synthesize(args)
    print(analyze_trace(trace).format())
    return 0


def _cmd_obs(args):
    from repro.obs import bench, metrics
    from repro.obs.report import RunReport

    try:
        return _obs_body(args, bench, metrics, RunReport)
    except (ValueError, json.JSONDecodeError) as exc:
        # A file that is not (or no longer) a valid manifest/bench
        # document is bad user input, not an internal error.
        print(f"error: {exc}", file=sys.stderr)
        return 2


def _obs_body(args, bench, metrics, RunReport):
    if args.obs_command == "report":
        doc = RunReport.load(args.run_json)
        for line in RunReport.format_lines(doc):
            print(line)
        return 0
    if args.obs_command == "export-metrics":
        doc = RunReport.load(args.run_json)
        sys.stdout.write(metrics.prometheus_from_dump(doc.get("metrics", {})))
        return 0
    # bench-diff
    baseline = bench.load_bench(args.baseline)
    current = bench.load_bench(args.current)
    diff = bench.diff_bench(baseline, current, tolerance=args.tolerance)
    labels = {"regressions": "REGRESSED", "improved": "improved", "stable": "stable"}
    for kind, label in labels.items():
        for row in diff[kind]:
            print(
                f"{label}: {row['name']} {row['baseline']:.6g} -> "
                f"{row['current']:.6g} {row['unit']} "
                f"({row['relative_change'] * 100:+.1f}%)"
            )
    for name in diff["added"]:
        print(f"added: {name}")
    for name in diff["removed"]:
        print(f"removed: {name}")
    if diff["regressions"]:
        print(f"{len(diff['regressions'])} regression(s) beyond "
              f"{args.tolerance * 100:.0f}% tolerance")
        return 1
    print("no regressions")
    return 0


_COMMANDS = {
    "synthesize": _cmd_synthesize,
    "report": _cmd_report,
    "analyze": _cmd_analyze,
    "simulate": _cmd_simulate,
    "stream": _cmd_stream,
    "experiments": _cmd_experiments,
    "alloc": _cmd_alloc,
    "generate": _cmd_generate,
    "net": _cmd_net,
    "doctor": _cmd_doctor,
    "dist": _cmd_dist,
    "obs": _cmd_obs,
}


def main(argv=None):
    """Entry point; returns the process exit code.

    Bad user input -- a missing or malformed trace file -- gets a
    one-line message on stderr and exit status 2; anything else is an
    internal error and propagates (status 1 via the interpreter).
    """
    from repro.video.tracefile import TraceFormatError

    args = build_parser().parse_args(argv)
    obs_log.configure(
        level=getattr(args, "log_level", "INFO"),
        json_format=getattr(args, "log_json", False),
        quiet=getattr(args, "quiet", False),
    )
    try:
        return _COMMANDS[args.command](args)
    except (FileNotFoundError, TraceFormatError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Downstream closed our stdout (e.g. `| head`); park stdout on
        # devnull so the interpreter's exit-time flush stays silent.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    sys.exit(main())
