"""The paper's primary contribution: self-similar VBR traffic generation.

The Garrett-Willinger source model has four parameters: ``mu_gamma``,
``sigma_gamma`` and ``tail_shape`` describing the hybrid Gamma/Pareto
marginal distribution, and the Hurst parameter ``H`` describing the
long-range dependent time-correlation structure.  Synthetic traffic is
produced in two steps:

1. generate a Gaussian fractional ARIMA(0, d, 0) sequence with
   ``d = H - 1/2`` (Hosking's exact algorithm, or the fast
   Davies-Harte fractional-Gaussian-noise generator as an extension);
2. distort the marginals point-wise with
   ``Y_k = Finv_GammaPareto(F_Normal(X_k))`` (eq. 13), which preserves
   the ordering (and hence, to excellent approximation, the measured
   Hurst parameter) while imposing the heavy-tailed marginal.
"""

from repro.core.batch import BATCH_BACKENDS, batch_fgn, batch_generate, batch_row_seeds
from repro.core.fractional import (
    d_from_hurst,
    hurst_from_d,
    farima_acf,
    fgn_acf,
    fractional_binomial_weights,
)
from repro.core.hosking import HoskingGenerator, hosking_farima
from repro.core.daviesharte import DaviesHarteGenerator, davies_harte_fgn
from repro.core.transform import marginal_transform, normal_scores
from repro.core.model import VBRVideoModel
from repro.core.baselines import (
    IIDGammaParetoModel,
    GaussianFarimaModel,
    AR1Model,
    DAR1Model,
)
from repro.core.arma import ARMAProcess, yule_walker
from repro.core.composite import CompositeVBRModel
from repro.core.spectral import SpectralGenerator, spectral_fgn, fgn_spectral_density
from repro.core.markov_fluid import MarkovFluidModel

__all__ = [
    "BATCH_BACKENDS",
    "batch_fgn",
    "batch_generate",
    "batch_row_seeds",
    "d_from_hurst",
    "hurst_from_d",
    "farima_acf",
    "fgn_acf",
    "fractional_binomial_weights",
    "HoskingGenerator",
    "hosking_farima",
    "DaviesHarteGenerator",
    "davies_harte_fgn",
    "marginal_transform",
    "normal_scores",
    "VBRVideoModel",
    "IIDGammaParetoModel",
    "GaussianFarimaModel",
    "AR1Model",
    "DAR1Model",
    "ARMAProcess",
    "yule_walker",
    "CompositeVBRModel",
    "SpectralGenerator",
    "spectral_fgn",
    "fgn_spectral_density",
    "MarkovFluidModel",
]
