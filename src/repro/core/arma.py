"""ARMA(p, q) processes: the paper's proposed short-range augmentation.

Section 4 of the paper: "An additional set of short-term correlation
parameters may be included by combining this model with an ARMA filter
or modulating it with the state of a Markov chain."  This module
provides the ARMA machinery -- generation, theoretical
autocovariances, stationarity checks, and Yule-Walker estimation --
and :mod:`repro.core.composite` combines it with the fractional-noise
core into the augmented source model.
"""

from __future__ import annotations

import numpy as np

from repro._validation import require_positive, require_positive_int

__all__ = ["ARMAProcess", "yule_walker"]


class ARMAProcess:
    """Stationary Gaussian ARMA(p, q) process.

    ``X_t = sum_i ar[i] X_{t-1-i} + eps_t + sum_j ma[j] eps_{t-1-j}``
    with i.i.d. ``N(0, sigma_eps^2)`` innovations.

    Parameters
    ----------
    ar:
        Autoregressive coefficients ``(phi_1 .. phi_p)``; the
        polynomial ``1 - phi_1 z - ... - phi_p z^p`` must have all
        roots outside the unit circle (checked at construction).
    ma:
        Moving-average coefficients ``(theta_1 .. theta_q)``.
    sigma_eps:
        Innovation standard deviation.
    """

    def __init__(self, ar=(), ma=(), sigma_eps=1.0):
        self.ar = np.atleast_1d(np.asarray(ar, dtype=float)) if len(np.atleast_1d(ar)) else np.zeros(0)
        self.ma = np.atleast_1d(np.asarray(ma, dtype=float)) if len(np.atleast_1d(ma)) else np.zeros(0)
        self.sigma_eps = require_positive(sigma_eps, "sigma_eps")
        if self.ar.ndim != 1 or self.ma.ndim != 1:
            raise ValueError("ar and ma must be one-dimensional coefficient sequences")
        if self.ar.size and not self.is_stationary(self.ar):
            raise ValueError("AR polynomial has roots on or inside the unit circle (non-stationary)")

    @staticmethod
    def is_stationary(ar):
        """Whether ``1 - phi_1 z - ... - phi_p z^p`` is causal/stationary."""
        ar = np.atleast_1d(np.asarray(ar, dtype=float))
        if ar.size == 0:
            return True
        # Roots of 1 - phi_1 z - ... - phi_p z^p must lie outside |z|=1,
        # equivalently the companion matrix has spectral radius < 1.
        companion = np.zeros((ar.size, ar.size))
        companion[0, :] = ar
        if ar.size > 1:
            companion[1:, :-1] = np.eye(ar.size - 1)
        return bool(np.max(np.abs(np.linalg.eigvals(companion))) < 1.0)

    @property
    def order(self):
        """``(p, q)``."""
        return (int(self.ar.size), int(self.ma.size))

    # ------------------------------------------------------------------
    # Second-order structure
    # ------------------------------------------------------------------
    def ma_infinity_weights(self, n_weights):
        """psi-weights of the MA(infinity) representation.

        ``X_t = sum_k psi_k eps_{t-k}`` with ``psi_0 = 1``; computed by
        the standard recursion ``psi_k = theta_k + sum_i phi_i psi_{k-i}``.
        """
        n_weights = require_positive_int(n_weights, "n_weights")
        psi = np.zeros(n_weights)
        psi[0] = 1.0
        for k in range(1, n_weights):
            value = self.ma[k - 1] if k - 1 < self.ma.size else 0.0
            for i in range(min(k, self.ar.size)):
                value += self.ar[i] * psi[k - 1 - i]
            psi[k] = value
        return psi

    def acovf(self, n_lags, n_terms=2000):
        """Autocovariance for lags ``0 .. n_lags`` (via psi-weights).

        ``gamma(h) = sigma_eps^2 sum_k psi_k psi_{k+h}``; the psi series
        decays geometrically for a stationary model, so ``n_terms``
        terms give machine-precision results for any reasonable model.
        """
        psi = self.ma_infinity_weights(int(n_lags) + n_terms)
        gamma = np.empty(int(n_lags) + 1)
        for h in range(int(n_lags) + 1):
            gamma[h] = np.dot(psi[: psi.size - h], psi[h:])
        return self.sigma_eps**2 * gamma

    def acf(self, n_lags):
        """Autocorrelation for lags ``0 .. n_lags``."""
        gamma = self.acovf(n_lags)
        return gamma / gamma[0]

    def variance(self):
        """Stationary marginal variance."""
        return float(self.acovf(0)[0])

    # ------------------------------------------------------------------
    # Generation
    # ------------------------------------------------------------------
    def generate(self, n, rng=None, burn_in=None):
        """Generate ``n`` points (after a geometric-mixing burn-in)."""
        n = require_positive_int(n, "n")
        if rng is None:
            rng = np.random.default_rng()
        if burn_in is None:
            burn_in = 50 * max(self.ar.size, self.ma.size, 1)
        total = n + burn_in
        eps = rng.normal(0.0, self.sigma_eps, size=total)
        from scipy import signal

        # lfilter implements b/a rational filtering: numerator is the
        # MA polynomial (1, theta_1, ...), denominator the AR
        # polynomial (1, -phi_1, ...).
        b = np.concatenate(([1.0], self.ma))
        a = np.concatenate(([1.0], -self.ar))
        x = signal.lfilter(b, a, eps)
        return x[burn_in:]

    def __repr__(self):
        return (
            f"ARMAProcess(ar={self.ar.tolist()}, ma={self.ma.tolist()}, "
            f"sigma_eps={self.sigma_eps:g})"
        )


def yule_walker(data, order):
    """Yule-Walker AR(p) estimation from a data series.

    Solves the Toeplitz system built from the sample autocovariances
    and returns ``(ar_coefficients, innovation_std)``.  This is the
    classical method for fitting the short-range (AR) component of the
    augmented model.
    """
    from scipy import linalg

    data = np.asarray(data, dtype=float)
    order = require_positive_int(order, "order")
    if data.ndim != 1 or data.size <= order + 1:
        raise ValueError(f"need a 1-D series longer than order+1={order + 1}")
    x = data - data.mean()
    n = x.size
    gamma = np.array([np.dot(x[: n - k], x[k:]) / n for k in range(order + 1)])
    if gamma[0] <= 0:
        raise ValueError("series has zero variance")
    r = gamma[1:] / gamma[0]
    toeplitz_first = np.concatenate(([1.0], r[:-1]))
    phi = linalg.solve_toeplitz((toeplitz_first, toeplitz_first), r)
    sigma2 = gamma[0] * (1.0 - np.dot(phi, r))
    if sigma2 <= 0:
        sigma2 = gamma[0] * 1e-6
    return phi, float(np.sqrt(sigma2))
