"""Baseline traffic models the paper compares against (Fig. 16).

The model-validation experiment runs four sources through the same
queueing harness:

1. the empirical trace itself,
2. the full Garrett-Willinger model (LRD + Gamma/Pareto marginals),
3. a fractional ARIMA model with plain *Gaussian* marginals
   (:class:`GaussianFarimaModel`) -- LRD but no heavy tail, and
4. an i.i.d. process with Gamma/Pareto marginals
   (:class:`IIDGammaParetoModel`) -- heavy tail but no dependence.

The full model consistently outperforms both crippled variants,
demonstrating that *both* features matter.  Two classical short-range
dependent models, :class:`AR1Model` and :class:`DAR1Model`, are also
provided: they represent the "commonly used" VBR video models whose
exponentially decaying autocorrelations cannot capture LRD, and they
power the ablation benchmarks.
"""

from __future__ import annotations

import numpy as np

from repro._validation import (
    require_in_open_interval,
    require_positive,
    require_positive_int,
)
from repro.core.daviesharte import DaviesHarteGenerator
from repro.core.hosking import HoskingGenerator

__all__ = [
    "IIDGammaParetoModel",
    "GaussianFarimaModel",
    "AR1Model",
    "DAR1Model",
]


class IIDGammaParetoModel:
    """I.i.d. traffic with the hybrid Gamma/Pareto marginal.

    Captures the heavy tail but has *no* time correlation whatsoever
    (H = 1/2 by construction).  In Fig. 16 this variant needs visibly
    different resources than the trace because it cannot reproduce the
    persistence of bad states.
    """

    name = "iid-gamma-pareto"

    def __init__(self, marginal):
        if not hasattr(marginal, "ppf"):
            raise TypeError("marginal must be a Distribution with a ppf method")
        self.marginal = marginal

    def generate(self, n, rng=None):
        """Generate ``n`` independent draws from the marginal."""
        n = require_positive_int(n, "n")
        if rng is None:
            rng = np.random.default_rng()
        return np.asarray(self.marginal.sample(n, rng=rng), dtype=float)

    def __repr__(self):
        return f"IIDGammaParetoModel(marginal={self.marginal!r})"


class GaussianFarimaModel:
    """Fractional ARIMA traffic with Gaussian marginals.

    Captures the long-range dependence but not the heavy tail.  The
    Gaussian is located/scaled to the requested mean and standard
    deviation; since bandwidth cannot be negative the output is clipped
    at zero (for the Star-Wars parameters the mean sits ~4.4 sigma
    above zero, so the clip is essentially never active).
    """

    name = "gaussian-farima"

    def __init__(self, mean, std, hurst, generator="hosking"):
        self.mean = require_positive(mean, "mean")
        self.std = require_positive(std, "std")
        self.hurst = require_in_open_interval(hurst, "hurst", 0.0, 1.0)
        if generator not in ("hosking", "davies-harte"):
            raise ValueError(f'generator must be "hosking" or "davies-harte", got {generator!r}')
        self.generator = generator

    def generate(self, n, rng=None):
        """Generate ``n`` points of Gaussian-marginal LRD traffic."""
        n = require_positive_int(n, "n")
        if self.generator == "hosking":
            x = HoskingGenerator(hurst=self.hurst).generate(n, rng=rng)
        else:
            x = DaviesHarteGenerator(self.hurst).generate(n, rng=rng)
        return np.clip(self.mean + self.std * x, 0.0, None)

    def __repr__(self):
        return (
            f"GaussianFarimaModel(mean={self.mean:.6g}, std={self.std:.6g}, "
            f"hurst={self.hurst:.4g}, generator={self.generator!r})"
        )


class AR1Model:
    """Classical first-order autoregressive (Markovian) source model.

    ``X_k = mean + phi (X_{k-1} - mean) + eps_k`` with Gaussian
    innovations scaled so the marginal standard deviation is ``std``.
    Autocorrelation decays exponentially, ``r(n) = phi^n`` -- the
    short-range structure the paper shows matches the empirical ACF
    only up to ~100-300 lags (Fig. 7).
    """

    name = "ar1"

    def __init__(self, mean, std, phi):
        self.mean = require_positive(mean, "mean")
        self.std = require_positive(std, "std")
        self.phi = require_in_open_interval(phi, "phi", -1.0, 1.0)

    def generate(self, n, rng=None):
        """Generate ``n`` points, starting from the stationary law."""
        n = require_positive_int(n, "n")
        if rng is None:
            rng = np.random.default_rng()
        innov_sd = self.std * np.sqrt(1.0 - self.phi**2)
        eps = rng.normal(0.0, innov_sd, size=n)
        out = np.empty(n)
        x = rng.normal(0.0, self.std)
        phi = self.phi
        for k in range(n):
            x = phi * x + eps[k]
            out[k] = x
        return np.clip(self.mean + out, 0.0, None)

    def acf(self, n_lags):
        """Theoretical autocorrelation ``phi^n`` for lags 0..n_lags."""
        return self.phi ** np.arange(n_lags + 1, dtype=float)

    def __repr__(self):
        return f"AR1Model(mean={self.mean:.6g}, std={self.std:.6g}, phi={self.phi:.4g})"


class DAR1Model:
    """Discrete autoregressive model of order 1 (Markov-chain source).

    ``X_k = V_k X_{k-1} + (1 - V_k) Z_k`` with ``V_k ~ Bernoulli(rho)``
    and ``Z_k`` i.i.d. draws from an arbitrary marginal.  The marginal
    of ``X`` equals the law of ``Z`` exactly, while the autocorrelation
    decays as ``rho^n``.  DAR(1) was a popular early VBR video model;
    it can carry the correct Gamma/Pareto marginal yet remains SRD,
    making it the sharpest "right marginal, wrong correlations"
    baseline for ablations.
    """

    name = "dar1"

    def __init__(self, marginal, rho):
        if not hasattr(marginal, "sample"):
            raise TypeError("marginal must be a Distribution with a sample method")
        self.marginal = marginal
        self.rho = require_in_open_interval(rho, "rho", 0.0, 1.0)

    def generate(self, n, rng=None):
        """Generate ``n`` points of DAR(1) traffic."""
        n = require_positive_int(n, "n")
        if rng is None:
            rng = np.random.default_rng()
        z = np.asarray(self.marginal.sample(n, rng=rng), dtype=float)
        stay = rng.uniform(size=n) < self.rho
        out = np.empty(n)
        current = z[0]
        for k in range(n):
            if not stay[k] or k == 0:
                current = z[k]
            out[k] = current
        return out

    def acf(self, n_lags):
        """Theoretical autocorrelation ``rho^n`` for lags 0..n_lags."""
        return self.rho ** np.arange(n_lags + 1, dtype=float)

    def __repr__(self):
        return f"DAR1Model(marginal={self.marginal!r}, rho={self.rho:.4g})"
