"""Batched fGn synthesis: B independent traces in one stacked 2-D FFT.

The Paxson and Davies-Harte synthesizers both end in a single inverse
FFT of a Hermitian-symmetric complex-Gaussian spectrum.  Synthesizing a
*batch* of B independent traces therefore stacks the B spectra into a
``(B, m)`` matrix and runs one ``irfft``/``ifft`` over ``axis=1``:
numpy's pocketfft computes each row with exactly the same 1-D plan it
would use for a single trace, so every row of the batch is
**bit-identical** to the corresponding single-trace call -- the tier-1
property tests in ``tests/test_batch_fgn.py`` pin this per backend,
Hurst value, batch size, and odd/even length.  The speedup comes from
amortizing the cached spectral profile, the Gaussian draws, and the
FFT dispatch overhead over the whole batch (see ``docs/performance.md``
and the ``batched_synthesis_speedup_b64`` entry of BENCH_stream.json).

Two seeding modes cover the two callers:

- **Independent rows** (default): row ``i`` draws from
  ``default_rng(derive_task_seed(seed, i, label="batch"))`` -- the same
  sha256 scheme :func:`repro.par.shard.shard_fgn` uses for its shards,
  so batching commutes with the parallel pool's per-task seeding.
  Explicit per-row seeds may be given via ``seeds=``.
- **Shared stream** (``rng=``): all rows draw *sequentially* from one
  generator, in exactly the order B consecutive single-trace
  ``generate(n, rng=rng)`` calls would -- the mode the streaming block
  source uses to pre-synthesize blocks ahead without changing a bit of
  its output.
"""

from __future__ import annotations

import numbers

import numpy as np

from repro._validation import require_positive_int
from repro.obs import metrics, trace

__all__ = ["BATCH_BACKENDS", "batch_fgn", "batch_generate", "batch_row_seeds"]

BATCH_BACKENDS = ("paxson", "davies-harte")

_ROWS = metrics.registry().counter(
    "repro_batch_fgn_rows_total",
    help="fGn traces synthesized through the batched 2-D FFT path",
    unit="traces",
)


def _require_batch(batch, n):
    """Validate the batch count, naming the requested shape on failure."""
    if isinstance(batch, bool) or not isinstance(batch, numbers.Integral):
        raise ValueError(
            f"batch must be a positive integer, got {batch!r} "
            f"(requested shape ({batch!r}, {n}))"
        )
    if batch < 1:
        raise ValueError(
            f"batch must be >= 1, got {int(batch)} "
            f"(requested shape ({int(batch)}, {n}))"
        )
    return int(batch)


def batch_row_seeds(seed, batch):
    """The per-row seeds of a ``batch_fgn(seed=...)`` call.

    Row ``i`` of the batch is bit-identical to a single-trace
    ``generate`` under ``default_rng(batch_row_seeds(seed, batch)[i])``.
    """
    from repro.par.pool import derive_task_seed

    return [derive_task_seed(seed, i, label="batch") for i in range(batch)]


def _row_rngs(batch, seed, seeds, rng):
    if rng is not None:
        if seeds is not None:
            raise ValueError("pass either rng= (shared stream) or seeds=, not both")
        return [rng] * batch
    if seeds is None:
        seeds = batch_row_seeds(seed, batch)
    seeds = list(seeds)
    if len(seeds) != batch:
        raise ValueError(f"need {batch} row seeds, got {len(seeds)}")
    # Generator(PCG64(s)) draws bit-identically to default_rng(s) at a
    # third of the construction cost -- the construction is per row, so
    # it shows up at dispatch-bound batch sizes.
    return [np.random.Generator(np.random.PCG64(int(s))) for s in seeds]


def _batch_paxson(generator, n, rngs):
    """Stacked Paxson synthesis; row i == generator._generate(n, rngs[i])."""
    batch = len(rngs)
    if n == 1:
        sigma = np.sqrt(generator.variance)
        return np.stack([rng.normal(0.0, sigma, size=1) for rng in rngs])
    if n % 2:
        return _batch_paxson(generator, n + 1, rngs)[:, :n]
    half = n // 2
    sqrt_f, scale = generator._sqrt_power(n)
    # One flat draw per row: numpy's Gaussian stream is split-invariant,
    # so buf[i] holds exactly the single-trace sequence re, im, Nyquist
    # (row-major order keeps the shared-rng mode sequential too); the
    # spectrum assembly then runs batch-wide instead of row by row.
    buf = np.empty((batch, 2 * half - 1))
    for i, rng in enumerate(rngs):
        buf[i] = rng.standard_normal(2 * half - 1)
    z = np.zeros((batch, half + 1), dtype=complex)
    z[:, 1:half] = (sqrt_f[: half - 1] / np.sqrt(2.0)) * (
        buf[:, : half - 1] + 1j * buf[:, half - 1 : 2 * half - 2]
    )
    z[:, half] = sqrt_f[half - 1] * buf[:, -1]
    # Two separate multiplies, matching the single-trace rounding
    # exactly ((x * sqrt(n)) * scale != x * (sqrt(n) * scale) in the
    # last ulp).
    x = np.fft.irfft(z, n, axis=1) * np.sqrt(n)
    return x * scale


def _batch_davies_harte(generator, n, rngs):
    """Stacked Davies-Harte synthesis; row i == generator._generate(n, rngs[i])."""
    batch = len(rngs)
    if n == 1:
        sigma = np.sqrt(generator.variance)
        return np.stack([rng.normal(0.0, sigma, size=1) for rng in rngs])
    sqrt_eig = generator._sqrt_eigenvalues(n)
    m = 2 * n
    half = sqrt_eig[1:n] / np.sqrt(2.0)
    # Split-invariant flat draw per row, in the single-trace order:
    # the two real endpoints, then re, then im.
    buf = np.empty((batch, 2 * n))
    for i, rng in enumerate(rngs):
        buf[i] = rng.standard_normal(2 * n)
    v = np.empty((batch, m), dtype=complex)
    v[:, 0] = sqrt_eig[0] * buf[:, 0]
    v[:, n] = sqrt_eig[n] * buf[:, 1]
    v[:, 1:n] = half * (buf[:, 2 : n + 1] + 1j * buf[:, n + 1 :])
    v[:, n + 1 :] = np.conj(v[:, n - 1 : 0 : -1])
    x = np.sqrt(m) * np.fft.ifft(v, axis=1).real
    return x[:, :n]


def batch_generate(generator, n, rngs):
    """Stacked synthesis against an *existing* generator instance.

    The streaming block source owns a long-lived generator whose cached
    spectral profile must survive across calls; this entry point runs
    the stacked FFT kernel with that instance instead of building a
    fresh one per batch.  ``rngs`` is one generator per row (repeat one
    instance for the sequential shared-stream mode).  Row ``i`` is
    bit-identical to ``generator.generate(n, rng=rngs[i])``.
    """
    from repro.core.daviesharte import DaviesHarteGenerator
    from repro.core.paxson import PaxsonGenerator

    if isinstance(generator, DaviesHarteGenerator):
        kernel = _batch_davies_harte
    elif isinstance(generator, PaxsonGenerator):
        kernel = _batch_paxson
    else:
        raise TypeError(
            f"generator must be a PaxsonGenerator or DaviesHarteGenerator, "
            f"got {type(generator).__name__}"
        )
    n = require_positive_int(n, "n")
    rngs = list(rngs)
    if not rngs:
        raise ValueError("rngs must name at least one row")
    with trace.span("batch.fgn", backend=type(generator).__name__,
                    n=n, batch=len(rngs)):
        x = kernel(generator, n, rngs)
    _ROWS.inc(len(rngs))
    return x


def batch_fgn(n, hurst, batch, *, backend="paxson", variance=1.0, seed=0,
              seeds=None, rng=None):
    """Synthesize ``batch`` independent fGn traces as a ``(batch, n)`` array.

    Parameters
    ----------
    n, hurst, variance:
        Per-trace length and marginal parameters, validated exactly as
        the single-trace generators validate them.
    batch:
        Number of independent rows (a positive integer; ``ValueError``
        names the offending requested shape otherwise).
    backend:
        ``"paxson"`` (approximate) or ``"davies-harte"`` (exact).
    seed:
        Base seed for the default row seeding,
        ``derive_task_seed(seed, i, label="batch")``.
    seeds:
        Explicit per-row integer seeds (length ``batch``), overriding
        the derivation -- used by the sharded pool, whose rows are
        seeded by *shard* index.
    rng:
        A shared ``numpy.random.Generator``: rows draw sequentially from
        it, reproducing B consecutive single-trace ``generate`` calls
        bit for bit (the streaming block sources' mode).  Mutually
        exclusive with ``seeds``.

    Every row is bit-identical to the corresponding single-trace
    ``PaxsonGenerator``/``DaviesHarteGenerator`` call -- the batched FFT
    runs the same 1-D plan per row -- so batching is a pure execution
    strategy, never a statistical approximation.
    """
    n = require_positive_int(n, "n")
    batch = _require_batch(batch, n)
    if backend == "paxson":
        from repro.core.paxson import PaxsonGenerator

        generator = PaxsonGenerator(hurst, variance=variance)
        kernel = _batch_paxson
    elif backend == "davies-harte":
        from repro.core.daviesharte import DaviesHarteGenerator

        generator = DaviesHarteGenerator(hurst, variance=variance)
        kernel = _batch_davies_harte
    else:
        raise ValueError(
            f"backend must be one of {BATCH_BACKENDS}, got {backend!r}"
        )
    rngs = _row_rngs(batch, seed, seeds, rng)
    with trace.span("batch.fgn", backend=backend, n=n, batch=batch):
        x = kernel(generator, n, rngs)
    _ROWS.inc(batch)
    return x
