"""SRD-augmented source model (the paper's Section 4 future work).

The plain Garrett-Willinger model captures the marginal distribution
and the long-range correlation structure; its short-range structure is
"by default self-similar to the long-term structure".  The paper
proposes augmenting it "with an ARMA filter or modulating it with the
state of a Markov chain".  :class:`CompositeVBRModel` implements the
ARMA variant:

    ``Z_k = w * X_k + sqrt(1 - w^2) * S_k``

where ``X`` is the unit-variance Gaussian LRD process (fARIMA / FGN),
``S`` is an independent unit-variance Gaussian ARMA(p, q) process, and
``w`` in (0, 1] balances the two.  ``Z`` keeps the Hurst parameter of
``X`` (the ARMA part has summable correlations, so it cannot change
the asymptotics) while its short-lag autocorrelations follow the ARMA
shape.  The marginal transform (eq. 13) is applied to ``Z`` exactly as
in the base model.

:meth:`CompositeVBRModel.fit` estimates the ARMA component from the
data's short-lag residual structure after accounting for the fitted
LRD component, using Yule-Walker on the Gaussianized series.
"""

from __future__ import annotations

import numpy as np

from repro._validation import require_in_open_interval, require_positive_int
from repro.core.arma import ARMAProcess, yule_walker
from repro.core.model import VBRVideoModel
from repro.core.transform import marginal_transform, normal_scores
from repro.distributions.normal import Normal

__all__ = ["CompositeVBRModel"]


class CompositeVBRModel:
    """VBR video model with explicit short-range (ARMA) structure.

    Parameters
    ----------
    base:
        A fitted :class:`~repro.core.model.VBRVideoModel` providing the
        marginal distribution and the Hurst parameter.
    arma:
        An :class:`~repro.core.arma.ARMAProcess` describing the
        short-range correlation shape (its ``sigma_eps`` is rescaled
        internally so the component has unit variance).
    srd_weight:
        Weight of the SRD component in the Gaussian mix, in [0, 1):
        the LRD component gets ``sqrt(1 - srd_weight^2)``.  ``0``
        reduces to the base model exactly.
    """

    def __init__(self, base, arma, srd_weight=0.5):
        if not isinstance(base, VBRVideoModel):
            raise TypeError("base must be a VBRVideoModel")
        if not isinstance(arma, ARMAProcess):
            raise TypeError("arma must be an ARMAProcess")
        if not 0.0 <= srd_weight < 1.0:
            raise ValueError(f"srd_weight must lie in [0, 1), got {srd_weight!r}")
        self.base = base
        self.arma = arma
        self.srd_weight = float(srd_weight)

    @classmethod
    def fit(cls, data, ar_order=2, srd_weight=None, tail_fraction=0.03,
            hurst_estimator="variance-time", fit_lags=8):
        """Fit base model + AR(p) short-range structure from data.

        The base model is fitted as usual; the data is then
        rank-Gaussianized, and an AR(``ar_order``) is fitted to its
        short-lag structure by Yule-Walker.  When ``srd_weight`` is
        omitted it is chosen by least squares so the composite's
        autocorrelation matches the data's over lags ``1..fit_lags``
        (matching only lag 1 would over-weight the SRD component and
        lose the hyperbolic tail at moderate lags).  Short lags are
        where the ARMA augmentation can act; beyond a few dozen lags
        the hyperbolic LRD term necessarily dominates.
        """
        data = np.asarray(data, dtype=float)
        base = VBRVideoModel.fit(
            data, tail_fraction=tail_fraction, hurst_estimator=hurst_estimator
        )
        z = normal_scores(data)
        phi, sigma = yule_walker(z, ar_order)
        if not ARMAProcess.is_stationary(phi):
            # Shrink toward zero until stationary (rare; heavy LRD can
            # push Yule-Walker estimates to the boundary).
            for shrink in (0.95, 0.9, 0.8, 0.5):
                if ARMAProcess.is_stationary(phi * shrink):
                    phi = phi * shrink
                    break
            else:  # pragma: no cover - AR(p<=3) with |phi|<1 shrunk by 0.5 is stationary
                phi = np.zeros_like(phi)
        arma = ARMAProcess(ar=phi, sigma_eps=1.0)
        if srd_weight is None:
            # Least-squares mixture weight over lags 1..fit_lags:
            # r_data ~ w^2 r_arma + (1 - w^2) r_lrd.
            from repro.analysis.correlation import autocorrelation
            from repro.core.fractional import farima_acf

            k = max(int(fit_lags), 1)
            r_data = autocorrelation(z, max_lag=k)[1:]
            r_lrd = farima_acf(base.hurst - 0.5, k)[1:]
            r_arma = arma.acf(k)[1:]
            basis = r_arma - r_lrd
            denom = float(np.dot(basis, basis))
            if denom < 1e-12:
                w2 = 0.0
            else:
                w2 = float(np.clip(np.dot(r_data - r_lrd, basis) / denom, 0.0, 0.95))
            srd_weight = float(np.sqrt(w2))
        return cls(base, arma, srd_weight=srd_weight)

    @property
    def parameters(self):
        """Base parameters plus the ARMA order and weight."""
        return {
            "base": self.base.parameters,
            "ar": self.arma.ar.tolist(),
            "ma": self.arma.ma.tolist(),
            "srd_weight": self.srd_weight,
        }

    def generate_gaussian(self, n, rng=None, generator="davies-harte"):
        """The mixed Gaussian process (unit variance, Hurst preserved)."""
        n = require_positive_int(n, "n")
        if rng is None:
            rng = np.random.default_rng()
        lrd = self.base.generate_gaussian(n, rng=rng, generator=generator)
        if self.srd_weight == 0.0:
            return lrd
        srd = self.arma.generate(n, rng=rng)
        srd_std = np.sqrt(self.arma.variance())
        srd = srd / srd_std
        w = self.srd_weight
        return np.sqrt(1.0 - w * w) * lrd + w * srd

    def generate(self, n, rng=None, generator="davies-harte", method="exact", n_table=10_000):
        """Generate VBR traffic with LRD, heavy tail AND short-range
        structure (eq. 13 applied to the mixed Gaussian process)."""
        z = self.generate_gaussian(n, rng=rng, generator=generator)
        return marginal_transform(
            z, self.base.marginal, source=Normal(0.0, 1.0), method=method, n_table=n_table
        )

    def theoretical_short_acf(self, n_lags):
        """Autocorrelation of the Gaussian mix for lags 0..n_lags."""
        from repro.core.fractional import farima_acf

        w2 = self.srd_weight**2
        return w2 * self.arma.acf(n_lags) + (1.0 - w2) * farima_acf(
            self.base.hurst - 0.5, n_lags
        )

    def __repr__(self):
        return (
            f"CompositeVBRModel(base={self.base!r}, arma={self.arma!r}, "
            f"srd_weight={self.srd_weight:.3g})"
        )
