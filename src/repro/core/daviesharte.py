"""Davies-Harte circulant-embedding generator for fractional Gaussian noise.

Hosking's exact algorithm (the paper's generator) costs O(n^2); the
paper notes 171,000 points took ~10 hours in 1994 and leaves faster
generation as future work.  The Davies-Harte method is the standard
answer: embed the FGN autocovariance in a circulant matrix of size 2n,
diagonalize it with an FFT, and synthesize an *exact* sample path in
O(n log n).  For fractional Gaussian noise the circulant eigenvalues
are provably non-negative, so the method is exact rather than
approximate.

The FGN produced here and Hosking's fARIMA(0, d, 0) share the same
Hurst parameter and hyperbolic autocorrelation decay; either may drive
the Garrett-Willinger model (``generator="davies-harte"``).
"""

from __future__ import annotations

import numpy as np

from repro._validation import require_in_open_interval, require_positive, require_positive_int
from repro.core.fractional import fgn_acf
from repro.obs import metrics, trace
from repro.par import cache as _cache

__all__ = ["DaviesHarteGenerator", "davies_harte_fgn"]

_SAMPLES = metrics.registry().counter(
    "repro_generator_samples_total",
    help="Gaussian samples generated, by backend",
    unit="samples", labels={"generator": "daviesharte"},
)


class DaviesHarteGenerator:
    """Exact O(n log n) fractional-Gaussian-noise generator.

    Parameters
    ----------
    hurst:
        Hurst parameter, validated against the open stationary range
        ``(0, 1)``.  The whole range is exact here; long-range
        dependence as in the paper requires ``1/2 < H < 1``.
    variance:
        Marginal variance of the noise (mean is zero).

    The eigenvalue decomposition of the circulant embedding depends only
    on ``(hurst, n)``; it is cached so repeated same-length generations
    (e.g. many simulation replications) pay the FFT of the
    autocovariance only once.
    """

    def __init__(self, hurst, variance=1.0):
        self.hurst = require_in_open_interval(hurst, "hurst", 0.0, 1.0)
        self.variance = require_positive(variance, "variance")
        self._cached_n = None
        self._cached_sqrt_eig = None

    def _sqrt_eigenvalues(self, n):
        if self._cached_n == n:
            return self._cached_sqrt_eig
        # Pure function of (hurst, variance, n); served from the
        # content cache (when configured) as the exact float64 array.
        sqrt_eig = _cache.memoized(
            "daviesharte.sqrt_eig",
            {"hurst": self.hurst, "variance": self.variance, "n": n},
            lambda: self._compute_sqrt_eigenvalues(n),
        )
        self._cached_n = n
        self._cached_sqrt_eig = sqrt_eig
        return sqrt_eig

    def _compute_sqrt_eigenvalues(self, n):
        gamma = fgn_acf(self.hurst, n, variance=self.variance)
        # First row of the 2n x 2n circulant: gamma_0..gamma_n, then the
        # mirror gamma_{n-1}..gamma_1.
        row = np.concatenate((gamma, gamma[-2:0:-1]))
        eig = np.fft.fft(row).real
        min_eig = eig.min()
        if min_eig < -1e-8 * self.variance:
            # Cannot happen for true FGN; guard against misuse with a
            # non-embeddable covariance.
            raise RuntimeError(
                f"circulant embedding is not non-negative definite (min eigenvalue {min_eig:.3g})"
            )
        eig = np.clip(eig, 0.0, None)
        return np.sqrt(eig)

    def generate(self, n, rng=None):
        """Generate an FGN path of length ``n`` (requires ``n >= 2``)."""
        n = require_positive_int(n, "n")
        if rng is None:
            rng = np.random.default_rng()
        with trace.span("daviesharte.generate", n=n):
            x = self._generate(n, rng)
        _SAMPLES.inc(n)
        return x

    def _generate(self, n, rng):
        if n == 1:
            return rng.normal(0.0, np.sqrt(self.variance), size=1)
        sqrt_eig = self._sqrt_eigenvalues(n)
        m = 2 * n
        # Hermitian-symmetric complex Gaussian spectrum V with
        # E|V_k|^2 = eig_k; X = sqrt(2n) * real(ifft(V)) then has
        # autocovariance exactly gamma(0..n-1).
        v = np.empty(m, dtype=complex)
        v[0] = sqrt_eig[0] * rng.standard_normal()
        v[n] = sqrt_eig[n] * rng.standard_normal()
        re = rng.standard_normal(n - 1)
        im = rng.standard_normal(n - 1)
        half = sqrt_eig[1:n] / np.sqrt(2.0)
        v[1:n] = half * (re + 1j * im)
        v[n + 1 :] = np.conj(v[n - 1 : 0 : -1])
        x = np.sqrt(m) * np.fft.ifft(v).real
        return x[:n]

    def __repr__(self):
        return f"DaviesHarteGenerator(hurst={self.hurst:.4g}, variance={self.variance:.4g})"


def davies_harte_fgn(n, hurst=0.8, variance=1.0, rng=None):
    """Convenience wrapper: one FGN path of length ``n``."""
    return DaviesHarteGenerator(hurst, variance=variance).generate(n, rng=rng)
