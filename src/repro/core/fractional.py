"""Fractional differencing mathematics (Section 4.1 of the paper).

A fractional ARIMA(0, d, 0) process is defined by the fractional
differencing operator ``nabla^d`` (eq. 4) whose binomial weights are
generalized to real ``d`` through the Gamma function (eq. 5).  For
``0 < d < 1/2`` the process is stationary with long-range dependence;
its autocorrelation function (eq. 6) is

    ``rho_k = prod_{i=1..k} (i - 1 + d) / (i - d)``
            ``= Gamma(1 - d) Gamma(k + d) / (Gamma(d) Gamma(k + 1 - d))``

which decays hyperbolically like ``k^(2d - 1)``.  The Hurst parameter
relates to the differencing parameter by ``d = H - 1/2``.

The module also provides the autocovariance of fractional Gaussian
noise (the increment process of fractional Brownian motion), used by
the Davies-Harte generator.
"""

from __future__ import annotations

import numpy as np
from scipy import special

from repro._validation import require_in_open_interval, require_positive_int

__all__ = [
    "d_from_hurst",
    "hurst_from_d",
    "farima_acf",
    "fgn_acf",
    "fractional_binomial_weights",
]


def d_from_hurst(hurst):
    """Fractional differencing parameter ``d = H - 1/2``.

    Long-range dependence requires ``1/2 < H < 1`` and hence
    ``0 < d < 1/2``; this routine accepts the full stationary range
    ``0 < H < 1`` (negative ``d`` gives anti-persistent noise).
    """
    hurst = require_in_open_interval(hurst, "hurst", 0.0, 1.0)
    return hurst - 0.5


def hurst_from_d(d):
    """Hurst parameter ``H = d + 1/2`` for ``-1/2 < d < 1/2``."""
    d = require_in_open_interval(d, "d", -0.5, 0.5)
    return d + 0.5


def farima_acf(d, n_lags):
    """Autocorrelation function of fARIMA(0, d, 0) for lags 0..n_lags.

    Implements eq. (6) of the paper via a cumulative product, which is
    both exact and numerically stable::

        rho_0 = 1,  rho_k = rho_{k-1} * (k - 1 + d) / (k - d)

    Parameters
    ----------
    d:
        Fractional differencing parameter in (-1/2, 1/2).
    n_lags:
        Largest lag to evaluate (inclusive).

    Returns
    -------
    numpy.ndarray of shape ``(n_lags + 1,)`` with ``rho[0] == 1``.
    """
    d = require_in_open_interval(d, "d", -0.5, 0.5)
    n_lags = int(n_lags)
    if n_lags < 0:
        raise ValueError(f"n_lags must be >= 0, got {n_lags}")
    k = np.arange(1, n_lags + 1, dtype=float)
    if n_lags == 0:
        return np.ones(1)
    ratios = (k - 1.0 + d) / (k - d)
    return np.concatenate(([1.0], np.cumprod(ratios)))


def fgn_acf(hurst, n_lags, variance=1.0):
    """Autocovariance of fractional Gaussian noise for lags 0..n_lags.

    ``gamma(k) = (variance / 2) * (|k+1|^{2H} - 2|k|^{2H} + |k-1|^{2H})``.

    This is the increment process of fractional Brownian motion and is
    exactly (second-order) self-similar; the Davies-Harte generator
    synthesizes Gaussian noise with precisely this autocovariance.
    """
    hurst = require_in_open_interval(hurst, "hurst", 0.0, 1.0)
    if variance <= 0:
        raise ValueError(f"variance must be positive, got {variance!r}")
    n_lags = int(n_lags)
    if n_lags < 0:
        raise ValueError(f"n_lags must be >= 0, got {n_lags}")
    k = np.arange(0, n_lags + 1, dtype=float)
    two_h = 2.0 * hurst
    return 0.5 * variance * (np.abs(k + 1) ** two_h - 2.0 * np.abs(k) ** two_h + np.abs(k - 1) ** two_h)


def fractional_binomial_weights(d, n_weights):
    """Weights of the fractional differencing operator (eqs. 4-5).

    Returns ``w_i = binom(d, i) (-1)^i = Gamma(i - d) / (Gamma(-d) Gamma(i + 1))``
    for ``i = 0 .. n_weights - 1``.  Applying these weights as a
    convolution to a fARIMA(0, d, 0) path recovers (approximately,
    because the operator is truncated) white noise -- a property the
    test suite uses as an invariant.
    """
    d = require_in_open_interval(d, "d", -0.5, 0.5)
    n_weights = require_positive_int(n_weights, "n_weights")
    i = np.arange(n_weights, dtype=float)
    if d == 0.0:
        w = np.zeros(n_weights)
        w[0] = 1.0
        return w
    # log |Gamma(i - d)| - log Gamma(-d) - log Gamma(i + 1), with the
    # sign handled explicitly: Gamma(i - d) > 0 for i >= 1 and d < 1,
    # and Gamma(-d) is negative when 0 < d < 1 ... use gammasgn.
    num, num_sign = special.gammaln(i - d), special.gammasgn(i - d)
    den, den_sign = special.gammaln(-d), special.gammasgn(-d)
    w = num_sign * den_sign * np.exp(num - den - special.gammaln(i + 1.0))
    w[0] = 1.0
    return w
