"""Hosking's exact algorithm for fractional ARIMA(0, d, 0) generation.

This is the paper's traffic generator (Section 4.1, eqs. 7-12, adapted
from Hosking 1984).  The algorithm is a Durbin-Levinson recursion that
draws each new point from its exact conditional Gaussian distribution
given the entire past:

    ``N_k   = rho_k - sum_{j=1..k-1} phi_{k-1,j} rho_{k-j}``
    ``D_k   = D_{k-1} - N_{k-1}^2 / D_{k-1}``
    ``phi_kk = N_k / D_k``
    ``phi_kj = phi_{k-1,j} - phi_kk phi_{k-1,k-j}``
    ``m_k   = sum_{j=1..k} phi_kj X_{k-j}``
    ``v_k   = (1 - phi_kk^2) v_{k-1}``
    ``X_k ~ N(m_k, v_k)``

Because every point conditions on every previous point the cost is
O(n^2) -- the paper reports ~10 hours for 171,000 points on a 1994
workstation; the vectorized recursion here generates the same length in
minutes.  For long realizations the O(n log n) Davies-Harte generator
(:mod:`repro.core.daviesharte`) or Paxson's approximate synthesizer
(:mod:`repro.core.paxson`) are the practical alternatives.

The generator is *resumable*: :meth:`HoskingGenerator.extend` continues
the Durbin-Levinson recursion from the retained conditional state, so a
realization can be produced in arbitrary chunks.  Under a fixed seed,
``extend(a)`` followed by ``extend(b)`` is byte-identical to a single
``generate(a + b)`` -- the property :mod:`repro.stream.sources` relies
on to stream exact fARIMA noise.  Note the state (prediction
coefficients plus the full history) grows as O(total samples); constant
memory requires the approximate block sources in :mod:`repro.stream`.
"""

from __future__ import annotations

import numpy as np

from repro._validation import (
    require_in_open_interval,
    require_positive,
    require_positive_int,
)
from repro.core.fractional import d_from_hurst, farima_acf
from repro.obs import metrics, trace
from repro.par import cache as _cache

__all__ = ["HoskingGenerator", "hosking_farima"]

_SAMPLES = metrics.registry().counter(
    "repro_generator_samples_total",
    help="Gaussian samples generated, by backend",
    unit="samples", labels={"generator": "hosking"},
)


class HoskingGenerator:
    """Exact Gaussian fARIMA(0, d, 0) sample-path generator.

    Parameters
    ----------
    hurst:
        Hurst parameter, validated against the open stationary range
        ``(0, 1)``; the differencing parameter is ``d = hurst - 1/2``.
        Pass ``d=...`` (in ``(-1/2, 1/2)``) instead to specify the
        differencing parameter directly.  Long-range dependence as in
        the paper requires ``1/2 < H < 1``.
    variance:
        Marginal variance ``v_0`` of the process (mean is zero).

    The generator is *streaming*: :meth:`extend` continues the current
    realization by any number of points (and :meth:`next` by exactly
    one), while :meth:`generate` resets and produces a full path.  The
    conditional state (partial autocorrelations and the sample history)
    is retained so paths can be extended incrementally.
    """

    def __init__(self, hurst=None, d=None, variance=1.0):
        if (hurst is None) == (d is None):
            raise ValueError("specify exactly one of hurst= or d=")
        if hurst is not None:
            d = d_from_hurst(require_in_open_interval(hurst, "hurst", 0.0, 1.0))
        else:
            d = require_in_open_interval(d, "d", -0.5, 0.5)
        self.d = float(d)
        self.hurst = self.d + 0.5
        self.variance = require_positive(variance, "variance")
        self.reset()

    def reset(self):
        """Discard the current realization and conditional state."""
        self._n = 0
        self._hist = np.zeros(0)
        self._phi = np.zeros(0)
        self._rho = np.ones(1)
        self._v = self.variance
        self._n_prev = 0.0
        self._d_prev = 1.0

    @property
    def n_generated(self):
        """Number of points generated so far."""
        return self._n

    @property
    def generated(self):
        """The realization generated so far, as a numpy array."""
        return self._hist[: self._n].copy()

    def _extend_acf(self, upto):
        if upto < self._rho.size:
            return
        # The cumulative-product table is a pure function of (d, n_lags);
        # the content cache (when configured) serves the exact float64
        # array back, so cached and fresh runs are bit-identical.
        self._rho = _cache.memoized(
            "hosking.farima_acf",
            {"d": self.d, "n_lags": upto},
            lambda: farima_acf(self.d, upto),
        )

    def _grow(self, total):
        """Ensure the history/coefficient buffers hold ``total`` points."""
        if self._hist.size >= total:
            return
        cap = max(2 * self._hist.size, total, 16)
        hist = np.zeros(cap)
        hist[: self._n] = self._hist[: self._n]
        phi = np.zeros(cap)
        if self._n > 1:
            phi[: self._n - 1] = self._phi[: self._n - 1]
        self._hist = hist
        self._phi = phi

    def extend(self, n, rng=None):
        """Continue the realization by ``n`` points; returns the new chunk.

        The Durbin-Levinson recursion resumes from the retained state,
        so ``extend(a); extend(b)`` draws the same path as one
        ``extend(a + b)`` under the same ``rng`` (numpy's Gaussian
        stream is split-invariant).  Each call costs
        O(n * total) time; memory is O(total) for the history and
        prediction coefficients.
        """
        n = require_positive_int(n, "n")
        if rng is None:
            rng = np.random.default_rng()
        k0 = self._n
        total = k0 + n
        with trace.span("hosking.extend", n=n, total=total):
            chunk = self._extend(n, rng, k0, total)
        _SAMPLES.inc(n)
        return chunk

    def _extend(self, n, rng, k0, total):
        self._extend_acf(total)
        self._grow(total)
        rho = self._rho
        hist = self._hist
        phi = self._phi
        v = self._v
        n_prev, d_prev = self._n_prev, self._d_prev
        # Scratch buffer for the Levinson coefficient update: writing the
        # reversed-product into preallocated space replaces two fresh
        # allocations per step (the defensive .copy() of the reversed
        # view plus the product temporary) with zero, while performing
        # the same elementwise multiply-then-subtract bit-for-bit.
        scratch = np.empty(max(total - 1, 1))
        start = k0
        if k0 == 0:
            hist[0] = rng.normal(0.0, np.sqrt(self.variance))
            start = 1
        # One bulk draw per chunk; noise[k - k0] drives step k, so the
        # first-ever chunk leaves noise[0] unused exactly like the
        # batch path (which draws X_0 from rng.normal separately).
        noise = rng.standard_normal(n)
        for k in range(start, total):
            if k == 1:
                n_k = rho[1]
            else:
                n_k = rho[k] - phi[: k - 1] @ rho[k - 1 : 0 : -1]
            d_k = d_prev - n_prev * n_prev / d_prev
            phi_kk = n_k / d_k
            if k > 1:
                np.multiply(phi[k - 2 :: -1], phi_kk, out=scratch[: k - 1])
                phi[: k - 1] -= scratch[: k - 1]
            phi[k - 1] = phi_kk
            m_k = phi[:k] @ hist[k - 1 :: -1]
            v *= 1.0 - phi_kk * phi_kk
            if v <= 0:
                raise RuntimeError(f"conditional variance collapsed at step {k}")
            hist[k] = m_k + np.sqrt(v) * noise[k - k0]
            n_prev, d_prev = n_k, d_k
        self._n = total
        self._v = v
        self._n_prev, self._d_prev = n_prev, d_prev
        return hist[k0:total].copy()

    def next(self, rng):
        """Draw the next point of the realization.

        Equivalent to the per-point form of :meth:`extend` except that
        the sample is drawn as ``rng.normal(m_k, sqrt(v_k))`` directly
        (one Gaussian per call rather than a bulk chunk).

        Parameters
        ----------
        rng:
            A :class:`numpy.random.Generator`.
        """
        k = self._n
        self._extend_acf(k)
        self._grow(k + 1)
        hist = self._hist
        phi = self._phi
        if k == 0:
            x = rng.normal(0.0, np.sqrt(self._v))
            hist[0] = x
            self._n = 1
            return float(x)
        rho = self._rho
        if k == 1:
            n_k = rho[1]
        else:
            n_k = rho[k] - phi[: k - 1] @ rho[k - 1 : 0 : -1]
        d_k = self._d_prev - self._n_prev**2 / self._d_prev
        phi_kk = n_k / d_k
        if not -1.0 < phi_kk < 1.0:
            raise RuntimeError(
                f"partial autocorrelation left (-1, 1) at step {k}; numerical breakdown"
            )
        if k > 1:
            phi[: k - 1] -= phi_kk * phi[k - 2 :: -1].copy()
        phi[k - 1] = phi_kk
        m_k = phi[:k] @ hist[k - 1 :: -1]
        self._v *= 1.0 - phi_kk**2
        x = rng.normal(m_k, np.sqrt(self._v))
        self._n_prev = n_k
        self._d_prev = d_k
        hist[k] = x
        self._n = k + 1
        return float(x)

    def generate(self, n, rng=None):
        """Generate a fresh realization of length ``n``.

        Resets any previous state first; use :meth:`extend` for
        incremental continuation.  Cost is O(n^2) time and O(n) memory.
        """
        n = require_positive_int(n, "n")
        if rng is None:
            rng = np.random.default_rng()
        self.reset()
        return self.extend(n, rng=rng)

    def __repr__(self):
        return f"HoskingGenerator(hurst={self.hurst:.4g}, variance={self.variance:.4g})"


def hosking_farima(n, hurst=0.8, variance=1.0, rng=None):
    """Convenience wrapper: one fARIMA(0, d, 0) path of length ``n``."""
    return HoskingGenerator(hurst=hurst, variance=variance).generate(n, rng=rng)
