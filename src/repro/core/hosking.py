"""Hosking's exact algorithm for fractional ARIMA(0, d, 0) generation.

This is the paper's traffic generator (Section 4.1, eqs. 7-12, adapted
from Hosking 1984).  The algorithm is a Durbin-Levinson recursion that
draws each new point from its exact conditional Gaussian distribution
given the entire past:

    ``N_k   = rho_k - sum_{j=1..k-1} phi_{k-1,j} rho_{k-j}``
    ``D_k   = D_{k-1} - N_{k-1}^2 / D_{k-1}``
    ``phi_kk = N_k / D_k``
    ``phi_kj = phi_{k-1,j} - phi_kk phi_{k-1,k-j}``
    ``m_k   = sum_{j=1..k} phi_kj X_{k-j}``
    ``v_k   = (1 - phi_kk^2) v_{k-1}``
    ``X_k ~ N(m_k, v_k)``

Because every point conditions on every previous point the cost is
O(n^2) -- the paper reports ~10 hours for 171,000 points on a 1994
workstation; the vectorized recursion here generates the same length in
minutes.  For long realizations the O(n log n) Davies-Harte generator
(:mod:`repro.core.daviesharte`) is the practical alternative.
"""

from __future__ import annotations

import numpy as np

from repro._validation import require_positive, require_positive_int
from repro.core.fractional import d_from_hurst, farima_acf

__all__ = ["HoskingGenerator", "hosking_farima"]


class HoskingGenerator:
    """Exact Gaussian fARIMA(0, d, 0) sample-path generator.

    Parameters
    ----------
    hurst:
        Hurst parameter in (0, 1); the differencing parameter is
        ``d = hurst - 1/2``.  Pass ``d=...`` instead to specify the
        differencing parameter directly.
    variance:
        Marginal variance ``v_0`` of the process (mean is zero).

    The generator is *streaming*: :meth:`next` extends the current
    realization one point at a time while :meth:`generate` produces a
    full path.  The conditional state (partial autocorrelations and the
    sample history) is retained so paths can be extended incrementally.
    """

    def __init__(self, hurst=None, d=None, variance=1.0):
        if (hurst is None) == (d is None):
            raise ValueError("specify exactly one of hurst= or d=")
        if hurst is not None:
            d = d_from_hurst(hurst)
        else:
            if not -0.5 < d < 0.5:
                raise ValueError(f"d must lie in (-1/2, 1/2), got {d!r}")
        self.d = float(d)
        self.hurst = self.d + 0.5
        self.variance = require_positive(variance, "variance")
        self.reset()

    def reset(self):
        """Discard the current realization and conditional state."""
        self._x = []
        self._phi = np.zeros(0)
        self._rho = np.ones(1)
        self._v = self.variance
        self._n_prev = 0.0
        self._d_prev = 1.0

    @property
    def generated(self):
        """The realization generated so far, as a numpy array."""
        return np.asarray(self._x, dtype=float)

    def _extend_acf(self, upto):
        if upto < self._rho.size:
            return
        self._rho = farima_acf(self.d, upto)

    def next(self, rng):
        """Draw the next point of the realization.

        Parameters
        ----------
        rng:
            A :class:`numpy.random.Generator`.
        """
        k = len(self._x)
        if k == 0:
            x = rng.normal(0.0, np.sqrt(self._v))
            self._x.append(float(x))
            return float(x)
        self._extend_acf(max(k, 2 * len(self._x)))
        rho = self._rho
        phi = self._phi
        # Eq. (7): N_k = rho_k - sum_j phi_{k-1,j} rho_{k-j}.
        if k == 1:
            n_k = rho[1]
        else:
            n_k = rho[k] - phi[: k - 1] @ rho[k - 1 : 0 : -1]
        # Eq. (8): D_k = D_{k-1} - N_{k-1}^2 / D_{k-1}.
        d_k = self._d_prev - self._n_prev**2 / self._d_prev
        phi_kk = n_k / d_k
        if not -1.0 < phi_kk < 1.0:
            raise RuntimeError(
                f"partial autocorrelation left (-1, 1) at step {k}; numerical breakdown"
            )
        # Eq. (10): update the prediction coefficients in place.
        new_phi = np.empty(k)
        if k > 1:
            new_phi[: k - 1] = phi[: k - 1] - phi_kk * phi[k - 2 :: -1]
        new_phi[k - 1] = phi_kk
        # Eqs. (11)-(12): conditional mean and variance.
        hist = np.asarray(self._x[::-1], dtype=float)
        m_k = new_phi @ hist
        self._v *= 1.0 - phi_kk**2
        x = rng.normal(m_k, np.sqrt(self._v))
        self._phi = new_phi
        self._n_prev = n_k
        self._d_prev = d_k
        self._x.append(float(x))
        return float(x)

    def generate(self, n, rng=None):
        """Generate a fresh realization of length ``n``.

        Resets any previous state first; use :meth:`next` for
        incremental extension.  Cost is O(n^2) time and O(n) memory.
        """
        n = require_positive_int(n, "n")
        if rng is None:
            rng = np.random.default_rng()
        self.reset()
        self._extend_acf(n)
        rho = self._rho
        # Local, loop-friendly state (avoids attribute lookups in the
        # O(n) inner loop; the heavy lifting is numpy dot products).
        out = np.empty(n)
        phi = np.empty(n)
        out[0] = rng.normal(0.0, np.sqrt(self.variance))
        v = self.variance
        n_prev, d_prev = 0.0, 1.0
        noise = rng.standard_normal(n)
        for k in range(1, n):
            if k == 1:
                n_k = rho[1]
            else:
                n_k = rho[k] - phi[: k - 1] @ rho[k - 1 : 0 : -1]
            d_k = d_prev - n_prev * n_prev / d_prev
            phi_kk = n_k / d_k
            if k > 1:
                phi[: k - 1] -= phi_kk * phi[k - 2 :: -1].copy()
            phi[k - 1] = phi_kk
            m_k = phi[:k] @ out[k - 1 :: -1]
            v *= 1.0 - phi_kk * phi_kk
            if v <= 0:
                raise RuntimeError(f"conditional variance collapsed at step {k}")
            out[k] = m_k + np.sqrt(v) * noise[k]
            n_prev, d_prev = n_k, d_k
        # Mirror the final state so the streaming API could continue.
        self._x = out.tolist()
        self._phi = phi[: n - 1].copy() if n > 1 else np.zeros(0)
        self._v = v
        self._n_prev, self._d_prev = n_prev, d_prev
        return out

    def __repr__(self):
        return f"HoskingGenerator(hurst={self.hurst:.4g}, variance={self.variance:.4g})"


def hosking_farima(n, hurst=0.8, variance=1.0, rng=None):
    """Convenience wrapper: one fARIMA(0, d, 0) path of length ``n``."""
    return HoskingGenerator(hurst=hurst, variance=variance).generate(n, rng=rng)
