"""The classical Markov-modulated fluid video model (Maglaris et al.).

Before the self-similar results, the standard VBR video source model
was a superposition of ``M`` i.i.d. exponential on/off "minisources":
each minisource is a two-state continuous-time Markov chain emitting
``peak_rate`` while on and nothing while off, and the aggregate rate
approximates the measured first- and second-order statistics of video.
This is precisely the kind of "commonly used stochastic model for VBR
video traffic" the paper shows cannot capture long-range dependence:
its autocorrelation decays exactly exponentially, so queueing analyses
built on it are "overly optimistic".

:class:`MarkovFluidModel` implements the model (discretized per frame
slot) with the classical moment-matching fit:

- aggregate mean      ``M p A``        (``p`` = on-probability,
  ``A`` = per-minisource rate),
- aggregate variance  ``M p (1-p) A^2``,
- autocorrelation     ``exp(-n / tau)`` with time constant ``tau``
  matched to the trace's short-lag ACF decay.

The ablation benchmark shows it matching mean/variance/lag-1 ACF of the
trace while needing several-fold smaller zero-loss buffers -- the
failure mode the paper warns about, demonstrated on the very model the
community used.
"""

from __future__ import annotations

import numpy as np

from repro._validation import (
    as_1d_float_array,
    require_in_open_interval,
    require_positive,
    require_positive_int,
)

__all__ = ["MarkovFluidModel"]


class MarkovFluidModel:
    """Superposition of exponential on/off minisources (per-slot).

    Parameters
    ----------
    n_minisources:
        Number of independent on/off minisources ``M`` (Maglaris et
        al. used ~20).
    on_probability:
        Stationary probability ``p`` of a minisource being on.
    rate_per_source:
        Fluid rate ``A`` emitted by an "on" minisource (bytes/slot).
    time_constant:
        Autocorrelation time constant ``tau`` in slots: the aggregate
        ACF is ``exp(-n / tau)``.
    """

    name = "markov-fluid"

    def __init__(self, n_minisources, on_probability, rate_per_source, time_constant):
        self.n_minisources = require_positive_int(n_minisources, "n_minisources")
        self.on_probability = require_in_open_interval(on_probability, "on_probability", 0.0, 1.0)
        self.rate_per_source = require_positive(rate_per_source, "rate_per_source")
        self.time_constant = require_positive(time_constant, "time_constant")

    # ------------------------------------------------------------------
    # Moments and fitting
    # ------------------------------------------------------------------
    def mean(self):
        """Aggregate mean rate ``M p A``."""
        return self.n_minisources * self.on_probability * self.rate_per_source

    def var(self):
        """Aggregate variance ``M p (1 - p) A^2``."""
        p = self.on_probability
        return self.n_minisources * p * (1.0 - p) * self.rate_per_source**2

    def acf(self, n_lags):
        """Theoretical autocorrelation ``exp(-n / tau)``."""
        n = np.arange(int(n_lags) + 1, dtype=float)
        return np.exp(-n / self.time_constant)

    @classmethod
    def fit(cls, data, n_minisources=20, acf_fit_lags=50):
        """Classical moment-matching fit to a bandwidth series.

        Matches the sample mean and variance exactly (solving for ``p``
        and ``A`` given ``M``) and the ACF time constant by log-linear
        regression over the first ``acf_fit_lags`` lags.

        ``p`` solves ``var/mean^2 = (1-p)/(M p)``.
        """
        arr = as_1d_float_array(data, "data", min_length=acf_fit_lags + 10)
        n_minisources = require_positive_int(n_minisources, "n_minisources")
        mean = float(np.mean(arr))
        var = float(np.var(arr))
        if mean <= 0 or var <= 0:
            raise ValueError("data must have positive mean and variance")
        # (1-p)/p = M var / mean^2  ->  p = 1 / (1 + M var / mean^2).
        ratio = n_minisources * var / mean**2
        p = 1.0 / (1.0 + ratio)
        rate = mean / (n_minisources * p)
        from repro.analysis.correlation import autocorrelation, exponential_acf_fit

        acf = autocorrelation(arr, max_lag=acf_fit_lags)
        rho, _ = exponential_acf_fit(acf, np.arange(1, acf_fit_lags + 1))
        rho = min(max(rho, 1e-6), 1.0 - 1e-6)
        tau = -1.0 / np.log(rho)
        return cls(n_minisources, p, rate, tau)

    # ------------------------------------------------------------------
    # Generation
    # ------------------------------------------------------------------
    def generate(self, n, rng=None):
        """Generate ``n`` slots of aggregate fluid rate.

        Each minisource is a two-state Markov chain with per-slot
        transition probabilities chosen so the stationary on-probability
        is ``p`` and the ACF time constant is ``tau``:
        ``a = P(off->on) = p (1 - e^{-1/tau})``,
        ``b = P(on->off) = (1-p)(1 - e^{-1/tau})``.
        The count of "on" minisources is tracked directly (O(n) per
        slot overall, not O(n M)): given ``k`` sources on, the next
        count is ``k - Binomial(k, b) + Binomial(M - k, a)``.
        """
        n = require_positive_int(n, "n")
        if rng is None:
            rng = np.random.default_rng()
        decay = np.exp(-1.0 / self.time_constant)
        a = self.on_probability * (1.0 - decay)
        b = (1.0 - self.on_probability) * (1.0 - decay)
        m = self.n_minisources
        out = np.empty(n)
        k = int(rng.binomial(m, self.on_probability))
        for t in range(n):
            out[t] = k
            turned_off = rng.binomial(k, b) if k else 0
            turned_on = rng.binomial(m - k, a) if k < m else 0
            k = k - turned_off + turned_on
        return out * self.rate_per_source

    def __repr__(self):
        return (
            f"MarkovFluidModel(M={self.n_minisources}, p={self.on_probability:.4g}, "
            f"A={self.rate_per_source:.6g}, tau={self.time_constant:.4g})"
        )
