"""The four-parameter Garrett-Willinger VBR video source model.

The model combines the two empirical findings of the paper's analysis:

1. the marginal bandwidth distribution is hybrid Gamma/Pareto
   (parameters ``mu_gamma``, ``sigma_gamma``, ``tail_shape``), and
2. the autocorrelation structure is long-range dependent with Hurst
   parameter ``H`` (parameter ``hurst``), realized as a Gaussian
   fractional ARIMA(0, d, 0) / fractional Gaussian noise process.

Synthetic traffic is the point-wise marginal transform of the Gaussian
LRD process (eq. 13).  Without *both* features, the occurrence and
persistence of "bad states" in a realization is under-represented --
the crippled variants in :mod:`repro.core.baselines` demonstrate this
in the Fig. 16 experiment.
"""

from __future__ import annotations

import numpy as np

from repro._validation import require_in_open_interval, require_positive, require_positive_int
from repro.core.daviesharte import DaviesHarteGenerator
from repro.core.hosking import HoskingGenerator
from repro.core.paxson import PaxsonGenerator
from repro.core.transform import marginal_transform
from repro.distributions.hybrid import GammaParetoHybrid
from repro.distributions.normal import Normal

__all__ = ["VBRVideoModel"]

_GENERATORS = ("hosking", "davies-harte", "paxson")


class VBRVideoModel:
    """Self-similar VBR video source model (Section 4 of the paper).

    Parameters
    ----------
    mu_gamma:
        Equivalent mean of the Gamma body of the marginal (bytes per
        frame for frame-level modeling).
    sigma_gamma:
        Equivalent standard deviation of the Gamma body.
    tail_shape:
        Pareto tail shape ``a`` (the paper's ``m_T`` is the tail's
        log-log slope ``-a``).
    hurst:
        Hurst parameter ``H`` in (1/2, 1) for long-range dependence.
        Values in (0, 1/2] are accepted (they yield SRD/anti-persistent
        noise) to support ablation experiments.
    """

    def __init__(self, mu_gamma, sigma_gamma, tail_shape, hurst):
        self.mu_gamma = require_positive(mu_gamma, "mu_gamma")
        self.sigma_gamma = require_positive(sigma_gamma, "sigma_gamma")
        self.tail_shape = require_positive(tail_shape, "tail_shape")
        self.hurst = require_in_open_interval(hurst, "hurst", 0.0, 1.0)
        self.marginal = GammaParetoHybrid(self.mu_gamma, self.sigma_gamma, self.tail_shape)

    # ------------------------------------------------------------------
    # Construction from data
    # ------------------------------------------------------------------
    @classmethod
    def fit(cls, data, tail_fraction=0.03, hurst_estimator="variance-time"):
        """Estimate all four model parameters from a bandwidth series.

        ``mu_gamma``/``sigma_gamma`` are the sample moments,
        ``tail_shape`` the least-squares log-log tail slope, and
        ``hurst`` is estimated with the requested method from
        :mod:`repro.analysis.hurst` (``"variance-time"``, ``"rs"`` or
        ``"whittle"``).
        """
        from repro.analysis import hurst as hurst_mod

        data = np.asarray(data, dtype=float)
        marginal = GammaParetoHybrid.fit(data, tail_fraction=tail_fraction)
        estimators = {
            "variance-time": lambda x: hurst_mod.variance_time(x).hurst,
            "rs": lambda x: hurst_mod.rs_pox(x).hurst,
            "whittle": lambda x: hurst_mod.whittle(x).hurst,
        }
        if hurst_estimator not in estimators:
            raise ValueError(
                f"hurst_estimator must be one of {sorted(estimators)}, got {hurst_estimator!r}"
            )
        h = float(np.clip(estimators[hurst_estimator](data), 0.01, 0.99))
        return cls(marginal.mu_gamma, marginal.sigma_gamma, marginal.tail_shape, h)

    @property
    def parameters(self):
        """``(mu_gamma, sigma_gamma, tail_shape, hurst)`` as a tuple."""
        return (self.mu_gamma, self.sigma_gamma, self.tail_shape, self.hurst)

    # ------------------------------------------------------------------
    # Generation
    # ------------------------------------------------------------------
    def generate_gaussian(self, n, rng=None, generator="hosking"):
        """The intermediate Gaussian LRD realization (before eq. 13).

        ``generator="hosking"`` uses the paper's exact O(n^2)
        algorithm; ``"davies-harte"`` the exact O(n log n) FGN
        generator; ``"paxson"`` the approximate O(n log n) spectral
        synthesizer (fastest, requires even ``n``).
        """
        n = require_positive_int(n, "n")
        if generator == "hosking":
            return HoskingGenerator(hurst=self.hurst).generate(n, rng=rng)
        if generator == "davies-harte":
            return DaviesHarteGenerator(self.hurst).generate(n, rng=rng)
        if generator == "paxson":
            return PaxsonGenerator(self.hurst).generate(n, rng=rng)
        raise ValueError(f"generator must be one of {_GENERATORS}, got {generator!r}")

    def generate(self, n, rng=None, generator="hosking", method="exact", n_table=10_000):
        """Generate ``n`` frames of synthetic VBR video bandwidth.

        Returns a float array of bytes per frame with hybrid
        Gamma/Pareto marginals and Hurst parameter ``hurst``.

        Parameters
        ----------
        n:
            Number of frames.
        rng:
            A :class:`numpy.random.Generator`.
        generator:
            ``"hosking"`` (paper-exact, O(n^2)), ``"davies-harte"``
            (exact, O(n log n); recommended for n above ~20,000) or
            ``"paxson"`` (approximate, O(n log n); fastest).
        method:
            ``"exact"`` or ``"table"`` marginal transform; the paper
            used a 10,000-point table (see
            :func:`repro.core.transform.marginal_transform`).
        n_table:
            Table resolution for ``method="table"``.
        """
        x = self.generate_gaussian(n, rng=rng, generator=generator)
        # The Gaussian realization has a known theoretical law
        # N(0, 1); using it (rather than sample moments) is the paper's
        # eq. (13) verbatim.
        return marginal_transform(
            x, self.marginal, source=Normal(0.0, 1.0), method=method, n_table=n_table
        )

    def generate_trace(self, n, rng=None, frame_rate=24.0, slices_per_frame=30, **kwargs):
        """Generate a :class:`~repro.video.trace.VBRTrace` of ``n`` frames.

        The per-frame bytes come from :meth:`generate`; slice-level data
        is synthesized by splitting each frame evenly (the model is a
        frame-level model; see :mod:`repro.video.starwars` for a
        synthesizer with calibrated slice-level variability).
        """
        from repro.video.trace import VBRTrace

        frames = self.generate(n, rng=rng, **kwargs)
        return VBRTrace(frames, frame_rate=frame_rate, slices_per_frame=slices_per_frame)

    def __repr__(self):
        return (
            f"VBRVideoModel(mu_gamma={self.mu_gamma:.6g}, sigma_gamma={self.sigma_gamma:.6g}, "
            f"tail_shape={self.tail_shape:.4g}, hurst={self.hurst:.4g})"
        )
