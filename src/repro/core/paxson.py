"""Paxson's FFT-based approximate fractional-Gaussian-noise synthesizer.

Paxson ("Fast, Approximate Synthesis of Fractional Gaussian Noise for
Generating Self-Similar Network Traffic", CCR 1997; see PAPERS.md)
observes that the periodogram of fGn at frequency ``lambda`` is
approximately an independent exponential with mean ``f(lambda; H)``,
the fGn spectral density.  Running that observation backwards gives a
synthesizer: draw independent complex-Gaussian spectral coefficients
whose expected power follows ``f``, enforce Hermitian symmetry, and
inverse-FFT.  The result is approximate (the coefficients of the true
discrete process are neither exactly independent nor exactly of that
power) but the bias is small and the cost is a single O(n log n) FFT
with O(n) memory and *no* large intermediate state -- roughly half the
work of the exact Davies-Harte method, and the classical answer to the
source paper's "10 hours for 171,000 points" generation bottleneck.

The spectral density uses Paxson's B-tilde_3 finite-sum approximation
of the infinite aliasing sum, including his empirical correction
factor, which he reports is accurate to within 0.01% of the true
density across ``H`` in [0.5, 0.9]:

    ``f(l; H) = A(l, H) [ |l|^{-2H-1} + B3(l, H) ]``
    ``A(l, H) = 2 sin(pi H) Gamma(2H + 1) (1 - cos l)``
"""

from __future__ import annotations

import numpy as np
from scipy import special

from repro._validation import require_in_open_interval, require_positive, require_positive_int
from repro.obs import metrics, trace
from repro.par import cache as _cache

__all__ = ["PaxsonGenerator", "paxson_fgn", "fgn_spectral_density"]

_SAMPLES = metrics.registry().counter(
    "repro_generator_samples_total",
    help="Gaussian samples generated, by backend",
    unit="samples", labels={"generator": "paxson"},
)


def fgn_spectral_density(lam, hurst):
    """Approximate fGn spectral density ``f(lambda; H)`` (unit variance).

    Implements Paxson's corrected three-term approximation ``B3`` of
    the aliasing sum ``B(lambda, H)``.  ``lam`` is an array of
    frequencies in ``(0, pi]``.
    """
    hurst = require_in_open_interval(hurst, "hurst", 0.0, 1.0)
    lam = np.asarray(lam, dtype=float)
    if np.any((lam <= 0) | (lam > np.pi)):
        raise ValueError("frequencies must lie in (0, pi]")
    d = -2.0 * hurst - 1.0
    dprime = -2.0 * hurst
    a = 2.0 * np.pi * np.arange(1, 5)[:, None] + lam[None, :]
    b = 2.0 * np.pi * np.arange(1, 5)[:, None] - lam[None, :]
    b3 = (
        np.sum(a[:3] ** d + b[:3] ** d, axis=0)
        + (a[2] ** dprime + b[2] ** dprime + a[3] ** dprime + b[3] ** dprime)
        / (8.0 * hurst * np.pi)
    )
    b3 = (1.0002 - 0.000134 * lam) * (b3 - 2.0 ** (-7.65 * hurst - 7.4))
    front = 2.0 * np.sin(np.pi * hurst) * special.gamma(2.0 * hurst + 1.0) * (1.0 - np.cos(lam))
    return front * (np.abs(lam) ** d + b3)


class PaxsonGenerator:
    """Approximate O(n log n) fractional-Gaussian-noise generator.

    Parameters
    ----------
    hurst:
        Hurst parameter, validated against the open stationary range
        ``(0, 1)``.  Note Paxson's ``B3`` aliasing correction was
        calibrated for the long-range-dependent band ``H in [0.5, 0.9]``;
        outside it the approximation degrades gracefully but is
        uncalibrated.
    variance:
        Marginal variance of the noise (mean is zero).

    The spectral power profile depends only on ``(hurst, n)``; it is
    cached so repeated same-length generations (the streaming block
    sources re-draw fixed-size blocks forever) pay the density
    evaluation only once.
    """

    def __init__(self, hurst, variance=1.0):
        self.hurst = require_in_open_interval(hurst, "hurst", 0.0, 1.0)
        self.variance = require_positive(variance, "variance")
        self._cached_n = None
        self._cached_sqrt_power = None
        self._cached_scale = None

    def _sqrt_power(self, n):
        if self._cached_n == n:
            return self._cached_sqrt_power, self._cached_scale
        half = n // 2
        # The unit-variance density is a pure function of (hurst, n); the
        # content cache (when configured) serves the exact float64 array,
        # and sqrt/scale are re-derived from it identically either way.
        # variance deliberately stays out of the key so every variance
        # shares one entry.
        # The Nyquist entry (2 pi (n/2)) / n can round one ulp ABOVE pi
        # for some n (26, 52, ...); clamp it back so those lengths
        # synthesize instead of tripping the density's domain check.
        # Frequencies that already round to <= pi are untouched, so
        # every previously-working length keeps bit-identical output.
        f = _cache.memoized(
            "paxson.spectral_density",
            {"hurst": self.hurst, "n": n},
            lambda: fgn_spectral_density(
                np.minimum(2.0 * np.pi * np.arange(1, half + 1) / n, np.pi),
                self.hurst,
            ),
        )
        # E[X_t^2] of the synthesized path is (2 sum_{j<n/2} f_j + f_{n/2}) / n
        # (each interior frequency appears with its conjugate); rescale so
        # the marginal variance is exactly the requested one.
        sigma2 = (2.0 * np.sum(f[:-1]) + f[-1]) / n
        self._cached_n = n
        self._cached_sqrt_power = np.sqrt(f)
        self._cached_scale = np.sqrt(self.variance / sigma2)
        return self._cached_sqrt_power, self._cached_scale

    def generate(self, n, rng=None):
        """Generate an approximate fGn path of length ``n``.

        The FFT synthesis works on an even grid; odd lengths are
        produced by synthesizing ``n + 1`` points and dropping the last
        (the process is stationary, so truncation is harmless).
        """
        n = require_positive_int(n, "n")
        if rng is None:
            rng = np.random.default_rng()
        with trace.span("paxson.generate", n=n):
            x = self._generate(n, rng)
        _SAMPLES.inc(n)
        return x

    def _generate(self, n, rng):
        if n == 1:
            return rng.normal(0.0, np.sqrt(self.variance), size=1)
        if n % 2:
            return self._generate(n + 1, rng)[:n]
        half = n // 2
        sqrt_f, scale = self._sqrt_power(n)
        # Hermitian-symmetric spectrum: interior coefficients are complex
        # Gaussian with E|z_j|^2 = f_j, the Nyquist coefficient is real,
        # and the zero frequency carries no power (zero-mean noise).
        z = np.empty(half + 1, dtype=complex)
        z[0] = 0.0
        re = rng.standard_normal(half - 1)
        im = rng.standard_normal(half - 1)
        z[1:half] = sqrt_f[: half - 1] / np.sqrt(2.0) * (re + 1j * im)
        z[half] = sqrt_f[half - 1] * rng.standard_normal()
        x = np.fft.irfft(z, n) * np.sqrt(n)
        return x * scale

    def __repr__(self):
        return f"PaxsonGenerator(hurst={self.hurst:.4g}, variance={self.variance:.4g})"


def paxson_fgn(n, hurst=0.8, variance=1.0, rng=None):
    """Convenience wrapper: one approximate fGn path of length ``n``."""
    return PaxsonGenerator(hurst, variance=variance).generate(n, rng=rng)
