"""Approximate spectral synthesis of fractional Gaussian noise.

A third generator, complementing Hosking's exact O(n^2) recursion and
the exact O(n log n) Davies-Harte embedding: Paxson-style spectral
sampling.  The FGN spectral density is evaluated at the Fourier
frequencies, each ordinate is multiplied by an independent exponential
variate (the asymptotic distribution of periodogram ordinates), random
phases are attached, and one inverse FFT produces the path.

The method is approximate -- the spectral density is itself truncated
(the exact FGN spectrum is an infinite sum) and sampling the spectrum
independently ignores the small correlations between ordinates -- but
it is the cheapest of the three and historically popular for quick
self-similar workload generation.  The ablation benchmark compares all
three generators' recovered Hurst parameters.
"""

from __future__ import annotations

import numpy as np

from repro._validation import require_in_open_interval, require_positive, require_positive_int

__all__ = ["SpectralGenerator", "fgn_spectral_density", "spectral_fgn"]


def fgn_spectral_density(omega, hurst, n_terms=64):
    """FGN spectral density via the truncated infinite-sum formula.

    ``f(w) = 2 c_H (1 - cos w) sum_{j} |w + 2 pi j|^{-2H-1}`` with the
    sum truncated symmetrically at ``n_terms`` and the remainder
    approximated by an integral tail correction (Paxson's recipe).
    ``c_H = Gamma(2H+1) sin(pi H) / (2 pi)`` normalizes the variance
    to 1.
    """
    from scipy import special

    hurst = require_in_open_interval(hurst, "hurst", 0.0, 1.0)
    n_terms = require_positive_int(n_terms, "n_terms")
    omega = np.asarray(omega, dtype=float)
    if np.any((omega <= 0) | (omega > np.pi)):
        raise ValueError("omega must lie in (0, pi]")
    c_h = special.gamma(2 * hurst + 1) * np.sin(np.pi * hurst) / (2 * np.pi)
    exponent = -(2 * hurst + 1)
    j = np.arange(-n_terms, n_terms + 1, dtype=float)
    terms = np.abs(omega[:, None] + 2 * np.pi * j[None, :]) ** exponent
    core = terms.sum(axis=1)
    # Integral correction for the truncated tails:
    # sum_{|j|>n} |w + 2 pi j|^(-2H-1) ~= 2 * (2 pi n)^(-2H) / (4 pi H).
    tail = (2 * np.pi * n_terms) ** (-2 * hurst) / (2 * np.pi * hurst)
    return 2.0 * c_h * (1.0 - np.cos(omega)) * (core + tail)


class SpectralGenerator:
    """Approximate O(n log n) FGN generator by spectral sampling."""

    def __init__(self, hurst, variance=1.0):
        self.hurst = require_in_open_interval(hurst, "hurst", 0.0, 1.0)
        self.variance = require_positive(variance, "variance")
        self._cached_n = None
        self._cached_f = None

    def _density(self, n):
        if self._cached_n == n:
            return self._cached_f
        omega = 2.0 * np.pi * np.arange(1, n // 2 + 1) / n
        f = fgn_spectral_density(omega, self.hurst)
        self._cached_n = n
        self._cached_f = f
        return f

    def generate(self, n, rng=None):
        """Generate an approximate FGN path of length ``n`` (even)."""
        n = require_positive_int(n, "n")
        if n < 8:
            raise ValueError("spectral synthesis needs n >= 8")
        if n % 2:
            raise ValueError("spectral synthesis needs an even length")
        if rng is None:
            rng = np.random.default_rng()
        f = self._density(n)
        half = n // 2
        # Periodogram ordinates are asymptotically f(w) * Exp(1)/...;
        # attach uniform phases and enforce Hermitian symmetry.
        power = f * rng.exponential(1.0, size=half)
        phases = rng.uniform(0.0, 2 * np.pi, size=half)
        spectrum = np.zeros(n, dtype=complex)
        amplitudes = np.sqrt(power * np.pi * n)
        spectrum[1 : half + 1] = amplitudes * np.exp(1j * phases)
        spectrum[half] = np.abs(spectrum[half])  # Nyquist must be real
        spectrum[half + 1 :] = np.conj(spectrum[1:half][::-1])
        x = np.fft.ifft(spectrum).real * np.sqrt(2.0)
        # Normalize the (approximate) variance to the requested one.
        return x * np.sqrt(self.variance)

    def __repr__(self):
        return f"SpectralGenerator(hurst={self.hurst:.4g}, variance={self.variance:.4g})"


def spectral_fgn(n, hurst=0.8, variance=1.0, rng=None):
    """Convenience wrapper: one approximate FGN path of length ``n``."""
    return SpectralGenerator(hurst, variance=variance).generate(n, rng=rng)
