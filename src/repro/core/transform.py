"""Marginal-distribution transform (eq. 13 of the paper).

Given a realization ``{X_k}`` of a Gaussian process, the paper imposes
the hybrid Gamma/Pareto marginal by mapping each point through

    ``Y_k = Finv_GammaPareto(F_Normal(X_k))``

where ``F_Normal`` is the CDF of the (fitted) Normal marginal of ``X``
and ``Finv_GammaPareto`` the inverse CDF of the target model.  The
transform is monotone, so it preserves the *ordering* of the sample
and, to excellent approximation, the measured Hurst parameter -- the
paper verifies exactly this.

Two evaluation strategies are provided:

- ``method="exact"`` evaluates the target inverse CDF analytically at
  every point;
- ``method="table"`` uses a tabulated inverse CDF (the paper's
  10,000-point mapping table), which is faster for long realizations
  and reproduces the paper's observation that the table slightly
  truncates the extreme Pareto tail.
"""

from __future__ import annotations

import numpy as np

from repro._validation import as_1d_float_array, require_positive_int
from repro.distributions.base import TabulatedDistribution
from repro.distributions.normal import Normal
from repro.obs import metrics, trace

__all__ = ["marginal_transform", "normal_scores"]

_TRANSFORMED = metrics.registry().counter(
    "repro_transform_samples_total",
    help="Samples mapped through the marginal transform (eq. 13)",
    unit="samples",
)


def marginal_transform(x, target, source=None, method="exact", n_table=10_000):
    """Map a Gaussian-marginal sequence onto an arbitrary marginal.

    Parameters
    ----------
    x:
        Input realization (1-D array-like), nominally Gaussian.
    target:
        Any :class:`~repro.distributions.base.Distribution` providing
        ``ppf`` -- typically a
        :class:`~repro.distributions.hybrid.GammaParetoHybrid`.
    source:
        The Normal law of ``x``.  When omitted, a Normal is fitted to
        the sample mean and standard deviation of ``x`` (which is what
        the paper's generation procedure amounts to, since Hosking's
        algorithm produces a known zero-mean Gaussian).
    method:
        ``"exact"`` or ``"table"`` (the paper's 10,000-point table).
    n_table:
        Number of points for ``method="table"``.

    Returns
    -------
    numpy.ndarray with the same length as ``x``.
    """
    arr = as_1d_float_array(x, "x")
    if source is None:
        sd = float(np.std(arr, ddof=0))
        if sd <= 0:
            raise ValueError("input sequence is constant; cannot infer its Normal law")
        source = Normal(float(np.mean(arr)), sd)
    if not isinstance(source, Normal):
        raise TypeError(f"source must be a Normal distribution, got {type(source).__name__}")
    with trace.span("transform.marginal", n=arr.size, method=method):
        u = source.cdf(arr)
        # Guard the open interval: u == 0 or 1 would map to +/- infinity.
        tiny = np.finfo(float).tiny
        u = np.clip(u, tiny, 1.0 - np.finfo(float).epsneg)
        if method == "exact":
            result = np.asarray(target.ppf(u), dtype=float)
        elif method == "table":
            n_table = require_positive_int(n_table, "n_table")
            table = TabulatedDistribution.from_distribution(
                target, n_points=n_table, q_lo=1e-7, q_hi=1.0 - 1.0 / (10.0 * n_table)
            )
            result = np.asarray(
                table.ppf(np.clip(u, table._ppf_q[0], table._ppf_q[-1])), dtype=float
            )
        else:
            raise ValueError(f'method must be "exact" or "table", got {method!r}')
    _TRANSFORMED.inc(arr.size)
    return result


def normal_scores(data):
    """Rank-based Gaussianization (the inverse of the marginal transform).

    Replaces each observation with the standard-Normal quantile of its
    mid-rank, producing a sequence with (near-)Normal marginals and the
    same ordering as ``data``.  Used by the Whittle estimator pipeline,
    which the paper applies to a log/Normal-transformed series.
    """
    arr = as_1d_float_array(data, "data")
    n = arr.size
    ranks = np.empty(n, dtype=float)
    order = np.argsort(arr, kind="mergesort")
    ranks[order] = np.arange(1, n + 1, dtype=float)
    u = (ranks - 0.5) / n
    return np.asarray(Normal(0.0, 1.0).ppf(u), dtype=float)
