"""Fault-tolerant distributed campaigns (``repro.dist``).

Shards experiment campaigns and fGn-synthesis task lists across worker
nodes over stdlib transports, with the robustness machinery a flaky
fleet needs: per-task leases renewed by heartbeats, node-loss detection
and work reassignment (same attempt seed, so reruns are bit-identical),
bounded seed-rotated retry for genuine failures, graceful degradation
to local serial execution when every node dies, checkpoint/resume
through the :mod:`repro.resilience` store, and a shared
content-addressed artifact store with end-to-end digest verification.

Layers (each importable on its own):

- :mod:`repro.dist.protocol` -- task model, task-kind registry, wire
  messages, artifact references;
- :mod:`repro.dist.transport` -- socket channels
  (:mod:`multiprocessing.connection`) and the in-memory simulated
  fabric with injectable latency/partitions/death;
- :mod:`repro.dist.worker` -- the worker loop and ``repro dist serve``;
- :mod:`repro.dist.coordinator` -- leases, reassignment, retry,
  fallback; :func:`run_distributed`;
- :mod:`repro.dist.simcluster` -- N simulated nodes + seeded
  :class:`FaultScript` chaos, the harness behind the chaos wall and
  the scheduler benchmarks;
- :mod:`repro.dist.campaign` -- experiment-suite and fGn task lists,
  ``"sim:3"`` / ``"host:port,..."`` node specs, :func:`run_suite`;
- :mod:`repro.dist.top` -- ``repro dist top``, the live console over
  the campaign's streamed flight recording.

See ``docs/distributed.md`` for the protocol walk-through and tuning
guidance.
"""

from repro.dist.campaign import (
    experiment_tasks,
    fgn_tasks,
    open_endpoints,
    parse_nodes,
    run_suite,
)
from repro.dist.coordinator import DistError, DistReport, TaskFailure, TaskRecord, run_distributed
from repro.dist.protocol import (
    PROTOCOL_VERSION,
    ArtifactMiss,
    TaskSpec,
    execute_task,
    make_artifact_ref,
    register_task_kind,
    resolve_payload,
    task_seed,
)
from repro.dist.simcluster import FaultEvent, FaultScript, SimCluster
from repro.dist.top import TopView, run_top
from repro.dist.transport import ChannelClosed, connect, listen, probe
from repro.dist.worker import WorkerLoop, serve

__all__ = [
    "PROTOCOL_VERSION",
    "ArtifactMiss",
    "ChannelClosed",
    "DistError",
    "DistReport",
    "FaultEvent",
    "FaultScript",
    "SimCluster",
    "TaskFailure",
    "TaskRecord",
    "TaskSpec",
    "TopView",
    "WorkerLoop",
    "connect",
    "execute_task",
    "experiment_tasks",
    "fgn_tasks",
    "listen",
    "make_artifact_ref",
    "open_endpoints",
    "parse_nodes",
    "probe",
    "register_task_kind",
    "resolve_payload",
    "run_distributed",
    "run_suite",
    "run_top",
    "serve",
    "task_seed",
]
