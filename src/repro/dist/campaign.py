"""Shard repro campaigns over worker nodes.

This is the bridge between the generic coordinator and the two
workloads the paper reproduction actually distributes:

- the experiment suite (:func:`experiment_tasks` names each experiment
  as an ``"experiment"`` task rebuilt worker-side against the
  deterministic reference trace), and
- bulk fGn synthesis (:func:`fgn_tasks`), whose payloads travel as
  digest-verified references into the shared artifact store.

Node sets are named with a compact string: ``"sim:3"`` spins up a
three-node simulated cluster in-process, while
``"host:port,host:port,unix:/path"`` dials real ``repro dist serve``
workers.  :func:`open_endpoints` turns either form into the
``{name: Channel}`` dict :func:`~repro.dist.coordinator.run_distributed`
expects and tears the connections down afterwards.
"""

from __future__ import annotations

import contextlib

from repro.dist import transport
from repro.dist.coordinator import run_distributed
from repro.dist.protocol import TaskSpec
from repro.dist.transport import ChannelClosed
from repro.obs import log as obs_log

__all__ = [
    "experiment_tasks",
    "fgn_tasks",
    "open_endpoints",
    "parse_nodes",
    "run_suite",
]

_LOGGER = obs_log.get_logger("dist.campaign")


def parse_nodes(nodes):
    """``"sim:N"`` -> ``("sim", N)``; address list -> ``("addresses", [...])``.

    Accepts a string (``"sim:3"`` or comma-separated worker addresses)
    or an iterable of addresses.  Simulated and real nodes cannot be
    mixed: a campaign either runs in the harness or on the network.
    """
    if not isinstance(nodes, str):
        addresses = [str(n).strip() for n in nodes if str(n).strip()]
        if not addresses:
            raise ValueError("node list is empty")
        return ("addresses", addresses)
    spec = nodes.strip()
    if spec.startswith("sim:"):
        try:
            count = int(spec[len("sim:"):])
        except ValueError:
            raise ValueError(f"bad simulated node count in {nodes!r}") from None
        if count < 1:
            raise ValueError(f"need at least one simulated node, got {count}")
        return ("sim", count)
    if spec == "sim":
        return ("sim", 2)
    addresses = [part.strip() for part in spec.split(",") if part.strip()]
    if not addresses:
        raise ValueError(f"node spec {nodes!r} names no workers")
    for address in addresses:
        transport.parse_address(address)  # fail fast on malformed entries
    return ("addresses", addresses)


@contextlib.contextmanager
def open_endpoints(nodes, *, authkey=None, script=None, latency_s=0.0):
    """Yield ``{name: Channel}`` for a node spec; clean up on exit.

    ``script`` (a :class:`~repro.dist.simcluster.FaultScript`) and
    ``latency_s`` only apply to simulated clusters.  Socket workers get
    a ``detach`` on the way out so they return to accepting instead of
    shutting down.
    """
    kind, value = parse_nodes(nodes)
    if kind == "sim":
        from repro.dist.simcluster import SimCluster

        with SimCluster(value, script=script, latency_s=latency_s) as cluster:
            yield cluster.endpoints()
        return
    key = transport.DEFAULT_AUTHKEY if authkey is None else authkey
    channels = {}
    try:
        for address in value:
            channels[address] = transport.connect(address, authkey=key, name=address)
        yield channels
    finally:
        for channel in channels.values():
            try:
                channel.send({"type": "detach"})
            except ChannelClosed:
                pass
            channel.close()


def experiment_tasks(quick=False, sim_frames=None, only=None, trace_frames=None):
    """The experiment suite as distributable :class:`TaskSpec` entries.

    Task ids are the experiment ids, so a distributed report's
    ``results`` dict feeds :func:`repro.experiments.runner.summary_lines`
    unchanged.  The reference trace itself never crosses the wire: each
    worker rebuilds it from ``trace_frames`` (deterministic by
    construction), which keeps task messages tiny.
    """
    from repro.experiments.data import reference_trace
    from repro.experiments.runner import experiment_specs

    if trace_frames is None:
        trace_frames = 40_000 if quick else 171_000
    trace_frames = int(trace_frames)
    trace = reference_trace(n_frames=trace_frames)
    specs = experiment_specs(trace, quick=quick, sim_frames=sim_frames)
    ids = [spec.experiment_id for spec in specs]
    if only is not None:
        wanted = {only} if isinstance(only, str) else set(only)
        missing = sorted(wanted - set(ids))
        if missing:
            raise ValueError(f"unknown experiment id(s) {missing}; known: {sorted(ids)}")
        ids = [experiment_id for experiment_id in ids if experiment_id in wanted]
    params = {
        "quick": bool(quick),
        "sim_frames": int(sim_frames) if sim_frames is not None else None,
        "trace_frames": trace_frames,
    }
    return [
        TaskSpec(experiment_id, "experiment", {"experiment_id": experiment_id, **params})
        for experiment_id in ids
    ]


def fgn_tasks(n_tasks, n, hurst=0.8, backend="daviesharte", prefix="fgn"):
    """``n_tasks`` independent fGn syntheses as :class:`TaskSpec` entries."""
    if n_tasks < 1:
        raise ValueError(f"need at least one task, got {n_tasks}")
    return [
        TaskSpec(
            f"{prefix}{index:03d}", "fgn",
            {"n": int(n), "hurst": float(hurst), "backend": str(backend)},
        )
        for index in range(int(n_tasks))
    ]


def suite_manifest(quick, sim_frames, trace_frames):
    """Checkpoint-compatibility fingerprint for a distributed suite run."""
    return {
        "dist": 1,
        "quick": bool(quick),
        "sim_frames": int(sim_frames) if sim_frames is not None else None,
        "trace_frames": int(trace_frames) if trace_frames is not None else None,
    }


def run_suite(nodes, *, quick=False, sim_frames=None, only=None,
              trace_frames=None, base_seed=0, max_retries=1, lease_s=10.0,
              task_timeout_s=None, checkpoint_dir=None, resume=True,
              authkey=None, script=None, latency_s=0.0, fallback_local=True,
              on_event=None, flight_path=None):
    """Run the experiment suite across ``nodes``; returns a ``DistReport``.

    The convenience entry point behind
    ``repro experiments --nodes ...`` and
    :func:`repro.experiments.runner.run_all(nodes=...) <repro.experiments.runner.run_all>`.
    Results and checkpoint digests match a local supervised campaign
    over the same suite parameters regardless of node count or faults.
    """
    if trace_frames is None:
        trace_frames = 40_000 if quick else 171_000
    tasks = experiment_tasks(
        quick=quick, sim_frames=sim_frames, only=only, trace_frames=trace_frames
    )
    _LOGGER.info(
        "distributing %d experiment(s) over %s", len(tasks), nodes,
        extra={"tasks": len(tasks), "nodes": str(nodes)},
    )
    with open_endpoints(
        nodes, authkey=authkey, script=script, latency_s=latency_s
    ) as endpoints:
        return run_distributed(
            tasks, endpoints,
            base_seed=base_seed, max_retries=max_retries, lease_s=lease_s,
            task_timeout_s=task_timeout_s, checkpoint_dir=checkpoint_dir,
            resume=resume,
            manifest=suite_manifest(quick, sim_frames, trace_frames),
            fallback_local=fallback_local, on_event=on_event,
            flight_path=flight_path,
        )
