"""Fault-tolerant campaign coordinator: leases, heartbeats, reassignment.

:func:`run_distributed` drives an ordered list of
:class:`~repro.dist.protocol.TaskSpec` across named worker endpoints
(socket channels from ``repro dist serve`` or a
:class:`~repro.dist.simcluster.SimCluster`) and returns a
:class:`DistReport`.  The robustness contract, in decreasing order of
how often it should matter:

- **Leases + heartbeats.**  Every assignment carries a lease of
  ``lease_s`` seconds; the worker heartbeats at a quarter of that, and
  each heartbeat renews the lease.  A lease that expires means the
  node is gone (SIGKILL, hang, partition) -- the node is declared dead
  and its task goes back to the head of the queue *with the same
  attempt number*, so the rerun on a surviving node draws the same
  seed and produces bit-identical results.  ``task_timeout_s`` bounds
  an attempt even when heartbeats keep coming (a stalled worker).
- **Bounded retry.**  A task that *fails* (the worker ran it and it
  raised) follows the supervisor discipline of
  :mod:`repro.resilience.runner`: transient errors retry up to
  ``max_retries`` times with capped exponential backoff, and each
  retry rotates the seed via the same sha256 derivation.
- **Work conservation.**  A deterministic result is accepted from any
  node that finishes it first; late duplicates (a partitioned node
  healing after its work was reassigned) are counted, not trusted
  twice.
- **Graceful degradation.**  When every remote node is dead and work
  remains, the coordinator finishes the campaign locally and serially
  -- a distributed campaign can end slow, but not dead.
- **Checkpoint/resume.**  With ``checkpoint_dir`` every completed task
  is persisted through the :class:`~repro.resilience.runner.CheckpointStore`
  (atomic, digest-verified on load), so a killed *coordinator* resumes
  digest-identically too -- same files, same tolerances as single-node
  campaigns.
- **Shared artifact store.**  Results may be
  :func:`~repro.dist.protocol.make_artifact_ref` references into the
  shared content-addressed cache; the coordinator re-verifies the
  payload digest end-to-end on fetch and treats any mismatch as a
  transient task failure (recompute, never serve).
"""

from __future__ import annotations

import dataclasses
import time

from repro.dist import protocol
from repro.dist.transport import ChannelClosed
from repro.obs import flight as obs_flight
from repro.obs import log as obs_log
from repro.obs import metrics, trace
from repro.resilience.runner import TRANSIENT_TYPES, CheckpointStore

__all__ = ["DistError", "DistReport", "TaskFailure", "TaskRecord", "run_distributed"]

_LOGGER = obs_log.get_logger("dist.coord")

_TASKS = {
    outcome: metrics.registry().counter(
        "repro_dist_tasks_total",
        help="Distributed-task outcomes seen by the coordinator",
        unit="tasks", labels={"outcome": outcome},
    )
    for outcome in ("completed", "failed", "retried", "reassigned",
                    "resumed", "duplicate", "local")
}

_LEASE_EXPIRIES = metrics.registry().counter(
    "repro_dist_lease_expiries_total",
    help="Leases that expired without a heartbeat (node presumed lost)",
    unit="leases",
)

_FALLBACKS = metrics.registry().counter(
    "repro_dist_local_fallback_total",
    help="Campaigns that degraded to local serial execution",
    unit="campaigns",
)

_NODES = {
    state: metrics.registry().gauge(
        "repro_dist_nodes",
        help="Worker nodes known to the coordinator, by state",
        unit="nodes", labels={"state": state},
    )
    for state in ("alive", "dead")
}


def _node_tasks_counter(node):
    return metrics.registry().counter(
        "repro_dist_node_tasks_total",
        help="Tasks completed per worker node",
        unit="tasks", labels={"node": str(node)},
    )


class DistError(RuntimeError):
    """The campaign cannot make progress (and local fallback is off)."""


@dataclasses.dataclass(frozen=True)
class TaskFailure:
    """One failed task attempt, as reported by a worker (or locally)."""

    task_id: str
    node: str
    attempt: int
    error_type: str
    message: str
    traceback: str
    seed: int
    wall_time: float
    transient: bool

    def describe(self):
        kind = "transient" if self.transient else "terminal"
        return (
            f"{self.task_id} attempt {self.attempt + 1} on {self.node}: "
            f"{self.error_type}: {self.message} ({kind})"
        )


@dataclasses.dataclass
class TaskRecord:
    """Outcome of one task across every node that touched it."""

    task_id: str
    status: str  # "completed" | "resumed" | "failed"
    attempts: int
    node: str | None = None
    wall_time: float = 0.0
    reassignments: int = 0


@dataclasses.dataclass
class DistReport:
    """Everything a distributed campaign produced, and what went wrong."""

    results: dict
    records: list
    failures: list
    attempt_failures: list
    resumed: list
    node_states: dict
    duplicates: int = 0
    degraded_to_local: bool = False

    @property
    def ok(self):
        return not self.failures

    def summary_lines(self):
        done = sum(1 for r in self.records if r.status in ("completed", "resumed"))
        dead = sorted(n for n, s in self.node_states.items() if s == "dead")
        reassigned = sum(r.reassignments for r in self.records)
        lines = [
            f"dist campaign: {done}/{len(self.records)} tasks completed "
            f"({len(self.resumed)} resumed from checkpoint, {reassigned} "
            f"reassignment(s), {len(self.attempt_failures)} failed attempt(s), "
            f"{len(self.failures)} terminal failure(s))"
        ]
        if dead:
            lines.append(f"  nodes lost: {', '.join(dead)}")
        if self.degraded_to_local:
            lines.append("  degraded to local serial execution after losing all nodes")
        for failure in self.attempt_failures:
            lines.append(f"  attempt failed: {failure.describe()}")
        for record in self.records:
            if record.status == "failed":
                lines.append(f"  FAILED: {record.task_id} after {record.attempts} attempt(s)")
        return lines


@dataclasses.dataclass
class _Node:
    name: str
    channel: object
    state: str = "alive"  # alive | dead
    current: str | None = None  # task_id being worked, if any


@dataclasses.dataclass
class _TaskState:
    spec: object
    index: int
    attempt: int = 0
    attempts_used: int = 0
    reassignments: int = 0
    ready_at: float = 0.0
    node: str | None = None  # assignee
    deadline: float = 0.0
    started_at: float = 0.0
    done: bool = False
    wall_time: float = 0.0


def _normalize_tasks(tasks):
    out = []
    seen = set()
    for task in tasks:
        if not isinstance(task, protocol.TaskSpec):
            task = protocol.TaskSpec(*task) if isinstance(task, tuple) else (
                protocol.TaskSpec.from_wire(task)
            )
        if task.task_id in seen:
            raise ValueError(f"duplicate task id {task.task_id!r}")
        seen.add(task.task_id)
        out.append(task)
    return out


def run_distributed(tasks, endpoints, *, base_seed=0, max_retries=1,
                    lease_s=10.0, task_timeout_s=None, checkpoint_dir=None,
                    resume=True, manifest=None, fallback_local=True,
                    transient_types=TRANSIENT_TYPES, backoff_base=0.05,
                    backoff_cap=5.0, poll_s=0.002, clock=time.monotonic,
                    sleep=time.sleep, on_event=None, flight_path=None):
    """Drive ``tasks`` over ``endpoints`` (``{node_name: Channel}``).

    Returns a :class:`DistReport`; results, records, failures and
    checkpoint digests are functions of ``(tasks, base_seed)`` alone --
    not of node count, scheduling, kills or reassignments -- provided
    each task is deterministic given its seed.  See the module
    docstring for the full robustness contract.

    ``on_event(kind, detail)`` observes the campaign live (kinds:
    ``assign``, ``resumed``, ``completed``, ``retry``, ``reassign``,
    ``node_lost``, ``duplicate``, ``failed``, ``local_fallback``).

    ``flight_path`` installs an always-on streaming flight recorder at
    that path (see :mod:`repro.obs.flight`): events stream live for
    ``repro dist top --follow`` and the final ring is persisted
    atomically when the campaign ends -- by success, failure, or crash.
    Without it, events still land in the gated default recorder while
    observability is enabled.
    """
    tasks = _normalize_tasks(tasks)
    lease_s = float(lease_s)
    if lease_s <= 0.0:
        raise ValueError(f"lease_s must be positive, got {lease_s}")
    attempts_allowed = int(max_retries) + 1

    if flight_path is not None:
        flight = obs_flight.configure(path=flight_path)
        flight.arm()
    else:
        flight = obs_flight.recorder()

    store = None
    if checkpoint_dir is not None:
        store = CheckpointStore(checkpoint_dir)
        if resume:
            store.check_manifest(manifest)
        store.write_manifest(manifest)

    def _notify(kind, detail=""):
        if on_event is not None:
            on_event(kind, detail)

    nodes = {
        str(name): _Node(str(name), channel)
        for name, channel in dict(endpoints).items()
    }
    states = {
        task.task_id: _TaskState(spec=task, index=index)
        for index, task in enumerate(tasks)
    }
    report = DistReport(results={}, records=[], failures=[], attempt_failures=[],
                        resumed=[], node_states={})
    completed = {}
    resumed = set()

    # One campaign span owns the whole run: worker attempt subtrees are
    # adopted under per-task wrapper dicts, so run.json renders the
    # cluster as a single forest.  The trace id is a pure function of
    # the campaign seed -- a rerun stitches under the same id.
    campaign_span = trace.span("dist.campaign", tasks=len(tasks),
                               nodes=len(nodes))
    trace_id = trace.new_trace_id(base_seed)
    trace_ctx = {"trace_id": trace_id}
    if isinstance(campaign_span, trace.Span):
        campaign_span.trace_id = trace_id
        trace_ctx["parent_span_id"] = campaign_span.span_id

    # Heartbeat-piggybacked metric scrapes merge into the coordinator's
    # registry as node=-labeled series; (node, seq) idempotency keeps
    # duplicated/reordered heartbeats from double-counting.
    scrapes = metrics.ScrapeMerger()

    flight.record("campaign_start", tasks=len(tasks), nodes=len(nodes),
                  base_seed=base_seed, trace_id=trace_id)

    def _adopt_attempt(task_id, node_name, attempt, wall, shipped=None,
                       error=None):
        """Stitch one attempt into the campaign forest as a dist.task dict."""
        if not isinstance(campaign_span, trace.Span):
            return
        doc = {
            "name": "dist.task",
            "wall_s": round(wall, 6) if wall is not None else None,
            "cpu_s": None,
            "attrs": {"task": task_id, "node": node_name,
                      "attempt": int(attempt),
                      "seed": protocol.task_seed(base_seed, task_id, attempt)},
        }
        if error is not None:
            doc["error"] = str(error)
        if shipped:
            doc["children"] = [dict(tree) for tree in shipped]
        campaign_span.adopt(doc)

    def _ingest_scrape(node_name, message):
        dump = message.get("metrics")
        if dump:
            scrapes.ingest(node_name, message.get("seq", 0), dump)

    # ------------------------------------------------------------------
    # Resume from checkpoints before anything is scheduled
    # ------------------------------------------------------------------
    if store is not None and resume:
        for task in tasks:
            loaded = store.load(task.task_id)
            if loaded is None:
                continue
            payload, meta = loaded
            state = states[task.task_id]
            state.done = True
            state.attempts_used = int(meta.get("attempts", 1))
            state.wall_time = float(meta.get("wall_time", 0.0))
            completed[task.task_id] = payload
            resumed.add(task.task_id)
            _TASKS["resumed"].inc()
            flight.record("task_resumed", task_id=task.task_id,
                          attempts=state.attempts_used)
            _notify("resumed", task.task_id)

    pending = [t.task_id for t in tasks if not states[t.task_id].done]

    def _alive():
        return [nodes[name] for name in sorted(nodes) if nodes[name].state == "alive"]

    def _update_node_gauges():
        alive = sum(1 for n in nodes.values() if n.state == "alive")
        _NODES["alive"].set(alive)
        _NODES["dead"].set(len(nodes) - alive)

    def _record_failure(task_id, node_name, attempt, error, seed, wall):
        failure = TaskFailure(
            task_id=task_id, node=node_name, attempt=attempt,
            error_type=error["error_type"], message=error["message"],
            traceback=error.get("traceback", ""), seed=seed,
            wall_time=wall, transient=bool(error.get("transient")),
        )
        report.attempt_failures.append(failure)
        return failure

    def _complete(task_id, payload, node_name, wall):
        state = states[task_id]
        try:
            payload = protocol.resolve_payload(payload)
        except protocol.ArtifactMiss as exc:
            _LOGGER.warning("artifact miss for %s: %s", task_id, exc,
                            extra={"task": task_id})
            error = {"error_type": "ArtifactMiss", "message": str(exc),
                     "traceback": "", "transient": True}
            _retry_or_fail(task_id, node_name, error, wall)
            return
        state.done = True
        state.wall_time += wall
        state.attempts_used = state.attempt + 1
        state.node = node_name
        completed[task_id] = payload
        if store is not None:
            seed = protocol.task_seed(base_seed, task_id, state.attempt)
            store.save(task_id, payload, seed, state.attempts_used, state.wall_time)
        _TASKS["completed"].inc()
        _node_tasks_counter(node_name).inc()
        flight.record(
            "task_completed", task_id=task_id, node=node_name,
            attempt=state.attempt,
            seed=protocol.task_seed(base_seed, task_id, state.attempt),
        )
        _notify("completed", task_id)

    def _retry_or_fail(task_id, node_name, error, wall):
        state = states[task_id]
        seed = protocol.task_seed(base_seed, task_id, state.attempt)
        failure = _record_failure(task_id, node_name, state.attempt, error, seed, wall)
        state.wall_time += wall
        if failure.transient and state.attempt + 1 < attempts_allowed:
            _TASKS["retried"].inc()
            _LOGGER.warning(
                "task %s attempt %d/%d failed (%s); retrying with rotated seed",
                task_id, state.attempt + 1, attempts_allowed, failure.error_type,
                extra={"task": task_id, "attempt": state.attempt + 1,
                       "error_type": failure.error_type},
            )
            state.attempt += 1
            state.ready_at = clock() + min(
                backoff_base * 2.0 ** (state.attempt - 1), backoff_cap
            )
            state.node = None
            pending.insert(0, task_id)
            flight.record("task_retry", task_id=task_id, node=node_name,
                          attempt=state.attempt,
                          error_type=failure.error_type)
            _notify("retry", task_id)
        else:
            state.done = True
            state.attempts_used = state.attempt + 1
            state.node = node_name
            report.failures.append(failure)
            _TASKS["failed"].inc()
            _LOGGER.error(
                "task %s failed terminally on attempt %d/%d (%s: %s)",
                task_id, state.attempt + 1, attempts_allowed,
                failure.error_type, failure.message,
                extra={"task": task_id, "attempt": state.attempt + 1,
                       "error_type": failure.error_type},
            )
            flight.record("task_failed", task_id=task_id, node=node_name,
                          attempt=state.attempt, seed=seed,
                          error_type=failure.error_type)
            _notify("failed", task_id)

    def _lose_node(node, reason):
        if node.state == "dead":
            return
        node.state = "dead"
        _update_node_gauges()
        _LOGGER.warning(
            "node %s lost (%s)", node.name, reason,
            extra={"node": node.name, "reason": reason},
        )
        flight.record("node_lost", node=node.name, reason=reason)
        _notify("node_lost", f"{node.name}: {reason}")
        task_id = node.current
        node.current = None
        if task_id is None:
            return
        state = states[task_id]
        if state.done or state.node != node.name:
            return
        # Same attempt on a surviving node: the task never completed, so
        # the rerun draws the identical seed and result.
        # The killed attempt still joins the span forest: an error-marked
        # dist.task stamped with the lost node and the attempt seed.
        _adopt_attempt(task_id, node.name, state.attempt,
                       clock() - state.started_at, error="NodeLost")
        state.node = None
        state.reassignments += 1
        _TASKS["reassigned"].inc()
        pending.insert(0, task_id)
        flight.record("task_reassigned", task_id=task_id, node=node.name,
                      attempt=state.attempt)
        _notify("reassign", task_id)

    def _handle_message(node, message):
        kind = message.get("type")
        if kind == "hello":
            if message.get("version") != protocol.PROTOCOL_VERSION:
                _lose_node(node, f"protocol version {message.get('version')!r}")
            return
        if kind == "heartbeat":
            _ingest_scrape(node.name, message)
            task_id = message.get("task_id")
            state = states.get(task_id)
            if state is not None and not state.done and state.node == node.name:
                state.deadline = clock() + lease_s
            return
        if kind != "result":
            return
        _ingest_scrape(node.name, message)
        task_id = message.get("task_id")
        state = states.get(task_id)
        wall = float(message.get("wall_time", 0.0))
        if node.current == task_id:
            node.current = None
        if state is None:
            return
        if state.done:
            report.duplicates += 1
            _TASKS["duplicate"].inc()
            flight.record("duplicate_result", task_id=task_id, node=node.name,
                          attempt=message.get("attempt"))
            _notify("duplicate", task_id)
            return
        if message.get("ok"):
            # Accept a deterministic result from whichever node finished
            # first -- even one presumed dead behind a healed partition.
            if task_id in pending:
                pending.remove(task_id)
            _adopt_attempt(task_id, node.name, message.get("attempt", 0), wall,
                           shipped=message.get("spans"))
            _complete(task_id, message.get("payload"), node.name, wall)
        else:
            # Errors are only honored from the current assignee at the
            # current attempt; anything else is a stale report.
            if state.node != node.name or message.get("attempt") != state.attempt:
                return
            _adopt_attempt(task_id, node.name, state.attempt, wall,
                           shipped=message.get("spans"),
                           error=message["error"].get("error_type"))
            state.node = None
            _retry_or_fail(task_id, node.name, message["error"], wall)

    def _dispatch():
        now = clock()
        for node in _alive():
            if node.current is not None or not pending:
                continue
            chosen = None
            for task_id in pending:
                if states[task_id].ready_at <= now:
                    chosen = task_id
                    break
            if chosen is None:
                return
            state = states[chosen]
            seed = protocol.task_seed(base_seed, chosen, state.attempt)
            try:
                # Trace context rides the assignment (not task identity:
                # the field is compare-excluded), so the worker's attempt
                # span lands under this campaign's trace id.
                node.channel.send(protocol.make_task_message(
                    dataclasses.replace(state.spec, trace=trace_ctx),
                    seed, state.attempt, lease_s
                ))
            except ChannelClosed as exc:
                _lose_node(node, f"send failed: {exc}")
                continue
            pending.remove(chosen)
            node.current = chosen
            state.node = node.name
            state.deadline = now + lease_s
            state.started_at = now
            flight.record("task_assigned", task_id=chosen, node=node.name,
                          attempt=state.attempt, seed=seed)
            _notify("assign", f"{chosen} -> {node.name}")

    def _drain():
        progressed = False
        for node in list(nodes.values()):
            channel = node.channel
            while True:
                try:
                    if not channel.poll(0.0):
                        break
                    message = channel.recv()
                except ChannelClosed as exc:
                    if node.state == "alive":
                        _lose_node(node, f"channel closed: {exc}")
                    break
                progressed = True
                if node.state == "alive":
                    _handle_message(node, message)
                # Messages from dead nodes: only completed results count.
                elif message.get("type") == "result" and message.get("ok"):
                    _handle_message(node, message)
        return progressed

    def _check_deadlines():
        now = clock()
        for node in _alive():
            task_id = node.current
            if task_id is None:
                continue
            state = states[task_id]
            if now > state.deadline:
                _LEASE_EXPIRIES.inc()
                flight.record("lease_expired", node=node.name, task_id=task_id,
                              attempt=state.attempt)
                _lose_node(node, f"lease on {task_id} expired")
            elif task_timeout_s is not None and now - state.started_at > task_timeout_s:
                _lose_node(node, f"{task_id} exceeded task timeout {task_timeout_s:g}s")

    def _run_local(remaining):
        """Finish the campaign in-process: slow, serial, but alive."""
        report.degraded_to_local = True
        _FALLBACKS.inc()
        _LOGGER.warning(
            "all %d node(s) lost; finishing %d task(s) locally",
            len(nodes), len(remaining),
            extra={"nodes": len(nodes), "remaining": len(remaining)},
        )
        flight.record("local_fallback", remaining=len(remaining))
        _notify("local_fallback", f"{len(remaining)} task(s)")
        for task_id in remaining:
            state = states[task_id]
            while not state.done:
                seed = protocol.task_seed(base_seed, task_id, state.attempt)
                started = time.perf_counter()
                try:
                    with trace.span("dist.local_task", task=task_id,
                                    attempt=state.attempt):
                        payload = protocol.execute_task(state.spec, seed)
                        payload = protocol.resolve_payload(payload)
                except (KeyboardInterrupt, SystemExit):
                    raise
                except Exception as exc:
                    import traceback as traceback_module

                    wall = time.perf_counter() - started
                    error = {
                        "error_type": type(exc).__name__, "message": str(exc),
                        "traceback": "".join(traceback_module.format_exception(
                            type(exc), exc, exc.__traceback__)),
                        "transient": isinstance(exc, transient_types),
                    }
                    # _retry_or_fail re-queues on pending; local mode
                    # loops on the state instead.
                    pending_len = len(pending)
                    _retry_or_fail(task_id, "local", error, wall)
                    if len(pending) > pending_len:
                        pending.remove(task_id)
                        wait = state.ready_at - clock()
                        if wait > 0:
                            sleep(wait)
                    continue
                wall = time.perf_counter() - started
                _TASKS["local"].inc()
                state.done = True
                state.wall_time += wall
                state.attempts_used = state.attempt + 1
                state.node = "local"
                completed[task_id] = payload
                if store is not None:
                    store.save(task_id, payload, seed, state.attempts_used,
                               state.wall_time)
                flight.record("task_completed", task_id=task_id, node="local",
                              attempt=state.attempt, seed=seed)
                _notify("completed", task_id)

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    finished = False
    try:
        with campaign_span:
            _update_node_gauges()
            while any(not state.done for state in states.values()):
                if not _alive():
                    remaining = [
                        t.task_id for t in tasks if not states[t.task_id].done
                    ]
                    if not fallback_local:
                        raise DistError(
                            f"all {len(nodes)} worker node(s) lost with "
                            f"{len(remaining)} task(s) outstanding"
                        )
                    _run_local(remaining)
                    break
                _dispatch()
                progressed = _drain()
                _check_deadlines()
                if not progressed:
                    sleep(poll_s)

        # --------------------------------------------------------------
        # Assemble the report in task order
        # --------------------------------------------------------------
        for task in tasks:
            state = states[task.task_id]
            if task.task_id in resumed:
                status = "resumed"
                report.resumed.append(task.task_id)
            elif task.task_id in completed:
                status = "completed"
            else:
                status = "failed"
            if task.task_id in completed:
                report.results[task.task_id] = completed[task.task_id]
            report.records.append(TaskRecord(
                task_id=task.task_id, status=status, attempts=state.attempts_used,
                node=state.node, wall_time=state.wall_time,
                reassignments=state.reassignments,
            ))
        report.node_states = {name: node.state for name, node in nodes.items()}
        _LOGGER.info(
            "dist campaign finished: %d/%d tasks, %d failure(s), %d node(s) lost",
            len(report.results), len(tasks), len(report.failures),
            sum(1 for s in report.node_states.values() if s == "dead"),
            extra={"tasks": len(tasks), "failures": len(report.failures)},
        )
        flight.record("campaign_finished", completed=len(report.results),
                      tasks=len(tasks), failures=len(report.failures),
                      duplicates=report.duplicates,
                      degraded_to_local=report.degraded_to_local)
        finished = True
        return report
    finally:
        # The recording must survive every exit: success, DistError, a
        # coordinator crash unwinding through here, or SIGTERM (armed
        # handler).  persist() is a no-op without a path.
        if not finished:
            flight.record("campaign_aborted", tasks=len(tasks))
        flight.persist()
        if flight_path is not None:
            flight.disarm()
