"""Wire protocol and task model for distributed campaigns.

A distributed campaign is an ordered list of :class:`TaskSpec` entries.
Unlike the thunks driven by :func:`repro.resilience.runner.run_campaign`
-- which close over arbitrary local state -- a ``TaskSpec`` must cross a
process (and possibly a machine) boundary, so it names a registered
*task kind* plus a JSON-able parameter dict.  Workers execute only
kinds present in their local :func:`task_kinds` registry; arbitrary
callables are never shipped over the wire.

Built-in kinds:

- ``"experiment"`` -- one experiment of the reproduction suite, rebuilt
  worker-side from ``(experiment_id, quick, sim_frames, trace_frames)``
  against the deterministic reference trace;
- ``"fgn"`` -- one fGn synthesis (``backend``, ``n``, ``hurst``); when
  a shared :mod:`repro.par.cache` artifact store is active the payload
  is parked there and only a digest-carrying artifact reference crosses
  the wire;
- ``"sleep"`` -- a simulated-latency task (sleep ``duration_s``, return
  ``value``), the workload of the scheduler benchmarks: it lets a
  1-CPU host measure coordinator scaling honestly, because sleeping
  workers genuinely overlap.

Seeds follow the campaign discipline of
:func:`repro.resilience.runner.derive_attempt_seed`: a task's seed is a
pure function of ``(base_seed, task_id, attempt)``.  Node loss *keeps*
the attempt number (the task never ran to completion, so the rerun is
bit-identical); a genuine task failure rotates it.

Messages are plain dicts with a ``"type"`` key -- see
:func:`make_task_message` and friends for the exact shapes.  They are
deliberately pickle-friendly primitives so the same protocol runs over
:mod:`multiprocessing.connection` sockets and the in-memory simulated
cluster transport.
"""

from __future__ import annotations

import dataclasses
import hashlib

import numpy as np

__all__ = [
    "PROTOCOL_VERSION",
    "ArtifactMiss",
    "TaskSpec",
    "execute_task",
    "is_artifact_ref",
    "make_artifact_ref",
    "register_task_kind",
    "resolve_payload",
    "task_kinds",
    "task_seed",
]

PROTOCOL_VERSION = 1
"""Carried in the hello handshake; mismatched peers refuse to pair."""


class ArtifactMiss(RuntimeError):
    """A result referenced a shared-store artifact that cannot be served.

    Raised when the entry is absent or was evicted after failing digest
    re-verification.  Classified as transient: the coordinator's remedy
    is to re-run the task, never to trust the stored bytes.
    """


@dataclasses.dataclass(frozen=True)
class TaskSpec:
    """One unit of distributable work: a stable id, a kind, parameters.

    ``trace`` optionally carries the coordinator's trace context --
    ``{"trace_id": ..., "parent_span_id": ...}`` -- so the worker's
    attempt spans open under the campaign span and the shipped subtree
    stitches back into one cluster-wide ``run.json``.  It is execution
    metadata, not identity: two specs differing only in trace context
    are the same task.
    """

    task_id: str
    kind: str
    params: dict = dataclasses.field(default_factory=dict)
    trace: dict | None = dataclasses.field(default=None, compare=False)

    def __post_init__(self):
        if not self.task_id or not isinstance(self.task_id, str):
            raise ValueError(f"task_id must be a non-empty string, got {self.task_id!r}")
        if not isinstance(self.params, dict):
            raise TypeError(f"params must be a dict, got {type(self.params).__name__}")
        if self.trace is not None and not isinstance(self.trace, dict):
            raise TypeError(f"trace must be a dict, got {type(self.trace).__name__}")

    def to_wire(self):
        doc = {"task_id": self.task_id, "kind": self.kind, "params": dict(self.params)}
        if self.trace is not None:
            doc["trace"] = dict(self.trace)
        return doc

    @classmethod
    def from_wire(cls, doc):
        return cls(doc["task_id"], doc["kind"], dict(doc.get("params", {})),
                   trace=doc.get("trace"))


def task_seed(base_seed, task_id, attempt=0):
    """Per-attempt task seed; same sha256 discipline as the supervisor."""
    from repro.resilience.runner import derive_attempt_seed

    return derive_attempt_seed(base_seed, task_id, attempt)


# ----------------------------------------------------------------------
# Task-kind registry
# ----------------------------------------------------------------------
_KINDS = {}


def register_task_kind(kind, fn):
    """Register ``fn(params, seed) -> payload`` as executor for ``kind``.

    Registration is process-local: a socket worker only executes kinds
    its own process registered (the built-ins plus whatever its
    embedding application added) -- the coordinator cannot inject code.
    """
    if not kind or not isinstance(kind, str):
        raise ValueError(f"kind must be a non-empty string, got {kind!r}")
    if not callable(fn):
        raise TypeError(f"executor for {kind!r} must be callable")
    _KINDS[kind] = fn
    return fn


def task_kinds():
    """The kinds this process can execute (name -> executor)."""
    return dict(_KINDS)


def execute_task(task, seed):
    """Run one :class:`TaskSpec` (or wire dict) locally; returns the payload.

    The :func:`repro.resilience.faults.reach` hook fires per task under
    the site name ``dist.task:<kind>``, so an ambient
    :class:`~repro.resilience.faults.FaultPlan` can fault distributed
    work exactly like any other instrumented call site.
    """
    from repro.resilience.faults import reach

    if isinstance(task, dict):
        task = TaskSpec.from_wire(task)
    fn = _KINDS.get(task.kind)
    if fn is None:
        raise ValueError(
            f"unknown task kind {task.kind!r}; this worker registered "
            f"{sorted(_KINDS)}"
        )
    reach(f"dist.task:{task.kind}")
    return fn(dict(task.params), seed)


# ----------------------------------------------------------------------
# Artifact references (shared content-addressed store)
# ----------------------------------------------------------------------
_ARTIFACT_KEY = "__dist_artifact__"


def _payload_digest(array):
    return hashlib.sha256(np.ascontiguousarray(array).tobytes()).hexdigest()


def make_artifact_ref(algorithm, params, array, cache):
    """Park ``array`` in ``cache`` and return a digest-carrying reference.

    The reference travels instead of the payload; whoever resolves it
    re-verifies the array bytes against the digest recorded *here*, so
    a poisoned store entry can never be served end-to-end even if the
    store's own digest check were bypassed.
    """
    array = np.asarray(array)
    cache.put(algorithm, params, array)
    return {
        _ARTIFACT_KEY: PROTOCOL_VERSION,
        "algorithm": algorithm,
        "params": dict(params),
        "digest": _payload_digest(array),
        "shape": list(array.shape),
        "dtype": str(array.dtype),
    }


def is_artifact_ref(payload):
    return isinstance(payload, dict) and _ARTIFACT_KEY in payload


def resolve_payload(payload, cache=None):
    """Fetch an artifact reference from the shared store; verify digest.

    Non-reference payloads pass through untouched.  A missing entry, a
    store-evicted (poisoned) entry, or a digest mismatch all raise
    :class:`ArtifactMiss` -- the caller re-runs the task rather than
    serving doubtful bytes.
    """
    if not is_artifact_ref(payload):
        return payload
    if cache is None:
        from repro.par.cache import active_cache

        cache = active_cache()
    if cache is None:
        raise ArtifactMiss(
            f"result of {payload['algorithm']!r} is an artifact reference but no "
            f"shared cache is configured on this side"
        )
    stored = cache.get(payload["algorithm"], payload["params"])
    if stored is None:
        raise ArtifactMiss(
            f"artifact {payload['algorithm']!r} missing from the shared store "
            f"(absent or evicted after digest re-verification)"
        )
    array = np.asarray(stored)
    if _payload_digest(array) != payload["digest"]:
        raise ArtifactMiss(
            f"artifact {payload['algorithm']!r} failed end-to-end digest "
            f"verification; refusing to serve it"
        )
    return array


# ----------------------------------------------------------------------
# Built-in task kinds
# ----------------------------------------------------------------------
def _run_experiment_task(params, seed):
    """One experiment of the suite, rebuilt against the reference trace."""
    from repro.experiments.data import reference_trace
    from repro.experiments.runner import experiment_specs

    trace = reference_trace(n_frames=int(params["trace_frames"]))
    specs = {
        spec.experiment_id: spec
        for spec in experiment_specs(
            trace,
            quick=bool(params.get("quick", False)),
            sim_frames=params.get("sim_frames"),
        )
    }
    experiment_id = params["experiment_id"]
    if experiment_id not in specs:
        raise ValueError(
            f"unknown experiment id {experiment_id!r}; known: {sorted(specs)}"
        )
    return specs[experiment_id].run(seed)


def _run_fgn_task(params, seed):
    """One fGn synthesis; parks the trace in the shared store when active."""
    from repro.par.cache import active_cache

    n = int(params["n"])
    hurst = float(params.get("hurst", 0.8))
    backend = params.get("backend", "daviesharte")
    rng = np.random.default_rng(seed)
    if backend == "daviesharte":
        from repro.core.daviesharte import davies_harte_fgn

        sample = davies_harte_fgn(n, hurst=hurst, rng=rng)
    elif backend == "paxson":
        from repro.core.paxson import paxson_fgn

        sample = paxson_fgn(n, hurst=hurst, rng=rng)
    else:
        raise ValueError(f"unknown fgn backend {backend!r}")
    cache = active_cache()
    if cache is not None:
        key_params = {"n": n, "hurst": hurst, "backend": backend, "seed": int(seed)}
        return make_artifact_ref("dist.fgn", key_params, sample, cache)
    return sample


def _run_alloc_task(params, seed):
    """One allocator over a seeded demo fleet; returns the summary rollup.

    The fleet is a pure function of ``params`` (the fleet seed travels
    in ``params["seed"]``, sha256-expanded per user and epoch), so the
    supervisor's per-attempt ``seed`` is accepted and ignored -- retries
    and re-runs on any node reproduce the same digest bit for bit.
    """
    from repro.alloc import demo_fleet, simulate_fleet

    del seed
    spec = demo_fleet(
        int(params.get("n_users", 32)),
        epoch_slots=int(params.get("epoch_slots", 80)),
        n_epochs=int(params.get("n_epochs", 24)),
        utilization=float(params.get("utilization", 0.8)),
        buffer_slots=float(params.get("buffer_slots", 12.0)),
        qos_loss=float(params.get("qos_loss", 1e-3)),
        seed=int(params.get("seed", 2026)),
    )
    result = simulate_fleet(
        spec, params.get("allocator", "static"),
        workers=int(params.get("workers", 1)),
    )
    return result.summary()


def _run_sleep_task(params, seed):
    """Simulated-latency work: occupy a worker without burning a core."""
    import time

    duration = float(params.get("duration_s", 0.0))
    if duration > 0.0:
        time.sleep(duration)
    return params.get("value")


register_task_kind("experiment", _run_experiment_task)
register_task_kind("fgn", _run_fgn_task)
register_task_kind("alloc", _run_alloc_task)
register_task_kind("sleep", _run_sleep_task)


# ----------------------------------------------------------------------
# Message constructors (dicts on the wire; one "type" key each)
# ----------------------------------------------------------------------
def make_hello(node, pid):
    return {"type": "hello", "version": PROTOCOL_VERSION, "node": str(node),
            "pid": int(pid)}


def make_task_message(task, seed, attempt, lease_s):
    return {"type": "task", "task": task.to_wire(), "seed": int(seed),
            "attempt": int(attempt), "lease_s": float(lease_s)}


def make_heartbeat(node, task_id, attempt, seq=None, metrics=None):
    """Lease renewal, optionally piggybacking an incremental metric scrape.

    ``metrics`` is the worker's *cumulative* registry dump and ``seq`` a
    monotone per-connection scrape number; the coordinator's
    :class:`repro.obs.metrics.ScrapeMerger` applies each ``(node, seq)``
    at most once, so duplicated or reordered heartbeats behind a healed
    partition never double-count.
    """
    doc = {"type": "heartbeat", "node": str(node), "task_id": str(task_id),
           "attempt": int(attempt)}
    if metrics:
        doc["seq"] = int(seq if seq is not None else 0)
        doc["metrics"] = metrics
    return doc


def make_result(node, task_id, attempt, payload, wall_time, spans=None,
                seq=None, metrics=None):
    """A completed attempt; may carry the worker's span subtree and a
    final cumulative metric scrape alongside the payload."""
    doc = {"type": "result", "node": str(node), "task_id": str(task_id),
           "attempt": int(attempt), "ok": True, "payload": payload,
           "wall_time": float(wall_time)}
    if spans:
        doc["spans"] = list(spans)
    if metrics:
        doc["seq"] = int(seq if seq is not None else 0)
        doc["metrics"] = metrics
    return doc


def make_error(node, task_id, attempt, exc, wall_time, transient, spans=None,
               seq=None, metrics=None):
    import traceback as traceback_module

    doc = {
        "type": "result", "node": str(node), "task_id": str(task_id),
        "attempt": int(attempt), "ok": False,
        "error": {
            "error_type": type(exc).__name__,
            "message": str(exc),
            "traceback": "".join(
                traceback_module.format_exception(type(exc), exc, exc.__traceback__)
            ),
            "transient": bool(transient),
        },
        "wall_time": float(wall_time),
    }
    if spans:
        doc["spans"] = list(spans)
    if metrics:
        doc["seq"] = int(seq if seq is not None else 0)
        doc["metrics"] = metrics
    return doc
