"""Simulated multi-node cluster: real protocol, injectable failures.

Real multi-node CI is unavailable (and nondeterministic anyway), so the
robustness claims of :mod:`repro.dist` are made testable on a single
CPU by running N *simulated nodes* -- each a thread executing the
production :class:`~repro.dist.worker.WorkerLoop` verbatim -- behind
the in-memory :class:`~repro.dist.transport.SimChannel` fabric.  The
only difference from a socket deployment is the transport object; the
lease, heartbeat, reassignment and retry machinery exercised is the
real thing.

Failures are declared ahead of time as a :class:`FaultScript`: a list
of :class:`FaultEvent` entries saying *which node* fails *how* (kill,
hang, stall, slow, partition) at *which task* it starts or finishes.
:meth:`FaultScript.random` derives a script from a seed under the
:mod:`repro.qa` discipline, so the nightly chaos job explores a fresh
scenario per ``--qa-seed`` while any failure reproduces exactly from
the printed seed.  Ambient :class:`~repro.resilience.faults.FaultPlan`
site faults also fire inside simulated nodes (the worker executes
tasks through :func:`repro.dist.protocol.execute_task`, which calls
``reach``).
"""

from __future__ import annotations

import dataclasses
import hashlib
import threading

import numpy as np

from repro.dist.transport import sim_pair
from repro.dist.worker import NodeHang, NodeKilled, NodeStall, WorkerLoop
from repro.obs import flight as obs_flight
from repro.obs import log as obs_log

__all__ = ["FaultEvent", "FaultScript", "SimCluster", "SimNode"]

_LOGGER = obs_log.get_logger("dist.sim")

_KINDS = ("kill", "hang", "stall", "slow", "partition")


@dataclasses.dataclass(frozen=True)
class FaultEvent:
    """One scheduled node failure.

    ``at_task`` counts task assignments *on that node* (1-based);
    ``phase`` is ``"start"`` (fires after the assignment arrives,
    before any work) or ``"finish"`` (fires after the attempt computed,
    before the result is sent -- the nastiest kill point, since the
    work is done but the coordinator will never hear about it).
    ``duration_s`` parameterizes hang/stall windows, slow-link latency
    and partition length.
    """

    node: str
    kind: str  # kill | hang | stall | slow | partition
    at_task: int = 1
    phase: str = "start"
    duration_s: float = 60.0

    def __post_init__(self):
        if self.kind not in _KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; one of {_KINDS}")
        if self.phase not in ("start", "finish"):
            raise ValueError(f"phase must be start or finish, got {self.phase!r}")
        if self.at_task < 1:
            raise ValueError(f"at_task is 1-based, got {self.at_task}")


class FaultScript:
    """An ordered set of :class:`FaultEvent` entries for one campaign."""

    def __init__(self, events=()):
        self.events = [
            event if isinstance(event, FaultEvent) else FaultEvent(**event)
            for event in events
        ]
        self.fired = []

    def __iter__(self):
        return iter(self.events)

    def __len__(self):
        return len(self.events)

    @classmethod
    def random(cls, seed, nodes, n_events=1, max_task=4,
               kinds=("kill", "hang", "stall", "partition"),
               duration_s=60.0, spare=None):
        """A seeded scenario: ``n_events`` failures over ``nodes``.

        At most one event per node (a node fails once), and with
        ``spare`` at least that many nodes are left untouched so the
        campaign can always finish on survivors.  The draw is a pure
        function of ``seed`` (sha256-mixed, same discipline as the QA
        plugin's ``seeded_rng``).
        """
        nodes = [str(n) for n in nodes]
        if spare is None:
            spare = 1 if len(nodes) > 1 else 0
        budget = max(len(nodes) - spare, 0)
        n_events = min(int(n_events), budget)
        digest = hashlib.sha256(f"{int(seed)}:faultscript".encode()).digest()
        rng = np.random.default_rng(int.from_bytes(digest[:8], "big"))
        victims = rng.choice(len(nodes), size=n_events, replace=False)
        events = [
            FaultEvent(
                node=nodes[int(victim)],
                kind=str(rng.choice(list(kinds))),
                at_task=int(rng.integers(1, max_task + 1)),
                phase=str(rng.choice(["start", "finish"])),
                duration_s=float(duration_s),
            )
            for victim in victims
        ]
        return cls(events)

    def for_node(self, node):
        return [event for event in self.events if event.node == str(node)]


class SimNode:
    """One simulated node: a production WorkerLoop on a thread."""

    def __init__(self, name, script, abort, latency_s=0.0):
        self.name = str(name)
        self.coordinator_channel, node_channel = sim_pair(
            name=self.name, latency_s=latency_s
        )
        self._events = {}
        for event in script.for_node(self.name):
            self._events.setdefault((event.at_task, event.phase), event)
        self._script = script
        self.loop = WorkerLoop(
            node_channel, name=self.name, fault_hook=self._fault_hook, abort=abort
        )
        self.thread = threading.Thread(
            target=self.loop.run, name=f"sim-node-{self.name}", daemon=True
        )
        self.outcome = None

    def start(self):
        self.thread.start()

    def _fault_hook(self, phase, task_index):
        # WorkerLoop phases are "task_start"/"task_finish"; events use
        # the short form.
        event = self._events.pop((task_index, phase.removeprefix("task_")), None)
        if event is None:
            return
        self._script.fired.append(event)
        _LOGGER.info(
            "injecting %s on node %s at task %d (%s)",
            event.kind, self.name, task_index, phase,
            extra={"node": self.name, "kind": event.kind,
                   "task_index": task_index, "phase": phase},
        )
        obs_flight.recorder().record(
            "fault_injected", node=self.name, fault=event.kind,
            task_index=task_index, phase=phase,
        )
        if event.kind == "kill":
            raise NodeKilled(f"node {self.name} killed at task {task_index}")
        if event.kind == "hang":
            raise NodeHang(event.duration_s)
        if event.kind == "stall":
            raise NodeStall(event.duration_s)
        if event.kind == "slow":
            self.coordinator_channel.link.set_latency(event.duration_s)
        elif event.kind == "partition":
            self.coordinator_channel.link.partition(event.duration_s)


class SimCluster:
    """N simulated nodes behind one coordinator-facing endpoint dict.

    Usage::

        script = FaultScript.random(seed=7, nodes=["n0", "n1", "n2"])
        with SimCluster(3, script=script) as cluster:
            report = run_distributed(tasks, cluster.endpoints(), ...)

    ``endpoints()`` returns ``{name: Channel}``, the exact shape
    :func:`repro.dist.coordinator.run_distributed` takes for socket
    deployments -- the coordinator cannot tell the difference.
    """

    def __init__(self, nodes=2, *, script=None, latency_s=0.0):
        if isinstance(nodes, int):
            names = [f"n{i}" for i in range(nodes)]
        else:
            names = [str(n) for n in nodes]
        if not names:
            raise ValueError("a cluster needs at least one node")
        self.script = script if script is not None else FaultScript()
        self.abort = threading.Event()
        self.nodes = [
            SimNode(name, self.script, self.abort, latency_s=latency_s)
            for name in names
        ]

    def start(self):
        for node in self.nodes:
            node.start()
        return self

    def endpoints(self):
        return {node.name: node.coordinator_channel for node in self.nodes}

    def stop(self, timeout_s=5.0):
        """Release every node: abort hangs/stalls, close links, join."""
        self.abort.set()
        for node in self.nodes:
            node.coordinator_channel.link.kill()
        for node in self.nodes:
            node.thread.join(timeout_s)
        stuck = [n.name for n in self.nodes if n.thread.is_alive()]
        if stuck:  # pragma: no cover - teardown diagnostics only
            _LOGGER.warning("sim nodes still alive at teardown: %s", stuck)

    def __enter__(self):
        return self.start()

    def __exit__(self, *exc_info):
        self.stop()
        return False
