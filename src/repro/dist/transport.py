"""Message channels: stdlib sockets and an in-memory simulated fabric.

The coordinator and workers speak through a minimal duplex
:class:`Channel` interface -- ``send`` / ``poll`` / ``recv`` / ``close``
-- with two interchangeable implementations:

- :class:`PipeChannel` wraps a :mod:`multiprocessing.connection`
  ``Connection`` (TCP ``host:port`` or ``unix:/path`` sockets, authkey
  handshake, pickled messages), for real multi-machine or
  multi-process deployments via ``repro dist serve``;
- :class:`SimChannel` is an in-process queue pair whose shared
  :class:`LinkState` injects the failure modes real networks exhibit:
  delivery latency, partitions (messages silently dropped for a
  window), and node death (the link goes permanently dark).  The
  simulated cluster harness drives every coordinator robustness path
  through this class on a single CPU.

Both raise :class:`ChannelClosed` once the peer is unreachable for
good, which the coordinator treats identically to a lease expiry:
the node is lost and its work is reassigned.
"""

from __future__ import annotations

import collections
import threading
import time

__all__ = [
    "ChannelClosed",
    "Channel",
    "LinkState",
    "PipeChannel",
    "SimChannel",
    "connect",
    "listen",
    "parse_address",
    "probe",
    "sim_pair",
]

DEFAULT_AUTHKEY = b"repro-dist"
"""Default authkey for the socket transport; override in production via
``--authkey`` / ``REPRO_DIST_AUTHKEY``."""


class ChannelClosed(ConnectionError):
    """The peer is gone for good (closed, died, or unreachable)."""


class Channel:
    """Duplex message channel; messages are picklable dicts."""

    def send(self, message):  # pragma: no cover - interface
        raise NotImplementedError

    def poll(self, timeout=0.0):  # pragma: no cover - interface
        raise NotImplementedError

    def recv(self):  # pragma: no cover - interface
        raise NotImplementedError

    def close(self):  # pragma: no cover - interface
        raise NotImplementedError


# ----------------------------------------------------------------------
# Socket transport (multiprocessing.connection)
# ----------------------------------------------------------------------
def parse_address(address):
    """``"host:port"`` or ``"unix:/path"`` -> a Listener/Client address."""
    if not address or not isinstance(address, str):
        raise ValueError(f"address must be a non-empty string, got {address!r}")
    if address.startswith("unix:"):
        path = address[len("unix:"):]
        if not path:
            raise ValueError(f"unix address {address!r} is missing a path")
        return path
    host, sep, port = address.rpartition(":")
    if not sep or not host:
        raise ValueError(
            f"address {address!r} must look like host:port or unix:/path"
        )
    try:
        return (host, int(port))
    except ValueError:
        raise ValueError(f"address {address!r} has a non-integer port") from None


class PipeChannel(Channel):
    """A :mod:`multiprocessing.connection` Connection behind the interface."""

    def __init__(self, connection, name=""):
        self._conn = connection
        self.name = name

    def send(self, message):
        try:
            self._conn.send(message)
        except (OSError, ValueError, EOFError, BrokenPipeError) as exc:
            raise ChannelClosed(f"send to {self.name or 'peer'} failed: {exc}") from exc

    def poll(self, timeout=0.0):
        try:
            return self._conn.poll(timeout)
        except (OSError, EOFError):
            # A dead peer is "readable": recv() will raise ChannelClosed.
            return True

    def recv(self):
        try:
            return self._conn.recv()
        except (OSError, EOFError) as exc:
            raise ChannelClosed(f"recv from {self.name or 'peer'} failed: {exc}") from exc

    def close(self):
        try:
            self._conn.close()
        except OSError:
            pass


def connect(address, authkey=DEFAULT_AUTHKEY, name=None):
    """Dial a ``repro dist serve`` worker; returns a :class:`PipeChannel`."""
    from multiprocessing.connection import Client

    try:
        conn = Client(parse_address(address), authkey=authkey)
    except (OSError, EOFError, AssertionError) as exc:
        # AuthenticationError subclasses nothing useful; Client raises
        # plain OSError for refused connections and EOFError for peers
        # that hang up mid-handshake.
        raise ChannelClosed(f"cannot connect to {address}: {exc}") from exc
    return PipeChannel(conn, name=name or address)


def listen(address, authkey=DEFAULT_AUTHKEY):
    """A Listener bound to ``address`` (``host:0`` picks a free port)."""
    from multiprocessing.connection import Listener

    return Listener(parse_address(address), authkey=authkey)


def probe(address, authkey=DEFAULT_AUTHKEY, timeout_s=2.0):
    """Ping one worker endpoint; returns ``(ok, rtt_s_or_None, detail)``.

    Used by the ``repro doctor`` cluster preflight.  The handshake and
    the ping/pong round trip share one deadline, enforced from a helper
    thread because the stdlib Client has no connect timeout.
    """
    box = {}

    def _dial():
        try:
            channel = connect(address, authkey=authkey)
            started = time.perf_counter()
            channel.send({"type": "ping"})
            while True:
                if not channel.poll(timeout_s):
                    raise ChannelClosed("no pong within the probe deadline")
                reply = channel.recv()
                if reply.get("type") == "pong":
                    break
                if reply.get("type") != "hello":  # hello precedes the pong
                    raise ChannelClosed(f"unexpected reply {reply.get('type')!r}")
            box["rtt"] = time.perf_counter() - started
            box["node"] = reply.get("node", "")
            channel.send({"type": "detach"})
            channel.close()
        except (ChannelClosed, Exception) as exc:  # noqa: BLE001 - reported, not raised
            box["error"] = f"{type(exc).__name__}: {exc}"

    worker = threading.Thread(target=_dial, name=f"probe-{address}", daemon=True)
    worker.start()
    worker.join(timeout_s)
    if worker.is_alive():
        return False, None, f"no response within {timeout_s:g}s"
    if "error" in box:
        return False, None, box["error"]
    return True, box["rtt"], box.get("node", "")


# ----------------------------------------------------------------------
# Simulated fabric
# ----------------------------------------------------------------------
class LinkState:
    """Shared failure state of one simulated coordinator<->node link.

    Mutated by the fault script while both endpoints run:

    - ``latency_s`` delays delivery of every message;
    - ``partition(duration)`` silently drops everything sent during the
      window (both directions), modelling a network partition -- late
      messages are *lost*, not delayed, exactly like a TCP reset;
    - ``kill()`` makes the link permanently dark: sends from the dead
      side vanish, and the living side's sends raise
      :class:`ChannelClosed` only when the dead endpoint is also
      closed -- a SIGKILLed node simply goes silent first.
    """

    def __init__(self, latency_s=0.0, clock=time.monotonic):
        self.clock = clock
        self.latency_s = float(latency_s)
        self.partition_until = 0.0
        self.dead = False
        self.lock = threading.Lock()
        self.condition = threading.Condition(self.lock)

    def partition(self, duration_s):
        with self.lock:
            self.partition_until = max(
                self.partition_until, self.clock() + float(duration_s)
            )

    def set_latency(self, latency_s):
        with self.lock:
            self.latency_s = float(latency_s)

    def kill(self):
        with self.condition:
            self.dead = True
            self.condition.notify_all()

    def partitioned(self):
        return self.clock() < self.partition_until


class SimChannel(Channel):
    """One endpoint of an in-memory link; see :class:`LinkState`."""

    def __init__(self, link, inbox, outbox, name=""):
        self._link = link
        self._inbox = inbox  # deque of (deliver_at, message)
        self._outbox = outbox
        self.name = name

    @property
    def link(self):
        return self._link

    def send(self, message):
        link = self._link
        with link.condition:
            if link.dead:
                raise ChannelClosed(f"link {self.name or 'sim'} is dead")
            if link.partitioned():
                return  # dropped on the floor, like a partitioned network
            self._outbox.append((link.clock() + link.latency_s, message))
            link.condition.notify_all()

    def _deliverable(self):
        return self._inbox and self._inbox[0][0] <= self._link.clock()

    def poll(self, timeout=0.0):
        link = self._link
        deadline = link.clock() + max(float(timeout), 0.0)
        with link.condition:
            while True:
                if self._deliverable():
                    return True
                if link.dead:
                    return True  # recv() will raise ChannelClosed
                now = link.clock()
                if now >= deadline:
                    return False
                # Wake early enough to deliver a latency-delayed message.
                wait = deadline - now
                if self._inbox:
                    wait = min(wait, max(self._inbox[0][0] - now, 0.0))
                link.condition.wait(min(wait, 0.05) or 0.001)

    def recv(self):
        link = self._link
        with link.condition:
            while True:
                if self._deliverable():
                    return self._inbox.popleft()[1]
                if link.dead:
                    raise ChannelClosed(f"link {self.name or 'sim'} is dead")
                link.condition.wait(0.01)

    def close(self):
        self._link.kill()


def sim_pair(name="", latency_s=0.0, clock=time.monotonic):
    """``(coordinator_end, node_end)`` of a fresh simulated link."""
    link = LinkState(latency_s=latency_s, clock=clock)
    a_to_b = collections.deque()
    b_to_a = collections.deque()
    a = SimChannel(link, inbox=b_to_a, outbox=a_to_b, name=f"{name}:coord")
    b = SimChannel(link, inbox=a_to_b, outbox=b_to_a, name=f"{name}:node")
    return a, b
