"""The worker side of the lease/heartbeat protocol.

:class:`WorkerLoop` serves one coordinator over any
:class:`~repro.dist.transport.Channel`: it announces itself, executes
``task`` messages through the :mod:`repro.dist.protocol` registry, and
heartbeats while an attempt runs so the coordinator's lease stays
fresh.  The same loop runs inside ``repro dist serve`` (socket
transport, one process per node) and inside the simulated cluster
(thread per node), which is what makes the simulated chaos results
meaningful: the code under test *is* the production worker.

Execution model: the attempt runs on a daemon thread while the loop
thread emits a heartbeat every ``lease_s / 4``.  The loop thread is
also where injected node faults fire (see
:class:`~repro.dist.simcluster.FaultScript`):

- :class:`NodeKilled` abandons the loop instantly without a goodbye --
  the coordinator only learns via the missed heartbeats, exactly like
  a SIGKILL;
- :class:`NodeHang` blocks the loop *without* heartbeats (a frozen
  process);
- :class:`NodeStall` keeps heartbeating but never delivers the result
  (livelock / infinite loop in user code), the case the coordinator's
  hard per-attempt ``task_timeout_s`` exists for.
"""

from __future__ import annotations

import os
import threading
import time

from repro.dist import protocol
from repro.dist.transport import ChannelClosed
from repro.obs import _state as obs_state
from repro.obs import flight as obs_flight
from repro.obs import log as obs_log
from repro.obs import metrics, trace

__all__ = ["NodeKilled", "NodeHang", "NodeStall", "WorkerLoop", "serve"]

_LOGGER = obs_log.get_logger("dist.worker")


class NodeKilled(BaseException):
    """Injected SIGKILL: the node vanishes mid-protocol, no goodbye."""


class NodeHang(BaseException):
    """Injected freeze: the node stops heartbeating but stays attached."""

    def __init__(self, duration_s=60.0):
        super().__init__(f"node hung for {duration_s:g}s")
        self.duration_s = float(duration_s)


class NodeStall(BaseException):
    """Injected livelock: heartbeats continue, the result never comes."""

    def __init__(self, duration_s=60.0):
        super().__init__(f"node stalled for {duration_s:g}s")
        self.duration_s = float(duration_s)


class WorkerLoop:
    """Serve one coordinator until shutdown, detach, or channel loss.

    Parameters
    ----------
    channel:
        The duplex channel to the coordinator.
    name:
        Node name announced in the hello message.
    fault_hook:
        Optional ``fn(phase, task_index)`` called on the loop thread at
        ``"task_start"`` (after receiving an assignment) and
        ``"task_finish"`` (after the attempt, before the result is
        sent); may raise the injected-fault exceptions above.
    transient_types:
        Exception types reported as retriable, mirroring the
        supervisor's classification.
    abort:
        Optional :class:`threading.Event`; set to cut short injected
        hangs/stalls at harness teardown.
    scrape_registry:
        The :class:`~repro.obs.metrics.MetricsRegistry` whose cumulative
        dump rides every heartbeat and result (while observability is
        enabled) for the coordinator to merge as ``node=``-labeled
        series.  Defaults to a *private* registry: simulated nodes share
        the coordinator's process, and scraping the shared default
        registry back into itself would double-count.  Socket workers
        (:func:`serve`) pass their process-wide registry.
    """

    def __init__(self, channel, *, name="worker", fault_hook=None,
                 transient_types=None, abort=None, clock=time.monotonic,
                 scrape_registry=None):
        if transient_types is None:
            from repro.resilience.runner import TRANSIENT_TYPES

            transient_types = TRANSIENT_TYPES
        self.channel = channel
        self.name = str(name)
        self.fault_hook = fault_hook
        self.transient_types = tuple(transient_types)
        self.abort = abort if abort is not None else threading.Event()
        self.clock = clock
        self.tasks_started = 0
        self.scrape_registry = (
            scrape_registry if scrape_registry is not None
            else metrics.MetricsRegistry()
        )
        self._scrape_seq = 0
        self._tasks_metric = self.scrape_registry.counter(
            "repro_dist_worker_tasks_total",
            help="Task attempts executed by this worker process",
            unit="tasks",
        )
        self._heartbeats_metric = self.scrape_registry.counter(
            "repro_dist_worker_heartbeats_total",
            help="Lease-renewal heartbeats sent by this worker",
            unit="heartbeats",
        )
        self._task_seconds_metric = self.scrape_registry.histogram(
            "repro_dist_worker_task_seconds",
            help="Wall time of task attempts on this worker",
            unit="seconds",
        )

    def _scrape(self):
        """``(seq, cumulative dump)`` for piggybacking, or ``(None, None)``.

        Gated on the observability flag like every other probe: the
        dump is only built (and shipped) while obs is enabled, so
        disabled campaigns pay one flag read per heartbeat.
        """
        if not obs_state.enabled:
            return None, None
        dump = self.scrape_registry.to_dict()
        if not dump:
            return None, None
        self._scrape_seq += 1
        return self._scrape_seq, dump

    # ------------------------------------------------------------------
    def run(self):
        """Process messages until the coordinator lets go of this node."""
        try:
            self.channel.send(protocol.make_hello(self.name, os.getpid()))
            while not self.abort.is_set():
                if not self.channel.poll(0.05):
                    continue
                message = self.channel.recv()
                kind = message.get("type")
                if kind == "task":
                    self._serve_task(message)
                elif kind == "ping":
                    self.channel.send({"type": "pong", "node": self.name})
                elif kind in ("shutdown", "detach"):
                    return kind
        except ChannelClosed:
            return "lost"
        except NodeKilled:
            return "killed"
        return "aborted"

    # ------------------------------------------------------------------
    def _hook(self, phase):
        if self.fault_hook is not None:
            self.fault_hook(phase, self.tasks_started)

    def _heartbeat(self, task_id, attempt):
        seq, dump = self._scrape()
        self._heartbeats_metric.inc()
        self.channel.send(protocol.make_heartbeat(
            self.name, task_id, attempt, seq=seq, metrics=dump,
        ))

    def _serve_task(self, message):
        task = message["task"]
        task_id = task["task_id"]
        seed = message["seed"]
        attempt = message["attempt"]
        heartbeat_s = max(float(message.get("lease_s", 1.0)) / 4.0, 0.01)
        self.tasks_started += 1
        obs_flight.recorder().record(
            "task_received", node=self.name, task_id=task_id,
            attempt=int(attempt), seed=seed,
        )
        try:
            self._hook("task_start")
        except NodeHang as hang:
            self.abort.wait(hang.duration_s)  # frozen: no heartbeat, no result
            return
        box = {}
        ctx = task.get("trace") or {}

        def _attempt():
            started = time.perf_counter()
            # Detached: the span ships back with the result and is
            # adopted into the coordinator's forest, never recorded
            # locally.  Entered on this thread so cpu_s is the
            # attempt's own thread time.
            attempt_span = trace.span(
                "dist.attempt", detached=True, task=task_id,
                node=self.name, attempt=int(attempt), seed=seed,
            )
            if isinstance(attempt_span, trace.Span) and ctx.get("trace_id"):
                attempt_span.trace_id = ctx["trace_id"]
                if ctx.get("parent_span_id"):
                    attempt_span.set(parent_span_id=ctx["parent_span_id"])
            try:
                with attempt_span:
                    box["payload"] = protocol.execute_task(task, seed)
            except (KeyboardInterrupt, SystemExit):
                raise
            except Exception as exc:  # shipped to the coordinator
                box["error"] = exc
            box["wall"] = time.perf_counter() - started
            if isinstance(attempt_span, trace.Span):
                box["spans"] = [attempt_span.to_dict()]
            self._tasks_metric.inc()
            self._task_seconds_metric.observe(box["wall"])

        runner = threading.Thread(
            target=_attempt,
            name=f"dist-{self.name}-{task_id}",
            daemon=True,
        )
        runner.start()
        while runner.is_alive():
            runner.join(heartbeat_s)
            if runner.is_alive():
                self._heartbeat(task_id, attempt)
        try:
            self._hook("task_finish")
        except NodeHang as hang:
            # Froze after computing but before sending: the result is lost.
            self.abort.wait(hang.duration_s)
            return
        except NodeStall as stall:
            deadline = self.clock() + stall.duration_s
            while self.clock() < deadline and not self.abort.is_set():
                self._heartbeat(task_id, attempt)
                self.abort.wait(heartbeat_s)
            return
        seq, dump = self._scrape()
        if "error" in box:
            exc = box["error"]
            _LOGGER.warning(
                "task %s attempt %d failed on %s (%s: %s)",
                task_id, attempt + 1, self.name,
                type(exc).__name__, exc,
                extra={"task": task_id, "node": self.name,
                       "attempt": attempt + 1, "error_type": type(exc).__name__},
            )
            obs_flight.recorder().record(
                "task_error", node=self.name, task_id=task_id,
                attempt=int(attempt), error_type=type(exc).__name__,
            )
            self.channel.send(protocol.make_error(
                self.name, task_id, attempt, exc, box["wall"],
                transient=isinstance(exc, self.transient_types),
                spans=box.get("spans"), seq=seq, metrics=dump,
            ))
        else:
            obs_flight.recorder().record(
                "task_done", node=self.name, task_id=task_id,
                attempt=int(attempt),
            )
            self.channel.send(protocol.make_result(
                self.name, task_id, attempt, box["payload"], box["wall"],
                spans=box.get("spans"), seq=seq, metrics=dump,
            ))


def serve(address, *, authkey=None, name=None, once=False, cache_dir=None,
          ready=None):
    """Run a socket worker node: accept coordinators, serve campaigns.

    Binds ``address`` (``host:port``, ``host:0`` for an ephemeral port,
    or ``unix:/path``) and serves one coordinator connection at a time;
    each disconnect returns the node to accepting (``once=True`` serves
    a single connection, for tests).  ``cache_dir`` configures the
    process-wide shared artifact store so fGn payloads are exchanged by
    digest-verified reference instead of over the socket.  ``ready``,
    when given, is called with the bound Listener address before the
    first accept.
    """
    from repro.dist import transport

    if cache_dir is not None:
        from repro.par import cache as par_cache

        par_cache.configure(cache_dir)
    key = transport.DEFAULT_AUTHKEY if authkey is None else authkey
    node = name or f"{os.uname().nodename}-{os.getpid()}"
    with transport.listen(address, authkey=key) as listener:
        bound = listener.address
        _LOGGER.info("dist worker %s serving on %s", node, bound,
                     extra={"node": node, "address": str(bound)})
        if ready is not None:
            ready(bound)
        while True:
            try:
                conn = listener.accept()
            except (OSError, EOFError, Exception) as exc:  # noqa: BLE001
                # Includes AuthenticationError from a bad authkey; keep
                # serving -- one bad client must not take the node down.
                if isinstance(exc, KeyboardInterrupt):  # pragma: no cover
                    raise
                _LOGGER.warning("rejected connection: %s", exc)
                continue
            channel = transport.PipeChannel(conn, name=node)
            # Socket workers own their process, so the process-wide
            # registry is exactly what the coordinator should scrape.
            outcome = WorkerLoop(
                channel, name=node, scrape_registry=metrics.registry(),
            ).run()
            channel.close()
            _LOGGER.info("coordinator detached (%s)", outcome,
                         extra={"node": node, "outcome": outcome})
            if once or outcome == "shutdown":
                return outcome
