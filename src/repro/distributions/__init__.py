"""Probability distributions used by the Garrett-Willinger analysis.

The paper compares the empirical per-frame bandwidth distribution of a
VBR video trace against the Normal, Gamma and Lognormal distributions
(which all fail in the right tail) and against the heavy-tailed Pareto
distribution (which matches the tail), and then constructs a hybrid
Gamma/Pareto marginal model ``F_{Gamma/Pareto}`` whose body is a Gamma
distribution and whose right tail is a Pareto power law, spliced at the
unique point where the two log-log complementary-CDF slopes agree.

All distributions here are implemented from first principles (scipy is
used only for special functions such as the regularized incomplete
gamma function and ``erf``).  Every distribution exposes the same
interface -- :meth:`~repro.distributions.base.Distribution.pdf`,
``cdf``, ``sf``, ``ppf``, ``mean``, ``var``, ``std`` and ``sample`` --
so that the analysis and plotting code can treat them uniformly.
"""

from repro.distributions.base import Distribution, TabulatedDistribution
from repro.distributions.normal import Normal
from repro.distributions.gamma import Gamma
from repro.distributions.lognormal import Lognormal
from repro.distributions.pareto import Pareto
from repro.distributions.hybrid import GammaParetoHybrid
from repro.distributions.gof import (
    GoodnessOfFit,
    ks_statistic,
    chi_square_statistic,
    qq_points,
    score_candidates,
)
from repro.distributions.fitting import (
    fit_all_candidates,
    fit_pareto_tail_slope,
    empirical_ccdf,
    empirical_cdf,
)

__all__ = [
    "Distribution",
    "TabulatedDistribution",
    "Normal",
    "Gamma",
    "Lognormal",
    "Pareto",
    "GammaParetoHybrid",
    "fit_all_candidates",
    "fit_pareto_tail_slope",
    "empirical_ccdf",
    "empirical_cdf",
    "GoodnessOfFit",
    "ks_statistic",
    "chi_square_statistic",
    "qq_points",
    "score_candidates",
]
