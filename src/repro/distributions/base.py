"""Common distribution interface and a tabulated-distribution helper.

:class:`Distribution` is the abstract base class all parametric models
in :mod:`repro.distributions` derive from.  :class:`TabulatedDistribution`
represents a distribution by a discretized CDF table; the paper uses a
10,000-point table both for the Gaussian-to-Gamma/Pareto mapping and for
convolving the marginal of several multiplexed sources.
"""

from __future__ import annotations

import abc

import numpy as np

from repro._validation import as_1d_float_array, require_positive_int

__all__ = ["Distribution", "TabulatedDistribution"]


class Distribution(abc.ABC):
    """Abstract continuous univariate distribution.

    Subclasses implement :meth:`pdf`, :meth:`cdf` and :meth:`ppf`; the
    base class derives the survival function, sampling and moments from
    those.  All array-valued methods accept scalars or array-likes and
    return numpy arrays (or scalars for scalar input) following numpy
    broadcasting conventions.
    """

    @abc.abstractmethod
    def pdf(self, x):
        """Probability density function evaluated at ``x``."""

    @abc.abstractmethod
    def cdf(self, x):
        """Cumulative distribution function ``P(X <= x)``."""

    @abc.abstractmethod
    def ppf(self, q):
        """Percent-point function (inverse CDF) evaluated at ``q``."""

    @abc.abstractmethod
    def mean(self):
        """Expected value of the distribution."""

    @abc.abstractmethod
    def var(self):
        """Variance of the distribution."""

    def sf(self, x):
        """Survival function ``P(X > x)`` (complementary CDF)."""
        return 1.0 - self.cdf(x)

    def std(self):
        """Standard deviation of the distribution."""
        return float(np.sqrt(self.var()))

    def sample(self, size, rng=None):
        """Draw ``size`` i.i.d. samples by inverse-transform sampling.

        Parameters
        ----------
        size:
            Number of samples (positive integer) or a shape tuple.
        rng:
            A :class:`numpy.random.Generator`; a fresh default
            generator is created when omitted.
        """
        if rng is None:
            rng = np.random.default_rng()
        u = rng.uniform(size=size)
        return self.ppf(u)

    def loglike(self, data):
        """Total log-likelihood of ``data`` under this distribution."""
        arr = as_1d_float_array(data, "data")
        dens = np.asarray(self.pdf(arr), dtype=float)
        with np.errstate(divide="ignore"):
            logdens = np.log(dens)
        if np.any(~np.isfinite(logdens)):
            return -np.inf
        return float(np.sum(logdens))


class TabulatedDistribution(Distribution):
    """Distribution represented by a monotone CDF lookup table.

    The table stores ``(x_i, F(x_i))`` pairs on a grid; ``cdf`` and
    ``ppf`` interpolate linearly between grid points and ``pdf`` is the
    piecewise-constant derivative of the interpolated CDF.  This mirrors
    the paper's use of a 10,000-point table to represent the
    Gamma/Pareto distribution and its n-fold convolutions.
    """

    def __init__(self, x, cdf_values):
        x = as_1d_float_array(x, "x", min_length=2)
        cdf_values = as_1d_float_array(cdf_values, "cdf_values", min_length=2)
        if x.shape != cdf_values.shape:
            raise ValueError(
                f"x and cdf_values must have the same length, got {x.size} and {cdf_values.size}"
            )
        if np.any(np.diff(x) <= 0):
            raise ValueError("x grid must be strictly increasing")
        if np.any(np.diff(cdf_values) < 0):
            raise ValueError("cdf_values must be non-decreasing")
        if cdf_values[0] < -1e-9 or cdf_values[-1] > 1 + 1e-9:
            raise ValueError("cdf_values must lie in [0, 1]")
        self._x = x
        self._cdf = np.clip(cdf_values, 0.0, 1.0)
        # Precompute the CDF points used for ppf interpolation: keep
        # both edges of every flat (zero-density) run and drop the
        # interiors, so quantiles interpolate within the correct rising
        # segment on either side of a gap in the support.
        n = self._cdf.size
        rising_after = np.concatenate((np.diff(self._cdf) > 0, [True]))
        rising_before = np.concatenate(([True], np.diff(self._cdf) > 0))
        keep = rising_after | rising_before
        keep[0] = keep[-1] = True
        self._ppf_x = self._x[keep]
        self._ppf_q = self._cdf[keep]

    @classmethod
    def from_distribution(cls, dist, n_points=10_000, q_lo=1e-7, q_hi=1.0 - 1e-7):
        """Tabulate ``dist`` on a grid covering quantiles [q_lo, q_hi]."""
        n_points = require_positive_int(n_points, "n_points")
        if n_points < 2:
            raise ValueError("n_points must be at least 2")
        lo = float(dist.ppf(q_lo))
        hi = float(dist.ppf(q_hi))
        x = np.linspace(lo, hi, n_points)
        return cls(x, np.asarray(dist.cdf(x), dtype=float))

    @property
    def support(self):
        """``(x_min, x_max)`` covered by the table."""
        return float(self._x[0]), float(self._x[-1])

    def pdf(self, x):
        x = np.asarray(x, dtype=float)
        mids = 0.5 * (self._x[:-1] + self._x[1:])
        dens = np.diff(self._cdf) / np.diff(self._x)
        idx = np.clip(np.searchsorted(mids, x), 0, dens.size - 1)
        out = dens[idx]
        out = np.where((x < self._x[0]) | (x > self._x[-1]), 0.0, out)
        return out if out.ndim else float(out)

    def cdf(self, x):
        x = np.asarray(x, dtype=float)
        out = np.interp(x, self._x, self._cdf, left=0.0, right=1.0)
        return out if out.ndim else float(out)

    def ppf(self, q):
        q = np.asarray(q, dtype=float)
        if np.any((q < 0) | (q > 1)):
            raise ValueError("quantiles must lie in [0, 1]")
        out = np.interp(q, self._ppf_q, self._ppf_x)
        return out if out.ndim else float(out)

    def mean(self):
        # Expectation of the piecewise-linear CDF: density is constant
        # on each cell, so the cell contributes mass * cell midpoint.
        mass = np.diff(self._cdf)
        mids = 0.5 * (self._x[:-1] + self._x[1:])
        total = mass.sum()
        if total <= 0:
            raise ValueError("table carries no probability mass")
        return float(np.sum(mass * mids) / total)

    def var(self):
        mass = np.diff(self._cdf)
        total = mass.sum()
        mids = 0.5 * (self._x[:-1] + self._x[1:])
        widths = np.diff(self._x)
        m = np.sum(mass * mids) / total
        # Second moment of a uniform cell: mid^2 + width^2 / 12.
        second = np.sum(mass * (mids**2 + widths**2 / 12.0)) / total
        return float(second - m * m)

    def convolve(self, other, n_points=10_000):
        """Distribution of the sum of independent draws from two tables.

        Used to model the aggregate bandwidth of independently
        multiplexed sources (Section 4.2 of the paper).  The densities
        are discretized onto a common step and convolved with an FFT.
        """
        if not isinstance(other, TabulatedDistribution):
            other = TabulatedDistribution.from_distribution(other, n_points)
        n_points = require_positive_int(n_points, "n_points")
        lo = self._x[0] + other._x[0]
        hi = self._x[-1] + other._x[-1]
        step = (hi - lo) / (n_points - 1)
        # Resample both PDFs on grids with a common step so the
        # convolution is a simple discrete convolution.
        xa = np.arange(self._x[0], self._x[-1] + step / 2, step)
        xb = np.arange(other._x[0], other._x[-1] + step / 2, step)
        pa = np.diff(np.interp(np.concatenate((xa - step / 2, [xa[-1] + step / 2])), self._x, self._cdf, left=0.0, right=1.0))
        pb = np.diff(np.interp(np.concatenate((xb - step / 2, [xb[-1] + step / 2])), other._x, other._cdf, left=0.0, right=1.0))
        mass = np.convolve(pa, pb)
        xs = xa[0] + xb[0] + step * np.arange(mass.size)
        cdf = np.concatenate(([0.0], np.cumsum(mass)))
        cdf = np.clip(cdf / cdf[-1], 0.0, 1.0)
        xs = np.concatenate(([xs[0] - step / 2], xs + step / 2))
        return TabulatedDistribution(xs, cdf)

    def __repr__(self):
        lo, hi = self.support
        return f"TabulatedDistribution(n={self._x.size}, support=[{lo:.6g}, {hi:.6g}])"
