"""Empirical-distribution helpers and the paper's fitting procedures.

This module provides the empirical CDF/CCDF machinery behind Figs. 4-6
and the least-squares tail-slope estimator the paper uses to determine
``m_T`` (the Pareto shape ``a``) from the log-log complementary CDF.
"""

from __future__ import annotations

import numpy as np

from repro._validation import as_1d_float_array, require_in_open_interval

__all__ = [
    "empirical_cdf",
    "empirical_ccdf",
    "fit_pareto_tail_slope",
    "fit_all_candidates",
]


def empirical_cdf(data):
    """Empirical CDF evaluated at the sorted sample points.

    Returns ``(x, F)`` where ``x`` is the sorted data and
    ``F[i] = (i + 1) / n`` is the fraction of observations ``<= x[i]``.
    """
    x = np.sort(as_1d_float_array(data, "data"))
    n = x.size
    return x, np.arange(1, n + 1, dtype=float) / n


def empirical_ccdf(data):
    """Empirical complementary CDF ``P(X > x)`` at the sorted sample.

    Returns ``(x, S)`` with ``S[i] = (n - i - 1) / n``; the final point
    has ``S = 0`` and is typically dropped before taking logarithms.
    """
    x = np.sort(as_1d_float_array(data, "data"))
    n = x.size
    return x, np.arange(n - 1, -1, -1, dtype=float) / n


def fit_pareto_tail_slope(data, tail_fraction=0.03, min_points=50):
    """Least-squares estimate of the Pareto tail shape ``a``.

    The paper determines ``m_T`` as "the slope of the straight-line
    that best fits the Pareto tail" on the log-log CCDF plot (Fig. 4).
    This routine regresses ``log S(x)`` on ``log x`` over the top
    ``tail_fraction`` of the sample and returns ``a = -slope``.

    Parameters
    ----------
    data:
        Strictly positive observations.
    tail_fraction:
        Fraction of the sample regarded as "tail" (default 3%, the
        paper's estimate of the tail mass for the Star-Wars trace).
    min_points:
        Minimum number of tail points required for the regression.
    """
    arr = as_1d_float_array(data, "data", min_length=min_points)
    require_in_open_interval(tail_fraction, "tail_fraction", 0.0, 1.0)
    if np.any(arr <= 0):
        raise ValueError("data must be strictly positive for a log-log tail fit")
    x, s = empirical_ccdf(arr)
    n_tail = max(int(np.ceil(arr.size * tail_fraction)), min_points)
    if n_tail >= arr.size:
        raise ValueError(
            f"tail_fraction={tail_fraction} with min_points={min_points} "
            f"covers the whole sample of size {arr.size}"
        )
    # Drop the final point (S = 0) and restrict to the tail.
    x_tail = x[-(n_tail + 1) : -1]
    s_tail = s[-(n_tail + 1) : -1]
    lx = np.log(x_tail)
    ls = np.log(s_tail)
    if np.ptp(lx) <= 0:
        raise ValueError("tail sample is degenerate; cannot regress a slope")
    slope, _intercept = np.polyfit(lx, ls, 1)
    if slope >= 0:
        raise ValueError("estimated tail slope is non-negative; data has no decaying tail")
    return float(-slope)


def fit_all_candidates(data, tail_fraction=0.03):
    """Fit every candidate marginal model the paper compares (Fig. 4).

    Returns a dict with keys ``"normal"``, ``"gamma"``, ``"lognormal"``,
    ``"pareto"`` and ``"gamma_pareto"``.  The plain Pareto is anchored
    at the splice point of the hybrid fit, matching how the paper draws
    the Pareto reference line through the empirical tail.
    """
    from repro.distributions.gamma import Gamma
    from repro.distributions.hybrid import GammaParetoHybrid
    from repro.distributions.lognormal import Lognormal
    from repro.distributions.normal import Normal
    from repro.distributions.pareto import Pareto

    arr = as_1d_float_array(data, "data", min_length=100)
    hybrid = GammaParetoHybrid.fit(arr, tail_fraction=tail_fraction)
    # The Pareto reference line of Fig. 4 is drawn *through the tail*:
    # its survival function must coincide with the hybrid's tail,
    # SF(x) = tail_mass * (x_th / x)^a, which is a Pareto with minimum
    # k = x_th * tail_mass^(1/a).
    k_eff = hybrid.x_th * hybrid.tail_mass ** (1.0 / hybrid.tail_shape)
    return {
        "normal": Normal.fit(arr),
        "gamma": Gamma.fit(arr),
        "lognormal": Lognormal.fit(arr),
        "pareto": Pareto(k_eff, hybrid.tail_shape),
        "gamma_pareto": hybrid,
    }
