"""Gamma distribution, parameterized as in the paper (eq. 14).

The density is ``f(x) = exp(-lambda x) * lambda (lambda x)^(s-1) / Gamma(s)``
with *shape* ``s`` and *scale* (rate) ``lambda``.  The paper determines
``s`` and ``lambda`` "conveniently from the mean and variance":
``mean = s / lambda`` and ``var = s / lambda**2``, i.e.

    ``s = mean**2 / var``,  ``lambda = mean / var``.

The Gamma distribution matches the *body* and left tail of the
empirical VBR bandwidth distribution well (Figs. 4-5) but its right
tail decays exponentially fast, which motivates the Pareto splice of
:mod:`repro.distributions.hybrid`.
"""

from __future__ import annotations

import numpy as np
from scipy import special

from repro._validation import require_positive
from repro.distributions.base import Distribution

__all__ = ["Gamma"]


class Gamma(Distribution):
    """Gamma distribution with shape ``s`` and rate ``lam``."""

    def __init__(self, shape, rate):
        self.shape = require_positive(shape, "shape")
        self.rate = require_positive(rate, "rate")

    @classmethod
    def from_moments(cls, mean, std):
        """Construct from mean and standard deviation (paper's method)."""
        mean = require_positive(mean, "mean")
        std = require_positive(std, "std")
        var = std * std
        return cls(shape=mean * mean / var, rate=mean / var)

    @classmethod
    def fit(cls, data):
        """Method-of-moments fit (the paper's choice for this trace)."""
        data = np.asarray(data, dtype=float)
        mean = float(np.mean(data))
        std = float(np.std(data, ddof=0))
        return cls.from_moments(mean, std)

    def pdf(self, x):
        x = np.asarray(x, dtype=float)
        out = np.zeros_like(x, dtype=float)
        pos = x > 0
        # Work in log space for numerical stability at large shape.
        lx = np.log(x[pos] * self.rate)
        logpdf = (
            -self.rate * x[pos]
            + (self.shape - 1.0) * lx
            + np.log(self.rate)
            - special.gammaln(self.shape)
        )
        out[pos] = np.exp(logpdf)
        return out if out.ndim else float(out)

    def cdf(self, x):
        x = np.asarray(x, dtype=float)
        out = np.where(x > 0, special.gammainc(self.shape, self.rate * np.maximum(x, 0.0)), 0.0)
        return out if out.ndim else float(out)

    def sf(self, x):
        x = np.asarray(x, dtype=float)
        out = np.where(x > 0, special.gammaincc(self.shape, self.rate * np.maximum(x, 0.0)), 1.0)
        return out if out.ndim else float(out)

    def ppf(self, q):
        q = np.asarray(q, dtype=float)
        if np.any((q < 0) | (q > 1)):
            raise ValueError("quantiles must lie in [0, 1]")
        out = special.gammaincinv(self.shape, q) / self.rate
        return out if out.ndim else float(out)

    def mean(self):
        return self.shape / self.rate

    def var(self):
        return self.shape / self.rate**2

    def loglog_ccdf_slope(self, x):
        """Slope ``d log SF(x) / d log x`` of the survival function.

        On log-log axes (the coordinates of Fig. 4), the Pareto tail is
        a straight line with slope ``-a`` while the Gamma survival
        function has the varying slope ``-x f(x) / SF(x)``, which
        decreases without bound.  The hybrid model splices the two
        where the slopes coincide.
        """
        x = np.asarray(x, dtype=float)
        sf = self.sf(x)
        out = np.where(sf > 0, -x * self.pdf(x) / np.where(sf > 0, sf, 1.0), -np.inf)
        return out if out.ndim else float(out)

    def sample(self, size, rng=None):
        if rng is None:
            rng = np.random.default_rng()
        return rng.gamma(self.shape, 1.0 / self.rate, size=size)

    def __repr__(self):
        return f"Gamma(shape={self.shape:.6g}, rate={self.rate:.6g})"
