"""Goodness-of-fit utilities for marginal models.

The paper compares candidate distributions graphically (Figs. 4-6);
these helpers put numbers on the comparison: Kolmogorov-Smirnov
distance, a chi-square statistic on equiprobable bins, QQ data for
plotting, and a one-call scoreboard over all candidates.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._validation import as_1d_float_array, require_positive_int

__all__ = ["GoodnessOfFit", "ks_statistic", "chi_square_statistic", "qq_points", "score_candidates"]


@dataclass(frozen=True)
class GoodnessOfFit:
    """Fit scores of one model against one sample."""

    model_name: str
    """Key of the model in the candidate dict."""

    ks: float
    """Kolmogorov-Smirnov distance (sup |F_emp - F_model|)."""

    chi_square: float
    """Chi-square statistic over equiprobable bins (normalized per bin)."""

    tail_log_error: float
    """Mean |log10 SF_model - log10 SF_emp| over the top 3% (Fig. 4's
    criterion; inf when the model's tail dies first)."""


def ks_statistic(data, model):
    """Kolmogorov-Smirnov distance between sample and model CDF."""
    arr = np.sort(as_1d_float_array(data, "data"))
    n = arr.size
    cdf = np.asarray(model.cdf(arr), dtype=float)
    upper = np.max(np.arange(1, n + 1) / n - cdf)
    lower = np.max(cdf - np.arange(0, n) / n)
    return float(max(upper, lower))


def chi_square_statistic(data, model, n_bins=50):
    """Chi-square over equiprobable model bins, normalized per bin.

    Bins are the model's quantile intervals, so each has expected count
    ``n / n_bins``; the statistic is ``sum (O - E)^2 / E / n_bins``
    (values near 1 indicate a good fit; large values a bad one).
    """
    arr = as_1d_float_array(data, "data", min_length=n_bins * 5)
    n_bins = require_positive_int(n_bins, "n_bins")
    edges = model.ppf(np.linspace(0.0, 1.0, n_bins + 1)[1:-1])
    counts = np.histogram(arr, bins=np.concatenate(([-np.inf], edges, [np.inf])))[0]
    expected = arr.size / n_bins
    return float(np.sum((counts - expected) ** 2 / expected) / n_bins)


def qq_points(data, model, n_points=100):
    """Quantile-quantile data: ``(model_quantiles, sample_quantiles)``."""
    arr = as_1d_float_array(data, "data", min_length=10)
    n_points = require_positive_int(n_points, "n_points")
    q = (np.arange(1, n_points + 1) - 0.5) / n_points
    return np.asarray(model.ppf(q), dtype=float), np.quantile(arr, q)


def score_candidates(data, models=None, tail_fraction=0.03):
    """Goodness-of-fit scoreboard over all Fig. 4 candidates.

    ``models`` defaults to
    :func:`repro.distributions.fitting.fit_all_candidates`; the plain
    Pareto is skipped for KS/chi-square (it only models the tail).
    Returns ``{name: GoodnessOfFit}``.
    """
    from repro.distributions.fitting import empirical_ccdf, fit_all_candidates

    arr = as_1d_float_array(data, "data", min_length=500)
    if models is None:
        models = fit_all_candidates(arr, tail_fraction=tail_fraction)
    x_emp, s_emp = empirical_ccdf(arr)
    n_tail = max(int(arr.size * tail_fraction), 20)
    x_tail = x_emp[-(n_tail + 1) : -1]
    s_tail = s_emp[-(n_tail + 1) : -1]
    scores = {}
    for name, model in models.items():
        sf = np.asarray(model.sf(x_tail), dtype=float)
        usable = (sf > 0) & (s_tail > 0)
        if usable.sum() >= 5:
            tail_err = float(np.mean(np.abs(np.log10(sf[usable]) - np.log10(s_tail[usable]))))
        else:
            tail_err = float("inf")
        if name == "pareto":
            # The Pareto reference line only models the tail.
            ks = float("nan")
            chi2 = float("nan")
        else:
            ks = ks_statistic(arr, model)
            chi2 = chi_square_statistic(arr, model)
        scores[name] = GoodnessOfFit(
            model_name=name, ks=ks, chi_square=chi2, tail_log_error=tail_err
        )
    return scores
