"""Hybrid Gamma/Pareto marginal distribution ``F_{Gamma/Pareto}``.

Section 4.2 of the paper constructs the marginal model for VBR video
bandwidth as a Gamma distribution in the body spliced to a Pareto power
law in the right tail.  The splice point ``x_th`` is *not* a free
parameter: it is the unique abscissa where the (varying) log-log slope
of the Gamma complementary CDF equals the (constant) log-log slope
``-a`` of the Pareto tail.  Matching slope and position there makes
both the CDF and the density continuous, and leaves the model with only
three marginal parameters:

- ``mu_gamma``    -- equivalent mean of the Gamma portion,
- ``sigma_gamma`` -- equivalent standard deviation of the Gamma portion,
- ``tail_shape``  -- the Pareto shape ``a`` (the paper's tail slope
  ``m_T`` is ``-a`` on the log-log CCDF plot).

For the Star-Wars trace the heavy tail holds only ~3% of the mass, so
the paper simply uses the sample mean and standard deviation for the
Gamma part, and a least-squares fit of the log-log CCDF tail for ``a``.
:meth:`GammaParetoHybrid.fit` implements exactly that procedure.
"""

from __future__ import annotations

import numpy as np
from scipy import optimize

from repro._validation import as_1d_float_array, require_positive
from repro.distributions.base import Distribution, TabulatedDistribution
from repro.distributions.gamma import Gamma
from repro.distributions.pareto import Pareto

__all__ = ["GammaParetoHybrid"]


def _find_splice_point(gamma, tail_shape):
    """Locate ``x_th`` where the Gamma log-log CCDF slope equals ``-a``.

    The slope magnitude ``x f(x) / SF(x)`` starts near 0 for small x
    and grows without bound (asymptotically like ``rate * x``), so a
    root of ``x f(x)/SF(x) - a`` always exists and bracket expansion
    followed by Brent's method finds it.
    """

    def slope_gap(x):
        sf = gamma.sf(x)
        if sf <= 0.0:
            return np.inf
        return x * gamma.pdf(x) / sf - tail_shape

    lo = gamma.mean() * 1e-9
    hi = gamma.mean()
    # Expand the upper bracket until the slope magnitude exceeds a.
    for _ in range(200):
        if slope_gap(hi) > 0:
            break
        hi *= 1.5
    else:  # pragma: no cover - cannot happen for a valid Gamma
        raise RuntimeError("failed to bracket the Gamma/Pareto splice point")
    if slope_gap(lo) >= 0:
        # Extremely small shape: the slope already exceeds a near zero.
        lo = gamma.mean() * 1e-15
    return float(optimize.brentq(slope_gap, lo, hi, xtol=1e-12 * hi, rtol=1e-14))


class GammaParetoHybrid(Distribution):
    """The paper's three-parameter Gamma/Pareto marginal model.

    Parameters
    ----------
    mu_gamma:
        Mean of the Gamma body (``mu_Gamma`` in the paper).
    sigma_gamma:
        Standard deviation of the Gamma body (``sigma_Gamma``).
    tail_shape:
        Pareto shape ``a`` > 0; the log-log CCDF tail slope is ``-a``.

    Attributes
    ----------
    gamma:
        The fitted :class:`~repro.distributions.gamma.Gamma` body.
    x_th:
        Splice abscissa where body and tail meet with equal slope.
    tail_mass:
        Probability carried by the Pareto tail, ``SF_Gamma(x_th)``.
    """

    def __init__(self, mu_gamma, sigma_gamma, tail_shape):
        self.mu_gamma = require_positive(mu_gamma, "mu_gamma")
        self.sigma_gamma = require_positive(sigma_gamma, "sigma_gamma")
        self.tail_shape = require_positive(tail_shape, "tail_shape")
        self.gamma = Gamma.from_moments(self.mu_gamma, self.sigma_gamma)
        self.x_th = _find_splice_point(self.gamma, self.tail_shape)
        self.tail_mass = float(self.gamma.sf(self.x_th))
        self._cdf_th = 1.0 - self.tail_mass

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def fit(cls, data, tail_fraction=0.03, min_tail_points=50):
        """Fit the hybrid model to data with the paper's procedure.

        ``mu_gamma`` and ``sigma_gamma`` are the sample mean and
        standard deviation (adequate when the tail carries only a few
        percent of the mass, as for the Star-Wars trace); ``tail_shape``
        is minus the least-squares slope of the log-log empirical CCDF
        restricted to the top ``tail_fraction`` of the sample.
        """
        from repro.distributions.fitting import fit_pareto_tail_slope

        arr = as_1d_float_array(data, "data", min_length=max(10, min_tail_points))
        if np.any(arr <= 0):
            raise ValueError("bandwidth data must be strictly positive")
        a = fit_pareto_tail_slope(arr, tail_fraction=tail_fraction, min_points=min_tail_points)
        return cls(float(np.mean(arr)), float(np.std(arr, ddof=0)), a)

    @property
    def parameters(self):
        """``(mu_gamma, sigma_gamma, tail_shape)`` as a tuple."""
        return (self.mu_gamma, self.sigma_gamma, self.tail_shape)

    def tail_pareto(self):
        """An equivalent :class:`Pareto` describing the (conditional) tail.

        Conditioned on ``X > x_th``, the tail is exactly Pareto with
        minimum ``x_th`` and shape ``tail_shape``.
        """
        return Pareto(self.x_th, self.tail_shape)

    # ------------------------------------------------------------------
    # Distribution interface
    # ------------------------------------------------------------------
    def pdf(self, x):
        x = np.asarray(x, dtype=float)
        body = self.gamma.pdf(x)
        with np.errstate(divide="ignore", invalid="ignore"):
            tail = (
                self.tail_mass
                * self.tail_shape
                * self.x_th**self.tail_shape
                / np.maximum(x, self.x_th) ** (self.tail_shape + 1.0)
            )
        out = np.where(x <= self.x_th, body, tail)
        return out if out.ndim else float(out)

    def cdf(self, x):
        x = np.asarray(x, dtype=float)
        body = self.gamma.cdf(x)
        tail = 1.0 - self.tail_mass * (self.x_th / np.maximum(x, self.x_th)) ** self.tail_shape
        out = np.where(x <= self.x_th, body, tail)
        return out if out.ndim else float(out)

    def sf(self, x):
        x = np.asarray(x, dtype=float)
        body = self.gamma.sf(x)
        tail = self.tail_mass * (self.x_th / np.maximum(x, self.x_th)) ** self.tail_shape
        out = np.where(x <= self.x_th, body, tail)
        return out if out.ndim else float(out)

    def ppf(self, q):
        q = np.asarray(q, dtype=float)
        if np.any((q < 0) | (q > 1)):
            raise ValueError("quantiles must lie in [0, 1]")
        body = self.gamma.ppf(np.minimum(q, self._cdf_th))
        with np.errstate(divide="ignore"):
            tail = self.x_th * (self.tail_mass / np.maximum(1.0 - q, 1e-300)) ** (1.0 / self.tail_shape)
        out = np.where(q <= self._cdf_th, body, tail)
        out = np.where(q >= 1.0, np.inf if self.tail_mass > 0 else body, out)
        return out if out.ndim else float(out)

    def mean(self):
        """Exact mean: truncated-Gamma body plus Pareto tail contribution."""
        from scipy import special

        s, lam = self.gamma.shape, self.gamma.rate
        body = (s / lam) * special.gammainc(s + 1.0, lam * self.x_th)
        if self.tail_shape <= 1.0:
            return float("inf")
        tail = self.tail_mass * self.tail_shape * self.x_th / (self.tail_shape - 1.0)
        return float(body + tail)

    def var(self):
        from scipy import special

        if self.tail_shape <= 2.0:
            return float("inf")
        s, lam = self.gamma.shape, self.gamma.rate
        second_body = (s * (s + 1.0) / lam**2) * special.gammainc(s + 2.0, lam * self.x_th)
        second_tail = self.tail_mass * self.tail_shape * self.x_th**2 / (self.tail_shape - 2.0)
        m = self.mean()
        return float(second_body + second_tail - m * m)

    # ------------------------------------------------------------------
    # Paper-specific machinery
    # ------------------------------------------------------------------
    def mapping_table(self, n_points=10_000, q_hi=None):
        """Tabulate the distribution, as the paper does with 10,000 points.

        The table is used both for the Gaussian-to-Gamma/Pareto marginal
        transform and for the convolution of multiplexed sources.  The
        upper quantile defaults to ``1 - 1/(10 n_points)`` so the table
        reaches into the Pareto tail without chasing the (unbounded)
        extreme quantiles.
        """
        if q_hi is None:
            q_hi = 1.0 - 1.0 / (10.0 * n_points)
        return TabulatedDistribution.from_distribution(self, n_points=n_points, q_lo=1e-7, q_hi=q_hi)

    def aggregate(self, n_sources, n_points=10_000):
        """Marginal distribution of ``n_sources`` independent sources.

        Implements the paper's table-based convolution of the
        Gamma/Pareto distribution (Section 4.2): the aggregate
        bandwidth of N statistically multiplexed, independent sources
        has the N-fold convolution of the single-source marginal.
        Returns a :class:`TabulatedDistribution`.
        """
        if not isinstance(n_sources, (int, np.integer)) or isinstance(n_sources, bool):
            raise TypeError(f"n_sources must be an integer, got {n_sources!r}")
        if n_sources < 1:
            raise ValueError(f"n_sources must be >= 1, got {n_sources}")
        table = self.mapping_table(n_points)
        result = table
        # Binary exponentiation over convolution keeps the error and the
        # runtime down to O(log n) convolutions.
        n = int(n_sources) - 1
        power = table
        while n > 0:
            if n & 1:
                result = result.convolve(power, n_points=n_points)
            n >>= 1
            if n:
                power = power.convolve(power, n_points=n_points)
        return result

    def __repr__(self):
        return (
            f"GammaParetoHybrid(mu_gamma={self.mu_gamma:.6g}, "
            f"sigma_gamma={self.sigma_gamma:.6g}, tail_shape={self.tail_shape:.6g}, "
            f"x_th={self.x_th:.6g}, tail_mass={self.tail_mass:.4g})"
        )
