"""Lognormal distribution.

Included because the paper tests it as a candidate with a "heavier"
tail than the Gamma: on the log-log CCDF plot (Fig. 4) the Lognormal is
*too heavy at first, then falls off too rapidly* compared to the
empirical tail, so it is rejected in favor of the Pareto power law.
"""

from __future__ import annotations

import numpy as np
from scipy import special

from repro._validation import require_positive
from repro.distributions.base import Distribution

__all__ = ["Lognormal"]

_SQRT2 = np.sqrt(2.0)


class Lognormal(Distribution):
    """Lognormal distribution: ``log X ~ N(mu_log, sigma_log^2)``."""

    def __init__(self, mu_log, sigma_log):
        self.mu_log = float(mu_log)
        if not np.isfinite(self.mu_log):
            raise ValueError(f"mu_log must be finite, got {mu_log!r}")
        self.sigma_log = require_positive(sigma_log, "sigma_log")

    @classmethod
    def from_moments(cls, mean, std):
        """Construct the Lognormal with the given mean and std.

        Solves ``mean = exp(mu + sigma^2/2)`` and
        ``var = (exp(sigma^2) - 1) exp(2 mu + sigma^2)`` for
        ``(mu_log, sigma_log)``.
        """
        mean = require_positive(mean, "mean")
        std = require_positive(std, "std")
        cv2 = (std / mean) ** 2
        sigma2 = np.log1p(cv2)
        mu_log = np.log(mean) - sigma2 / 2.0
        return cls(mu_log, np.sqrt(sigma2))

    @classmethod
    def fit(cls, data):
        """Maximum-likelihood fit from the log-transformed sample."""
        data = np.asarray(data, dtype=float)
        if np.any(data <= 0):
            raise ValueError("Lognormal data must be strictly positive")
        logs = np.log(data)
        sigma = float(np.std(logs, ddof=0))
        if sigma <= 0:
            raise ValueError("data has zero log-variance; cannot fit a Lognormal")
        return cls(float(np.mean(logs)), sigma)

    def pdf(self, x):
        x = np.asarray(x, dtype=float)
        out = np.zeros_like(x, dtype=float)
        pos = x > 0
        z = (np.log(x[pos]) - self.mu_log) / self.sigma_log
        out[pos] = np.exp(-0.5 * z * z) / (x[pos] * self.sigma_log * np.sqrt(2 * np.pi))
        return out if out.ndim else float(out)

    def cdf(self, x):
        x = np.asarray(x, dtype=float)
        out = np.zeros_like(x, dtype=float)
        pos = x > 0
        out[pos] = 0.5 * (1.0 + special.erf((np.log(x[pos]) - self.mu_log) / (self.sigma_log * _SQRT2)))
        return out if out.ndim else float(out)

    def ppf(self, q):
        q = np.asarray(q, dtype=float)
        if np.any((q < 0) | (q > 1)):
            raise ValueError("quantiles must lie in [0, 1]")
        out = np.exp(self.mu_log + self.sigma_log * _SQRT2 * special.erfinv(2.0 * q - 1.0))
        return out if out.ndim else float(out)

    def mean(self):
        return float(np.exp(self.mu_log + self.sigma_log**2 / 2.0))

    def var(self):
        s2 = self.sigma_log**2
        return float((np.exp(s2) - 1.0) * np.exp(2.0 * self.mu_log + s2))

    def sample(self, size, rng=None):
        if rng is None:
            rng = np.random.default_rng()
        return rng.lognormal(self.mu_log, self.sigma_log, size=size)

    def __repr__(self):
        return f"Lognormal(mu_log={self.mu_log:.6g}, sigma_log={self.sigma_log:.6g})"
