"""Normal (Gaussian) distribution.

The paper uses the Normal distribution in two roles: as one of the
candidate marginal models whose tail decays *too quickly* to match the
empirical VBR bandwidth distribution (Fig. 4), and as the marginal law
of the fractional ARIMA(0, d, 0) process produced by Hosking's
algorithm, which is subsequently transformed to the Gamma/Pareto
marginal via ``Y = Finv_GP(F_N(X))`` (eq. 13).
"""

from __future__ import annotations

import numpy as np
from scipy import special

from repro._validation import require_positive
from repro.distributions.base import Distribution

__all__ = ["Normal"]

_SQRT2 = np.sqrt(2.0)
_INV_SQRT_2PI = 1.0 / np.sqrt(2.0 * np.pi)


class Normal(Distribution):
    """Normal distribution ``N(mu, sigma^2)``.

    Parameters
    ----------
    mu:
        Mean (any finite real).
    sigma:
        Standard deviation (positive).
    """

    def __init__(self, mu=0.0, sigma=1.0):
        self.mu = float(mu)
        if not np.isfinite(self.mu):
            raise ValueError(f"mu must be finite, got {mu!r}")
        self.sigma = require_positive(sigma, "sigma")

    @classmethod
    def fit(cls, data):
        """Moment/ML fit (identical for the Normal distribution)."""
        data = np.asarray(data, dtype=float)
        mu = float(np.mean(data))
        sigma = float(np.std(data, ddof=0))
        if sigma <= 0:
            raise ValueError("data has zero variance; cannot fit a Normal distribution")
        return cls(mu, sigma)

    def pdf(self, x):
        x = np.asarray(x, dtype=float)
        z = (x - self.mu) / self.sigma
        out = _INV_SQRT_2PI / self.sigma * np.exp(-0.5 * z * z)
        return out if out.ndim else float(out)

    def cdf(self, x):
        x = np.asarray(x, dtype=float)
        out = 0.5 * (1.0 + special.erf((x - self.mu) / (self.sigma * _SQRT2)))
        return out if out.ndim else float(out)

    def sf(self, x):
        x = np.asarray(x, dtype=float)
        out = 0.5 * special.erfc((x - self.mu) / (self.sigma * _SQRT2))
        return out if out.ndim else float(out)

    def ppf(self, q):
        q = np.asarray(q, dtype=float)
        if np.any((q < 0) | (q > 1)):
            raise ValueError("quantiles must lie in [0, 1]")
        out = self.mu + self.sigma * _SQRT2 * special.erfinv(2.0 * q - 1.0)
        return out if out.ndim else float(out)

    def mean(self):
        return self.mu

    def var(self):
        return self.sigma**2

    def sample(self, size, rng=None):
        if rng is None:
            rng = np.random.default_rng()
        return rng.normal(self.mu, self.sigma, size=size)

    def __repr__(self):
        return f"Normal(mu={self.mu:.6g}, sigma={self.sigma:.6g})"
