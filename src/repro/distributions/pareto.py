"""Pareto (power-law) distribution, eqs. (15)-(16) of the paper.

Density ``f(x) = a k^a / x^(a+1)`` for ``x > k`` and CDF
``F(x) = 1 - (k/x)^a``.  On log-log coordinates the complementary CDF
is a straight line of slope ``-a``; the paper observes exactly this
straight-line behaviour in the right tail of the VBR bandwidth
distribution, which is the defining evidence for the "heavy tail".

``k`` is the minimum allowed value; ``a`` (the paper's tail slope
``m_T``) controls how heavy the tail is: moments of order ``>= a``
are infinite.
"""

from __future__ import annotations

import numpy as np

from repro._validation import require_positive
from repro.distributions.base import Distribution

__all__ = ["Pareto"]


class Pareto(Distribution):
    """Pareto distribution with minimum ``k`` and shape (slope) ``a``."""

    def __init__(self, k, a):
        self.k = require_positive(k, "k")
        self.a = require_positive(a, "a")

    @classmethod
    def fit(cls, data, k=None):
        """Maximum-likelihood fit.

        With ``k`` given, the MLE of ``a`` is the Hill estimator
        ``n / sum(log(x_i / k))``.  When ``k`` is omitted the sample
        minimum is used (the MLE of ``k``).
        """
        data = np.asarray(data, dtype=float)
        if data.size == 0:
            raise ValueError("cannot fit a Pareto distribution to empty data")
        if k is None:
            k = float(np.min(data))
        k = require_positive(k, "k")
        if np.any(data < k):
            raise ValueError("all data must be >= k for a Pareto fit")
        logs = np.log(data / k)
        total = float(np.sum(logs))
        if total <= 0:
            raise ValueError("data is degenerate at k; cannot estimate the Pareto shape")
        return cls(k, data.size / total)

    def pdf(self, x):
        x = np.asarray(x, dtype=float)
        out = np.where(x > self.k, self.a * self.k**self.a / np.maximum(x, self.k) ** (self.a + 1.0), 0.0)
        return out if out.ndim else float(out)

    def cdf(self, x):
        x = np.asarray(x, dtype=float)
        out = np.where(x > self.k, 1.0 - (self.k / np.maximum(x, self.k)) ** self.a, 0.0)
        return out if out.ndim else float(out)

    def sf(self, x):
        x = np.asarray(x, dtype=float)
        out = np.where(x > self.k, (self.k / np.maximum(x, self.k)) ** self.a, 1.0)
        return out if out.ndim else float(out)

    def ppf(self, q):
        q = np.asarray(q, dtype=float)
        if np.any((q < 0) | (q > 1)):
            raise ValueError("quantiles must lie in [0, 1]")
        with np.errstate(divide="ignore"):
            out = self.k * (1.0 - q) ** (-1.0 / self.a)
        return out if out.ndim else float(out)

    def mean(self):
        if self.a <= 1:
            return float("inf")
        return self.a * self.k / (self.a - 1.0)

    def var(self):
        if self.a <= 2:
            return float("inf")
        return self.k**2 * self.a / ((self.a - 1.0) ** 2 * (self.a - 2.0))

    def __repr__(self):
        return f"Pareto(k={self.k:.6g}, a={self.a:.6g})"
