"""One module per table and figure of the paper's evaluation.

Every experiment module exposes a ``run(...)`` function returning plain
data (dicts of numpy arrays and scalars) -- the same rows/series the
paper's table or figure reports -- plus paper reference values where
the paper states them, so measured-vs-paper comparison is mechanical.
``repro.experiments.runner.run_all`` executes the whole suite.

The shared dataset is the calibrated Star-Wars-like trace from
:mod:`repro.video.starwars` (see DESIGN.md for the substitution
rationale); pass your own :class:`~repro.video.trace.VBRTrace` (e.g.
loaded from the original Bellcore file via
:func:`repro.video.tracefile.load_trace`) to reproduce against real
data.
"""

from repro.experiments.data import reference_trace, DEFAULT_SEED
from repro.experiments import (
    table1,
    table2,
    table3,
    fig01_timeseries,
    fig02_lowfreq,
    fig03_segments,
    fig04_ccdf,
    fig05_lefttail,
    fig06_density,
    fig07_acf,
    fig08_periodogram,
    fig09_confidence,
    fig10_selfsimilar,
    fig11_variance_time,
    fig12_pox,
    fig13_system,
    fig14_qc,
    fig15_smg,
    fig16_model_vs_trace,
    fig17_loss_process,
    fig_alloc_compare,
    fig_alloc_smg,
    fig_net_tandem,
    fig_net_hurst_hops,
)

__all__ = [
    "reference_trace",
    "DEFAULT_SEED",
    "table1",
    "table2",
    "table3",
    "fig01_timeseries",
    "fig02_lowfreq",
    "fig03_segments",
    "fig04_ccdf",
    "fig05_lefttail",
    "fig06_density",
    "fig07_acf",
    "fig08_periodogram",
    "fig09_confidence",
    "fig10_selfsimilar",
    "fig11_variance_time",
    "fig12_pox",
    "fig13_system",
    "fig14_qc",
    "fig15_smg",
    "fig16_model_vs_trace",
    "fig17_loss_process",
    "fig_alloc_compare",
    "fig_alloc_smg",
    "fig_net_tandem",
    "fig_net_hurst_hops",
]
