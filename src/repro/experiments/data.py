"""Shared reference dataset for the experiment suite.

The canonical trace is the calibrated Star-Wars-like synthesis at full
length (171,000 frames).  Generation takes a few seconds, so results
are memoized per (length, seed, slices) within the process; experiment
``run()`` functions accept an explicit trace to override the default.
"""

from __future__ import annotations

import functools

from repro.video.starwars import synthesize_starwars_trace

__all__ = ["DEFAULT_SEED", "reference_trace"]

DEFAULT_SEED = 2024
"""Seed of the canonical reference trace used by benchmarks/examples."""


@functools.lru_cache(maxsize=8)
def reference_trace(n_frames=171_000, seed=DEFAULT_SEED, with_slices=True):
    """The memoized reference :class:`~repro.video.trace.VBRTrace`.

    Parameters mirror :func:`repro.video.starwars.synthesize_starwars_trace`;
    the default is the paper-scale two-hour trace.  Benchmarks that only
    need frame-level data pass ``with_slices=False`` to halve the cost.
    """
    return synthesize_starwars_trace(n_frames=n_frames, seed=seed, with_slices=with_slices)
