"""Export experiment results to CSV for external plotting.

matplotlib is not a dependency of this library; instead, every figure
experiment's series can be written as plain CSV so any plotting tool
regenerates the paper's figures.  ``export_all(results, outdir)``
writes one or more files per experiment and returns the file list.
"""

from __future__ import annotations

import os

import numpy as np

__all__ = ["write_csv", "export_all"]


def write_csv(path, columns):
    """Write named columns (equal-length 1-D arrays) as CSV.

    ``columns`` is a dict of ``{name: array}``; scalars are broadcast.
    """
    if not columns:
        raise ValueError("columns must not be empty")
    arrays = {}
    length = None
    for name, values in columns.items():
        arr = np.atleast_1d(np.asarray(values))
        if arr.ndim != 1:
            raise ValueError(f"column {name!r} must be one-dimensional")
        if length is None or arr.size > length:
            length = arr.size
        arrays[name] = arr
    for name, arr in arrays.items():
        if arr.size == 1 and length > 1:
            arrays[name] = np.full(length, arr[0])
        elif arr.size != length:
            raise ValueError(
                f"column {name!r} has length {arr.size}, expected {length}"
            )
    names = list(arrays)
    with open(path, "w", encoding="ascii") as handle:
        handle.write(",".join(names) + "\n")
        for row in zip(*(arrays[n] for n in names)):
            handle.write(",".join(repr(v) if isinstance(v, str) else f"{v:.10g}" for v in row) + "\n")
    return path


def export_all(results, outdir):
    """Write CSVs for every figure in a ``run_all`` results dict.

    Returns the list of written paths.  Unknown/absent experiment keys
    are skipped, so partial results dicts export cleanly.
    """
    os.makedirs(outdir, exist_ok=True)
    written = []

    def emit(name, columns):
        written.append(write_csv(os.path.join(outdir, name), columns))

    if "fig01" in results:
        r = results["fig01"]
        emit("fig01_timeseries.csv", {
            "time_minutes": r["time_minutes"], "mean": r["mean"],
            "low": r["low"], "high": r["high"],
        })
    if "fig02" in results:
        r = results["fig02"]
        emit("fig02_lowfreq.csv", {
            "time_minutes": r["time_minutes"], "moving_average": r["moving_average"],
        })
    if "fig04" in results:
        r = results["fig04"]
        emit("fig04_ccdf.csv", {
            "x": r["x"], "empirical": r["empirical"], "normal": r["normal"],
            "gamma": r["gamma"], "lognormal": r["lognormal"],
            "pareto": r["pareto"], "gamma_pareto": r["gamma_pareto"],
        })
    if "fig05" in results:
        r = results["fig05"]
        emit("fig05_lefttail.csv", {
            "x": r["x"], "empirical": r["empirical"], "normal": r["normal"],
            "gamma": r["gamma"], "lognormal": r["lognormal"],
            "gamma_pareto": r["gamma_pareto"],
        })
    if "fig06" in results:
        r = results["fig06"]
        emit("fig06_density.csv", {
            "x": r["x"], "empirical_density": r["empirical_density"],
            "model_density": r["model_density"],
        })
    if "fig07" in results:
        r = results["fig07"]
        emit("fig07_acf.csv", {
            "lag": r["lags"], "acf": r["acf"], "exponential_fit": r["exp_curve"],
        })
    if "fig08" in results:
        r = results["fig08"]
        emit("fig08_periodogram.csv", {"omega": r["omega"], "intensity": r["intensity"]})
    if "fig09" in results:
        conv = results["fig09"]["convergence"]
        emit("fig09_confidence.csv", {
            "n": conv.sample_sizes, "mean": conv.means,
            "iid_halfwidth": conv.iid_halfwidths, "lrd_halfwidth": conv.lrd_halfwidths,
        })
    if "fig11" in results:
        r = results["fig11"]["result"]
        emit("fig11_variance_time.csv", {
            "m": r.m_values, "normalized_variance": r.normalized_variances,
        })
    if "fig12" in results:
        r = results["fig12"]["result"]
        emit("fig12_pox.csv", {"lag": r.lags, "rs": r.rs_values})
    if "fig14" in results:
        for key, curve in results["fig14"]["curves"].items():
            n, metric, target = key
            emit(f"fig14_qc_n{n}_{metric}_{target:g}.csv", {
                "capacity_per_source_mbps": curve.capacity_per_source_mbps,
                "tmax_ms": curve.tmax_ms,
                "buffer_bytes": curve.buffer_bytes,
            })
    if "fig15" in results:
        for target, smg in results["fig15"]["curves"].items():
            emit(f"fig15_smg_{target:g}.csv", {
                "n_sources": smg["n_sources"],
                "capacity_per_source_mbps": smg["capacity_per_source_mbps"],
                "gain_fraction": smg["gain_fraction"],
            })
    if "fig16" in results:
        r = results["fig16"]
        for n, per_n in r["curves"].items():
            columns = {"buffer_bytes_per_source": r["buffers_bytes_per_source"]}
            columns.update(per_n)
            emit(f"fig16_model_vs_trace_n{n}.csv", columns)
    if "fig17" in results:
        for n, p in results["fig17"]["processes"].items():
            emit(f"fig17_loss_n{n}.csv", {
                "time_minutes": p["time_minutes"], "loss_rate": p["loss_rate"],
            })
    return written
