"""Extension: layered coding with priority queueing (Section 5.3).

The paper notes that concealing loss with layered coding plus a
priority discipline changes what the QOS measure must capture.  This
experiment makes the mechanism concrete: the trace is split into a
base and an enhancement layer, both are pushed through the shared
finite buffer at a capacity *below* the zero-loss requirement, and the
per-layer loss is compared between

- a plain FIFO (no priorities -- both layers lose alike), and
- the two-priority pushout queue (base protected).
"""

from __future__ import annotations

import numpy as np

from repro.experiments.data import reference_trace
from repro.simulation.priority import simulate_priority_queue
from repro.simulation.queue import simulate_queue
from repro.video.layering import layer_series

__all__ = ["run"]


def run(
    trace=None,
    base_fraction=0.4,
    capacity_factor=1.05,
    buffer_ms=10.0,
    n_frames=40_000,
):
    """Per-layer loss under FIFO versus priority queueing.

    ``capacity_factor`` scales the mean rate; values close to 1 put the
    queue under pressure so losses occur.  Returns per-discipline loss
    rates for each layer plus the protection factor (enhancement loss
    over base loss under priorities).
    """
    if trace is None:
        trace = reference_trace()
    if trace.n_frames > n_frames:
        trace = trace.segment(0, n_frames)
    x = trace.frame_bytes
    slot_seconds = 1.0 / trace.frame_rate
    base, enh = layer_series(x, base_fraction=base_fraction)
    capacity = float(np.mean(x)) * capacity_factor
    buffer_bytes = buffer_ms / 1000.0 * capacity / slot_seconds
    # Plain FIFO: the layers share fate; per-layer loss equals the
    # aggregate loss rate applied to each layer's bytes.
    fifo = simulate_queue(x, capacity, buffer_bytes)
    prio = simulate_priority_queue(base, enh, capacity, buffer_bytes)
    protection = (
        prio.low_loss_rate / prio.high_loss_rate
        if prio.high_loss_rate > 0
        else float("inf")
    )
    return {
        "base_fraction": float(base_fraction),
        "capacity": capacity,
        "buffer_bytes": buffer_bytes,
        "fifo_loss_rate": fifo.loss_rate,
        "priority_base_loss_rate": prio.high_loss_rate,
        "priority_enhancement_loss_rate": prio.low_loss_rate,
        "priority_overall_loss_rate": prio.overall_loss_rate,
        "protection_factor": protection,
    }
