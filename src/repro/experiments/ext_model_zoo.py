"""Extension: the full model zoo through the Fig. 16 engineering test.

Fig. 16 compares the trace against three models.  The library has
grown a zoo of seven; this experiment runs them all through the same
zero-loss Q-C harness and ranks them by closeness to the trace:

- ``full-model``        -- fARIMA + Gamma/Pareto (the paper's model);
- ``full-model-paxson`` -- same model driven by Paxson's approximate
  O(n log n) fGn synthesizer instead of the exact generator, so the
  harness doubles as an exact-vs-approximate comparison;
- ``composite``         -- the SRD-augmented variant (paper future work);
- ``gaussian-farima``   -- LRD only;
- ``iid-gamma-pareto``  -- heavy tail only;
- ``ar1``               -- classical Gaussian Markov model;
- ``dar1``              -- Markov chain with the correct marginal;
- ``markov-fluid``      -- the historical Maglaris on/off model.

Expected ranking (verified by the benchmark): the two models with both
features (full, composite) track the trace best; single-feature models
follow; the purely short-range classical models trail the field.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.data import reference_trace
from repro.simulation.multiplex import multiplex_series, random_lags
from repro.simulation.queue import zero_loss_capacity

__all__ = ["run", "build_zoo_series"]


def build_zoo_series(trace, seed=41):
    """Fit every model to ``trace`` and generate equal-length series."""
    from repro.core.baselines import (
        AR1Model,
        DAR1Model,
        GaussianFarimaModel,
        IIDGammaParetoModel,
    )
    from repro.core.composite import CompositeVBRModel
    from repro.core.markov_fluid import MarkovFluidModel
    from repro.core.model import VBRVideoModel

    x = trace.frame_bytes
    n = x.size
    rng = np.random.default_rng(seed)
    mean, std = float(np.mean(x)), float(np.std(x))
    r1 = float(np.corrcoef(x[:-1], x[1:])[0, 1])
    model = VBRVideoModel.fit(x)
    composite = CompositeVBRModel.fit(x, ar_order=2)
    sources = {
        "trace": x,
        "full-model": model.generate(n, rng=rng, generator="davies-harte"),
        "full-model-paxson": model.generate(n, rng=rng, generator="paxson"),
        "composite": composite.generate(n, rng=rng),
        "gaussian-farima": GaussianFarimaModel(
            mean, std, model.hurst, generator="davies-harte"
        ).generate(n, rng=rng),
        "iid-gamma-pareto": IIDGammaParetoModel(model.marginal).generate(n, rng=rng),
        "ar1": AR1Model(mean, std, r1).generate(n, rng=rng),
        "dar1": DAR1Model(model.marginal, r1).generate(n, rng=rng),
        "markov-fluid": MarkovFluidModel.fit(x, acf_fit_lags=10).generate(n, rng=rng),
    }
    return sources


def run(trace=None, n_sources=2, n_buffers=8, n_frames=30_000, seed=41, n_lag_draws=3):
    """Zero-loss Q-C offset of every model from the trace curve.

    Returns ``{"offsets": {model: mean |log capacity offset|},
    "ranking": [...best first...], "curves": {...}}``.
    """
    if trace is None:
        trace = reference_trace()
    if trace.n_frames > n_frames:
        trace = trace.segment(0, n_frames)
    sources = build_zoo_series(trace, seed=seed)
    mean_rate = float(np.mean(sources["trace"]))
    buffers = np.geomspace(5e-4, 1.0, n_buffers) * mean_rate * trace.frame_rate
    rng = np.random.default_rng(seed + 1)
    min_sep = min(1000, trace.n_frames // (2 * n_sources))
    lag_sets = [
        random_lags(n_sources, trace.n_frames, min_separation=min_sep, rng=rng)
        for _ in range(1 if n_sources == 1 else n_lag_draws)
    ]
    curves = {}
    for name, series in sources.items():
        series = np.asarray(series, dtype=float)
        capacities = np.empty(buffers.size)
        for i, q in enumerate(buffers * n_sources):
            c = max(
                zero_loss_capacity(multiplex_series(series, lags), q)
                for lags in lag_sets
            )
            capacities[i] = c / n_sources
        curves[name] = capacities
    trace_curve = curves["trace"]
    offsets = {
        name: float(np.mean(np.abs(np.log(curve / trace_curve))))
        for name, curve in curves.items()
        if name != "trace"
    }
    return {
        "offsets": offsets,
        "ranking": sorted(offsets, key=offsets.get),
        "curves": curves,
        "buffers_bytes_per_source": buffers,
        "n_sources": int(n_sources),
    }
