"""Extension: peak clipping and CBR-vs-VBR resource comparison.

Grounds two claims from the paper's Conclusions/Introduction in
numbers:

1. *Peak clipping.*  "A few extremely high peaks exist in the data,
   which are problematic for the network ... a realistic VBR coder
   should clip such peaks."  ``run_clipping`` measures how much
   zero-loss capacity is saved by clipping at a quantile ceiling
   against how many bytes (quality) the coder must absorb.

2. *CBR vs VBR.*  "Forcing the transmission rate to be constant
   results in delay, wasted bandwidth ..."  ``run_cbr_comparison``
   computes the smoothing delay of CBR transport across utilizations
   and contrasts it with the per-source capacity of statistically
   multiplexed VBR transport at a matched (small) delay.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.data import reference_trace
from repro.simulation.multiplex import multiplex_series, random_lags
from repro.simulation.queue import zero_loss_capacity
from repro.video.shaping import cbr_smoothing_delay, clip_peaks

__all__ = ["run_clipping", "run_cbr_comparison"]


def run_clipping(trace=None, quantiles=(0.9999, 0.999, 0.99), buffer_ms=10.0, n_frames=60_000):
    """Zero-loss capacity saved by clipping the trace's extreme peaks.

    For each ceiling quantile: the bytes removed (coder-side quality
    cost), the zero-loss capacity at a small buffer, and the capacity
    saving relative to the unclipped trace.
    """
    if trace is None:
        trace = reference_trace()
    if trace.n_frames > n_frames:
        trace = trace.segment(0, n_frames)
    x = trace.frame_bytes
    slot_seconds = 1.0 / trace.frame_rate
    buffer_bytes = buffer_ms / 1000.0 * float(np.mean(x)) / slot_seconds
    baseline = zero_loss_capacity(x, buffer_bytes)
    rows = []
    for q in quantiles:
        clipped = clip_peaks(trace, quantile=q)
        cap = zero_loss_capacity(clipped.trace.frame_bytes, buffer_bytes)
        rows.append(
            {
                "quantile": float(q),
                "clipped_frames": clipped.clipped_frames,
                "clipped_fraction": clipped.clipped_fraction,
                "capacity": cap,
                "capacity_saving": 1.0 - cap / baseline,
            }
        )
    return {
        "baseline_capacity": baseline,
        "buffer_bytes": buffer_bytes,
        "rows": rows,
        "mean_rate": float(np.mean(x)),
    }


def run_cbr_comparison(trace=None, utilizations=(0.6, 0.75, 0.9), n_sources=5, n_frames=60_000, seed=3):
    """CBR smoothing delay versus multiplexed-VBR capacity.

    For CBR transport at each utilization (mean rate / channel rate),
    the worst-case coder smoothing delay is computed exactly; for VBR,
    the per-source zero-loss capacity of ``n_sources`` multiplexed
    streams with only ~10 ms of network buffering.  The paper's
    motivating trade-off in one table: CBR pays seconds of delay for
    high utilization, multiplexed VBR reaches comparable utilization
    with milliseconds of buffering.
    """
    if trace is None:
        trace = reference_trace()
    if trace.n_frames > n_frames:
        trace = trace.segment(0, n_frames)
    x = trace.frame_bytes
    slot_seconds = 1.0 / trace.frame_rate
    mean_rate = float(np.mean(x))
    cbr_rows = []
    for u in utilizations:
        rate = mean_rate / u
        result = cbr_smoothing_delay(x, rate, slot_seconds)
        cbr_rows.append(
            {
                "utilization": float(u),
                "rate": rate,
                "delay_seconds": result["max_delay_seconds"],
            }
        )
    rng = np.random.default_rng(seed)
    min_sep = min(1000, trace.n_frames // (2 * n_sources))
    lags = random_lags(n_sources, x.size, min_separation=min_sep, rng=rng)
    arrivals = multiplex_series(x, lags)
    buffer_bytes = 0.010 * arrivals.mean() / slot_seconds  # ~10 ms
    c_total = zero_loss_capacity(arrivals, buffer_bytes)
    vbr = {
        "n_sources": int(n_sources),
        "capacity_per_source": c_total / n_sources,
        "utilization": mean_rate / (c_total / n_sources),
        "buffer_delay_seconds": 0.010,
    }
    return {"cbr": cbr_rows, "vbr": vbr, "mean_rate": mean_rate}
