"""Extension: the aggregated-Whittle plot the paper describes but omits.

Section 3.2.3: "we combine the Whittle estimator with the method of
aggregation and plot (not shown here) the Whittle estimator H^(m) with
the corresponding 95% confidence intervals ... against m.  This
procedure suggests a Hurst parameter estimate of H = 0.8 +- 0.088,
taken at m ~= 700."  This module produces exactly that plot's data,
plus the semi-parametric GPH estimate as a cross-check.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.hurst import gph, whittle_aggregated
from repro.experiments.data import reference_trace

__all__ = ["run"]


def run(trace=None, m_values=None, min_points=128):
    """Whittle H^(m) with 95% CIs across aggregation levels, plus GPH.

    Returns ``"m"``, ``"hurst"``, ``"ci_low"``, ``"ci_high"`` arrays,
    the reading at the level closest to the paper's m ~= 700
    (``"headline"``), and the ``"gph"`` result.
    """
    if trace is None:
        trace = reference_trace()
    x = trace.frame_bytes
    if m_values is None:
        top = max(x.size // min_points, 2)
        m_values = np.unique(np.round(np.geomspace(1, top, 10)).astype(int))
    results = whittle_aggregated(x, m_values=m_values, min_points=min_points)
    m = np.array([mm for mm, _ in results])
    hurst = np.array([r.hurst for _, r in results])
    ci_low = np.array([r.ci_low for _, r in results])
    ci_high = np.array([r.ci_high for _, r in results])
    target_m = min(700, m.max())
    idx = int(np.argmin(np.abs(m - target_m)))
    return {
        "m": m,
        "hurst": hurst,
        "ci_low": ci_low,
        "ci_high": ci_high,
        "headline": {
            "m": int(m[idx]),
            "hurst": float(hurst[idx]),
            "ci_halfwidth": float((ci_high[idx] - ci_low[idx]) / 2.0),
        },
        "gph": gph(x),
        "paper": {"hurst": 0.80, "ci_halfwidth": 0.088, "m": 700},
    }
