"""Fig. 1: time series of the entire two-hour VBR video sequence.

The figure's visible features -- three extreme peaks near the center
(the hyperspace jumps and planet explosion), the wide opening-text and
Death-Star peaks, and story-arc-scale amplitude modulation -- are all
present in the reference trace by construction; ``run`` returns a
plot-ready downsampled envelope plus the locations of the detected
extreme peaks.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.correlation import aggregate
from repro.experiments.data import reference_trace

__all__ = ["run"]


def run(trace=None, n_plot_points=2000):
    """Downsampled time series with per-bin mean/min/max envelopes.

    Returns a dict with ``"time_minutes"``, ``"mean"``, ``"low"``,
    ``"high"`` (per-bin envelopes in bytes/frame) and
    ``"peak_minutes"`` / ``"peak_values"`` -- the five largest local
    maxima, which for the reference trace line up with the scripted
    landmark events.
    """
    if trace is None:
        trace = reference_trace()
    x = trace.frame_bytes
    n = x.size
    block = max(n // int(n_plot_points), 1)
    n_blocks = n // block
    trimmed = x[: n_blocks * block].reshape(n_blocks, block)
    centers_frames = (np.arange(n_blocks) + 0.5) * block
    time_minutes = centers_frames / trace.frame_rate / 60.0
    mean = trimmed.mean(axis=1)
    # Locate the extreme peaks on a ~2 second grid: fine enough that a
    # short effects burst (a few dozen frames) registers, coarse
    # enough that the frames of one event count once.  Peaks must be
    # at least ~20 seconds apart.
    coarse_block = min(max(int(2.0 * trace.frame_rate), 1), max(n // 10, 1))
    coarse = aggregate(x, coarse_block)
    order = np.argsort(coarse)[::-1]
    peak_positions = []
    for idx in order:
        if len(peak_positions) >= 5:
            break
        if all(abs(idx - p) > 10 for p in peak_positions):
            peak_positions.append(int(idx))
    peak_frames = (np.asarray(peak_positions) + 0.5) * coarse_block
    return {
        "time_minutes": time_minutes,
        "mean": mean,
        "low": trimmed.min(axis=1),
        "high": trimmed.max(axis=1),
        "peak_minutes": peak_frames / trace.frame_rate / 60.0,
        "peak_values": coarse[peak_positions] if peak_positions else np.array([]),
        "duration_minutes": trace.duration_seconds / 60.0,
    }
