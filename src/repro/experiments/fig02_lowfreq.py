"""Fig. 2: low-frequency content of the VBR video process.

A moving-average filter with a 20,000-frame (~14 minute) window exposes
the story-arc-scale modulation; the paper reads the film's pacing
directly off this curve.  ``run`` also reports the correlation between
the moving average and the scripted story arc, quantifying how much of
the low-frequency structure the deterministic arc explains.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.correlation import moving_average
from repro.experiments.data import reference_trace
from repro.video.scenes import story_arc

__all__ = ["run"]


def run(trace=None, window=20_000):
    """Moving-average series plus its excursion statistics.

    Returns ``"time_minutes"``, ``"moving_average"`` (bytes/frame), the
    ``"window"`` used, the relative excursion
    ``(max - min) / mean`` of the filtered series (strong low-frequency
    content shows up as a large excursion), and ``"arc_correlation"``
    against the story-arc template.
    """
    if trace is None:
        trace = reference_trace()
    x = trace.frame_bytes
    window = min(int(window), max(x.size // 4, 2))
    positions, ma = moving_average(x, window)
    time_minutes = positions / trace.frame_rate / 60.0
    arc = story_arc(positions / max(x.size - 1, 1))
    correlation = float(np.corrcoef(ma, arc)[0, 1]) if ma.size > 2 else float("nan")
    return {
        "time_minutes": time_minutes,
        "moving_average": ma,
        "window": window,
        "relative_excursion": float((ma.max() - ma.min()) / ma.mean()),
        "arc_correlation": correlation,
    }
