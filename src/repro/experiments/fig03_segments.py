"""Fig. 3: bandwidth distributions of five two-minute segments vs full.

Two minutes is long compared to queueing time scales yet short compared
to the trace; the paper's point is that per-segment distributions
deviate substantially from the long-term marginal.  ``run`` quantifies
the deviation of each segment's mean from the global mean -- far larger
than i.i.d. sampling would allow (the LRD theme of Fig. 9).
"""

from __future__ import annotations

import numpy as np

from repro.analysis.marginals import segment_histograms
from repro.experiments.data import reference_trace

__all__ = ["run"]


def run(trace=None, n_segments=5, segment_minutes=2.0, n_bins=60):
    """Segment and full-trace histograms plus mean-deviation stats.

    Returns the dict of
    :func:`repro.analysis.marginals.segment_histograms` augmented with
    ``"segment_means"``, ``"global_mean"`` and
    ``"mean_deviation_sigmas"`` -- each segment mean's distance from
    the global mean in units of the i.i.d. standard error (values well
    above ~2 demonstrate the failure of i.i.d. reasoning).
    """
    if trace is None:
        trace = reference_trace()
    x = trace.frame_bytes
    segment_length = min(int(segment_minutes * 60 * trace.frame_rate), max(x.size // 2, 10))
    result = segment_histograms(x, n_segments=n_segments, segment_length=segment_length, n_bins=n_bins)
    means = []
    for start, _, _ in result["segments"]:
        means.append(float(np.mean(x[start : start + segment_length])))
    global_mean = float(np.mean(x))
    iid_se = float(np.std(x, ddof=0)) / np.sqrt(segment_length)
    result["segment_length"] = segment_length
    result["segment_means"] = np.asarray(means)
    result["global_mean"] = global_mean
    result["mean_deviation_sigmas"] = np.abs(np.asarray(means) - global_mean) / iid_se
    return result
