"""Fig. 4: log-log complementary CDF versus candidate models.

The verdict the figure supports: Normal falls off far too fast, Gamma
matches the body but not the extreme tail, Lognormal is too heavy then
too light, and the Pareto power law (a straight line on log-log axes)
matches the measured tail.  ``run`` returns the curves plus per-model
tail-deviation scores so the ranking is machine-checkable.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.marginals import ccdf_model_comparison
from repro.experiments.data import reference_trace

__all__ = ["run", "tail_log_deviation"]


def tail_log_deviation(result, model_name, tail_probability=0.03):
    """Mean |log10 model SF - log10 empirical SF| over the tail region.

    Measures how well ``model_name`` tracks the empirical tail on the
    log-log plot; smaller is better.  Grid points where either curve
    has probability below 1/n (no empirical resolution) are skipped.
    """
    x = result["x"]
    emp = result["empirical"]
    model = result[model_name]
    floor = 1.0 / (10 * x.size) if x.size else 0.0
    mask = (emp <= tail_probability) & (emp > max(floor, 1e-12)) & (model > 1e-300)
    if not np.any(mask):
        raise ValueError(f"no usable tail points for model {model_name!r}")
    return float(np.mean(np.abs(np.log10(model[mask]) - np.log10(emp[mask]))))


def run(trace=None, tail_fraction=0.03, n_grid=200):
    """CCDF curves and tail-fit ranking for all candidate models.

    Returns the dict of
    :func:`repro.analysis.marginals.ccdf_model_comparison` augmented
    with ``"tail_deviation"`` (``{model: score}``) and ``"ranking"``
    (model names sorted by tail fit, best first).
    """
    if trace is None:
        trace = reference_trace()
    result = ccdf_model_comparison(trace.frame_bytes, tail_fraction=tail_fraction, n_grid=n_grid)
    deviations = {}
    for name in ("normal", "gamma", "lognormal", "pareto", "gamma_pareto"):
        try:
            deviations[name] = tail_log_deviation(result, name)
        except ValueError:
            deviations[name] = float("inf")
    result["tail_deviation"] = deviations
    result["ranking"] = sorted(deviations, key=deviations.get)
    return result
