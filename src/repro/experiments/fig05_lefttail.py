"""Fig. 5: log-log cumulative distribution of the left tail.

The left tail is not symmetric to the right one; the paper finds the
Gamma fit adequate at the lower end, which justifies using the Gamma
body in the hybrid model.  ``run`` scores each candidate's left-tail
fit the same way Fig. 4's right-tail scoring works.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.marginals import left_tail_comparison
from repro.experiments.data import reference_trace

__all__ = ["run", "left_tail_log_deviation"]


def left_tail_log_deviation(result, model_name, tail_probability=0.05):
    """Mean |log10 model CDF - log10 empirical CDF| on the left tail."""
    emp = result["empirical"]
    model = np.asarray(result[model_name], dtype=float)
    x = result["x"]
    floor = 1.0 / (10 * x.size) if x.size else 0.0
    mask = (emp <= tail_probability) & (emp > max(floor, 1e-12)) & (model > 1e-300)
    if not np.any(mask):
        raise ValueError(f"no usable left-tail points for model {model_name!r}")
    return float(np.mean(np.abs(np.log10(model[mask]) - np.log10(emp[mask]))))


def run(trace=None, tail_fraction=0.03, n_grid=200):
    """Left-tail CDF curves plus per-model deviation scores."""
    if trace is None:
        trace = reference_trace()
    result = left_tail_comparison(trace.frame_bytes, tail_fraction=tail_fraction, n_grid=n_grid)
    deviations = {}
    for name in ("normal", "gamma", "lognormal", "gamma_pareto"):
        try:
            deviations[name] = left_tail_log_deviation(result, name)
        except ValueError:
            deviations[name] = float("inf")
    result["left_tail_deviation"] = deviations
    return result
