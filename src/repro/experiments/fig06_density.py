"""Fig. 6: probability density of the trace vs the Gamma/Pareto model.

The hybrid model's density should track the empirical histogram across
the body and the tail.  ``run`` reports the histogram, the fitted
model's density on the same grid, and the total-variation-style
discrepancy between them.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.marginals import histogram_density
from repro.distributions.hybrid import GammaParetoHybrid
from repro.experiments.data import reference_trace

__all__ = ["run"]


def run(trace=None, n_bins=100, tail_fraction=0.03):
    """Histogram vs fitted hybrid density.

    Returns ``"x"`` (bin centers), ``"empirical_density"``,
    ``"model_density"``, the fitted ``"model"``, and
    ``"l1_discrepancy"`` -- half the integrated absolute density
    difference (0 = identical, 1 = disjoint).
    """
    if trace is None:
        trace = reference_trace()
    x = trace.frame_bytes
    centers, density = histogram_density(x, n_bins=n_bins)
    model = GammaParetoHybrid.fit(x, tail_fraction=tail_fraction)
    model_density = np.asarray(model.pdf(centers), dtype=float)
    bin_width = centers[1] - centers[0] if centers.size > 1 else 1.0
    l1 = 0.5 * float(np.sum(np.abs(density - model_density)) * bin_width)
    return {
        "x": centers,
        "empirical_density": density,
        "model_density": model_density,
        "model": model,
        "l1_discrepancy": l1,
    }
