"""Fig. 7: autocorrelation function of the video trace to lag 10,000.

The paper's observation: the ACF matches an exponential decay only up
to ~100-300 lags, then decays far more slowly (hyperbolically).
``run`` fits an exponential to the early lags and a hyperbolic power
law to the long lags and reports both, so the crossover is explicit.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.correlation import autocorrelation, exponential_acf_fit
from repro.experiments.data import reference_trace

__all__ = ["run"]


def run(trace=None, max_lag=10_000, exp_fit_lags=(1, 100), hyp_fit_lags=(300, 3000)):
    """ACF with exponential (short-lag) and hyperbolic (long-lag) fits.

    Returns ``"lags"``, ``"acf"``, the fitted ``"rho"`` (exponential
    base) and ``"exp_curve"``, the hyperbolic exponent ``"beta"`` with
    implied ``"hurst"`` (``H = 1 - beta/2``), and
    ``"exp_underestimates_tail"`` -- the ratio of the measured ACF to
    the exponential extrapolation at the largest hyperbolic-fit lag
    (values >> 1 show the exponential model collapsing).
    """
    if trace is None:
        trace = reference_trace()
    x = trace.frame_bytes
    max_lag = min(int(max_lag), x.size - 2)
    acf = autocorrelation(x, max_lag=max_lag)
    lags = np.arange(max_lag + 1)
    exp_lo, exp_hi = exp_fit_lags
    exp_hi = min(exp_hi, max_lag)
    rho, exp_curve = exponential_acf_fit(acf, np.arange(exp_lo, exp_hi + 1))
    hyp_lo, hyp_hi = hyp_fit_lags
    hyp_hi = min(hyp_hi, max_lag)
    fit_slice = np.arange(hyp_lo, hyp_hi + 1)
    positive = acf[fit_slice] > 0
    if positive.sum() >= 2:
        slope, _ = np.polyfit(
            np.log10(fit_slice[positive]), np.log10(acf[fit_slice][positive]), 1
        )
        beta = -float(slope)
    else:
        beta = float("nan")
    probe_lag = hyp_hi
    # Compute the exponential extrapolation in log space: rho**3000
    # underflows double precision long before the comparison stops
    # being meaningful.  The ratio is capped at 1e9 ("effectively
    # infinite" -- the exponential model has fully collapsed).
    log_exp_value = probe_lag * np.log(max(rho, 1e-300))
    measured = acf[probe_lag]
    if measured > 0:
        ratio = float(np.exp(min(np.log(measured) - log_exp_value, np.log(1e9))))
    else:
        ratio = 0.0
    return {
        "lags": lags,
        "acf": acf,
        "rho": rho,
        "exp_curve": exp_curve,
        "beta": beta,
        "hurst": 1.0 - beta / 2.0 if np.isfinite(beta) else float("nan"),
        "exp_underestimates_tail": ratio,
    }
