"""Fig. 8: frequency spectrum (periodogram) of the frame data.

For an LRD process the periodogram diverges like ``omega^-alpha`` as
``omega -> 0`` with ``alpha = 2H - 1``.  ``run`` returns log-binned
spectrum points (raw periodogram ordinates are wildly noisy) plus the
fitted low-frequency power-law exponent and the implied Hurst
parameter.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.correlation import periodogram
from repro.experiments.data import reference_trace

__all__ = ["run"]


def _log_bin(omega, intensity, n_bins):
    """Geometric-mean binning of periodogram ordinates on log-f axes."""
    edges = np.geomspace(omega[0], omega[-1] * (1 + 1e-12), n_bins + 1)
    idx = np.clip(np.searchsorted(edges, omega, side="right") - 1, 0, n_bins - 1)
    out_f = []
    out_i = []
    for b in range(n_bins):
        mask = idx == b
        if not np.any(mask):
            continue
        out_f.append(np.exp(np.mean(np.log(omega[mask]))))
        out_i.append(np.exp(np.mean(np.log(np.maximum(intensity[mask], 1e-300)))))
    return np.asarray(out_f), np.asarray(out_i)


def run(trace=None, n_bins=60, lowfreq_fraction=0.01):
    """Binned periodogram with a low-frequency power-law fit.

    Returns ``"omega"`` / ``"intensity"`` (log-binned), the raw lowest
    ordinates (``"omega_low"``, ``"intensity_low"``), the fitted
    ``"alpha"`` of the ``omega^-alpha`` divergence, and the implied
    ``"hurst"`` (``H = (alpha + 1) / 2``).
    """
    if trace is None:
        trace = reference_trace()
    omega, intensity = periodogram(trace.frame_bytes)
    binned_f, binned_i = _log_bin(omega, intensity, n_bins)
    n_low = max(int(omega.size * lowfreq_fraction), 10)
    omega_low = omega[:n_low]
    intensity_low = intensity[:n_low]
    usable = intensity_low > 0
    slope, _ = np.polyfit(np.log10(omega_low[usable]), np.log10(intensity_low[usable]), 1)
    alpha = -float(slope)
    return {
        "omega": binned_f,
        "intensity": binned_i,
        "omega_low": omega_low,
        "intensity_low": intensity_low,
        "alpha": alpha,
        "hurst": (alpha + 1.0) / 2.0,
    }
