"""Fig. 9: estimation of the mean bit rate from partial observations.

The paper's demonstration that i.i.d.-style confidence intervals are
dishonest for LRD data: prefix-mean estimates with conventional 95%
CIs fail to contain the final mean most of the time, while LRD-aware
CIs (wider, slower-converging) behave properly.
"""

from __future__ import annotations

from repro.analysis.confidence import mean_confidence_convergence
from repro.analysis.hurst import variance_time
from repro.experiments.data import reference_trace

__all__ = ["run"]


def run(trace=None, hurst=None, sample_sizes=None):
    """Prefix means with i.i.d. and LRD confidence intervals.

    ``hurst`` defaults to the variance-time estimate from the trace
    itself.  Returns the
    :class:`~repro.analysis.confidence.MeanConvergence` augmented into
    a dict with both coverage fractions (the paper's qualitative claim
    is i.i.d. coverage well below the LRD coverage).
    """
    if trace is None:
        trace = reference_trace()
    x = trace.frame_bytes
    if hurst is None:
        hurst = float(min(max(variance_time(x).hurst, 0.55), 0.95))
    convergence = mean_confidence_convergence(x, hurst, sample_sizes=sample_sizes)
    return {
        "convergence": convergence,
        "hurst": hurst,
        "iid_coverage": convergence.iid_coverage(),
        "lrd_coverage": convergence.lrd_coverage(),
        "final_mean": convergence.final_mean,
    }
