"""Fig. 10: self-similarity of VBR video under aggregation.

Aggregating an SRD process over blocks of 100-1000 yields essentially
white noise; the VBR trace instead retains significant and
similar-looking correlations at every level.  ``run`` returns the
aggregated series and their lag-1..k autocorrelations, plus a white-
noise significance threshold so "significant correlations remain" is a
checkable statement.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.correlation import aggregate, autocorrelation
from repro.experiments.data import reference_trace

__all__ = ["run"]


def run(trace=None, block_sizes=(100, 500, 1000), acf_lags=20):
    """Aggregated series plus their short-lag ACFs.

    Returns ``{"levels": {m: {"series", "acf", "significant_lags"}},
    "acf_lags": ...}`` where ``significant_lags`` counts lags whose
    autocorrelation exceeds the 95% white-noise band ``1.96/sqrt(n)``.
    """
    if trace is None:
        trace = reference_trace()
    x = trace.frame_bytes
    # Keep only block sizes that leave enough points for the ACF --
    # short traces silently drop the largest levels.
    usable = [int(m) for m in block_sizes if x.size // int(m) >= acf_lags + 2]
    if not usable:
        raise ValueError(
            f"no block size in {tuple(block_sizes)} leaves {acf_lags + 2} points "
            f"for a {x.size}-frame trace"
        )
    levels = {}
    for m in usable:
        agg = aggregate(x, m)
        acf = autocorrelation(agg, max_lag=acf_lags)
        threshold = 1.96 / np.sqrt(agg.size)
        levels[m] = {
            "series": agg,
            "acf": acf,
            "white_noise_threshold": threshold,
            "significant_lags": int(np.sum(np.abs(acf[1:]) > threshold)),
        }
    return {"levels": levels, "acf_lags": int(acf_lags)}
