"""Fig. 11: variance-time plot for the VBR video trace.

``Var(X^(m)) / Var(X)`` against ``m`` on log-log axes; the asymptotic
slope ``-beta`` gives ``H = 1 - beta/2 ~= 0.78`` for the paper's trace,
visibly shallower than the ``-1`` slope of an SRD process.
"""

from __future__ import annotations

from repro.analysis.hurst import variance_time
from repro.experiments.data import reference_trace

__all__ = ["run", "PAPER_HURST"]

PAPER_HURST = 0.78
"""The paper's variance-time estimate of H."""


def run(trace=None, **kwargs):
    """Variance-time analysis of the frame series.

    Returns the :class:`~repro.analysis.hurst.VarianceTimeResult` in a
    dict together with the SRD reference slope and the paper's value.
    """
    if trace is None:
        trace = reference_trace()
    result = variance_time(trace.frame_bytes, **kwargs)
    return {
        "result": result,
        "hurst": result.hurst,
        "beta": result.beta,
        "srd_reference_slope": -1.0,
        "paper_hurst": PAPER_HURST,
    }
