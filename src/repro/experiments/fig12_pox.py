"""Fig. 12: pox diagram of R/S for the VBR video trace.

``R(n)/S(n)`` over many lags and partition starting points on log-log
axes; the regression slope estimates ``H ~= 0.83`` for the paper's
trace.  Reference slopes 0.5 (SRD) and 1.0 bracket the diagram.
"""

from __future__ import annotations

from repro.analysis.hurst import rs_pox
from repro.experiments.data import reference_trace

__all__ = ["run", "PAPER_HURST"]

PAPER_HURST = 0.83
"""The paper's R/S estimate of H."""


def run(trace=None, **kwargs):
    """R/S pox-diagram analysis of the frame series.

    Returns the :class:`~repro.analysis.hurst.RSResult` in a dict with
    the reference slopes and the paper's value.
    """
    if trace is None:
        trace = reference_trace()
    result = rs_pox(trace.frame_bytes, **kwargs)
    return {
        "result": result,
        "hurst": result.hurst,
        "srd_reference_slope": 0.5,
        "upper_reference_slope": 1.0,
        "paper_hurst": PAPER_HURST,
    }
