"""Fig. 13: the system modeled in the trace-driven simulation.

Fig. 13 is an architecture diagram -- N VBR sources feeding one FIFO
queue with buffer ``Q`` served at capacity ``C`` -- rather than a data
plot.  This module "reproduces" it by *assembling* that exact system
from the library's components and verifying its composition laws end
to end, so the figure's content (what is connected to what, and what
is measured where) is executable:

- the multiplexer output equals the sum of the shifted sources;
- offered bytes = served + lost + final backlog (flow conservation);
- the measured ``P_l`` equals lost/offered;
- at ``C`` above the aggregate peak the system is lossless, at ``C``
  below the aggregate mean it saturates.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.data import reference_trace
from repro.simulation.multiplex import multiplex_series, random_lags
from repro.simulation.queue import simulate_queue

__all__ = ["run"]


def run(trace=None, n_sources=5, capacity_factor=1.2, buffer_ms=10.0, n_frames=20_000, seed=5):
    """Assemble Fig. 13's system and verify its composition laws.

    Returns a dict describing each stage (sources, multiplexer, queue,
    measurement) plus the conservation checks; raises ``AssertionError``
    if any structural law fails (it cannot, unless the library is
    broken -- that is the point).
    """
    if trace is None:
        trace = reference_trace()
    if trace.n_frames > n_frames:
        trace = trace.segment(0, n_frames)
    x = trace.frame_bytes
    slot_seconds = 1.0 / trace.frame_rate
    rng = np.random.default_rng(seed)
    min_sep = min(1000, x.size // (2 * n_sources))
    lags = random_lags(n_sources, x.size, min_separation=min_sep, rng=rng)

    # Stage 1-2: N sources -> multiplexer.
    arrivals = multiplex_series(x, lags)
    direct_sum = np.zeros_like(x)
    for lag in lags:
        direct_sum += np.roll(x, -int(lag) % x.size)
    assert np.allclose(arrivals, direct_sum), "multiplexer is not a plain superposition"

    # Stage 3: the finite-buffer FIFO queue.
    capacity = float(np.mean(arrivals)) * capacity_factor
    buffer_bytes = buffer_ms / 1000.0 * capacity / slot_seconds
    result = simulate_queue(arrivals, capacity, buffer_bytes, return_series=True)

    # Stage 4: measurement + conservation laws.
    offered = float(arrivals.sum())
    served = offered - result.lost_bytes - result.final_backlog
    assert served <= capacity * arrivals.size + 1e-6, "served more than the server can"
    assert abs(result.loss_series.sum() - result.lost_bytes) < 1e-6
    assert result.loss_rate == (result.lost_bytes / offered if offered else 0.0)

    # Sanity anchors: lossless above aggregate peak, saturated below mean.
    lossless = simulate_queue(arrivals, float(arrivals.max()), 0.0)
    assert lossless.lost_bytes == 0.0
    overloaded = simulate_queue(arrivals, float(np.mean(arrivals)) * 0.5, buffer_bytes)
    assert overloaded.loss_rate > 0.4

    return {
        "n_sources": int(n_sources),
        "lags": lags,
        "capacity_bytes_per_slot": capacity,
        "capacity_mbps": capacity * 8.0 / slot_seconds / 1e6,
        "buffer_bytes": buffer_bytes,
        "offered_bytes": offered,
        "served_bytes": served,
        "lost_bytes": result.lost_bytes,
        "loss_rate": result.loss_rate,
        "peak_backlog": result.peak_backlog,
        "conservation_ok": True,
    }
