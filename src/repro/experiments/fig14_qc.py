"""Fig. 14: queueing delay vs allocated bandwidth per source (Q-C curves).

For each number of sources ``N`` and each QOS spec, the maximum buffer
delay ``T_max = Q/(NC)`` is computed against per-source capacity
``C/N``.  The paper's qualitative findings, all checkable from the
returned data:

- bandwidth requirement is insensitive to buffer size until the delay
  shrinks to a few milliseconds (the strong knee);
- looser loss targets flatten the curves (better trade-off);
- the gap between ``P_l = 0`` and ``P_l = 1e-4`` is substantial,
  especially for a single source;
- ``P_l`` and ``P_l_WES`` curves form one family in consistent order.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.data import reference_trace
from repro.simulation.qc import knee_point, qc_curve

__all__ = ["run", "DEFAULT_SPECS"]

DEFAULT_SPECS = (
    ("overall", 0.0),
    ("overall", 1e-4),
    ("overall", 3e-6),
    ("wes", 1e-3),
    ("wes", 3e-2),
)
"""The paper's loss specifications: ``(metric, target)`` pairs."""


def run(
    trace=None,
    n_sources=(1, 2, 5, 20),
    specs=DEFAULT_SPECS,
    n_frames=60_000,
    n_points=10,
    seed=11,
    unit="frame",
):
    """Compute the family of Q-C curves.

    Parameters
    ----------
    trace:
        Source trace; defaults to the reference trace truncated to
        ``n_frames`` (full-length lossy searches are expensive).
    n_sources:
        The multiplexing levels (paper: 1, 2, 5, 20).
    specs:
        ``(metric, target_loss)`` pairs.
    n_points:
        Capacity grid size per curve.

    Returns ``{"curves": {(n, metric, target): QCCurve},
    "knees": {...: (capacity_mbps, tmax_ms)}, ...}``.
    """
    if trace is None:
        trace = reference_trace()
    if trace.n_frames > n_frames:
        trace = trace.segment(0, n_frames)
    series = trace.series(unit)
    slot_seconds = trace.time_unit_ms(unit) / 1000.0
    rng = np.random.default_rng(seed)
    # The paper separates lags by >= 1000 frames; scaled-down traces
    # cannot always honor that for large N, so clamp proportionally.
    max_n = max(int(n) for n in n_sources)
    min_separation = min(1000, trace.n_frames // (2 * max_n))
    curves = {}
    knees = {}
    for n in n_sources:
        for metric, target in specs:
            curve = qc_curve(
                series,
                slot_seconds,
                n_sources=int(n),
                target_loss=float(target),
                metric=metric,
                n_points=n_points,
                min_separation=min_separation,
                rng=rng,
            )
            key = (int(n), metric, float(target))
            curves[key] = curve
            k = knee_point(curve)
            knees[key] = (float(curve.capacity_per_source_mbps[k]), float(curve.tmax_ms[k]))
    return {
        "curves": curves,
        "knees": knees,
        "n_sources": tuple(int(n) for n in n_sources),
        "specs": tuple(specs),
        "unit": unit,
        "n_frames": trace.n_frames,
    }
