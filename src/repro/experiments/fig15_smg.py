"""Fig. 15: required capacity vs number of sources multiplexed (SMG).

Buffers are sized for ``T_max = 2 ms``; for each acceptable loss rate
the per-source capacity falls from near the peak rate at ``N = 1`` to
near the mean rate at ``N = 20``.  The paper reports that by ``N = 5``
about 72% of the possible gain (peak minus mean) is realized, averaged
over its loss-rate curves.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.data import reference_trace
from repro.simulation.qc import smg_curve

__all__ = ["run", "PAPER_GAIN_AT_5"]

PAPER_GAIN_AT_5 = 0.72
"""Fraction of the peak-to-mean gain realized at N = 5 in the paper."""


def run(
    trace=None,
    n_values=(1, 2, 5, 10, 20),
    loss_targets=(0.0, 1e-4, 1e-3),
    tmax_ms=2.0,
    n_frames=60_000,
    seed=13,
    unit="frame",
):
    """SMG curves for several loss targets.

    Returns ``{"curves": {target: smg dict}, "gain_at_5": {...},
    "mean_gain_at_5": float, "paper_gain_at_5": 0.72}``.
    """
    if trace is None:
        trace = reference_trace()
    if trace.n_frames > n_frames:
        trace = trace.segment(0, n_frames)
    series = trace.series(unit)
    slot_seconds = trace.time_unit_ms(unit) / 1000.0
    rng = np.random.default_rng(seed)
    # Clamp the paper's 1000-frame lag separation for short traces.
    min_separation = min(1000, trace.n_frames // (2 * max(int(n) for n in n_values)))
    curves = {}
    gain_at_5 = {}
    for target in loss_targets:
        result = smg_curve(
            series,
            slot_seconds,
            n_values=n_values,
            target_loss=float(target),
            tmax_ms=tmax_ms,
            min_separation=min_separation,
            rng=rng,
        )
        curves[float(target)] = result
        if 5 in list(n_values):
            idx = list(n_values).index(5)
            gain_at_5[float(target)] = float(result["gain_fraction"][idx])
    return {
        "curves": curves,
        "n_values": tuple(int(n) for n in n_values),
        "gain_at_5": gain_at_5,
        "mean_gain_at_5": float(np.mean(list(gain_at_5.values()))) if gain_at_5 else float("nan"),
        "paper_gain_at_5": PAPER_GAIN_AT_5,
        "tmax_ms": tmax_ms,
    }
