"""Fig. 16: trace-driven vs model-driven Q-C curves (the engineering test).

Four sources run through the identical zero-loss queueing harness:

- the (reference) trace itself,
- the **full model** -- fractional ARIMA with the Gamma/Pareto marginal
  transform (both LRD and the heavy tail),
- **gaussian-farima** -- LRD but plain Gaussian marginals,
- **iid-gamma-pareto** -- the heavy tail but no time dependence.

The paper finds the same general curve shape with a capacity offset,
the full model consistently closest to the trace, and all three models
converging toward the trace (and each other) as ``N`` grows.  ``run``
quantifies closeness as the mean log-capacity offset from the trace
curve at matched buffer delays.
"""

from __future__ import annotations

import numpy as np

from repro.core.baselines import GaussianFarimaModel, IIDGammaParetoModel
from repro.core.model import VBRVideoModel
from repro.experiments.data import reference_trace
from repro.simulation.multiplex import multiplex_series, random_lags
from repro.simulation.queue import zero_loss_capacity

__all__ = ["run", "build_model_series"]


def build_model_series(trace, seed=29, generator="davies-harte", hurst_estimator="variance-time"):
    """Fit the models to ``trace`` and generate equal-length series.

    Returns ``{"trace": ..., "full-model": ..., "gaussian-farima": ...,
    "iid-gamma-pareto": ...}`` plus the fitted model object under
    ``"_model"``.
    """
    x = trace.frame_bytes
    rng = np.random.default_rng(seed)
    model = VBRVideoModel.fit(x, hurst_estimator=hurst_estimator)
    n = x.size
    full = model.generate(n, rng=rng, generator=generator)
    gaussian = GaussianFarimaModel(
        float(np.mean(x)), float(np.std(x)), model.hurst, generator=generator
    ).generate(n, rng=rng)
    iid = IIDGammaParetoModel(model.marginal).generate(n, rng=rng)
    return {
        "trace": x,
        "full-model": full,
        "gaussian-farima": gaussian,
        "iid-gamma-pareto": iid,
        "_model": model,
    }


def _zero_loss_curve(series, slot_seconds, n, buffers, rng, n_lag_draws=6, min_separation=1000):
    """Per-source zero-loss capacity over a grid of buffer sizes."""
    n_draws = 1 if n == 1 else n_lag_draws
    arrival_sets = []
    for _ in range(n_draws):
        lags = random_lags(n, series.size, min_separation=min_separation, rng=rng)
        arrival_sets.append(multiplex_series(series, lags))
    capacities = np.empty(buffers.size)
    for i, q in enumerate(buffers):
        c_total = max(zero_loss_capacity(a, q) for a in arrival_sets)
        capacities[i] = c_total / n
    return capacities


def run(
    trace=None,
    n_sources=(1, 2, 5, 20),
    n_frames=60_000,
    n_buffers=10,
    seed=29,
    generator="davies-harte",
):
    """Zero-loss Q-C comparison of the trace against the three models.

    Buffer sizes span ``T_max`` from ~0.5 ms to ~1 s relative to the
    trace's mean rate.  Returns, per N, the per-source capacity curves
    (bytes/slot) for each source plus the mean relative capacity offset
    of each model from the trace (``"offsets"``); the expected ordering
    is ``full-model < gaussian-farima, iid-gamma-pareto``.
    """
    if trace is None:
        trace = reference_trace()
    if trace.n_frames > n_frames:
        trace = trace.segment(0, n_frames)
    slot_seconds = 1.0 / trace.frame_rate
    sources = build_model_series(trace, seed=seed, generator=generator)
    model = sources.pop("_model")
    mean_rate_bps = trace.mean_rate_bps / 8.0  # bytes/second
    tmax_grid_s = np.geomspace(5e-4, 1.0, n_buffers)
    buffers = tmax_grid_s * mean_rate_bps  # bytes, scaled per source below
    rng = np.random.default_rng(seed + 1)
    min_separation = min(1000, trace.n_frames // (2 * max(int(n) for n in n_sources)))
    curves = {}
    offsets = {}
    for n in n_sources:
        n = int(n)
        per_n = {}
        for name, series in sources.items():
            per_n[name] = _zero_loss_curve(
                np.asarray(series, dtype=float),
                slot_seconds,
                n,
                buffers * n,
                rng,
                min_separation=min_separation,
            )
        curves[n] = per_n
        trace_curve = per_n["trace"]
        offsets[n] = {
            name: float(np.mean(np.abs(np.log(per_n[name] / trace_curve))))
            for name in per_n
            if name != "trace"
        }
    return {
        "curves": curves,
        "buffers_bytes_per_source": buffers,
        "tmax_reference_s": tmax_grid_s,
        "offsets": offsets,
        "model": model,
        "n_sources": tuple(int(n) for n in n_sources),
        "slot_seconds": slot_seconds,
    }
