"""Fig. 17: error processes over the full interval for N = 1 and N = 20.

Both systems are tuned to the same overall loss rate (``P_l = 1e-3``)
with buffers sized for ``T_max = 2 ms``; the running-average loss rate
over a 1,000-frame window then reveals how differently the losses are
distributed in time -- the single source suffers long concentrated
loss episodes while the multiplexed system's losses are spread out.
``run`` also reports concentration statistics (fraction of loss carried
by the worst 1% of windows) that make the contrast quantitative.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.data import reference_trace
from repro.simulation.metrics import windowed_loss_rate
from repro.simulation.multiplex import multiplex_series, random_lags
from repro.simulation.qc import required_capacity
from repro.simulation.queue import simulate_queue

__all__ = ["run"]


def _loss_concentration(loss_series, top_fraction=0.01, window=1000):
    """Fraction of all lost bytes inside the worst ``top_fraction`` windows."""
    csum = np.concatenate(([0.0], np.cumsum(loss_series)))
    win = csum[window:] - csum[:-window]
    total = csum[-1]
    if total <= 0:
        return 0.0
    # Non-overlapping windows to avoid double counting.
    strided = win[::window]
    k = max(int(np.ceil(strided.size * top_fraction)), 1)
    worst = np.sort(strided)[::-1][:k]
    return float(min(worst.sum() / total, 1.0))


def run(
    trace=None,
    n_sources=(1, 20),
    target_loss=1e-3,
    tmax_ms=2.0,
    window=1000,
    n_frames=60_000,
    seed=17,
):
    """Windowed loss processes at matched overall loss rate.

    Returns per N: the window-center positions (minutes), the running
    loss rates, the tuned capacity, the realized overall loss and the
    loss concentration.  The paper's claim -- equal ``P_l`` but very
    different loss processes -- corresponds to the N=1 concentration
    exceeding the N=20 one.
    """
    if trace is None:
        trace = reference_trace()
    if trace.n_frames > n_frames:
        trace = trace.segment(0, n_frames)
    series = trace.frame_bytes
    slot_seconds = 1.0 / trace.frame_rate
    rng = np.random.default_rng(seed)
    tmax_s = tmax_ms / 1000.0
    out = {}
    min_separation = min(1000, series.size // (2 * max(int(n) for n in n_sources)))
    for n in n_sources:
        n = int(n)
        n_draws = 1 if n == 1 else 3
        arrival_sets = [
            multiplex_series(
                series, random_lags(n, series.size, min_separation=min_separation, rng=rng)
            )
            for _ in range(n_draws)
        ]

        # The buffer depends on the capacity (Q = T_max * N * C), so
        # wrap the capacity search in a small fixed-point: start from a
        # generous buffer guess and iterate once.
        c_total = float(np.mean(arrival_sets[0])) * 1.2
        for _ in range(3):
            q = tmax_s * c_total / slot_seconds
            c_total = required_capacity(arrival_sets, q, target_loss, rel_tol=1e-4)
        q = tmax_s * c_total / slot_seconds
        arrivals = arrival_sets[0]
        result = simulate_queue(arrivals, c_total, q, return_series=True)
        centers, rates = windowed_loss_rate(result.loss_series, arrivals, window)
        out[n] = {
            "time_minutes": centers / trace.frame_rate / 60.0,
            "loss_rate": rates,
            "capacity_per_source": c_total / n,
            "buffer_bytes": q,
            "overall_loss": result.loss_rate,
            "concentration": _loss_concentration(result.loss_series, window=window),
        }
    return {
        "processes": out,
        "target_loss": target_loss,
        "window": window,
        "tmax_ms": tmax_ms,
        "n_sources": tuple(int(n) for n in n_sources),
    }
