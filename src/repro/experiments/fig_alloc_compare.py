"""Allocator shoot-out: per-user loss/delay percentiles and fairness.

The closed-loop counterpart to the paper's open-loop multiplexing
figures: a seeded heterogeneous fleet (mixed-Hurst fGn video, CBR and
bursty data users) shares one (C, Q) pool, and each registered
allocator runs the *same* fleet -- identical arrivals, identical seeds,
identical totals -- differing only in how it re-partitions the pool
every epoch.  The experiment reports per-user loss and delay
percentiles, Jain fairness and the reallocation activity per allocator,
plus the two ordering claims the acceptance pins: harvest and trade
beat the static baseline on p99 per-user loss, and the clairvoyant
oracle lower-bounds every policy's fleet-total loss.
"""

from __future__ import annotations

from repro.alloc.allocators import ALLOCATORS
from repro.alloc.fleet import demo_fleet, simulate_fleet

__all__ = ["run"]


def run(
    trace=None,
    n_users=48,
    epoch_slots=100,
    n_epochs=40,
    utilization=0.7,
    buffer_slots=12.0,
    qos_loss=1e-3,
    seed=2026,
    workers=1,
    allocators=None,
):
    """Run every allocator over one seeded fleet; return the comparison.

    ``trace`` is accepted for runner uniformity and ignored -- the fleet
    is fully synthetic.  Returns ``{"allocators": {name: summary},
    "p99_loss": ..., "gain_vs_static": ..., "oracle_is_lower_bound":
    bool, "harvest_beats_static_p99": bool, ...}``.
    """
    del trace
    names = tuple(allocators) if allocators is not None else tuple(sorted(ALLOCATORS))
    spec = demo_fleet(
        n_users,
        epoch_slots=epoch_slots,
        n_epochs=n_epochs,
        utilization=utilization,
        buffer_slots=buffer_slots,
        qos_loss=qos_loss,
        seed=seed,
    )
    summaries = {}
    total_loss = {}
    p99 = {}
    for name in names:
        result = simulate_fleet(spec, name, workers=workers)
        summaries[name] = result.summary()
        total_loss[name] = result.total_loss_rate
        p99[name] = result.loss_percentiles()["p99"]

    static_p99 = p99.get("static")
    gain_vs_static = {
        name: (static_p99 / value if static_p99 and value > 0.0 else float("inf"))
        for name, value in p99.items()
    }
    oracle_total = total_loss.get("oracle")
    return {
        "fleet": {
            "n_users": n_users,
            "epoch_slots": epoch_slots,
            "n_epochs": n_epochs,
            "utilization": utilization,
            "buffer_slots": buffer_slots,
            "qos_loss": qos_loss,
            "seed": seed,
        },
        "allocators": summaries,
        "total_loss": total_loss,
        "p99_loss": p99,
        "gain_vs_static": gain_vs_static,
        "oracle_is_lower_bound": (
            oracle_total is not None
            and all(oracle_total <= total_loss[n] for n in names)
        ),
        "harvest_beats_static_p99": (
            "harvest" in p99 and static_p99 is not None and p99["harvest"] < static_p99
        ),
        "trade_beats_static_p99": (
            "trade" in p99 and static_p99 is not None and p99["trade"] < static_p99
        ),
    }
