"""Multiplexing gain under dynamic allocation vs. epoch length.

The paper's Fig. 15 asks how much capacity multiplexing saves when N
sources share a link *statically*.  This experiment asks the follow-on
question its 1994 authors could not: how much more does *closed-loop
reallocation* save, and how does the gain depend on how often the
controller may act (the epoch length)?

For one heterogeneous fleet and a fixed shared buffer, three capacity
requirements are bisected to the same fleet-total loss target:

* ``capacity_dedicated`` -- every user provisioned alone on its own
  slice (no sharing at all): the sum of per-user required capacities.
* ``capacity_static`` -- the pool under the static equal partition
  (open-loop sharing, the paper's regime).
* ``capacity_dynamic[L]`` -- the pool under the causal harvest
  allocator reallocating every ``L`` slots.

``smg_* = capacity_dedicated / capacity_*`` is the statistical
multiplexing gain of each regime; a partitioned regime can score *below*
one (an equal split serves heterogeneous users worse than slices
tailored per user), and the shortfall measures the cost of partitioning.
``gain_vs_static`` isolates what the closed loop adds.  Norros' fBm dimensioning formula
(:func:`repro.simulation.norros.norros_capacity`) at the aggregate
traffic's measured mean/variance (and the fleet's most bursty Hurst
class -- the conservative choice) is reported as the closed-form
anchor, the same cross-check ``simulation/admission.py`` uses.
"""

from __future__ import annotations

import numpy as np

from repro.alloc.fleet import FleetSpec, demo_fleet, simulate_fleet, _epoch_arrivals, _video_groups
from repro.simulation.norros import norros_capacity
from repro.simulation.qc import required_capacity

__all__ = ["run"]


def _user_series(spec, groups):
    """Each user's full arrival series, concatenated across epochs."""
    blocks = [_epoch_arrivals(spec, e, groups) for e in range(spec.n_epochs)]
    return np.concatenate(blocks, axis=1)


def _fleet_spec(base, epoch_slots, n_epochs, total_capacity, total_buffer):
    return FleetSpec(
        users=base.users,
        epoch_slots=epoch_slots,
        n_epochs=n_epochs,
        total_capacity=total_capacity,
        total_buffer=total_buffer,
        qos_loss=base.qos_loss,
        seed=base.seed,
    )


def _min_pool_capacity(base, epoch_slots, n_epochs, total_buffer, allocator,
                       target_loss, lo, hi, rel_tol):
    """Bisect the smallest pool capacity meeting the fleet loss target."""

    def loss_at(capacity):
        spec = _fleet_spec(base, epoch_slots, n_epochs, capacity, total_buffer)
        return simulate_fleet(spec, allocator).total_loss_rate

    if loss_at(lo) <= target_loss:
        return lo
    for _ in range(6):
        if loss_at(hi) <= target_loss:
            break
        lo, hi = hi, hi * 2.0
    while (hi - lo) > rel_tol * hi:
        mid = 0.5 * (lo + hi)
        if loss_at(mid) <= target_loss:
            hi = mid
        else:
            lo = mid
    return hi


def run(
    trace=None,
    n_users=16,
    epoch_lengths=(30, 60, 120),
    total_slots=2_400,
    target_loss=1e-2,
    buffer_slots=12.0,
    seed=7,
    rel_tol=2e-2,
):
    """Capacity requirements and SMG per allocation regime.

    ``trace`` is accepted for runner uniformity and ignored.  The fleet
    runs ``total_slots`` slots regardless of epoch length (the epoch
    grid re-synthesizes per-(user, epoch) seeded arrivals, so regimes
    see statistically identical -- not bit-identical -- traffic).
    """
    del trace
    base = demo_fleet(n_users, epoch_slots=int(epoch_lengths[0]),
                      n_epochs=max(total_slots // int(epoch_lengths[0]), 1),
                      seed=seed)
    mean_rate = float(sum(u.mean for u in base.users))
    total_buffer = buffer_slots * mean_rate

    # Dedicated baseline: each user alone on its own capacity slice with
    # an equal buffer share.
    groups = _video_groups(base.users)
    series = _user_series(base, groups)
    per_user_buffer = total_buffer / n_users
    dedicated = [
        required_capacity([series[i]], per_user_buffer, target_loss)
        for i in range(n_users)
    ]
    capacity_dedicated = float(np.sum(dedicated))

    # Aggregate statistics for the Norros closed form.
    aggregate = series.sum(axis=0)
    agg_mean = float(np.mean(aggregate))
    agg_var = float(np.var(aggregate))
    hurst_max = max((u.hurst for u in base.users if u.kind == "video"), default=0.8)
    capacity_norros = norros_capacity(
        agg_mean, agg_var / agg_mean, total_buffer, target_loss, hurst_max
    )

    lo = agg_mean
    hi = capacity_dedicated

    mid_length = int(epoch_lengths[len(epoch_lengths) // 2])
    capacity_static = _min_pool_capacity(
        base, mid_length, max(total_slots // mid_length, 1), total_buffer,
        "static", target_loss, lo, hi, rel_tol,
    )
    capacity_dynamic = {}
    for length in epoch_lengths:
        length = int(length)
        capacity_dynamic[length] = _min_pool_capacity(
            base, length, max(total_slots // length, 1), total_buffer,
            "harvest", target_loss, lo, hi, rel_tol,
        )

    return {
        "n_users": n_users,
        "epoch_lengths": tuple(int(x) for x in epoch_lengths),
        "total_slots": total_slots,
        "target_loss": target_loss,
        "total_buffer": total_buffer,
        "mean_rate": mean_rate,
        "capacity_dedicated": capacity_dedicated,
        "capacity_static": capacity_static,
        "capacity_dynamic": {str(k): float(v) for k, v in capacity_dynamic.items()},
        "capacity_norros": capacity_norros,
        "norros_hurst": hurst_max,
        "smg_static": capacity_dedicated / capacity_static,
        "smg_dynamic": {
            str(k): capacity_dedicated / float(v) for k, v in capacity_dynamic.items()
        },
        "gain_vs_static": {
            str(k): capacity_static / float(v) for k, v in capacity_dynamic.items()
        },
    }
