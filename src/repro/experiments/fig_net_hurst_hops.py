"""Network extension: does self-similarity survive multi-hop queueing?

The paper's central warning is that long-range dependence in VBR video
defeats buffer sizing based on short-range models.  A natural
follow-up for networks: does the dependence *persist* once the traffic
has been shaped by a chain of finite-capacity queues, or does
store-and-forward smoothing launder it away?

One flow (the reference trace) is pushed through a 3-hop tandem with
per-hop series recording; the Hurst exponent of the departure process
after each hop is then estimated with the paper's own tools
(variance-time analysis and R/S pox, Section 2).  Hop 0 is the
untouched input series, so the estimates are directly comparable.

Expected finding -- and what the golden digest pins -- is that ``H``
stays far above the 0.5 of short-range models at every hop: queueing
clips the peaks (utilization rises, marginal variance falls) but the
low-frequency structure that drives buffer requirements rides through
the tandem essentially intact.  Smoothing is *not* whitening.
"""

from __future__ import annotations

import numpy as np

from repro._validation import require_positive, require_positive_int
from repro.analysis.hurst import rs_pox, variance_time
from repro.experiments.data import reference_trace
from repro.experiments.fig_net_tandem import tandem_spec
from repro.net import run_topology

__all__ = ["run"]


def run(
    trace=None,
    hops=3,
    n_frames=8_000,
    capacity_factor=1.1,
    buffer_tmax_ms=250.0,
    unit="frame",
):
    """Estimate H of the traffic after each hop of a tandem.

    Parameters
    ----------
    trace:
        Source trace; defaults to the reference trace truncated to
        ``n_frames``.
    hops:
        Tandem length (equal-capacity hops; the interesting regime is
        moderate overload of the *same* bottleneck repeated, so no
        taper here).
    capacity_factor:
        Per-hop capacity as a multiple of the mean rate; slightly
        above 1 keeps the queues busy without starving the tail.
    buffer_tmax_ms:
        Per-hop buffer expressed as a delay bound in ms (generous, so
        loss stays a perturbation rather than the dominant effect).

    Returns per-hop arrays (hop 0 = the input series): Hurst estimates
    from both estimators, utilization, marginal statistics, and the
    per-hop loss rates.
    """
    if trace is None:
        trace = reference_trace()
    n_frames = require_positive_int(n_frames, "n_frames")
    if trace.n_frames > n_frames:
        trace = trace.segment(0, n_frames)
    hops = require_positive_int(hops, "hops")
    capacity_factor = require_positive(capacity_factor, "capacity_factor")
    series = trace.series(unit)
    slot_seconds = trace.time_unit_ms(unit) / 1000.0
    capacity = capacity_factor * float(np.mean(series))
    buffer_bytes = require_positive(buffer_tmax_ms, "buffer_tmax_ms") / 1e3 \
        * capacity / slot_seconds

    spec = tandem_spec(
        series.tolist(), [capacity] * hops, buffer_bytes, record_series=True
    )
    result = run_topology(spec)

    stages = [("input", np.asarray(series, dtype=float))]
    for name, port in result["ports"].items():
        stages.append((name, np.asarray(result["series"][name]["departures"])))

    hurst_vt = []
    hurst_rs = []
    means = []
    stds = []
    for _, data in stages:
        hurst_vt.append(float(variance_time(data).hurst))
        hurst_rs.append(float(rs_pox(data).hurst))
        means.append(float(np.mean(data)))
        stds.append(float(np.std(data)))

    ports = list(result["ports"].values())
    return {
        "stages": tuple(name for name, _ in stages),
        "hurst_variance_time": np.array(hurst_vt),
        "hurst_rs": np.array(hurst_rs),
        "mean_bytes_per_slot": np.array(means),
        "std_bytes_per_slot": np.array(stds),
        "utilization": np.array([p["utilization"] for p in ports]),
        "loss_rate": np.array([p["loss_rate"] for p in ports]),
        "mean_delay_slots": np.array([p["mean_delay_slots"] for p in ports]),
        "capacity_per_slot": capacity,
        "buffer_bytes": float(buffer_bytes),
        "hops": hops,
        "n_frames": trace.n_frames,
        "unit": unit,
    }
