"""Network extension: Q-C curves through a multi-hop tandem.

The paper sizes a *single* finite buffer for self-similar VBR traffic
(Fig. 14).  This experiment carries the same question through 1-, 2-
and 3-hop tandem paths simulated with :mod:`repro.net`: what shared
per-hop buffer ``Q`` keeps the *end-to-end* loss within target, and
how does the resulting delay bound ``T_max = Q/C`` compare with the
paper's single-queue answer?

Each downstream link is tapered to ``taper`` times the capacity of the
one before it, so later hops are genuine bottlenecks (an untapered
tandem is uninteresting: the first queue shapes the flow to its own
capacity and downstream hops never drop).  Findings checkable from the
returned data:

- the 1-hop curve *is* the paper's single queue: its zero-loss buffer
  matches :func:`repro.simulation.queue.max_backlog` on the same
  series (``single_queue_buffer_bytes`` is included for the
  comparison -- an independent vectorized implementation, so agreement
  is to summation order, ~1e-10 relative; the *bit-exact* anchor
  against :func:`~repro.simulation.queue.simulate_queue`'s sequential
  recursion is pinned by a tier-1 test);
- more hops cost more buffer at equal capacity -- the tapered
  bottleneck compounds -- and the knee structure of the single-queue
  curves survives end to end;
- loosening the loss target collapses the buffer requirement on every
  path length, exactly as in Fig. 14.

Zero-loss buffers are exact (the peak per-hop backlog of an
unconstrained run); lossy targets use bisection on the shared ``Q``,
treating end-to-end loss as monotone in ``Q`` (it is for any one
queue; across a tandem upstream buffering feeds the next bottleneck,
making this an -- excellent -- approximation rather than a theorem).
"""

from __future__ import annotations

import numpy as np

from repro._validation import require_positive, require_positive_int
from repro.experiments.data import reference_trace
from repro.net import run_topology
from repro.simulation.queue import max_backlog

__all__ = ["run", "tandem_spec", "required_tandem_buffer"]

_NODE_NAMES = "abcdefgh"


def tandem_spec(series, capacities, buffer_bytes, record_series=False):
    """Declarative spec for one flow through a tandem of queues.

    ``capacities[i]`` is the service rate of hop ``i``; every hop gets
    the same ``buffer_bytes``.  The path has ``len(capacities)``
    queueing hops and ``len(capacities) + 1`` nodes.
    """
    hops = len(capacities)
    if not 1 <= hops < len(_NODE_NAMES):
        raise ValueError(f"hops must be in [1, {len(_NODE_NAMES) - 1}], got {hops}")
    names = list(_NODE_NAMES[: hops + 1])
    return {
        "slots": len(series),
        "nodes": [{"name": n, "buffer_bytes": buffer_bytes} for n in names],
        "links": [
            {"src": names[i], "dst": names[i + 1], "capacity_per_slot": float(c)}
            for i, c in enumerate(capacities)
        ],
        "flows": [
            {
                "name": "video",
                "path": names,
                "source": {"kind": "array", "values": list(series)},
            }
        ],
        "record_series": record_series,
    }


def _end_to_end_loss(series, capacities, buffer_bytes):
    result = run_topology(tandem_spec(series, capacities, buffer_bytes))
    return result["flows"]["video"]["loss_rate"]


def required_tandem_buffer(series, capacities, target_loss, rel_tol=5e-3):
    """Smallest shared per-hop buffer meeting the end-to-end loss target.

    For ``target_loss == 0`` the answer is exact: the largest per-hop
    peak backlog of an unconstrained run (any smaller shared buffer
    makes the binding hop drop).  Otherwise bisection on ``Q``.
    """
    target_loss = float(target_loss)
    if target_loss < 0:
        raise ValueError(f"target_loss must be >= 0, got {target_loss}")
    unconstrained = run_topology(
        tandem_spec(series, capacities, float(np.sum(series)) + 1.0)
    )
    q_max = max(
        port["peak_backlog"] for port in unconstrained["ports"].values()
    )
    if target_loss == 0.0 or q_max == 0.0:
        return q_max
    if _end_to_end_loss(series, capacities, 0.0) <= target_loss:
        return 0.0
    lo, hi = 0.0, q_max
    while (hi - lo) > rel_tol * max(q_max, 1.0):
        mid = 0.5 * (lo + hi)
        if _end_to_end_loss(series, capacities, mid) <= target_loss:
            hi = mid
        else:
            lo = mid
    return hi


def run(
    trace=None,
    hops=(1, 2, 3),
    targets=(0.0, 1e-2),
    n_points=5,
    n_frames=4_000,
    taper=0.95,
    unit="frame",
    capacity_span=(1.05, 1.0),
):
    """Compute end-to-end Q-C curves for each tandem length.

    Parameters
    ----------
    trace:
        Source trace; defaults to the reference trace truncated to
        ``n_frames``.
    hops:
        Tandem lengths to sweep (number of queueing hops).
    targets:
        End-to-end loss targets (0 = lossless).
    n_points:
        Ingress-capacity grid size per curve.
    taper:
        Capacity ratio of each hop to the one before it (< 1 makes
        downstream hops bottlenecks).
    capacity_span:
        ``(lo_factor, hi_factor)`` of the grid relative to the series
        (mean, peak).

    Returns ``{"curves": {(hops, target): {...arrays...}},
    "single_queue_buffer_bytes": ..., ...}`` where each curve holds the
    ingress capacity grid, the required shared buffer and the per-hop
    delay bound ``T_max = Q / C_min`` in ms.
    """
    if trace is None:
        trace = reference_trace()
    n_frames = require_positive_int(n_frames, "n_frames")
    if trace.n_frames > n_frames:
        trace = trace.segment(0, n_frames)
    taper = require_positive(taper, "taper")
    series = trace.series(unit)
    slot_seconds = trace.time_unit_ms(unit) / 1000.0
    mean = float(np.mean(series))
    peak = float(np.max(series))
    lo_factor, hi_factor = capacity_span
    capacities = np.linspace(lo_factor * mean, hi_factor * peak,
                             require_positive_int(n_points, "n_points"))
    series_list = series.tolist()

    curves = {}
    for h in hops:
        h = int(h)
        for target in targets:
            buffers = np.array([
                required_tandem_buffer(
                    series_list,
                    [c * taper**i for i in range(h)],
                    target,
                )
                for c in capacities
            ])
            bottleneck = capacities * taper ** (h - 1)
            curves[(h, float(target))] = {
                "capacity_per_slot": capacities.copy(),
                "capacity_mbps": capacities * 8.0 / slot_seconds / 1e6,
                "buffer_bytes": buffers,
                "tmax_ms": buffers / bottleneck * slot_seconds * 1e3,
            }

    # The 1-hop lossless anchor against the paper's single queue.
    single_queue = np.array([max_backlog(series, float(c)) for c in capacities])
    return {
        "curves": curves,
        "single_queue_buffer_bytes": single_queue,
        "hops": tuple(int(h) for h in hops),
        "targets": tuple(float(t) for t in targets),
        "taper": float(taper),
        "n_frames": trace.n_frames,
        "unit": unit,
        "mean_bytes_per_slot": mean,
        "peak_bytes_per_slot": peak,
    }
