"""Plain-text table formatting for experiment results.

Experiments return data; these helpers render it the way the paper's
tables read, for the examples and for EXPERIMENTS.md.
"""

from __future__ import annotations

__all__ = ["format_table", "format_kv"]


def format_table(headers, rows, title=None):
    """Render a list-of-rows table with aligned columns.

    ``headers`` is a sequence of column names; each row is a sequence of
    values (converted with ``str``).  Returns a multi-line string.
    """
    headers = [str(h) for h in headers]
    str_rows = [[str(cell) for cell in row] for row in rows]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but there are {len(headers)} headers"
            )
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in str_rows)) if str_rows else len(headers[i])
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def format_kv(pairs, title=None):
    """Render ``(label, value)`` pairs as aligned lines."""
    pairs = [(str(k), str(v)) for k, v in pairs]
    width = max((len(k) for k, _ in pairs), default=0)
    lines = [title] if title else []
    lines.extend(f"{k.ljust(width)}  {v}" for k, v in pairs)
    return "\n".join(lines)
