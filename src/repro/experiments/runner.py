"""Run the complete experiment suite and summarize measured vs paper.

``experiment_specs`` declares the suite as an ordered list of
:class:`~repro.resilience.runner.ExperimentSpec`; ``run_all`` drives it
through the :mod:`repro.resilience` campaign supervisor (per-experiment
isolation, bounded retry, soft timeouts, checkpoint/resume) and returns
a dict of results; ``summary_lines`` renders the
one-line-per-experiment comparison used by EXPERIMENTS.md and the
examples.
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.experiments import (
    fig01_timeseries,
    fig02_lowfreq,
    fig03_segments,
    fig04_ccdf,
    fig05_lefttail,
    fig06_density,
    fig07_acf,
    fig08_periodogram,
    fig09_confidence,
    fig10_selfsimilar,
    fig11_variance_time,
    fig12_pox,
    fig13_system,
    fig14_qc,
    fig15_smg,
    fig16_model_vs_trace,
    fig17_loss_process,
    fig_alloc_compare,
    fig_alloc_smg,
    fig_net_hurst_hops,
    fig_net_tandem,
    table1,
    table2,
    table3,
)
from repro.experiments.data import reference_trace
from repro.obs import log as obs_log
from repro.resilience.runner import ExperimentSpec, run_campaign

__all__ = ["experiment_specs", "campaign_manifest", "run_all", "summary_lines"]

_LOGGER = obs_log.get_logger("experiments")


def experiment_specs(trace, quick=False, sim_frames=None):
    """The full suite as ordered ``ExperimentSpec`` entries.

    Each spec's thunk closes over ``trace`` and the scale parameters;
    the experiments are deterministic functions of the trace, so the
    supervisor's per-attempt seed is accepted and ignored.
    """
    if sim_frames is None:
        sim_frames = 20_000 if quick else 60_000

    def spec(experiment_id, fn, *args, **kwargs):
        return ExperimentSpec(experiment_id, lambda seed: fn(*args, **kwargs))

    return [
        spec("table1", table1.run, trace),
        spec("table1_codec", table1.run_codec, n_frames=8 if quick else 48),
        spec("table2", table2.run, trace),
        spec("table3", table3.run, trace),
        spec("fig01", fig01_timeseries.run, trace),
        spec("fig02", fig02_lowfreq.run, trace),
        spec("fig03", fig03_segments.run, trace),
        spec("fig04", fig04_ccdf.run, trace),
        spec("fig05", fig05_lefttail.run, trace),
        spec("fig06", fig06_density.run, trace),
        spec("fig07", fig07_acf.run, trace),
        spec("fig08", fig08_periodogram.run, trace),
        spec("fig09", fig09_confidence.run, trace),
        spec("fig10", fig10_selfsimilar.run, trace),
        spec("fig11", fig11_variance_time.run, trace),
        spec("fig12", fig12_pox.run, trace),
        spec("fig13", fig13_system.run, trace, n_frames=min(sim_frames, 20_000)),
        spec(
            "fig14", fig14_qc.run, trace,
            n_frames=sim_frames,
            specs=(("overall", 0.0), ("overall", 1e-4), ("wes", 1e-3))
            if quick else fig14_qc.DEFAULT_SPECS,
            n_points=6 if quick else 10,
        ),
        spec(
            "fig15", fig15_smg.run, trace,
            n_frames=sim_frames,
            loss_targets=(0.0, 1e-3) if quick else (0.0, 1e-4, 1e-3),
        ),
        spec("fig16", fig16_model_vs_trace.run, trace,
             n_frames=sim_frames, n_buffers=6 if quick else 10),
        spec("fig17", fig17_loss_process.run, trace, n_frames=sim_frames),
        spec(
            "fig_net_tandem", fig_net_tandem.run, trace,
            n_frames=min(sim_frames, 4_000),
            n_points=4 if quick else 5,
        ),
        spec(
            "fig_net_hurst_hops", fig_net_hurst_hops.run, trace,
            n_frames=min(sim_frames, 8_000),
        ),
        spec(
            "fig_alloc_compare", fig_alloc_compare.run, trace,
            n_users=24 if quick else 48,
            n_epochs=16 if quick else 40,
            epoch_slots=80 if quick else 100,
        ),
        spec(
            "fig_alloc_smg", fig_alloc_smg.run, trace,
            n_users=8 if quick else 16,
            total_slots=900 if quick else 2_400,
        ),
    ]


def campaign_manifest(trace, quick, sim_frames):
    """Fingerprint of a campaign's configuration for checkpoint safety.

    Resuming a checkpoint directory written under a different trace or
    scale would silently mix incompatible results; the manifest (trace
    content hash + scale parameters) makes that a hard error instead.
    """
    return {
        "quick": bool(quick),
        "sim_frames": int(sim_frames) if sim_frames is not None else None,
        "n_frames": int(trace.n_frames),
        "trace_sha256": hashlib.sha256(trace.frame_bytes.tobytes()).hexdigest()[:16],
    }


def run_all(trace=None, quick=False, sim_frames=None, *, only=None,
            checkpoint_dir=None, resume=True, max_retries=0, timeout_s=None,
            base_seed=0, fault_plan=None, report=False, sleep=None,
            on_event=None, workers=1, nodes=None, lease_s=10.0,
            task_timeout_s=None):
    """Execute every experiment; returns ``{experiment_id: result}``.

    ``quick=True`` truncates the trace to 40,000 frames and shrinks the
    simulation workloads, for smoke runs; the default runs analysis
    experiments on the full two-hour trace and simulations on 60,000
    frames (override with ``sim_frames``).

    The suite runs under the :mod:`repro.resilience` supervisor.  With
    no resilience options this keeps the legacy contract (first failure
    raises immediately); any of the keywords below switch to supervised
    mode, where failures are recorded and the campaign continues:

    - ``checkpoint_dir`` / ``resume``: persist each completed
      experiment and skip digest-verified checkpoints on restart;
    - ``max_retries`` / ``timeout_s`` / ``base_seed``: bounded
      seed-rotated retry for transient faults and a per-experiment
      soft timeout;
    - ``fault_plan``: a :class:`~repro.resilience.faults.FaultPlan`
      activated for the duration of the campaign;
    - ``report=True``: return the full
      :class:`~repro.resilience.runner.CampaignReport` instead of the
      bare results dict.

    ``only`` restricts the suite to the named experiment id(s) -- a
    single id string or an iterable of ids -- keeping their declared
    order.  Used by ``repro experiments --profile fig14`` to profile
    one experiment without paying for the other twenty.

    ``workers`` runs that many experiments concurrently through the
    supervisor (threads; see :func:`repro.resilience.runner.run_campaign`).
    Results, records and checkpoint digests are identical at every
    worker count.

    ``nodes`` distributes the suite over worker nodes instead
    (``"sim:3"`` or ``"host:port,..."``; see
    :func:`repro.dist.campaign.run_suite`), with ``lease_s`` /
    ``task_timeout_s`` tuning the fault-detection deadlines.  The
    distributed path requires the default reference trace (workers
    rebuild it deterministically; an in-memory trace cannot cross the
    wire) and returns the same shapes: the results dict, or a report
    duck-typing :class:`~repro.resilience.runner.CampaignReport` under
    ``report=True``.  Results match the local supervisor bit for bit.
    """
    if nodes is not None:
        if trace is not None:
            raise ValueError(
                "nodes= distributes against the deterministic reference "
                "trace; a custom in-memory trace cannot cross the wire"
            )
        if fault_plan is not None or timeout_s is not None or sleep is not None:
            raise ValueError(
                "fault_plan/timeout_s/sleep apply to the local supervisor; "
                "distributed campaigns tune lease_s/task_timeout_s instead"
            )
        from repro.dist.campaign import run_suite

        campaign = run_suite(
            nodes, quick=quick, sim_frames=sim_frames, only=only,
            base_seed=base_seed, max_retries=max_retries, lease_s=lease_s,
            task_timeout_s=task_timeout_s, checkpoint_dir=checkpoint_dir,
            resume=resume, on_event=on_event,
        )
        return campaign if report else campaign.results
    if trace is None:
        trace = reference_trace(n_frames=40_000 if quick else 171_000)
    specs = experiment_specs(trace, quick=quick, sim_frames=sim_frames)
    if only is not None:
        wanted = {only} if isinstance(only, str) else set(only)
        known = {spec.experiment_id for spec in specs}
        missing = sorted(wanted - known)
        if missing:
            raise ValueError(
                f"unknown experiment id(s) {missing}; known: {sorted(known)}"
            )
        specs = [spec for spec in specs if spec.experiment_id in wanted]
    _LOGGER.info(
        "running %d experiment(s) (quick=%s, sim_frames=%s, n_frames=%d)",
        len(specs), quick, sim_frames, trace.n_frames,
        extra={"experiments": len(specs), "quick": bool(quick)},
    )
    supervised = (
        checkpoint_dir is not None or max_retries > 0 or timeout_s is not None
        or fault_plan is not None or report
    )
    kwargs = dict(
        base_seed=base_seed,
        max_retries=max_retries,
        timeout_s=timeout_s,
        checkpoint_dir=checkpoint_dir,
        resume=resume,
        manifest=campaign_manifest(trace, quick, sim_frames),
        fail_fast=not supervised,
        on_event=on_event,
        workers=workers,
    )
    if sleep is not None:
        kwargs["sleep"] = sleep
    if fault_plan is not None:
        with fault_plan.active():
            campaign = run_campaign(specs, **kwargs)
    else:
        campaign = run_campaign(specs, **kwargs)
    return campaign if report else campaign.results


def summary_lines(results):
    """One human-readable comparison line per experiment."""
    lines = []
    t1 = results["table1"]
    lines.append(
        f"Table 1: avg bandwidth {t1['avg_bandwidth_mbps']:.2f} Mb/s "
        f"(paper {t1['paper']['avg_bandwidth_mbps']:.2f}); compression ratio "
        f"{t1['avg_compression_ratio']:.2f} (paper {t1['paper']['avg_compression_ratio']:.2f})"
    )
    t2 = results["table2"]
    fr, pf = t2["frame"], t2["paper"]["frame"]
    lines.append(
        f"Table 2 (frame): mean {fr.mean:.0f} (paper {pf['mean']:.0f}), "
        f"std {fr.std:.0f} (paper {pf['std']:.0f}), peak/mean {fr.peak_to_mean:.2f} "
        f"(paper {pf['peak_to_mean']:.2f})"
    )
    sl, ps = t2["slice"], t2["paper"]["slice"]
    lines.append(
        f"Table 2 (slice): mean {sl.mean:.0f} (paper {ps['mean']:.0f}), "
        f"CoV {sl.coefficient_of_variation:.2f} (paper {ps['coefficient_of_variation']:.2f})"
    )
    t3 = results["table3"]
    lines.append(
        f"Table 3: VT H={t3['variance_time']:.2f} (paper 0.78), R/S H={t3['rs']:.2f} "
        f"(paper 0.83), Whittle H={t3['whittle'].hurst:.2f}±{1.96 * t3['whittle'].std_error:.2f} "
        f"(paper 0.80±0.088)"
    )
    lines.append(
        f"Fig 2: moving-average relative excursion {results['fig02']['relative_excursion']:.2f}, "
        f"arc correlation {results['fig02']['arc_correlation']:.2f}"
    )
    lines.append(
        f"Fig 3: segment means deviate {np.max(results['fig03']['mean_deviation_sigmas']):.0f} "
        f"i.i.d. sigmas from global mean (i.i.d. bound ~2)"
    )
    dev = results["fig04"]["tail_deviation"]
    lines.append(
        "Fig 4: tail log-deviation pareto={pareto:.2f} < gamma={gamma:.2f} < "
        "lognormal={lognormal:.2f}, normal={normal:.2f}".format(**dev)
    )
    lines.append(
        f"Fig 5: left-tail gamma deviation {results['fig05']['left_tail_deviation']['gamma']:.3f} "
        f"(adequate fit, as in paper)"
    )
    lines.append(f"Fig 6: density L1 discrepancy {results['fig06']['l1_discrepancy']:.3f}")
    f7 = results["fig07"]
    lines.append(
        f"Fig 7: ACF exponential fit rho={f7['rho']:.3f} holds only at short lags; measured "
        f"ACF exceeds exponential extrapolation by x{f7['exp_underestimates_tail']:.0f} at lag 3000"
    )
    f8 = results["fig08"]
    lines.append(f"Fig 8: periodogram low-frequency alpha={f8['alpha']:.2f} -> H={f8['hurst']:.2f}")
    f9 = results["fig09"]
    lines.append(
        f"Fig 9: i.i.d. CI coverage {f9['iid_coverage']:.2f} vs LRD coverage {f9['lrd_coverage']:.2f}"
    )
    f10 = results["fig10"]["levels"]
    sig = {m: v["significant_lags"] for m, v in f10.items()}
    lines.append(f"Fig 10: significant ACF lags after aggregation {sig} (SRD would give ~0-1)")
    lines.append(
        f"Fig 11: variance-time H={results['fig11']['hurst']:.2f} (paper 0.78)"
    )
    lines.append(f"Fig 12: R/S pox H={results['fig12']['hurst']:.2f} (paper 0.83)")
    knees = results["fig14"]["knees"]
    some_key = next(iter(knees))
    lines.append(
        f"Fig 14: {len(results['fig14']['curves'])} Q-C curves computed; e.g. knee of "
        f"{some_key}: C/N={knees[some_key][0]:.1f} Mb/s at T_max={knees[some_key][1]:.2f} ms"
    )
    f15 = results["fig15"]
    lines.append(
        f"Fig 15: gain at N=5 = {f15['mean_gain_at_5']:.2f} (paper {f15['paper_gain_at_5']:.2f})"
    )
    f16 = results["fig16"]
    n_max = max(f16["offsets"])
    n_min = min(f16["offsets"])
    lines.append(
        f"Fig 16: capacity offsets vs trace at N={n_min}: "
        + ", ".join(f"{k}={v:.3f}" for k, v in sorted(f16["offsets"][n_min].items()))
        + f"; at N={n_max}: "
        + ", ".join(f"{k}={v:.3f}" for k, v in sorted(f16["offsets"][n_max].items()))
    )
    f17 = results["fig17"]["processes"]
    lines.append(
        "Fig 17: loss concentration "
        + ", ".join(f"N={n}: {v['concentration']:.2f}" for n, v in sorted(f17.items()))
        + " (same overall loss, very different error processes)"
    )
    tandem = results["fig_net_tandem"]
    lossless = {
        h: tandem["curves"][(h, 0.0)]["tmax_ms"][0] for h in tandem["hops"]
    }
    lines.append(
        "Net tandem: lossless T_max at the lowest capacity grows with path "
        "length: " + ", ".join(f"{h} hop(s)={v:.0f} ms" for h, v in sorted(lossless.items()))
    )
    hh = results["fig_net_hurst_hops"]
    lines.append(
        "Net Hurst/hops: variance-time H "
        + " -> ".join(f"{v:.2f}" for v in hh["hurst_variance_time"])
        + f" across {hh['hops']} hops (self-similarity survives queueing)"
    )
    ac = results["fig_alloc_compare"]
    lines.append(
        "Alloc compare: p99 per-user loss static={static:.3f} -> trade={trade:.3f} "
        "-> harvest={harvest:.3f} -> oracle={oracle:.3f}".format(**ac["p99_loss"])
        + (" (oracle is the lower bound)" if ac["oracle_is_lower_bound"] else "")
    )
    asg = results["fig_alloc_smg"]
    best = max(asg["gain_vs_static"].items(), key=lambda kv: kv[1])
    lines.append(
        f"Alloc SMG: closed-loop harvest needs x{best[1]:.2f} less pool capacity "
        f"than the static partition at epoch length {best[0]} "
        f"(Norros anchor {asg['capacity_norros']:.0f} bytes/slot)"
    )
    return lines
