"""Table 1: parameters for generating the VBR video trace.

Two complementary reproductions:

1. ``run_codec`` pushes a procedural movie through the full intraframe
   codec (DCT, quantization, run-length, Huffman) at reduced frame size
   and reports the measured coding parameters -- demonstrating the
   pipeline the paper used end-to-end;
2. ``run`` reports the calibrated reference trace against the paper's
   published Table 1 (duration, frame count, average bandwidth,
   compression ratio for the 480 x 504, 8 bit/pel format).
"""

from __future__ import annotations

import numpy as np

from repro.experiments.data import reference_trace
from repro.video.codec import IntraframeCodec
from repro.video.starwars import STARWARS_PARAMETERS
from repro.video.synthetic import SyntheticMovie

__all__ = ["run", "run_codec", "PAPER"]

PAPER = {
    "duration_hours": 2.0,
    "video_frames": 171_000,
    "frame_height": 480,
    "frame_width": 504,
    "bits_per_pel": 8,
    "frame_rate": 24.0,
    "slices_per_frame": 30,
    "avg_bandwidth_mbps": 5.34,
    "avg_compression_ratio": 8.70,
}
"""The paper's Table 1 values."""


def run(trace=None):
    """Trace-level Table 1 row values (measured vs paper).

    The compression ratio uses the paper's raw format
    (480 x 504 pels x 8 bits) against the trace's measured bytes per
    frame.
    """
    if trace is None:
        trace = reference_trace()
    p = STARWARS_PARAMETERS
    raw_bytes_per_frame = p["frame_height"] * p["frame_width"] * p["bits_per_pel"] / 8.0
    mean_bytes = float(np.mean(trace.frame_bytes))
    return {
        "duration_hours": trace.duration_seconds / 3600.0,
        "video_frames": trace.n_frames,
        "frame_rate": trace.frame_rate,
        "slices_per_frame": trace.slices_per_frame,
        "avg_bandwidth_mbps": trace.mean_rate_bps / 1e6,
        "avg_compression_ratio": raw_bytes_per_frame / mean_bytes,
        "paper": PAPER,
    }


def run_codec(n_frames=48, height=120, width=128, quant_step=16.0, seed=7):
    """Code a procedural movie and measure the codec's Table 1 numbers.

    Frame size defaults to a 1/16-area version of the paper's format so
    the pure-Python pipeline stays fast; the compression ratio is
    measured against the actual frame size used.
    """
    codec = IntraframeCodec(quant_step=quant_step, slices_per_frame=30)
    movie = SyntheticMovie(n_frames, height=height, width=width, seed=seed)
    trace = codec.encode_movie(movie)
    raw = height * width
    ratios = raw / np.maximum(trace.frame_bytes, 1.0)
    return {
        "n_frames": trace.n_frames,
        "frame_height": height,
        "frame_width": width,
        "quant_step": quant_step,
        "avg_bandwidth_mbps": trace.mean_rate_bps / 1e6,
        "avg_compression_ratio": float(np.mean(ratios)),
        "mean_bytes_per_frame": float(np.mean(trace.frame_bytes)),
        "trace": trace,
    }
