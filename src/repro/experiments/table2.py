"""Table 2: statistics of the VBR video trace (frame and slice)."""

from __future__ import annotations

from repro.experiments.data import reference_trace

__all__ = ["run", "PAPER"]

PAPER = {
    "frame": {
        "time_unit_ms": 41.67,
        "mean": 27_791.0,
        "std": 6_254.0,
        "coefficient_of_variation": 0.23,
        "maximum": 78_459.0,
        "minimum": 8_622.0,
        "peak_to_mean": 2.82,
    },
    "slice": {
        "time_unit_ms": 1.389,
        "mean": 926.4,
        "std": 289.5,
        "coefficient_of_variation": 0.31,
        "maximum": 3_668.0,
        "minimum": 257.0,
        "peak_to_mean": 3.96,
    },
}
"""The paper's Table 2 (bytes per time unit)."""


def run(trace=None):
    """Measured Table 2 for both resolutions, with paper references.

    Returns ``{"frame": TraceSummary, "slice": TraceSummary,
    "paper": PAPER}``.
    """
    if trace is None:
        trace = reference_trace()
    return {
        "frame": trace.summary("frame"),
        "slice": trace.summary("slice"),
        "paper": PAPER,
    }
