"""Table 3: estimates of the Hurst parameter H from all methods."""

from __future__ import annotations

from repro.analysis.hurst import hurst_summary
from repro.experiments.data import reference_trace

__all__ = ["run", "PAPER"]

PAPER = {
    "variance_time": 0.78,
    "rs": 0.83,
    "rs_aggregated": 0.78,
    "rs_varied": (0.81, 0.83),
    "whittle": 0.80,
    "whittle_ci_halfwidth": 0.088,
}
"""The paper's Table 3 estimates."""


def run(trace=None, whittle_m=None):
    """All Hurst estimates for the (frame-level) trace.

    Returns the dict of :func:`repro.analysis.hurst.hurst_summary`
    plus the paper's reference values under ``"paper"``.
    """
    if trace is None:
        trace = reference_trace()
    result = hurst_summary(trace.frame_bytes, whittle_m=whittle_m)
    result["paper"] = PAPER
    return result
