"""repro.net: a deterministic multi-hop network simulator.

The paper studies self-similar VBR video through a *single* finite
buffer; this package carries the same slot-fluid traffic model through
arbitrary multi-hop topologies.  The pieces:

- :mod:`repro.net.scheduler` -- the deterministic discrete-event core
  (monotonic heap, stable FIFO tie-breaking, optional event trace);
- :mod:`repro.net.link` / :mod:`repro.net.node` -- topology primitives:
  directed links with capacity and propagation delay, nodes with
  per-port finite buffers and per-hop statistics;
- :mod:`repro.net.sched` -- pluggable per-hop disciplines (FIFO, strict
  priority, weighted fair queueing) sharing the verified slot-fluid
  drop arithmetic of :func:`repro.simulation.queue.simulate_queue`;
- :mod:`repro.net.flow` -- traffic sources walking a path in constant
  memory, with end-to-end delay/loss accounting;
- :mod:`repro.net.topology` -- declarative specs, network assembly and
  the run loop (``repro net`` CLI input format);
- :mod:`repro.net.sweep` -- parameter sweeps over topologies through
  the :mod:`repro.par` process pool.

The anchor invariant: a one-flow, one-hop FIFO topology reproduces the
single-queue simulator bit for bit -- same arrivals, capacity and
buffer give the identical loss and backlog trajectory.  Everything
multi-hop is then an extension of an already-verified base case.
"""

from repro.net.flow import Flow, FlowStats, array_slots, chunk_slots, stream_slots
from repro.net.link import Link
from repro.net.node import Node, Port
from repro.net.sched import (
    DISCIPLINES,
    Discipline,
    FIFODiscipline,
    PriorityDiscipline,
    StepResult,
    WFQDiscipline,
    make_discipline,
)
from repro.net.scheduler import PHASE_ARRIVAL, PHASE_SERVICE, EventScheduler
from repro.net.sweep import run_topology_task, sweep_topologies
from repro.net.topology import Network, build_network, run_topology, spec_from_json

__all__ = [
    "EventScheduler",
    "PHASE_ARRIVAL",
    "PHASE_SERVICE",
    "Link",
    "Node",
    "Port",
    "Discipline",
    "FIFODiscipline",
    "PriorityDiscipline",
    "WFQDiscipline",
    "StepResult",
    "DISCIPLINES",
    "make_discipline",
    "Flow",
    "FlowStats",
    "array_slots",
    "chunk_slots",
    "stream_slots",
    "Network",
    "build_network",
    "run_topology",
    "spec_from_json",
    "run_topology_task",
    "sweep_topologies",
]
