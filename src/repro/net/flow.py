"""Flows: traffic sources walking a path, and their end-to-end stats.

A :class:`Flow` binds a per-slot byte source to a path of node names.
Sources are plain iterators of floats so anything chunked plugs in
without materializing the run:

- :func:`array_slots` replays an in-memory series (trace-driven runs);
- :func:`chunk_slots` drains a :class:`repro.stream.sources.ChunkSource`
  (fGn / fARIMA model traffic) chunk by chunk in O(chunk) memory;
- :func:`stream_slots` drains any iterable of numpy chunks -- e.g. a
  fully assembled :class:`repro.stream.pipeline.Stream` with marginal
  transforms attached -- again in constant memory.

:class:`FlowStats` accumulates the end-to-end view in O(1) memory:
offered / delivered / lost volume and byte-weighted emission and
delivery times, whose difference is the fluid mean end-to-end latency.
"""

from __future__ import annotations

import numpy as np

from repro._validation import as_1d_float_array, require_positive_int

__all__ = ["Flow", "FlowStats", "array_slots", "chunk_slots", "stream_slots"]


def array_slots(values):
    """Per-slot volumes from an in-memory series (validated, non-negative)."""
    arr = as_1d_float_array(values, "values")
    if np.any(arr < 0):
        raise ValueError("values must be non-negative")
    return iter(arr.tolist())


def stream_slots(chunks, clip_negative=True):
    """Per-slot volumes from any iterable of numpy chunks.

    Model-generated traffic can dip below zero in the Gaussian domain;
    ``clip_negative`` floors each slot at zero (the convention the
    paper's generator uses when a marginal transform is not applied).
    """
    for chunk in chunks:
        arr = np.asarray(chunk, dtype=float)
        if clip_negative:
            arr = np.maximum(arr, 0.0)
        yield from arr.tolist()


def chunk_slots(source, n, chunk_size=8_192, rng=None, clip_negative=True):
    """Per-slot volumes from a :class:`~repro.stream.sources.ChunkSource`.

    Drains ``source.chunks(n, chunk_size, rng)`` lazily -- memory stays
    O(chunk_size) however long the run is.
    """
    n = require_positive_int(n, "n")
    chunk_size = require_positive_int(chunk_size, "chunk_size")
    return stream_slots(source.chunks(n, chunk_size, rng=rng),
                        clip_negative=clip_negative)


class FlowStats:
    """End-to-end accounting for one flow, O(1) memory."""

    def __init__(self):
        self.offered_bytes = 0.0
        self.delivered_bytes = 0.0
        self.lost_bytes = 0.0
        self.slots_emitted = 0
        self.first_delivery_slot = None
        self.last_delivery_slot = None
        self._offered_time_sum = 0.0
        self._delivered_time_sum = 0.0

    def record_emission(self, slot, volume):
        self.slots_emitted += 1
        if volume > 0.0:
            self.offered_bytes += volume
            self._offered_time_sum += slot * volume

    def record_delivery(self, slot, volume):
        if volume <= 0.0:
            return
        self.delivered_bytes += volume
        self._delivered_time_sum += slot * volume
        if self.first_delivery_slot is None:
            self.first_delivery_slot = slot
        self.last_delivery_slot = slot

    def record_loss(self, volume):
        self.lost_bytes += volume

    @property
    def loss_rate(self):
        """Lost-to-offered byte ratio across every hop of the path."""
        return self.lost_bytes / self.offered_bytes if self.offered_bytes > 0 else 0.0

    @property
    def delivered_fraction(self):
        """Share of offered bytes that reached the destination."""
        return (
            self.delivered_bytes / self.offered_bytes
            if self.offered_bytes > 0 else 0.0
        )

    @property
    def mean_latency_slots(self):
        """Fluid mean end-to-end latency in slots.

        Byte-weighted mean delivery time minus byte-weighted mean
        emission time.  Exact when nothing is lost; with loss it is the
        fluid approximation (lost bytes leave the emission average but
        never reach the delivery average).
        """
        if self.delivered_bytes <= 0.0 or self.offered_bytes <= 0.0:
            return 0.0
        return (
            self._delivered_time_sum / self.delivered_bytes
            - self._offered_time_sum / self.offered_bytes
        )

    def summary(self):
        """Per-flow metrics as a plain JSON-able dict."""
        return {
            "offered_bytes": self.offered_bytes,
            "delivered_bytes": self.delivered_bytes,
            "lost_bytes": self.lost_bytes,
            "loss_rate": self.loss_rate,
            "delivered_fraction": self.delivered_fraction,
            "mean_latency_slots": self.mean_latency_slots,
            "slots_emitted": self.slots_emitted,
            "first_delivery_slot": self.first_delivery_slot,
            "last_delivery_slot": self.last_delivery_slot,
        }


class Flow:
    """One traffic source walking ``path`` through the topology.

    Parameters
    ----------
    name:
        Unique flow identifier (the class key at every port it crosses).
    path:
        Node names from ingress to destination; queueing happens at the
        output port of every node except the last.
    slots:
        Iterator of per-slot byte volumes (see the module helpers).
    priority:
        Class priority for :class:`~repro.net.sched.PriorityDiscipline`
        ports on the path (0 = highest).
    weight:
        Class weight for :class:`~repro.net.sched.WFQDiscipline` ports.
    start_slot:
        First slot at which the source emits.
    """

    def __init__(self, name, path, slots, priority=0, weight=1.0, start_slot=0):
        if not name:
            raise ValueError("flow name must be non-empty")
        path = tuple(path)
        if len(path) < 2:
            raise ValueError(
                f"flow {name!r} path must visit at least two nodes, got {path!r}"
            )
        if len(set(path)) != len(path):
            raise ValueError(f"flow {name!r} path revisits a node: {path!r}")
        start_slot = int(start_slot)
        if start_slot < 0:
            raise ValueError(f"start_slot must be >= 0, got {start_slot}")
        self.name = name
        self.path = path
        self.priority = int(priority)
        self.weight = float(weight)
        self.start_slot = start_slot
        self.stats = FlowStats()
        self._slots = iter(slots)

    @property
    def ingress(self):
        """The first node of the path (where emissions enter)."""
        return self.path[0]

    @property
    def destination(self):
        """The last node of the path (where fluid is delivered)."""
        return self.path[-1]

    def next_hop(self, node):
        """The node after ``node`` on this flow's path (None at the end)."""
        idx = self.path.index(node)
        return self.path[idx + 1] if idx + 1 < len(self.path) else None

    def next_volume(self):
        """The next slot's byte volume, or ``None`` when exhausted."""
        try:
            volume = float(next(self._slots))
        except StopIteration:
            return None
        if volume < 0.0 or not np.isfinite(volume):
            raise ValueError(
                f"flow {self.name!r} emitted an invalid volume {volume!r}"
            )
        return volume

    def __repr__(self):
        return (
            f"Flow({self.name!r}, path={'->'.join(self.path)}, "
            f"priority={self.priority}, weight={self.weight:g})"
        )
