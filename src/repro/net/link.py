"""Links: directed capacity + propagation delay between two nodes.

A link carries the fluid served by its source port.  Capacity is
expressed in bytes per slot (the same unit as the trace series and the
single-queue simulator); propagation delay is an integer number of
slots.  Fluid served during slot ``t`` joins the downstream queue at
slot ``t + 1 + delay_slots`` -- the ``+ 1`` is store-and-forward at
slot granularity: a byte cannot be served upstream and downstream
within the same slot.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro._validation import require_positive

__all__ = ["Link"]


@dataclass(frozen=True)
class Link:
    """One directed link of the topology."""

    src: str
    """Name of the upstream node (the queue lives at its output port)."""

    dst: str
    """Name of the downstream node."""

    capacity_per_slot: float
    """Service capacity in bytes per slot."""

    delay_slots: int = 0
    """Propagation delay in whole slots (>= 0)."""

    def __post_init__(self):
        if not self.src or not self.dst:
            raise ValueError("link src and dst must be non-empty node names")
        if self.src == self.dst:
            raise ValueError(f"link cannot loop back to its own node {self.src!r}")
        object.__setattr__(
            self, "capacity_per_slot",
            require_positive(self.capacity_per_slot, "capacity_per_slot"),
        )
        delay = self.delay_slots
        if isinstance(delay, bool) or not isinstance(delay, int):
            raise TypeError(f"delay_slots must be an integer, got {delay!r}")
        if delay < 0:
            raise ValueError(f"delay_slots must be >= 0, got {delay}")

    @property
    def name(self):
        """Stable identifier used for ports and metrics (``src->dst``)."""
        return f"{self.src}->{self.dst}"

    @property
    def latency_slots(self):
        """Slots between upstream service and downstream arrival."""
        return 1 + self.delay_slots
