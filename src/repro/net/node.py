"""Nodes and their output ports (the queues of the network).

A :class:`Node` owns one finite-buffer output :class:`Port` per egress
link.  The port is where a hop's queueing happens: arrivals delivered
during a slot accumulate in the port's pending dict, the port's
discipline (:mod:`repro.net.sched`) is stepped once per slot, and the
served fluid is handed to the link.  Each port keeps its own per-hop
statistics -- served/lost/offered volume, backlog mean and peak, the
fluid queueing-delay mean and jitter (``backlog / capacity`` after
each slot) -- plus per-flow accounting, and can optionally record the
full backlog / departure / loss series for trajectory-level tests and
the Hurst-across-hops experiment.
"""

from __future__ import annotations

import math

from repro._validation import require_nonnegative
from repro.net.sched import make_discipline

__all__ = ["Node", "Port"]


class Port:
    """One output queue: a discipline plus per-hop accounting."""

    def __init__(self, node, link, discipline_name, buffer_bytes,
                 record_series=False):
        self.node = node
        self.link = link
        self.name = link.name
        self.discipline_name = discipline_name
        self.discipline = make_discipline(
            discipline_name, link.capacity_per_slot, buffer_bytes
        )
        self.pending = {}
        self.slots = 0
        self.offered_bytes = 0.0
        self.served_bytes = 0.0
        self.lost_bytes = 0.0
        self.peak_backlog = 0.0
        self._backlog_sum = 0.0
        self._delay_sum = 0.0
        self._delay_sq_sum = 0.0
        self.flow_offered = {}
        self.flow_served = {}
        self.flow_lost = {}
        self.backlog_series = [] if record_series else None
        self.departure_series = [] if record_series else None
        self.loss_series = [] if record_series else None

    def deliver(self, flow, volume):
        """Accumulate fluid arriving for ``flow`` during the current slot."""
        self.pending[flow] = self.pending.get(flow, 0.0) + volume
        self.offered_bytes += volume
        self.flow_offered[flow] = self.flow_offered.get(flow, 0.0) + volume

    def service(self):
        """Run one slot of the discipline; returns its StepResult."""
        result = self.discipline.step(self.pending)
        self.pending = {}
        self.slots += 1
        self.served_bytes += result.served_total
        self.lost_bytes += result.lost_total
        backlog = result.backlog
        if backlog > self.peak_backlog:
            self.peak_backlog = backlog
        self._backlog_sum += backlog
        delay = backlog / self.link.capacity_per_slot
        self._delay_sum += delay
        self._delay_sq_sum += delay * delay
        for flow, volume in result.served.items():
            self.flow_served[flow] = self.flow_served.get(flow, 0.0) + volume
        for flow, volume in result.lost.items():
            self.flow_lost[flow] = self.flow_lost.get(flow, 0.0) + volume
        if self.backlog_series is not None:
            self.backlog_series.append(backlog)
            self.departure_series.append(result.served_total)
            self.loss_series.append(result.lost_total)
        return result

    @property
    def final_backlog(self):
        """Bytes left in the port buffer after the last slot."""
        return self.discipline.backlog

    @property
    def loss_rate(self):
        """Lost-to-offered byte ratio at this hop."""
        return self.lost_bytes / self.offered_bytes if self.offered_bytes > 0 else 0.0

    @property
    def mean_backlog(self):
        """Mean post-service backlog over the run."""
        return self._backlog_sum / self.slots if self.slots else 0.0

    @property
    def mean_delay_slots(self):
        """Mean fluid queueing delay (``backlog / capacity``) in slots."""
        return self._delay_sum / self.slots if self.slots else 0.0

    @property
    def delay_jitter_slots(self):
        """Standard deviation of the per-slot queueing delay."""
        if not self.slots:
            return 0.0
        mean = self._delay_sum / self.slots
        var = self._delay_sq_sum / self.slots - mean * mean
        return math.sqrt(var) if var > 0.0 else 0.0

    @property
    def utilization(self):
        """Served volume over total service opportunity."""
        if not self.slots:
            return 0.0
        return self.served_bytes / (self.link.capacity_per_slot * self.slots)

    def summary(self):
        """Per-hop metrics as a plain JSON-able dict."""
        return {
            "port": self.name,
            "discipline": self.discipline_name,
            "capacity_per_slot": self.link.capacity_per_slot,
            "buffer_bytes": self.discipline.buffer_bytes,
            "slots": self.slots,
            "offered_bytes": self.offered_bytes,
            "served_bytes": self.served_bytes,
            "lost_bytes": self.lost_bytes,
            "loss_rate": self.loss_rate,
            "final_backlog": self.final_backlog,
            "peak_backlog": self.peak_backlog,
            "mean_backlog": self.mean_backlog,
            "mean_delay_slots": self.mean_delay_slots,
            "delay_jitter_slots": self.delay_jitter_slots,
            "utilization": self.utilization,
            "flows": {
                flow: {
                    "offered_bytes": self.flow_offered.get(flow, 0.0),
                    "served_bytes": self.flow_served.get(flow, 0.0),
                    "lost_bytes": self.flow_lost.get(flow, 0.0),
                }
                for flow in self.discipline.flows
            },
        }

    def __repr__(self):
        return (
            f"Port({self.name}, {self.discipline_name}, "
            f"c={self.link.capacity_per_slot:.6g}, "
            f"q={self.discipline.buffer_bytes:.6g})"
        )


class Node:
    """A switching element: per-egress-link finite-buffer output ports."""

    def __init__(self, name, buffer_bytes, discipline="fifo"):
        if not name:
            raise ValueError("node name must be non-empty")
        self.name = name
        self.buffer_bytes = require_nonnegative(buffer_bytes, "buffer_bytes")
        self.discipline_name = discipline
        self.ports = {}

    def attach(self, link, record_series=False):
        """Create the output port for an egress ``link``; returns it."""
        if link.src != self.name:
            raise ValueError(
                f"link {link.name} does not originate at node {self.name!r}"
            )
        if link.dst in self.ports:
            raise ValueError(f"node {self.name!r} already has a port to {link.dst!r}")
        port = Port(
            self.name, link, self.discipline_name, self.buffer_bytes,
            record_series=record_series,
        )
        self.ports[link.dst] = port
        return port

    def port_to(self, dst):
        """The output port toward neighbour ``dst`` (raises if absent)."""
        try:
            return self.ports[dst]
        except KeyError:
            raise KeyError(
                f"node {self.name!r} has no link toward {dst!r}"
            ) from None

    def __repr__(self):
        return (
            f"Node({self.name!r}, buffer={self.buffer_bytes:.6g}, "
            f"discipline={self.discipline_name!r}, ports={list(self.ports)})"
        )
