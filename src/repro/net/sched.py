"""Per-hop scheduling disciplines: FIFO, strict priority, weighted fair.

Every output port of a :class:`repro.net.node.Node` owns one
discipline instance.  A discipline is advanced one slot at a time:
:meth:`~Discipline.step` takes the per-flow fluid volumes that arrived
during the slot and returns what was served (forwarded downstream),
what was dropped, and the backlog left behind -- per flow and in
aggregate.

All three disciplines share the drop/backlog arithmetic of the
verified single-queue simulator through
:mod:`repro.simulation.slotfluid`:

- :class:`FIFODiscipline` *is* the slot-fluid recursion.  With a
  single flow its backlog and loss trajectory is bit-for-bit identical
  to :func:`repro.simulation.queue.simulate_queue` (a tier-1 invariant
  test pins this); with several flows the aggregate follows the same
  recursion and service/loss are apportioned by fluid share.
- :class:`PriorityDiscipline` serves classes in strict priority order
  and, under buffer pressure, pushes out low-priority fluid first --
  the multi-hop generalization of
  :func:`repro.simulation.priority.simulate_priority_queue`.  The drop
  volume comes from the shared :func:`~repro.simulation.slotfluid.clamp_backlog`.
- :class:`WFQDiscipline` splits capacity across backlogged classes in
  weight proportion with work-conserving redistribution (fluid
  weighted fair queueing) and drops overflow in proportion to each
  class's share of the buffer, again via the shared clamp.

Flows are registered once (:meth:`~Discipline.register`) before the
run; registration order is the deterministic tie-break for equal
priorities and the summation order for aggregates.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro._validation import require_nonnegative, require_positive
from repro.simulation.slotfluid import clamp_backlog, run_slots, slot_step

__all__ = [
    "StepResult",
    "Discipline",
    "FIFODiscipline",
    "PriorityDiscipline",
    "WFQDiscipline",
    "make_discipline",
    "DISCIPLINES",
]


@dataclass(frozen=True)
class StepResult:
    """Outcome of one slot at one port."""

    served: dict
    """Bytes forwarded downstream this slot, per flow."""

    lost: dict
    """Bytes dropped this slot, per flow."""

    backlog: float
    """Aggregate backlog left in the port buffer after the slot."""

    served_total: float
    """Aggregate bytes forwarded this slot."""

    lost_total: float
    """Aggregate bytes dropped this slot."""


@dataclass
class _FlowClass:
    priority: int = 0
    weight: float = 1.0
    backlog: float = 0.0


class Discipline:
    """Base class: one finite-buffer queue drained at fixed capacity."""

    def __init__(self, capacity_per_slot, buffer_bytes):
        self.capacity_per_slot = require_positive(capacity_per_slot, "capacity_per_slot")
        self.buffer_bytes = require_nonnegative(buffer_bytes, "buffer_bytes")
        self._classes = {}

    def register(self, flow, priority=0, weight=1.0):
        """Declare a flow that will traverse this port.

        Must be called before the run starts; registration order is the
        deterministic ordering used for ties and summations.
        """
        if flow in self._classes:
            raise ValueError(f"flow {flow!r} is already registered at this port")
        self._classes[flow] = _FlowClass(
            priority=int(priority),
            weight=require_positive(weight, "weight"),
        )

    @property
    def flows(self):
        """Registered flow names, in registration order."""
        return list(self._classes)

    @property
    def backlog(self):
        """Aggregate bytes currently buffered."""
        return sum(cls.backlog for cls in self._classes.values())

    def step(self, arrivals):
        """Advance one slot; ``arrivals`` maps flow name -> bytes."""
        raise NotImplementedError

    def _check_arrivals(self, arrivals):
        for flow in arrivals:
            if flow not in self._classes:
                raise KeyError(f"flow {flow!r} was never registered at this port")


class FIFODiscipline(Discipline):
    """Single shared queue: the slot-fluid recursion itself.

    The aggregate backlog follows the *exact* arithmetic of
    :func:`repro.simulation.queue.simulate_queue` (the single-flow path
    forwards and drops the recursion's own volumes, so a one-flow
    one-hop topology reproduces the reference simulator bit for bit).
    With several flows, service and loss are split in proportion to
    each flow's share of the fluid present during the slot.
    """

    def __init__(self, capacity_per_slot, buffer_bytes):
        super().__init__(capacity_per_slot, buffer_bytes)
        self._backlog = 0.0

    @property
    def backlog(self):
        return self._backlog

    def step_many(self, values, kernel=None):
        """Advance many slots at once for a single-flow port.

        ``values`` is the per-slot arrival array for the port's one
        registered flow; the port's backlog is advanced through
        :func:`repro.simulation.slotfluid.run_slots` under the chosen
        ``kernel`` (``"reference"`` reproduces a ``step()`` loop bit for
        bit; ``"vectorized"`` is the statistically-equivalent fast
        path).  Per-slot served volumes are not materialized -- this is
        the bulk path for hops whose downstream effects are not being
        traced slot by slot.  Returns a dict with the aggregate
        ``backlog``, ``lost``, ``peak`` and ``offered`` totals over the
        advanced slots.
        """
        classes = self._classes
        if len(classes) != 1:
            raise ValueError(
                f"step_many needs exactly one registered flow, "
                f"got {len(classes)}"
            )
        backlog, lost, peak, offered = run_slots(
            values, self.capacity_per_slot, self.buffer_bytes,
            state=(self._backlog, 0.0, self._backlog, 0.0), kernel=kernel,
        )
        self._backlog = backlog
        (cls,) = classes.values()
        cls.backlog = backlog
        return {"backlog": backlog, "lost": lost, "peak": peak,
                "offered": offered}

    def step(self, arrivals):
        self._check_arrivals(arrivals)
        classes = self._classes
        if len(classes) == 1:
            # Exact path: one flow owns the queue, no apportionment.
            (flow, cls), = classes.items()
            arrival = arrivals.get(flow, 0.0)
            self._backlog, served, lost = slot_step(
                self._backlog, arrival, self.capacity_per_slot, self.buffer_bytes
            )
            cls.backlog = self._backlog
            return StepResult(
                served={flow: served} if served > 0.0 else {},
                lost={flow: lost} if lost > 0.0 else {},
                backlog=self._backlog,
                served_total=served,
                lost_total=lost,
            )
        # Aggregate recursion first (canonical trajectory), then fluid-
        # share apportionment across the registered flows.
        available = {
            flow: cls.backlog + arrivals.get(flow, 0.0)
            for flow, cls in classes.items()
        }
        arrival_total = sum(arrivals.get(flow, 0.0) for flow in classes)
        prev_backlog = self._backlog
        self._backlog, served_total, lost_total = slot_step(
            prev_backlog, arrival_total, self.capacity_per_slot, self.buffer_bytes
        )
        total_available = prev_backlog + arrival_total
        served = {}
        lost = {}
        if total_available > 0.0:
            for flow, cls in classes.items():
                share = available[flow] / total_available
                s = served_total * share
                drop = lost_total * share
                if s > 0.0:
                    served[flow] = s
                if drop > 0.0:
                    lost[flow] = drop
                cls.backlog = max(available[flow] - s - drop, 0.0)
        return StepResult(
            served=served,
            lost=lost,
            backlog=self._backlog,
            served_total=served_total,
            lost_total=lost_total,
        )


class PriorityDiscipline(Discipline):
    """Strict priority service with low-priority pushout.

    Classes are served in ascending ``priority`` order (0 is highest);
    on overflow, fluid is pushed out starting from the lowest priority.
    The overflow volume is the shared slot-fluid drop rule applied to
    the aggregate backlog.
    """

    def _ordered(self, reverse=False):
        items = list(self._classes.items())
        ranked = sorted(
            range(len(items)), key=lambda i: (items[i][1].priority, i),
            reverse=reverse,
        )
        return [items[i] for i in ranked]

    def step(self, arrivals):
        self._check_arrivals(arrivals)
        served = {}
        lost = {}
        for flow, cls in self._classes.items():
            cls.backlog += arrivals.get(flow, 0.0)
        remaining = self.capacity_per_slot
        for flow, cls in self._ordered():
            if remaining <= 0.0:
                break
            s = cls.backlog if cls.backlog < remaining else remaining
            if s > 0.0:
                cls.backlog -= s
                remaining -= s
                served[flow] = s
        total = sum(cls.backlog for cls in self._classes.values())
        _, overflow = clamp_backlog(total, self.buffer_bytes)
        if overflow > 0.0:
            for flow, cls in self._ordered(reverse=True):
                drop = cls.backlog if cls.backlog < overflow else overflow
                if drop > 0.0:
                    cls.backlog -= drop
                    overflow -= drop
                    lost[flow] = drop
                if overflow <= 0.0:
                    break
        return StepResult(
            served=served,
            lost=lost,
            backlog=self.backlog,
            served_total=sum(served.values()),
            lost_total=sum(lost.values()),
        )


class WFQDiscipline(Discipline):
    """Fluid weighted fair queueing over a shared buffer.

    Capacity is divided among backlogged classes in proportion to their
    weights; a class that cannot use its share returns the excess,
    which is redistributed over the remaining backlogged classes
    (work conservation).  Overflow -- the shared slot-fluid drop rule
    on the aggregate backlog -- is dropped from each class in
    proportion to its share of the buffered fluid.
    """

    def step(self, arrivals):
        self._check_arrivals(arrivals)
        served = {}
        lost = {}
        for flow, cls in self._classes.items():
            cls.backlog += arrivals.get(flow, 0.0)
        # Work-conserving water-filling: every round hands the unused
        # capacity of satisfied classes back to the still-backlogged
        # ones; each round fully drains at least one class, so the loop
        # is bounded by the class count.
        remaining = self.capacity_per_slot
        active = [flow for flow, cls in self._classes.items() if cls.backlog > 0.0]
        while remaining > 0.0 and active:
            total_weight = sum(self._classes[f].weight for f in active)
            next_active = []
            allocated = 0.0
            for flow in active:
                cls = self._classes[flow]
                share = remaining * cls.weight / total_weight
                if cls.backlog <= share:
                    take = cls.backlog
                else:
                    take = share
                    next_active.append(flow)
                if take > 0.0:
                    cls.backlog -= take
                    served[flow] = served.get(flow, 0.0) + take
                    allocated += take
            remaining -= allocated
            if len(next_active) == len(active) or allocated <= 0.0:
                break
            active = next_active
        total = sum(cls.backlog for cls in self._classes.values())
        _, overflow = clamp_backlog(total, self.buffer_bytes)
        if overflow > 0.0 and total > 0.0:
            for flow, cls in self._classes.items():
                drop = overflow * (cls.backlog / total)
                if drop > 0.0:
                    cls.backlog = max(cls.backlog - drop, 0.0)
                    lost[flow] = drop
        return StepResult(
            served=served,
            lost=lost,
            backlog=self.backlog,
            served_total=sum(served.values()),
            lost_total=sum(lost.values()),
        )


DISCIPLINES = {
    "fifo": FIFODiscipline,
    "priority": PriorityDiscipline,
    "wfq": WFQDiscipline,
}
"""Discipline name -> class, as referenced by topology specs."""


def make_discipline(name, capacity_per_slot, buffer_bytes):
    """Build a discipline by spec name (``fifo``, ``priority``, ``wfq``)."""
    try:
        cls = DISCIPLINES[name]
    except KeyError:
        raise ValueError(
            f"discipline must be one of {sorted(DISCIPLINES)}, got {name!r}"
        ) from None
    return cls(capacity_per_slot, buffer_bytes)
