"""Deterministic discrete-event core for the network simulator.

:class:`EventScheduler` is a monotonic event heap.  Events are ordered
by ``(time, phase, seq)``: time is the slot clock, ``phase`` separates
the within-slot stages (arrivals must land before service runs), and
``seq`` is a monotone insertion counter, so events scheduled at the
same ``(time, phase)`` run in FIFO scheduling order.  Nothing about
execution depends on hashing, thread timing or iteration order of any
dict, which is what makes whole-topology runs seed-reproducible: the
same topology and seeds produce the same event sequence, byte for
byte, on every run and at every worker count of a parameter sweep.

The scheduler can record its own execution as an *event trace* -- one
``(time, phase, seq, label)`` tuple per dispatched event -- which the
determinism wall hashes and compares across runs.
"""

from __future__ import annotations

import heapq

from repro.obs import metrics

__all__ = ["PHASE_ARRIVAL", "PHASE_SERVICE", "EventScheduler"]

PHASE_ARRIVAL = 0
"""Within-slot stage for deliveries into a port (runs first)."""

PHASE_SERVICE = 1
"""Within-slot stage for port service (runs after all arrivals)."""

_EVENTS = metrics.registry().counter(
    "repro_net_events_total",
    help="Events dispatched by the network scheduler",
    unit="events",
)


class EventScheduler:
    """Monotonic event heap with stable FIFO tie-breaking.

    Parameters
    ----------
    record_trace:
        Keep a ``(time, phase, seq, label)`` tuple per dispatched
        event.  O(events) memory -- enable it for determinism checks
        and debugging, not for long production runs.

    ``schedule`` may be called from inside a running callback (that is
    how links chain deliveries and sources chain emissions); scheduling
    into the past raises.
    """

    def __init__(self, record_trace=False):
        self._heap = []
        self._seq = 0
        self._now = 0.0
        self._running = False
        self.events_dispatched = 0
        self.trace = [] if record_trace else None

    @property
    def now(self):
        """Current simulation time (the slot clock)."""
        return self._now

    def schedule(self, time, callback, *args, phase=PHASE_SERVICE, label=""):
        """Enqueue ``callback(*args)`` at ``time``; returns the event seq."""
        time = float(time)
        if time < self._now:
            raise ValueError(
                f"cannot schedule into the past: {time} < now {self._now}"
            )
        seq = self._seq
        self._seq += 1
        heapq.heappush(self._heap, (time, int(phase), seq, label, callback, args))
        return seq

    def run(self, until=None):
        """Dispatch events in ``(time, phase, seq)`` order.

        Stops when the heap is empty, or -- with ``until`` -- before
        the first event with ``time >= until`` (that event stays
        queued).  Returns the number of events dispatched by this call.
        """
        if self._running:
            raise RuntimeError("scheduler is already running")
        self._running = True
        dispatched = 0
        try:
            while self._heap:
                time, phase, seq, label, callback, args = self._heap[0]
                if until is not None and time >= until:
                    break
                heapq.heappop(self._heap)
                self._now = time
                if self.trace is not None:
                    self.trace.append((time, phase, seq, label))
                callback(*args)
                dispatched += 1
        finally:
            self._running = False
        self.events_dispatched += dispatched
        _EVENTS.inc(dispatched)
        return dispatched

    def __len__(self):
        return len(self._heap)

    def __repr__(self):
        return (
            f"EventScheduler(now={self._now:g}, pending={len(self._heap)}, "
            f"dispatched={self.events_dispatched})"
        )
