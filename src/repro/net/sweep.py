"""Topology sweeps: fan a batch of specs across worker processes.

A sweep is an embarrassingly parallel map of :func:`run_topology` over
a list of declarative specs, executed through :func:`repro.par.pool_map`
so it inherits the pool's contract: results are returned in spec
order and are identical at every worker count (each run's randomness
is owned by the seeds inside its spec, not by the pool).
"""

from __future__ import annotations

from repro.net.topology import run_topology
from repro.par import pool_map

__all__ = ["run_topology_task", "sweep_topologies"]


def run_topology_task(spec):
    """Pool task: run one topology spec (module-level, so it pickles)."""
    return run_topology(spec)


def sweep_topologies(specs, workers=1):
    """Run every spec in ``specs``; returns results in spec order.

    ``workers > 1`` fans the specs across processes.  Record flags are
    honoured per spec (``record_series`` / ``record_events`` keys), so
    a sweep can mix cheap summary runs with fully traced ones.
    """
    specs = list(specs)
    if not specs:
        return []
    return pool_map(run_topology_task, specs, workers=workers, label="net.sweep")
