"""Topology assembly and the simulation run loop.

:class:`Network` wires nodes, links and flows together and drives them
through the deterministic event core; :func:`run_topology` does the
same from a small declarative spec (a plain dict, or the parsed form
of a JSON file -- the ``repro net`` CLI input):

.. code-block:: python

    spec = {
        "slots": 8_000,
        "slot_seconds": 1 / 24,
        "nodes": [
            {"name": "a", "buffer_bytes": 64_000, "discipline": "fifo"},
            {"name": "b", "buffer_bytes": 64_000},
        ],
        "links": [
            {"src": "a", "dst": "b", "capacity_per_slot": 30_000, "delay_slots": 1},
            {"src": "b", "dst": "c", "capacity_per_slot": 30_000},
        ],
        "flows": [
            {"name": "video", "path": ["a", "b", "c"],
             "source": {"kind": "fgn", "hurst": 0.8, "seed": 7,
                        "marginal": "paper"}},
        ],
    }
    result = run_topology(spec)

Source kinds: ``array`` (explicit per-slot values), ``trace`` (the
calibrated Star-Wars-like synthesizer), ``fgn`` (a constant-memory
:mod:`repro.stream` source, optionally pushed through the paper's
Gamma/Pareto marginal; an optional ``batch`` key pre-synthesizes that
many blocks per stacked FFT, changing nothing in the emitted bytes).
Every random draw happens in a seeded
generator owned by the flow, so a spec is a complete, reproducible
description of a run: same spec, same bytes.

Within one slot the event order is fixed: all deliveries (phase 0,
emissions and link arrivals) land in port buffers first, then every
port serves once (phase 1) in topology order.  Fluid served at slot
``t`` over a link with delay ``d`` joins the downstream port at slot
``t + 1 + d``.  The run stops at the ``slots`` horizon; fluid still in
flight or buffered is reported as backlog, not loss.
"""

from __future__ import annotations

import hashlib
import json

from repro._validation import require_positive_int
from repro.net.flow import Flow, array_slots, stream_slots
from repro.net.link import Link
from repro.net.node import Node
from repro.net.scheduler import PHASE_ARRIVAL, EventScheduler
from repro.obs import log as obs_log
from repro.obs import metrics, trace

__all__ = ["Network", "build_network", "run_topology", "spec_from_json"]

_LOGGER = obs_log.get_logger("net")

_SLOTS = metrics.registry().counter(
    "repro_net_slots_total",
    help="Port-slots serviced by the network simulator",
    unit="slots",
)

_SERVED = metrics.registry().counter(
    "repro_net_served_bytes_total",
    help="Bytes forwarded across all ports",
    unit="bytes",
)

_LOST = metrics.registry().counter(
    "repro_net_lost_bytes_total",
    help="Bytes dropped at port buffers",
    unit="bytes",
)


class Network:
    """An assembled topology, ready to run once.

    ``nodes``/``links``/``flows`` are lists of the respective objects;
    insertion order is the deterministic service and registration
    order.  A network instance is single-use: build, run, read results.
    """

    def __init__(self, nodes, links, flows, record_series=False,
                 record_events=False):
        self.nodes = {}
        for node in nodes:
            if node.name in self.nodes:
                raise ValueError(f"duplicate node name {node.name!r}")
            self.nodes[node.name] = node
        self.links = list(links)
        self.ports = []
        for link in self.links:
            for end in (link.src, link.dst):
                if end not in self.nodes:
                    raise ValueError(
                        f"link {link.name} references unknown node {end!r}"
                    )
            self.ports.append(
                self.nodes[link.src].attach(link, record_series=record_series)
            )
        self.flows = {}
        for flow in flows:
            if flow.name in self.flows:
                raise ValueError(f"duplicate flow name {flow.name!r}")
            self.flows[flow.name] = flow
            for name in flow.path:
                if name not in self.nodes:
                    raise ValueError(
                        f"flow {flow.name!r} path visits unknown node {name!r}"
                    )
            for here, nxt in zip(flow.path[:-1], flow.path[1:]):
                port = self.nodes[here].port_to(nxt)
                port.discipline.register(
                    flow.name, priority=flow.priority, weight=flow.weight
                )
        self.scheduler = EventScheduler(record_trace=record_events)
        self._ran = False

    # -- event callbacks ------------------------------------------------

    def _emit(self, flow):
        volume = flow.next_volume()
        if volume is None:
            return
        slot = self.scheduler.now
        flow.stats.record_emission(slot, volume)
        if volume > 0.0:
            port = self.nodes[flow.ingress].port_to(flow.next_hop(flow.ingress))
            port.deliver(flow.name, volume)
        self.scheduler.schedule(
            slot + 1.0, self._emit, flow,
            phase=PHASE_ARRIVAL, label=f"emit:{flow.name}",
        )

    def _deliver(self, flow, node_name, volume):
        if node_name == flow.destination:
            flow.stats.record_delivery(self.scheduler.now, volume)
            return
        port = self.nodes[node_name].port_to(flow.next_hop(node_name))
        port.deliver(flow.name, volume)

    def _service(self, port, horizon):
        result = port.service()
        slot = self.scheduler.now
        arrival_time = slot + port.link.latency_slots
        for flow_name, volume in result.served.items():
            self.scheduler.schedule(
                arrival_time, self._deliver,
                self.flows[flow_name], port.link.dst, volume,
                phase=PHASE_ARRIVAL, label=f"arrive:{flow_name}@{port.link.dst}",
            )
        for flow_name, volume in result.lost.items():
            self.flows[flow_name].stats.record_loss(volume)
        if slot + 1.0 < horizon:
            self.scheduler.schedule(
                slot + 1.0, self._service, port, horizon,
                label=f"serve:{port.name}",
            )

    # -- running --------------------------------------------------------

    def run(self, slots):
        """Drive every flow and port for ``slots`` slots; returns results.

        The result is a plain dict: per-port and per-flow summaries,
        event counts, and -- when recording was requested -- per-hop
        series and the sha256 of the event trace.
        """
        slots = require_positive_int(slots, "slots")
        if self._ran:
            raise RuntimeError("a Network instance runs exactly once")
        self._ran = True
        for flow in self.flows.values():
            self.scheduler.schedule(
                float(flow.start_slot), self._emit, flow,
                phase=PHASE_ARRIVAL, label=f"emit:{flow.name}",
            )
        for port in self.ports:
            self.scheduler.schedule(
                0.0, self._service, port, float(slots),
                label=f"serve:{port.name}",
            )
        with trace.span(
            "net.run", nodes=len(self.nodes), links=len(self.links),
            flows=len(self.flows), slots=slots,
        ):
            self.scheduler.run(until=float(slots))
        served = sum(port.served_bytes for port in self.ports)
        lost = sum(port.lost_bytes for port in self.ports)
        _SLOTS.inc(sum(port.slots for port in self.ports))
        _SERVED.inc(served)
        _LOST.inc(lost)
        _LOGGER.info(
            "net run: %d slots, %d events, %d port(s), %d flow(s), "
            "%.0f B served, %.0f B lost",
            slots, self.scheduler.events_dispatched, len(self.ports),
            len(self.flows), served, lost,
            extra={"slots": slots, "events": self.scheduler.events_dispatched},
        )
        result = {
            "slots": slots,
            "events": self.scheduler.events_dispatched,
            "ports": {port.name: port.summary() for port in self.ports},
            "flows": {name: flow.stats.summary() for name, flow in self.flows.items()},
        }
        if self.ports and self.ports[0].backlog_series is not None:
            import numpy as np

            result["series"] = {
                port.name: {
                    "backlog": np.asarray(port.backlog_series),
                    "departures": np.asarray(port.departure_series),
                    "loss": np.asarray(port.loss_series),
                }
                for port in self.ports
            }
        if self.scheduler.trace is not None:
            digest = hashlib.sha256()
            for event in self.scheduler.trace:
                digest.update(repr(event).encode())
            result["event_trace_sha256"] = digest.hexdigest()
        return result


# -- declarative specs --------------------------------------------------


def _flow_source(source, slots, start_slot):
    """Build a per-slot volume iterator from a spec's source entry."""
    if not isinstance(source, dict) or "kind" not in source:
        raise ValueError(f'flow source must be a dict with a "kind", got {source!r}')
    kind = source["kind"]
    n = int(source.get("slots", max(slots - start_slot, 1)))
    if kind == "array":
        return array_slots(source["values"])
    if kind == "trace":
        from repro.video.starwars import synthesize_starwars_trace

        trace_obj = synthesize_starwars_trace(
            n_frames=int(source.get("frames", n)),
            seed=int(source.get("seed", 0)),
            with_slices=False,
        )
        return array_slots(trace_obj.frame_bytes[:n])
    if kind == "fgn":
        import numpy as np

        from repro.stream.sources import make_source

        batch = source.get("batch")
        src = make_source(
            source.get("backend", "paxson"),
            hurst=float(source.get("hurst", 0.8)),
            block_size=int(source.get("block_size", 65_536)),
            overlap=int(source.get("overlap", 1_024)),
            batch=None if batch is None else int(batch),
        )
        rng = np.random.default_rng(int(source.get("seed", 0)))
        chunk = int(source.get("chunk", 8_192))
        marginal = source.get("marginal", "paper")
        if marginal == "paper":
            from repro.distributions.hybrid import GammaParetoHybrid

            from repro.stream.pipeline import Stream

            stream = Stream.from_source(src, n, chunk, rng=rng).transform(
                GammaParetoHybrid(27_791.0, 6_254.0, 12.0)
            )
            return stream_slots(stream)
        if isinstance(marginal, dict):
            mean = float(marginal["mean"])
            std = float(marginal["std"])
            scaled = (mean + std * c for c in src.chunks(n, chunk, rng=rng))
            return stream_slots(scaled)
        raise ValueError(
            f'fgn marginal must be "paper" or {{"mean", "std"}}, got {marginal!r}'
        )
    raise ValueError(
        f'source kind must be "array", "trace" or "fgn", got {kind!r}'
    )


def build_network(spec, record_series=None, record_events=None):
    """Assemble a :class:`Network` from a declarative spec dict."""
    if not isinstance(spec, dict):
        raise TypeError(f"spec must be a dict, got {type(spec).__name__}")
    for key in ("nodes", "links", "flows"):
        if not spec.get(key):
            raise ValueError(f'spec must declare at least one entry under "{key}"')
    slots = require_positive_int(spec.get("slots", 0), "slots")
    if record_series is None:
        record_series = bool(spec.get("record_series", False))
    if record_events is None:
        record_events = bool(spec.get("record_events", False))
    nodes = [
        Node(
            entry["name"],
            entry.get("buffer_bytes", 0.0),
            discipline=entry.get("discipline", "fifo"),
        )
        for entry in spec["nodes"]
    ]
    links = [
        Link(
            entry["src"], entry["dst"], entry["capacity_per_slot"],
            delay_slots=int(entry.get("delay_slots", 0)),
        )
        for entry in spec["links"]
    ]
    flows = []
    for entry in spec["flows"]:
        start_slot = int(entry.get("start_slot", 0))
        flows.append(Flow(
            entry["name"],
            entry["path"],
            _flow_source(entry["source"], slots, start_slot),
            priority=int(entry.get("priority", 0)),
            weight=float(entry.get("weight", 1.0)),
            start_slot=start_slot,
        ))
    return Network(
        nodes, links, flows,
        record_series=record_series, record_events=record_events,
    )


def run_topology(spec, record_series=None, record_events=None):
    """Build the network described by ``spec`` and run it.

    Returns the :meth:`Network.run` result dict, extended with the
    spec's optional ``slot_seconds`` so downstream consumers can
    convert slot delays to wall time.
    """
    network = build_network(
        spec, record_series=record_series, record_events=record_events
    )
    result = network.run(require_positive_int(spec.get("slots", 0), "slots"))
    if "slot_seconds" in spec:
        result["slot_seconds"] = float(spec["slot_seconds"])
    return result


def spec_from_json(path):
    """Load a topology spec from a JSON file (the ``repro net`` input)."""
    with open(path) as fh:
        spec = json.load(fh)
    if not isinstance(spec, dict):
        raise ValueError(f"{path}: topology spec must be a JSON object")
    return spec
