"""Observability: structured tracing, metrics, logging and run reports.

The paper's pipeline (fARIMA generation -> Gamma/Pareto transform ->
N-source FIFO multiplexing) runs here as long streamed campaigns; this
package is the measurement layer that says where the time, memory and
samples went:

- :mod:`repro.obs.trace` -- nestable spans recording wall time, CPU
  time and peak traced memory into a thread-safe in-process collector;
- :mod:`repro.obs.metrics` -- counters / gauges / histograms with
  Prometheus-text and JSON exporters;
- :mod:`repro.obs.log` -- structured stdlib logging (JSON or human
  formatter, stderr-only) for every diagnostic the package emits;
- :mod:`repro.obs.report` -- the ``run.json`` manifest (config, seeds,
  git rev, span tree, metric dump) written by profiled runs;
- :mod:`repro.obs.flight` -- the crash flight recorder: a bounded ring
  of structured events persisted atomically on crash, SIGTERM, or
  campaign failure;
- :mod:`repro.obs.bench` -- the shared ``BENCH_*.json`` schema and the
  regression differ the nightly CI gate runs.

The whole layer sits behind one global switch: :func:`enable` /
:func:`disable` (or the :func:`enabled` scoped context manager).  While
disabled -- the default -- every instrumentation site reduces to a
single flag read, so the hot loops carry their probes permanently at
sub-percent cost.
"""

from __future__ import annotations

import contextlib

from repro.obs import _state
from repro.obs.bench import (
    BENCH_SCHEMA,
    diff_bench,
    load_bench,
    make_bench,
    validate_bench,
    write_bench,
)
from repro.obs.flight import FlightRecorder
from repro.obs.flight import recorder as flight_recorder
from repro.obs.log import configure as configure_logging
from repro.obs.log import get_logger
from repro.obs.metrics import (
    MetricsRegistry,
    ScrapeMerger,
    diff_dump,
    merge_dump,
    parse_prometheus_text,
    registry,
)
from repro.obs.report import RunReport, git_revision_info, profile
from repro.obs.trace import aggregate, new_trace_id, span, snapshot

__all__ = [
    "BENCH_SCHEMA",
    "FlightRecorder",
    "MetricsRegistry",
    "RunReport",
    "ScrapeMerger",
    "aggregate",
    "configure_logging",
    "diff_bench",
    "diff_dump",
    "disable",
    "enable",
    "enabled",
    "flight_recorder",
    "get_logger",
    "git_revision_info",
    "is_enabled",
    "load_bench",
    "make_bench",
    "merge_dump",
    "new_trace_id",
    "parse_prometheus_text",
    "profile",
    "registry",
    "snapshot",
    "span",
    "validate_bench",
    "write_bench",
]


def enable():
    """Turn the observability layer on (spans and metrics record)."""
    _state.enabled = True


def disable():
    """Turn the observability layer off (probes become flag reads)."""
    _state.enabled = False


def is_enabled():
    """Whether spans and metrics are currently recording."""
    return _state.enabled


@contextlib.contextmanager
def enabled():
    """Scoped :func:`enable`: restores the previous state on exit."""
    previous = _state.enabled
    _state.enabled = True
    try:
        yield
    finally:
        _state.enabled = previous
