"""Shared on/off switch for the observability layer.

Both :mod:`repro.obs.trace` and :mod:`repro.obs.metrics` gate their hot
paths on this single module-level flag, so disabling observability is
one attribute read per instrumentation site -- cheap enough to leave
the instrumentation compiled into every hot loop permanently.  The flag
lives in its own module to keep the import graph acyclic (trace,
metrics and report all need it).
"""

from __future__ import annotations

enabled = False
"""Global observability switch; flip via :func:`repro.obs.enable`."""
