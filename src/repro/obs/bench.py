"""One schema for every ``BENCH_*.json`` file, plus regression diffing.

The repo's benchmark artifacts had drifted into per-file ad-hoc shapes
(nested dicts of unlabeled numbers); this module pins them all to one
schema so CI can validate, compare and gate on them uniformly:

.. code-block:: json

    {
      "schema": "repro-bench/1",
      "generated_at": "2026-08-05T00:00:00Z",
      "benchmarks": [
        {
          "name": "paxson_transformed_1M",
          "value": 5020502,
          "unit": "samples/s",
          "higher_is_better": true,
          "budget": 50000,
          "context": {"samples": 1000000, "seconds": 0.1992}
        }
      ]
    }

Rules:

- ``name`` is a unique ``[a-z0-9_]`` identifier; entries sort by name.
- ``value`` is the single number being tracked; anything auxiliary
  (sample counts, raw seconds) goes in ``context``.
- ``higher_is_better`` fixes the regression direction; ``budget`` is
  an optional hard floor (when higher is better) or ceiling (when
  lower is better) that :func:`validate_bench` enforces.
- ``generated_at`` is **passed in** by the caller (CI passes a
  pipeline timestamp); nothing in this module reads the clock, so
  regenerating a benchmark file is reproducible byte-for-byte.

:func:`diff_bench` compares two documents and reports entries whose
value moved in the *worse* direction by more than a tolerance -- the
nightly CI gate fails on >20% regressions against the committed
baseline.
"""

from __future__ import annotations

import json
import re
from pathlib import Path

__all__ = [
    "BENCH_SCHEMA",
    "make_bench",
    "validate_bench",
    "load_bench",
    "write_bench",
    "diff_bench",
]

BENCH_SCHEMA = "repro-bench/1"
"""Schema tag carried by every BENCH_*.json document."""

_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*$")

_REQUIRED = ("name", "value", "unit", "higher_is_better")
_ALLOWED = set(_REQUIRED) | {"budget", "context"}


def make_bench(entries, generated_at=None):
    """Assemble a schema-valid document from entry dicts.

    ``generated_at`` must be supplied by the caller (an ISO-8601 string
    or ``None``); the document is otherwise a pure function of
    ``entries``, sorted by name.
    """
    doc = {
        "schema": BENCH_SCHEMA,
        "generated_at": generated_at,
        "benchmarks": sorted(
            (dict(entry) for entry in entries), key=lambda e: e.get("name", "")
        ),
    }
    validate_bench(doc)
    return doc


def validate_bench(doc):
    """Validate a document against the schema; raises ``ValueError``.

    Checks the schema tag, entry fields/types, name uniqueness and --
    when a ``budget`` is present -- that the recorded value meets it,
    so a benchmark artifact can never quietly record a broken run.
    Returns the document for chaining.
    """
    if not isinstance(doc, dict):
        raise ValueError(f"bench document must be an object, got {type(doc).__name__}")
    if doc.get("schema") != BENCH_SCHEMA:
        raise ValueError(
            f"bench schema must be {BENCH_SCHEMA!r}, got {doc.get('schema')!r}"
        )
    if "generated_at" not in doc:
        raise ValueError("bench document must carry generated_at (may be null)")
    stamp = doc["generated_at"]
    if stamp is not None and not isinstance(stamp, str):
        raise ValueError(f"generated_at must be a string or null, got {stamp!r}")
    entries = doc.get("benchmarks")
    if not isinstance(entries, list) or not entries:
        raise ValueError("benchmarks must be a non-empty list")
    seen = set()
    for entry in entries:
        if not isinstance(entry, dict):
            raise ValueError(f"benchmark entry must be an object, got {entry!r}")
        missing = [key for key in _REQUIRED if key not in entry]
        if missing:
            raise ValueError(f"benchmark entry {entry.get('name')!r} missing {missing}")
        unknown = sorted(set(entry) - _ALLOWED)
        if unknown:
            raise ValueError(f"benchmark entry {entry['name']!r} has unknown keys {unknown}")
        name = entry["name"]
        if not isinstance(name, str) or not _NAME_RE.match(name):
            raise ValueError(f"benchmark name {name!r} must match [a-z][a-z0-9_]*")
        if name in seen:
            raise ValueError(f"duplicate benchmark name {name!r}")
        seen.add(name)
        value = entry["value"]
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise ValueError(f"benchmark {name!r} value must be a number, got {value!r}")
        if not isinstance(entry["unit"], str) or not entry["unit"]:
            raise ValueError(f"benchmark {name!r} unit must be a non-empty string")
        hib = entry["higher_is_better"]
        if not isinstance(hib, bool):
            raise ValueError(f"benchmark {name!r} higher_is_better must be a bool")
        budget = entry.get("budget")
        if budget is not None:
            if not isinstance(budget, (int, float)) or isinstance(budget, bool):
                raise ValueError(f"benchmark {name!r} budget must be a number")
            if hib and value < budget:
                raise ValueError(
                    f"benchmark {name!r} value {value:g} is below its budget floor {budget:g}"
                )
            if not hib and value > budget:
                raise ValueError(
                    f"benchmark {name!r} value {value:g} exceeds its budget ceiling {budget:g}"
                )
        context = entry.get("context")
        if context is not None and not isinstance(context, dict):
            raise ValueError(f"benchmark {name!r} context must be an object")
    return doc


def load_bench(path):
    """Read and validate one BENCH_*.json file."""
    doc = json.loads(Path(path).read_text())
    try:
        validate_bench(doc)
    except ValueError as exc:
        raise ValueError(f"{path}: {exc}") from None
    return doc


def write_bench(path, entries, generated_at=None, merge=True):
    """Write (or merge into) a BENCH file; returns the document.

    With ``merge=True`` entries already in the file survive unless an
    incoming entry shares their name -- benchmark suites run as
    separate test classes can each fold their rows into one artifact.
    """
    path = Path(path)
    merged = {}
    if merge and path.exists():
        try:
            for entry in load_bench(path)["benchmarks"]:
                merged[entry["name"]] = entry
        except ValueError:
            merged = {}  # pre-schema file: replace wholesale
    for entry in entries:
        merged[entry["name"]] = dict(entry)
    doc = make_bench(merged.values(), generated_at=generated_at)
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    return doc


def diff_bench(baseline, current, tolerance=0.2):
    """Regressions of ``current`` against ``baseline``.

    An entry regresses when its value moves in the worse direction
    (per its ``higher_is_better``) by more than ``tolerance`` relative
    to the baseline magnitude.  Entries present on only one side are
    reported as ``added``/``removed`` but are not regressions.

    Returns ``{"regressions": [...], "improved": [...], "stable":
    [...], "added": [...], "removed": [...]}`` where each regression
    carries name, both values and the relative change.
    """
    tolerance = float(tolerance)
    base = {e["name"]: e for e in baseline["benchmarks"]}
    cur = {e["name"]: e for e in current["benchmarks"]}
    out = {"regressions": [], "improved": [], "stable": [],
           "added": sorted(set(cur) - set(base)),
           "removed": sorted(set(base) - set(cur))}
    for name in sorted(set(base) & set(cur)):
        b, c = base[name], cur[name]
        b_val, c_val = float(b["value"]), float(c["value"])
        scale = abs(b_val)
        if scale == 0.0:
            # A zero baseline has no relative scale; any worsening at
            # all beyond the absolute tolerance counts.
            scale = 1.0
        change = (c_val - b_val) / scale
        worse = -change if b["higher_is_better"] else change
        row = {
            "name": name,
            "baseline": b_val,
            "current": c_val,
            "unit": b["unit"],
            "relative_change": round(change, 4),
        }
        if worse > tolerance:
            out["regressions"].append(row)
        elif worse < -tolerance:
            out["improved"].append(row)
        else:
            out["stable"].append(row)
    return out
