"""Crash flight recorder: the last N structured events, always on hand.

Chaos runs that kill or partition nodes used to be debugged from raw
stderr.  A :class:`FlightRecorder` is a bounded ring buffer of
structured events -- task lifecycle, injected faults, lease expiries,
retries, checkpoint writes -- recorded on both sides of the dist wire
(the coordinator and, in the simulated cluster, the workers share one
process and therefore one recorder).  On crash, SIGTERM, or campaign
failure the last ``capacity`` events are persisted atomically to
``flight.jsonl``, turning a post-mortem into a file read.

Two recording modes:

- the **module default recorder** (:func:`recorder`) is *gated*: it
  records only while observability is enabled, so instrumentation left
  in production paths costs one flag read when obs is off;
- an **explicit recorder** (constructed directly, or installed with
  :func:`configure`, e.g. by ``--flight``) always records -- asking for
  a flight recording is the opt-in.

With a ``path`` the recorder also *streams*: every event is appended
to the file as it happens (the live tail ``repro dist top --follow``
renders), and :meth:`FlightRecorder.persist` atomically rewrites the
same file with the clean final ring on the way out.

Determinism: wall-clock offsets and sequence numbers necessarily
depend on scheduling, so byte-identity claims are made over
:meth:`FlightRecorder.canonical_lines` -- the per-task terminal
outcomes (id, attempt, seed, status), sorted.  Under node faults the
coordinator reassigns work at unchanged attempt numbers, so the
canonical projection is identical at every worker count while the full
ordered recording still replays kill -> lease expiry -> reassignment.
"""

from __future__ import annotations

import collections
import json
import os
import signal
import sys
import threading
import time
from pathlib import Path

from repro.obs import _state

__all__ = ["FlightRecorder", "configure", "recorder"]

DEFAULT_CAPACITY = 512
"""Events kept in the ring (and persisted on crash)."""


class FlightRecorder:
    """Bounded ring buffer of structured events with atomic persistence.

    Parameters
    ----------
    capacity:
        Maximum events retained; older events fall off the front.
    path:
        Optional ``flight.jsonl`` destination.  When set, events are
        also streamed to the file live (truncated at construction) and
        :meth:`persist` defaults to rewriting it atomically.
    gated:
        When true, :meth:`record` is a no-op while observability is
        disabled (the module default recorder's mode).  Explicit
        recorders default to always-on.
    clock:
        Monotonic clock for the per-event time offset (injectable for
        tests).
    """

    def __init__(self, capacity=DEFAULT_CAPACITY, *, path=None, gated=False,
                 clock=time.monotonic):
        capacity = int(capacity)
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.path = Path(path) if path is not None else None
        self.gated = bool(gated)
        self.clock = clock
        self._events = collections.deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._seq = 0
        self._t0 = clock()
        self._stream = None
        self._armed = None  # (previous SIGTERM handler, previous excepthook)
        if self.path is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._stream = open(self.path, "w", encoding="utf-8")

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record(self, kind, **fields):
        """Append one event; returns the event dict (or ``None`` if gated off).

        Events are ``{"seq", "t", "kind", **fields}``; ``t`` is seconds
        since the recorder was created.  Thread-safe.
        """
        if self.gated and not _state.enabled:
            return None
        with self._lock:
            self._seq += 1
            event = {"seq": self._seq,
                     "t": round(self.clock() - self._t0, 6),
                     "kind": str(kind)}
            event.update(fields)
            self._events.append(event)
            if self._stream is not None:
                try:
                    self._stream.write(json.dumps(event, sort_keys=True) + "\n")
                    self._stream.flush()
                except (OSError, ValueError):
                    # A closed/broken stream must never take down the
                    # campaign the recorder exists to explain.
                    self._stream = None
        return event

    def events(self):
        """The retained events, oldest first (a copy)."""
        with self._lock:
            return [dict(event) for event in self._events]

    def clear(self):
        """Drop all retained events and restart the sequence/clock."""
        with self._lock:
            self._events.clear()
            self._seq = 0
            self._t0 = self.clock()

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def persist(self, path=None):
        """Atomically write the ring as JSON lines; returns the path.

        ``path`` defaults to the recorder's streaming path; with
        neither, nothing is written and ``None`` is returned.  The
        write is temp-file + ``os.replace``, so a crash mid-persist
        leaves either the previous file or the new one, never a torn
        recording.
        """
        path = Path(path) if path is not None else self.path
        if path is None:
            return None
        with self._lock:
            lines = [json.dumps(event, sort_keys=True) for event in self._events]
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(path.suffix + ".tmp")
        tmp.write_text("\n".join(lines) + ("\n" if lines else ""))
        os.replace(tmp, path)
        return path

    def canonical_lines(self):
        """Deterministic projection: per-task terminal outcomes, sorted.

        Returns JSON lines of ``{"task_id", "attempt", "seed", "status"}``
        -- the *last* ``task_completed``/``task_failed`` event per task.
        These fields are functions of ``(tasks, base_seed)`` alone (node
        loss keeps the attempt number; only genuine failures rotate it),
        so the projection is byte-identical across worker counts and
        fault scenarios that the campaign survives.
        """
        terminal = {}
        with self._lock:
            events = list(self._events)
        for event in events:
            if event.get("kind") not in ("task_completed", "task_failed"):
                continue
            task_id = event.get("task_id")
            if task_id is None:
                continue
            terminal[task_id] = {
                "task_id": task_id,
                "attempt": event.get("attempt"),
                "seed": event.get("seed"),
                "status": ("completed" if event["kind"] == "task_completed"
                           else "failed"),
            }
        return [json.dumps(terminal[task_id], sort_keys=True)
                for task_id in sorted(terminal)]

    # ------------------------------------------------------------------
    # Crash hooks
    # ------------------------------------------------------------------
    def arm(self, path=None):
        """Persist the ring on SIGTERM and on an unhandled exception.

        Installs a chaining SIGTERM handler (main thread only; armed
        from elsewhere only the excepthook is installed) and wraps
        ``sys.excepthook``.  Both persist to ``path`` (default: the
        streaming path) and then defer to the previous handler.  Call
        :meth:`disarm` to restore.
        """
        if self._armed is not None:
            return self
        target = Path(path) if path is not None else self.path
        if target is None:
            raise ValueError("arm() needs a path (or a recorder constructed with one)")

        previous_hook = sys.excepthook

        def _hook(exc_type, exc, tb):
            self.record("crash", error_type=exc_type.__name__, message=str(exc))
            self.persist(target)
            previous_hook(exc_type, exc, tb)

        sys.excepthook = _hook
        previous_signal = None
        try:
            def _on_term(signum, frame):
                self.record("sigterm")
                self.persist(target)
                if callable(previous_signal):
                    previous_signal(signum, frame)
                else:
                    signal.signal(signum, signal.SIG_DFL)
                    os.kill(os.getpid(), signum)

            previous_signal = signal.signal(signal.SIGTERM, _on_term)
        except ValueError:
            # Not the main thread; the excepthook alone still covers
            # crashes, which is the common test-harness case.
            previous_signal = None
        self._armed = (previous_signal, previous_hook)
        return self

    def disarm(self):
        """Restore the handlers :meth:`arm` replaced."""
        if self._armed is None:
            return
        previous_signal, previous_hook = self._armed
        self._armed = None
        sys.excepthook = previous_hook
        if previous_signal is not None:
            try:
                signal.signal(signal.SIGTERM, previous_signal)
            except ValueError:  # pragma: no cover - not the main thread
                pass

    def close(self):
        """Close the live stream (the ring stays readable)."""
        with self._lock:
            if self._stream is not None:
                try:
                    self._stream.close()
                except OSError:  # pragma: no cover
                    pass
                self._stream = None

    def __repr__(self):
        where = f" -> {self.path}" if self.path is not None else ""
        return (f"FlightRecorder({len(self._events)}/{self.capacity} "
                f"event(s){where})")


_default = FlightRecorder(gated=True)


def recorder():
    """The process-wide default recorder instrumentation writes into."""
    return _default


def configure(path=None, capacity=DEFAULT_CAPACITY, gated=None):
    """Replace the default recorder; returns the new one.

    With a ``path`` the new recorder streams live and is ungated
    (requesting a recording is the opt-in); without one it stays gated
    on the observability flag unless ``gated`` says otherwise.
    """
    global _default
    old = _default
    old.close()
    old.disarm()
    if gated is None:
        gated = path is None
    _default = FlightRecorder(capacity, path=path, gated=gated)
    return _default
