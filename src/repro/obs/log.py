"""Structured stdlib-logging setup: JSON or human lines, stderr-only.

The CLI's data products (trace files, ``.npy`` streams, stdout sample
lines, experiment tables) stay on stdout; everything *about* the run --
progress, retries, timings, repairs -- goes through loggers under the
``repro`` namespace and lands on **stderr**, so piping ``repro stream``
into another tool never mixes diagnostics into the data channel.

Usage::

    from repro.obs.log import get_logger
    log = get_logger("resilience")
    log.warning("experiment retry", extra={"experiment": "fig14", "attempt": 2})

Library code just logs; it never configures.  The CLI (or a test)
calls :func:`configure` once per invocation, which installs a single
stderr handler on the ``repro`` logger with either the human formatter
(``HH:MM:SS LEVEL logger: message key=value``) or one-JSON-object-per-
line.  Unconfigured, records propagate to the root logger as usual, so
``pytest`` ``caplog`` and host applications see them unchanged and
stdlib's last-resort handler still surfaces WARNING+ on stderr.

``extra={...}`` fields are rendered as trailing ``key=value`` pairs by
the human formatter and as top-level JSON fields by the JSON formatter,
which is what makes the records *structured* rather than interpolated
prose: a log pipeline can filter on ``experiment`` or ``attempt``
without regexes.
"""

from __future__ import annotations

import json
import logging
import sys
import time

__all__ = [
    "configure",
    "get_logger",
    "HumanFormatter",
    "JSONFormatter",
]

ROOT_NAME = "repro"

# Attribute names belonging to LogRecord itself; anything else on a
# record arrived via extra={...} and is structured payload.
_RESERVED = set(vars(
    logging.LogRecord("", 0, "", 0, "", (), None)
)) | {"message", "asctime", "taskName"}


def _extra_fields(record):
    return {
        key: value for key, value in record.__dict__.items()
        if key not in _RESERVED and not key.startswith("_")
    }


class _DynamicStderrHandler(logging.StreamHandler):
    """StreamHandler that always writes to the *current* ``sys.stderr``.

    Test harnesses (pytest's capsys) swap ``sys.stderr`` per test;
    resolving the stream at emit time keeps captured output where the
    harness expects it instead of leaking to the original fd.
    """

    def __init__(self):
        logging.Handler.__init__(self)

    @property
    def stream(self):
        return sys.stderr


class HumanFormatter(logging.Formatter):
    """``HH:MM:SS LEVEL logger: message key=value ...``"""

    def format(self, record):
        message = record.getMessage()
        stamp = time.strftime("%H:%M:%S", time.localtime(record.created))
        name = record.name
        if name.startswith(ROOT_NAME + "."):
            name = name[len(ROOT_NAME) + 1:]
        extras = _extra_fields(record)
        tail = "".join(
            f" {key}={extras[key]}" for key in sorted(extras)
        )
        line = f"{stamp} {record.levelname} {name}: {message}{tail}"
        if record.exc_info:
            line += "\n" + self.formatException(record.exc_info)
        return line


class JSONFormatter(logging.Formatter):
    """One JSON object per line: ts, level, logger, msg, extra fields."""

    def format(self, record):
        doc = {
            "ts": round(record.created, 3),
            "level": record.levelname,
            "logger": record.name,
            "msg": record.getMessage(),
        }
        for key, value in _extra_fields(record).items():
            try:
                json.dumps(value)
            except (TypeError, ValueError):
                value = repr(value)
            doc[key] = value
        if record.exc_info:
            doc["exc"] = self.formatException(record.exc_info)
        return json.dumps(doc, sort_keys=False)


def get_logger(name=None):
    """A logger under the ``repro`` namespace (``repro.<name>``)."""
    if not name:
        return logging.getLogger(ROOT_NAME)
    if name.startswith(ROOT_NAME + ".") or name == ROOT_NAME:
        return logging.getLogger(name)
    return logging.getLogger(f"{ROOT_NAME}.{name}")


def configure(level="INFO", json_format=False, quiet=False):
    """Install the stderr handler on the ``repro`` logger (idempotent).

    Parameters
    ----------
    level:
        Threshold name or number for diagnostics (default ``INFO``).
    json_format:
        Emit one JSON object per line instead of human-readable text.
    quiet:
        Raise the threshold to WARNING regardless of ``level`` --
        routine progress disappears, problems stay visible.

    Returns the configured ``repro`` logger.  Repeated calls replace
    the handler rather than stacking duplicates, so each CLI ``main()``
    invocation (and each test) starts from a clean configuration.
    """
    logger = logging.getLogger(ROOT_NAME)
    if isinstance(level, str):
        level = logging.getLevelName(level.upper())
        if not isinstance(level, int):
            raise ValueError(f"unknown log level {level!r}")
    if quiet:
        level = max(level, logging.WARNING)
    for handler in list(logger.handlers):
        logger.removeHandler(handler)
    handler = _DynamicStderrHandler()
    handler.setFormatter(JSONFormatter() if json_format else HumanFormatter())
    logger.addHandler(handler)
    logger.setLevel(level)
    # Propagation stays on: the root logger normally has no handlers
    # (no double print), while pytest's caplog and host applications
    # that do configure the root still see every record.
    return logger
