"""Counters, gauges and histograms with Prometheus/JSON exporters.

A tiny dependency-free metrics layer shaped after the Prometheus data
model: monotone :class:`Counter` (samples generated, bytes lost),
last-value :class:`Gauge` (queue backlog, pool width) and bucketed
:class:`Histogram` (chunk sizes, span durations).  Metrics register in
a :class:`MetricsRegistry` keyed by ``(name, labels)``; the process
default registry is reachable via :func:`registry`.

Updates are gated on the global observability flag
(:mod:`repro.obs._state`) and guarded by a per-metric lock, so
instrumentation can sit on multi-threaded hot paths
(:class:`~repro.stream.pipeline.ParallelSources` workers) and cost one
flag read while observability is off.

Exporters:

- :meth:`MetricsRegistry.to_prometheus` -- the Prometheus text
  exposition format (``# HELP`` / ``# TYPE`` plus cumulative
  ``_bucket{le=...}`` histogram lines), ready for a file-based scrape;
- :meth:`MetricsRegistry.to_dict` -- a JSON-able dump embedded in
  ``run.json`` manifests;
- :func:`prometheus_from_dump` -- re-render a stored dump as
  Prometheus text (``repro obs export-metrics``);
- :func:`parse_prometheus_text` -- minimal parser for round-trip tests
  and scrape verification.
"""

from __future__ import annotations

import bisect
import math
import re
import threading

from repro.obs import _state

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ScrapeMerger",
    "registry",
    "merge_dump",
    "diff_dump",
    "relabel_dump",
    "prometheus_from_dump",
    "parse_prometheus_text",
    "DEFAULT_BUCKETS",
]

_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

DEFAULT_BUCKETS = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 50.0, 100.0,
)
"""Default histogram upper bounds (seconds-flavoured, decade/half-decade)."""


def _check_name(name):
    if not _NAME_RE.match(name):
        raise ValueError(
            f"metric name {name!r} must match [a-zA-Z_][a-zA-Z0-9_]* "
            f"(Prometheus exposition rules; use underscores, not dots)"
        )
    return name


def _label_str(labels):
    if not labels:
        return ""
    body = ",".join(f'{k}="{v}"' for k, v in sorted(labels.items()))
    return "{" + body + "}"


class _Metric:
    """Shared plumbing: identity, lock, and the enabled gate."""

    kind = None

    def __init__(self, name, help="", unit=None, labels=None):
        self.name = _check_name(name)
        self.help = str(help)
        self.unit = unit
        self.labels = dict(labels) if labels else {}
        self._lock = threading.Lock()


class Counter(_Metric):
    """Monotone counter; ``inc`` ignores updates while obs is disabled."""

    kind = "counter"

    def __init__(self, name, help="", unit=None, labels=None):
        super().__init__(name, help=help, unit=unit, labels=labels)
        self._value = 0.0

    @property
    def value(self):
        return self._value

    def inc(self, amount=1):
        if not _state.enabled:
            return
        amount = float(amount)
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease (inc {amount})")
        with self._lock:
            self._value += amount

    def _reset(self):
        self._value = 0.0

    def to_dict(self):
        return {"type": self.kind, "help": self.help, "unit": self.unit,
                "labels": self.labels, "value": self._value}


class Gauge(_Metric):
    """Last-written value, with running min/max for the JSON dump."""

    kind = "gauge"

    def __init__(self, name, help="", unit=None, labels=None):
        super().__init__(name, help=help, unit=unit, labels=labels)
        self._value = 0.0
        self._min = math.inf
        self._max = -math.inf

    @property
    def value(self):
        return self._value

    def set(self, value):
        if not _state.enabled:
            return
        value = float(value)
        with self._lock:
            self._value = value
            self._min = min(self._min, value)
            self._max = max(self._max, value)

    def inc(self, amount=1):
        if not _state.enabled:
            return
        with self._lock:
            self._value += float(amount)
            self._min = min(self._min, self._value)
            self._max = max(self._max, self._value)

    def dec(self, amount=1):
        self.inc(-float(amount))

    def _reset(self):
        self._value = 0.0
        self._min = math.inf
        self._max = -math.inf

    def to_dict(self):
        doc = {"type": self.kind, "help": self.help, "unit": self.unit,
               "labels": self.labels, "value": self._value}
        if self._min <= self._max:
            doc["min"] = self._min
            doc["max"] = self._max
        return doc


class Histogram(_Metric):
    """Fixed-bucket histogram with Prometheus ``le`` semantics.

    ``buckets`` are *upper* bounds in strictly increasing order; an
    observation equal to a bound lands in that bound's bucket
    (inclusive ``le``), and anything above the last bound lands in the
    implicit ``+Inf`` overflow bucket.
    """

    kind = "histogram"

    def __init__(self, name, help="", unit=None, labels=None, buckets=DEFAULT_BUCKETS):
        super().__init__(name, help=help, unit=unit, labels=labels)
        bounds = [float(b) for b in buckets]
        if not bounds or sorted(bounds) != bounds or len(set(bounds)) != len(bounds):
            raise ValueError("buckets must be non-empty and strictly increasing")
        self.bounds = bounds
        self._counts = [0] * (len(bounds) + 1)  # last = +Inf overflow
        self._sum = 0.0
        self._count = 0

    @property
    def count(self):
        return self._count

    @property
    def sum(self):
        return self._sum

    def observe(self, value):
        if not _state.enabled:
            return
        value = float(value)
        with self._lock:
            index = bisect.bisect_left(self.bounds, value)
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    def bucket_counts(self):
        """Cumulative counts per bound plus the ``+Inf`` total."""
        cumulative = []
        running = 0
        for count in self._counts:
            running += count
            cumulative.append(running)
        return cumulative

    def _reset(self):
        self._counts = [0] * (len(self.bounds) + 1)
        self._sum = 0.0
        self._count = 0

    def to_dict(self):
        return {
            "type": self.kind, "help": self.help, "unit": self.unit,
            "labels": self.labels, "count": self._count, "sum": self._sum,
            "buckets": {
                **{repr(b): c for b, c in zip(self.bounds, self.bucket_counts())},
                "+Inf": self._count,
            },
        }


class MetricsRegistry:
    """Get-or-create metric store keyed by ``(name, labels)``.

    Re-requesting an existing key returns the same object; requesting
    it with a different metric *type* is an error (one name, one type,
    as in Prometheus).
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._metrics = {}

    def _get_or_create(self, cls, name, help, unit, labels, **kwargs):
        key = (name, tuple(sorted((labels or {}).items())))
        with self._lock:
            existing = self._metrics.get(key)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise TypeError(
                        f"metric {name!r} already registered as {existing.kind}, "
                        f"requested {cls.kind}"
                    )
                return existing
            metric = cls(name, help=help, unit=unit, labels=labels, **kwargs)
            self._metrics[key] = metric
            return metric

    def counter(self, name, help="", unit=None, labels=None):
        return self._get_or_create(Counter, name, help, unit, labels)

    def gauge(self, name, help="", unit=None, labels=None):
        return self._get_or_create(Gauge, name, help, unit, labels)

    def histogram(self, name, help="", unit=None, labels=None, buckets=DEFAULT_BUCKETS):
        return self._get_or_create(Histogram, name, help, unit, labels, buckets=buckets)

    def metrics(self):
        with self._lock:
            return list(self._metrics.values())

    def reset(self):
        """Zero every registered metric (identities survive)."""
        for metric in self.metrics():
            with metric._lock:
                metric._reset()

    def clear(self):
        """Forget every metric (fresh registry state; tests)."""
        with self._lock:
            self._metrics.clear()

    # ------------------------------------------------------------------
    # Exporters
    # ------------------------------------------------------------------
    def to_dict(self):
        """JSON-able dump: ``{name{labels}: metric_dict}`` sorted by key."""
        dump = {}
        for metric in self.metrics():
            dump[metric.name + _label_str(metric.labels)] = metric.to_dict()
        return dict(sorted(dump.items()))

    def to_prometheus(self):
        """The Prometheus text exposition format, one family at a time."""
        by_name = {}
        for metric in self.metrics():
            by_name.setdefault(metric.name, []).append(metric)
        lines = []
        for name in sorted(by_name):
            family = by_name[name]
            head = family[0]
            if head.help:
                lines.append(f"# HELP {name} {head.help}")
            lines.append(f"# TYPE {name} {head.kind}")
            for metric in family:
                label_str = _label_str(metric.labels)
                if metric.kind in ("counter", "gauge"):
                    lines.append(f"{name}{label_str} {_fmt(metric.value)}")
                else:
                    for bound, cum in zip(metric.bounds, metric.bucket_counts()):
                        bl = dict(metric.labels, le=_fmt(bound))
                        lines.append(f"{name}_bucket{_label_str(bl)} {cum}")
                    bl = dict(metric.labels, le="+Inf")
                    lines.append(f"{name}_bucket{_label_str(bl)} {metric.count}")
                    lines.append(f"{name}_sum{label_str} {_fmt(metric.sum)}")
                    lines.append(f"{name}_count{label_str} {metric.count}")
        return "\n".join(lines) + ("\n" if lines else "")


_default_registry = MetricsRegistry()


def registry():
    """The process-wide default registry instrumentation writes into."""
    return _default_registry


def _fmt(value):
    value = float(value)
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def merge_dump(dump, into=None):
    """Fold a child process's :meth:`MetricsRegistry.to_dict` dump into a registry.

    The default registry is process-local: metrics incremented inside a
    :mod:`repro.par.pool` worker live in the *worker's* copy and die
    with it.  Workers therefore ship ``registry().to_dict()`` back with
    each result, and the parent folds the deltas in here so pool-side
    task counts, cache hits and histograms survive the pool boundary.

    Merge semantics per kind:

    - **counter** -- values add (zero-valued entries are skipped, so a
      forked child that reset its inherited registry contributes
      nothing for untouched counters);
    - **gauge** -- last writer wins for the value, min/max envelopes
      union; gauges the child never wrote (no ``min`` key) are skipped;
    - **histogram** -- per-bucket counts, sum and count add; a child
      histogram whose bucket bounds disagree with the parent's is a
      hard error rather than a silent mis-bin.

    Updates bypass the observability enable flag: the dump was gated at
    observation time in the child, and dropping it here would lose data
    the user already paid to collect.
    """
    target = _default_registry if into is None else into
    for key, doc in dump.items():
        name = key.split("{", 1)[0]
        kind = doc.get("type")
        labels = doc.get("labels") or {}
        help_ = doc.get("help", "")
        unit = doc.get("unit")
        if kind == "counter":
            if not doc["value"]:
                continue
            metric = target.counter(name, help=help_, unit=unit, labels=labels)
            with metric._lock:
                metric._value += float(doc["value"])
        elif kind == "gauge":
            if "min" not in doc:
                continue
            metric = target.gauge(name, help=help_, unit=unit, labels=labels)
            with metric._lock:
                metric._value = float(doc["value"])
                metric._min = min(metric._min, float(doc["min"]))
                metric._max = max(metric._max, float(doc["max"]))
        elif kind == "histogram":
            if not doc["count"]:
                continue
            bounds = [float(b) for b in doc["buckets"] if b != "+Inf"]
            metric = target.histogram(name, help=help_, unit=unit,
                                      labels=labels, buckets=bounds)
            if metric.bounds != bounds:
                raise ValueError(
                    f"histogram {name!r} bucket bounds differ between child "
                    f"dump and parent registry; refusing to mis-bin"
                )
            cumulative = [int(doc["buckets"][repr(b)]) for b in bounds]
            with metric._lock:
                previous = 0
                for index, cum in enumerate(cumulative):
                    metric._counts[index] += cum - previous
                    previous = cum
                metric._counts[-1] += int(doc["count"]) - previous
                metric._sum += float(doc["sum"])
                metric._count += int(doc["count"])
        else:
            raise ValueError(f"unknown metric type {kind!r} in dump")


def diff_dump(new, old):
    """The incremental delta between two cumulative registry dumps.

    Heartbeat scraping ships each worker's *cumulative*
    :meth:`MetricsRegistry.to_dict` dump; the coordinator needs the
    delta since the previous scrape so repeated merges never
    double-count.  Per kind:

    - **counter** -- ``new - old``; a negative delta means the worker
      restarted (its registry reset), so the full new value is the
      delta;
    - **gauge** -- passed through unchanged (last-write-wins on merge,
      min/max envelopes union idempotently);
    - **histogram** -- per-bucket cumulative counts, sum and count
      subtract; any decreasing bucket means a restart and the full new
      histogram is the delta.  Bucket bounds that changed between
      scrapes are a hard error, mirroring :func:`merge_dump`.

    Entries absent from ``new`` are dropped (nothing to add); entries
    absent from ``old`` pass through whole.
    """
    delta = {}
    for key, doc in new.items():
        kind = doc.get("type")
        previous = old.get(key)
        if previous is None or previous.get("type") != kind:
            delta[key] = doc
            continue
        if kind == "counter":
            step = float(doc["value"]) - float(previous["value"])
            if step < 0:  # worker restart: the new count stands alone
                step = float(doc["value"])
            delta[key] = dict(doc, value=step)
        elif kind == "gauge":
            delta[key] = doc
        elif kind == "histogram":
            bounds = [float(b) for b in doc["buckets"] if b != "+Inf"]
            old_bounds = [float(b) for b in previous["buckets"] if b != "+Inf"]
            if bounds != old_bounds:
                raise ValueError(
                    f"histogram {key!r} bucket bounds changed between scrapes; "
                    f"refusing to mis-bin"
                )
            buckets = {}
            restarted = (int(doc["count"]) < int(previous["count"]))
            for bound_key in doc["buckets"]:
                step = int(doc["buckets"][bound_key]) - int(
                    previous["buckets"].get(bound_key, 0))
                if step < 0:
                    restarted = True
                buckets[bound_key] = step
            if restarted:
                delta[key] = doc
            else:
                delta[key] = dict(
                    doc,
                    buckets=buckets,
                    sum=float(doc["sum"]) - float(previous["sum"]),
                    count=int(doc["count"]) - int(previous["count"]),
                )
        else:
            raise ValueError(f"unknown metric type {kind!r} in dump")
    return delta


def relabel_dump(dump, **labels):
    """A copy of ``dump`` with ``labels`` folded into every entry.

    The coordinator stamps worker scrapes with ``node=<name>`` before
    merging, so per-node series stay distinguishable in the cluster
    registry (and in ``repro obs export-metrics`` output).
    """
    out = {}
    for key, doc in dump.items():
        name = key.split("{", 1)[0]
        merged = dict(doc.get("labels") or {}, **{k: str(v) for k, v in labels.items()})
        out[name + _label_str(merged)] = dict(doc, labels=merged)
    return out


class ScrapeMerger:
    """Idempotent accumulator for per-node incremental metric scrapes.

    Workers stamp every shipped dump with a monotone per-connection
    sequence number.  :meth:`ingest` applies each ``(node, seq, dump)``
    at most once: a duplicate or out-of-order scrape -- routine after a
    healed partition redelivers queued heartbeats -- is dropped, and
    the applied delta is ``dump - last_applied_dump`` via
    :func:`diff_dump`, so counters and histograms never double-count no
    matter how often a cumulative snapshot is replayed.  Deltas merge
    into ``into`` (default: the process registry) with a ``node=``
    label via :func:`merge_dump`, which still hard-errors on histogram
    bucket-bound mismatches.
    """

    def __init__(self, into=None):
        self._into = _default_registry if into is None else into
        self._last = {}  # node -> (seq, cumulative dump)
        self._lock = threading.Lock()

    def ingest(self, node, seq, dump):
        """Apply one scrape; returns True if it advanced the node's state."""
        if not dump:
            return False
        node = str(node)
        seq = int(seq)
        with self._lock:
            last_seq, last_dump = self._last.get(node, (0, {}))
            if seq <= last_seq:
                return False
            delta = diff_dump(dump, last_dump)
            merge_dump(relabel_dump(delta, node=node), into=self._into)
            self._last[node] = (seq, dump)
        return True

    def seen(self, node):
        """The last sequence number applied for ``node`` (0 if none)."""
        with self._lock:
            return self._last.get(str(node), (0, {}))[0]


def prometheus_from_dump(dump):
    """Render a :meth:`MetricsRegistry.to_dict` dump as Prometheus text.

    Lets a stored ``run.json`` manifest be converted to a scrapeable
    file after the fact, without the live registry.
    """
    scratch = MetricsRegistry()
    was_enabled = _state.enabled
    _state.enabled = True
    try:
        for key, doc in dump.items():
            name = key.split("{", 1)[0]
            kind = doc.get("type")
            labels = doc.get("labels") or {}
            if kind == "counter":
                scratch.counter(name, help=doc.get("help", ""),
                                unit=doc.get("unit"), labels=labels).inc(doc["value"])
            elif kind == "gauge":
                scratch.gauge(name, help=doc.get("help", ""),
                              unit=doc.get("unit"), labels=labels).set(doc["value"])
            elif kind == "histogram":
                bounds = [float(b) for b in doc["buckets"] if b != "+Inf"]
                hist = scratch.histogram(name, help=doc.get("help", ""),
                                         unit=doc.get("unit"), labels=labels,
                                         buckets=bounds)
                cumulative = [int(doc["buckets"][repr(b)]) for b in bounds]
                previous = 0
                for index, cum in enumerate(cumulative):
                    hist._counts[index] = cum - previous
                    previous = cum
                hist._counts[-1] = int(doc["count"]) - previous
                hist._sum = float(doc["sum"])
                hist._count = int(doc["count"])
            else:
                raise ValueError(f"unknown metric type {kind!r} in dump")
    finally:
        _state.enabled = was_enabled
    return scratch.to_prometheus()


def parse_prometheus_text(text):
    """Parse exposition text back to ``{name{labels}: value}`` floats.

    Supports exactly what :meth:`MetricsRegistry.to_prometheus` emits
    (counters, gauges, histogram ``_bucket``/``_sum``/``_count``
    lines); comment lines are skipped.
    """
    values = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        key, _, raw = line.rpartition(" ")
        values[key] = float(raw)
    return values
