"""Run manifests: config, seeds, git rev, span tree and metric dump.

A :class:`RunReport` is the end-of-run artifact every profiled
experiment or stream writes (``run.json``): enough context to say what
ran (command, config, seeds, git revision, library versions), what it
cost (the full span tree plus per-name aggregates) and what it produced
(the metrics dump).  Future perf PRs diff two of these files instead of
re-guessing where the time went.

:func:`profile` is the one-liner wrapper::

    with profile("experiments", config={...}, seed=0, path="run.json"):
        run_all(...)

It enables observability, resets the collectors, optionally starts
:mod:`tracemalloc` (so spans carry memory peaks), and writes the
manifest on exit -- including on failure, where the partial span tree
is exactly the diagnostic wanted.
"""

from __future__ import annotations

import contextlib
import json
import platform
import subprocess
import sys
import time
import tracemalloc
from pathlib import Path

from repro.obs import _state, metrics, trace

__all__ = ["RUN_SCHEMA", "RunReport", "profile", "git_revision",
           "git_revision_info"]

RUN_SCHEMA = "repro-run/1"
"""Manifest schema tag; bump when the run.json layout changes."""


def git_revision_info(cwd=None):
    """``(short HEAD revision, reason)`` -- exactly one of the two is set.

    Profiled runs are routinely launched from an exported tarball, a
    container without git, or a scratch directory; the manifest must
    degrade to ``git_rev: null`` plus a *reason* rather than depend on
    subprocess success.  Reasons distinguish git being absent, the cwd
    not being a checkout, and git timing out.
    """
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=cwd, capture_output=True, text=True, timeout=5,
        )
    except FileNotFoundError:
        return None, "git executable not found"
    except subprocess.TimeoutExpired:
        return None, "git rev-parse timed out"
    except (OSError, subprocess.SubprocessError) as exc:
        return None, f"git rev-parse failed: {exc}"
    rev = out.stdout.strip()
    if out.returncode == 0 and rev:
        return rev, None
    stderr = (out.stderr or "").strip().splitlines()
    return None, (stderr[0] if stderr else "not a git checkout")


def git_revision(cwd=None):
    """The repository's short HEAD revision, or ``None`` outside git."""
    return git_revision_info(cwd)[0]


class RunReport:
    """Collects one run's context and observability artifacts."""

    def __init__(self, command, config=None, seed=None, argv=None):
        self.command = str(command)
        self.config = dict(config) if config else {}
        self.seed = seed
        self.argv = list(argv) if argv is not None else list(sys.argv[1:])
        self.started_at = time.time()
        self.finished_at = None
        self.error = None
        self.spans = []
        self.span_totals = {}
        self.metrics = {}

    def finish(self, error=None):
        """Freeze the report: snapshot spans and metrics, stamp the end."""
        self.finished_at = time.time()
        self.error = error
        self.spans = trace.snapshot()
        self.span_totals = trace.aggregate(self.spans)
        self.metrics = metrics.registry().to_dict()
        return self

    @property
    def wall_s(self):
        if self.finished_at is None:
            return None
        return self.finished_at - self.started_at

    def to_dict(self):
        import numpy

        rev, rev_reason = git_revision_info()
        doc = {
            "schema": RUN_SCHEMA,
            "command": self.command,
            "argv": self.argv,
            "config": self.config,
            "seed": self.seed,
            "git_rev": rev,
            "python": platform.python_version(),
            "numpy": numpy.__version__,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "wall_s": round(self.wall_s, 4) if self.wall_s is not None else None,
            "error": self.error,
            "span_totals": self.span_totals,
            "spans": self.spans,
            "metrics": self.metrics,
        }
        if rev is None:
            doc["git_rev_reason"] = rev_reason
        return doc

    def write(self, path):
        """Write the manifest as ``run.json``; returns the path."""
        path = Path(path)
        path.write_text(json.dumps(self.to_dict(), indent=2) + "\n")
        return path

    # ------------------------------------------------------------------
    # Reading side (repro obs report)
    # ------------------------------------------------------------------
    @staticmethod
    def load(path):
        """Load a manifest dict, checking the schema tag."""
        doc = json.loads(Path(path).read_text())
        if doc.get("schema") != RUN_SCHEMA:
            raise ValueError(
                f"{path}: not a {RUN_SCHEMA} manifest (schema={doc.get('schema')!r})"
            )
        return doc

    @staticmethod
    def format_lines(doc, max_depth=None):
        """Pretty-print a loaded manifest for the terminal."""
        lines = [f"run: {doc['command']}  ({doc.get('git_rev') or 'no git rev'})"]
        if doc.get("argv"):
            lines.append(f"  argv: {' '.join(doc['argv'])}")
        if doc.get("config"):
            cfg = "  ".join(f"{k}={v}" for k, v in sorted(doc["config"].items()))
            lines.append(f"  config: {cfg}")
        if doc.get("seed") is not None:
            lines.append(f"  seed: {doc['seed']}")
        wall = doc.get("wall_s")
        status = f"FAILED ({doc['error']})" if doc.get("error") else "ok"
        lines.append(
            f"  wall: {wall:.2f}s  status: {status}" if wall is not None
            else f"  status: {status}"
        )
        totals = doc.get("span_totals") or {}
        if totals:
            lines.append("span totals (by wall time):")
            name_w = max(len(name) for name in totals)
            for name, stat in totals.items():
                lines.append(
                    f"  {name:<{name_w}}  n={stat['count']:<6} "
                    f"wall {stat['wall_s']:.4f}s  cpu {stat['cpu_s']:.4f}s"
                    + (f"  mem {stat['mem_peak_kb']:.0f}kB"
                       if stat.get("mem_peak_kb") else "")
                    + (f"  errors={stat['errors']}" if stat.get("errors") else "")
                )
        if doc.get("spans"):
            lines.append("span tree:")
            lines.extend(
                "  " + line
                for line in trace.format_span_tree(doc["spans"], max_depth=max_depth)
            )
        metric_dump = doc.get("metrics") or {}
        if metric_dump:
            lines.append("metrics:")
            for key, m in metric_dump.items():
                if m["type"] == "histogram":
                    lines.append(
                        f"  {key} [{m['type']}] count={m['count']} sum={m['sum']:g}"
                    )
                else:
                    lines.append(f"  {key} [{m['type']}] {m['value']:g}"
                                 + (f" {m['unit']}" if m.get("unit") else ""))
        return lines


@contextlib.contextmanager
def profile(command, config=None, seed=None, path="run.json", memory=False,
            argv=None):
    """Run a block under full observability and write ``run.json``.

    Enables the global switch, clears the span and metric collectors so
    the manifest covers exactly this block, optionally starts
    :mod:`tracemalloc` (``memory=True``; spans then record peak
    allocations at a measurable slowdown), and writes the manifest on
    the way out -- on failure too, with the exception recorded in
    ``error``.  Restores the previous enabled/tracing state afterwards.

    Yields the :class:`RunReport` so the caller can add config late.
    """
    from repro import obs

    report = RunReport(command, config=config, seed=seed, argv=argv)
    was_enabled = _state.enabled
    started_tracemalloc = False
    if memory and not tracemalloc.is_tracing():
        tracemalloc.start()
        started_tracemalloc = True
    obs.enable()
    trace.reset()
    metrics.registry().reset()
    error = None
    try:
        yield report
    except BaseException as exc:
        error = f"{type(exc).__name__}: {exc}"
        raise
    finally:
        report.finish(error=error)
        if started_tracemalloc:
            tracemalloc.stop()
        if not was_enabled:
            obs.disable()
        if path is not None:
            report.write(path)
