"""Nestable spans: wall time, CPU time, and traced-memory peaks.

A *span* wraps one unit of work (``with span("hosking.extend", n=4096)``)
and records, at exit,

- wall-clock duration (``time.perf_counter``),
- CPU time spent by the calling thread (``time.thread_time``),
- the peak :mod:`tracemalloc` footprint above the span's entry
  allocation *if* tracemalloc is tracing (profiled runs start it; plain
  runs skip the cost entirely), and
- the exception type when the body raised.

Spans nest: a span entered while another is open on the same thread
becomes its child, so a profiled run yields a tree (generation under
experiment, transform under generation...).  Each thread keeps its own
open-span stack; finished *root* spans from every thread land in one
process-wide collector guarded by a lock, which is what makes the
collector safe under :class:`repro.stream.pipeline.ParallelSources`.

When observability is disabled (the default) :func:`span` returns a
shared no-op context manager after a single module-flag read, so the
instrumentation costs nanoseconds in hot loops that stay disabled.
"""

from __future__ import annotations

import hashlib
import itertools
import threading
import time
import tracemalloc

from repro.obs import _state

__all__ = [
    "span",
    "new_trace_id",
    "reset",
    "snapshot",
    "aggregate",
    "format_span_tree",
]

_span_ids = itertools.count(1)


def new_trace_id(seed=None):
    """A trace id for cross-process span stitching.

    With a ``seed`` the id is a pure sha256 function of it (the
    distributed coordinator derives one from the campaign seed, so a
    rerun carries the same trace id); without one a process-unique
    counter id is handed out.
    """
    if seed is not None:
        return hashlib.sha256(f"{seed}:trace".encode()).hexdigest()[:16]
    return f"t{next(_span_ids):08d}"


class _NullSpan:
    """Do-nothing span handed out while observability is disabled."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return False

    def set(self, **attrs):
        return self

    def adopt(self, tree):
        return self


_NULL = _NullSpan()

_lock = threading.Lock()
_local = threading.local()
_roots = []


def _stack():
    stack = getattr(_local, "stack", None)
    if stack is None:
        stack = _local.stack = []
    return stack


class Span:
    """One recorded unit of work; use via the :func:`span` factory."""

    __slots__ = (
        "name", "attrs", "children", "wall_s", "cpu_s", "mem_peak_kb",
        "error", "thread", "span_id", "trace_id", "detached",
        "_t0", "_c0", "_m0",
    )

    def __init__(self, name, attrs, detached=False):
        self.name = str(name)
        self.attrs = attrs
        self.children = []
        self.wall_s = None
        self.cpu_s = None
        self.mem_peak_kb = None
        self.error = None
        self.thread = threading.current_thread().name
        self.span_id = f"s{next(_span_ids):08d}"
        self.trace_id = None
        self.detached = bool(detached)

    def set(self, **attrs):
        """Attach (or update) attributes mid-span; returns the span."""
        self.attrs.update(attrs)
        return self

    def adopt(self, tree):
        """Graft a serialized span tree (a ``to_dict`` dict) as a child.

        This is how the distributed coordinator stitches worker-side
        span subtrees -- shipped back as plain dicts with each result
        -- into its own span forest, so ``run.json`` covers the whole
        cluster.  The adopted tree inherits this span's trace id.
        Returns the span.
        """
        if not isinstance(tree, dict) or "name" not in tree:
            raise ValueError(f"adopt() wants a span dict with a name, got {tree!r}")
        tree = dict(tree)
        if self.trace_id is not None:
            tree.setdefault("trace_id", self.trace_id)
        self.children.append(tree)
        return self

    def __enter__(self):
        _stack().append(self)
        if tracemalloc.is_tracing():
            # Peak above the entry footprint: monotone across nesting
            # (no reset_peak), so an inner span never corrupts an outer
            # span's reading; coarse but dependable.
            self._m0 = tracemalloc.get_traced_memory()[0]
        else:
            self._m0 = None
        self._c0 = time.thread_time()
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb):
        self.wall_s = time.perf_counter() - self._t0
        self.cpu_s = time.thread_time() - self._c0
        if self._m0 is not None and tracemalloc.is_tracing():
            peak = tracemalloc.get_traced_memory()[1]
            self.mem_peak_kb = max(0.0, (peak - self._m0) / 1024.0)
        if exc_type is not None:
            self.error = exc_type.__name__
        stack = _stack()
        # Exception safety: unwind past any children abandoned by a
        # raise that skipped their __exit__ (generators, etc.).
        while stack and stack[-1] is not self:
            stack.pop()
        if stack:
            stack.pop()
        if stack:
            stack[-1].children.append(self)
        elif not self.detached:
            # Detached spans (a dist worker's attempt in the simulated
            # cluster) are shipped over the wire and adopted into the
            # coordinator's forest; landing in the shared collector too
            # would record them twice.
            with _lock:
                _roots.append(self)
        return False

    def to_dict(self):
        doc = {
            "name": self.name,
            "wall_s": round(self.wall_s, 6) if self.wall_s is not None else None,
            "cpu_s": round(self.cpu_s, 6) if self.cpu_s is not None else None,
        }
        if self.trace_id is not None:
            doc["trace_id"] = self.trace_id
            doc["span_id"] = self.span_id
        if self.mem_peak_kb is not None:
            doc["mem_peak_kb"] = round(self.mem_peak_kb, 1)
        if self.attrs:
            doc["attrs"] = dict(self.attrs)
        if self.error is not None:
            doc["error"] = self.error
        if self.thread != "MainThread":
            doc["thread"] = self.thread
        if self.children:
            # Children are Span objects, or adopted remote trees that
            # arrived as plain dicts.
            doc["children"] = [
                child.to_dict() if isinstance(child, Span) else dict(child)
                for child in self.children
            ]
        return doc

    def __repr__(self):
        wall = f"{self.wall_s:.4f}s" if self.wall_s is not None else "open"
        return f"Span({self.name!r}, {wall}, {len(self.children)} child(ren))"


def span(name, detached=False, **attrs):
    """Open a span named ``name`` with optional attributes.

    Returns a context manager; with observability disabled this is a
    shared no-op object and the call costs one flag read.  A
    ``detached`` span never lands in the process collector -- it exists
    to be serialized (``to_dict``) and adopted into another process's
    span forest, the dist worker's attempt-span mode.
    """
    if not _state.enabled:
        return _NULL
    return Span(name, attrs, detached=detached)


def reset():
    """Drop all recorded root spans (and this thread's open stack)."""
    with _lock:
        _roots.clear()
    _local.stack = []


def snapshot():
    """The finished root spans as a list of JSON-able dict trees."""
    with _lock:
        roots = list(_roots)
    return [root.to_dict() for root in roots]


def _walk(node, visit):
    visit(node)
    for child in node.get("children", ()):
        _walk(child, visit)


def aggregate(trees=None):
    """Per-name rollup over a snapshot: count, total/max wall and CPU.

    ``trees`` defaults to the live collector's :func:`snapshot`.
    Returns ``{name: {"count", "wall_s", "cpu_s", "max_wall_s",
    "mem_peak_kb"}}`` sorted by total wall time, descending.
    """
    if trees is None:
        trees = snapshot()
    stats = {}

    def visit(node):
        entry = stats.setdefault(
            node["name"],
            {"count": 0, "wall_s": 0.0, "cpu_s": 0.0, "max_wall_s": 0.0,
             "mem_peak_kb": 0.0, "errors": 0},
        )
        entry["count"] += 1
        entry["wall_s"] += node.get("wall_s") or 0.0
        entry["cpu_s"] += node.get("cpu_s") or 0.0
        entry["max_wall_s"] = max(entry["max_wall_s"], node.get("wall_s") or 0.0)
        entry["mem_peak_kb"] = max(entry["mem_peak_kb"], node.get("mem_peak_kb") or 0.0)
        if node.get("error"):
            entry["errors"] += 1

    for tree in trees:
        _walk(tree, visit)
    ordered = sorted(stats.items(), key=lambda kv: -kv[1]["wall_s"])
    return {
        name: {k: (round(v, 6) if isinstance(v, float) else v) for k, v in entry.items()}
        for name, entry in ordered
    }


def format_span_tree(trees, indent=2, max_depth=None):
    """Human-readable rendering of a snapshot, one line per span."""
    lines = []

    def render(node, depth):
        if max_depth is not None and depth > max_depth:
            return
        pad = " " * (indent * depth)
        wall = node.get("wall_s")
        cpu = node.get("cpu_s")
        parts = [f"{pad}{node['name']}"]
        if wall is not None:
            parts.append(f"wall {wall:.4f}s")
        if cpu is not None:
            parts.append(f"cpu {cpu:.4f}s")
        if node.get("mem_peak_kb") is not None:
            parts.append(f"mem {node['mem_peak_kb']:.0f}kB")
        if node.get("attrs"):
            parts.append(" ".join(f"{k}={v}" for k, v in sorted(node["attrs"].items())))
        if node.get("error"):
            parts.append(f"ERROR {node['error']}")
        lines.append("  ".join(parts))
        for child in node.get("children", ()):
            render(child, depth + 1)

    for tree in trees:
        render(tree, 0)
    return lines
