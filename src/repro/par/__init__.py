"""repro.par — deterministic multi-core execution engine.

Three pieces, each importable on its own:

- :mod:`repro.par.pool` — seeded process-pool map (`pool_map`):
  sha256-derived per-task seeds, shared-memory ndarray transfer,
  worker recycling, serial fallback, child→parent metric merging;
- :mod:`repro.par.shard` — shard-parallel fGn generation
  (`shard_fgn`) whose output is a pure function of the parameters and
  seed, never of the worker count;
- :mod:`repro.par.batch` — batch-per-worker fleet synthesis
  (`batch_fgn_pool`) stacking several traces per pool task through
  :func:`repro.core.batch.batch_fgn`, plus the process-wide
  ``batch=None`` default (`default_batch` / `set_default_batch`,
  seeded from ``REPRO_BATCH``);
- :mod:`repro.par.cache` — content-addressed, digest-verified on-disk
  cache for expensive intermediates (circulant eigenvalues, Paxson
  spectral densities, fARIMA autocorrelation tables, synthesized
  traces), activated process-wide via ``cache.configure`` /
  ``--cache-dir``.

Attribute access is lazy: the core generators import
:mod:`repro.par.cache`, and :mod:`repro.par.shard` imports the core
generators, so eagerly importing submodules here would cycle.
"""

from __future__ import annotations

__all__ = [
    "batch",
    "cache",
    "pool",
    "shard",
    "pool_map",
    "derive_task_seed",
    "shard_fgn",
    "batch_fgn_pool",
    "default_batch",
    "set_default_batch",
    "ContentCache",
]

_LAZY = {
    "batch": ("repro.par.batch", None),
    "cache": ("repro.par.cache", None),
    "pool": ("repro.par.pool", None),
    "shard": ("repro.par.shard", None),
    "pool_map": ("repro.par.pool", "pool_map"),
    "derive_task_seed": ("repro.par.pool", "derive_task_seed"),
    "shard_fgn": ("repro.par.shard", "shard_fgn"),
    "batch_fgn_pool": ("repro.par.batch", "batch_fgn_pool"),
    "default_batch": ("repro.par.batch", "default_batch"),
    "set_default_batch": ("repro.par.batch", "set_default_batch"),
    "ContentCache": ("repro.par.cache", "ContentCache"),
}


def __getattr__(name):
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    import importlib

    module = importlib.import_module(module_name)
    value = module if attr is None else getattr(module, attr)
    globals()[name] = value
    return value


def __dir__():
    return sorted(set(globals()) | set(_LAZY))
