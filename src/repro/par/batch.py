"""Batch-per-worker fGn synthesis and the process-wide batch default.

:func:`repro.core.batch.batch_fgn` turns B independent traces into one
stacked 2-D FFT; this module decides *how many rows ride together*:

- :func:`default_batch` / :func:`set_default_batch` hold the process
  default (seeded from ``REPRO_BATCH``), consulted by every batch-aware
  path (``shard_fgn``, ``BlockFGNSource``, the CLI ``--batch`` flag)
  when the caller passes ``batch=None``.
- :func:`batch_fgn_pool` generates a fleet of independent traces on the
  :func:`repro.par.pool.pool_map` pool, **batch-per-worker** instead of
  trace-per-worker: each task synthesizes one stacked batch of rows, so
  the FFT amortization and the process fan-out compose.

Trace ``i`` always draws from
``default_rng(derive_task_seed(seed, i, label="batch"))`` no matter how
rows are grouped into batches or spread over workers — grouping is a
pure execution strategy, and the tier-1 wall pins the fleet bit-for-bit
across ``batch`` x ``workers`` combinations.
"""

from __future__ import annotations

import os

import numpy as np

from repro._validation import require_positive_int

__all__ = [
    "default_batch",
    "set_default_batch",
    "resolve_batch",
    "batch_fgn_pool",
]

_DEFAULT_BATCH = max(int(os.environ.get("REPRO_BATCH", "1")), 1)


def default_batch():
    """The process-wide batch size used when a caller passes ``batch=None``."""
    return _DEFAULT_BATCH


def set_default_batch(batch):
    """Set the process default batch size; returns the previous value."""
    global _DEFAULT_BATCH
    previous = _DEFAULT_BATCH
    _DEFAULT_BATCH = require_positive_int(batch, "batch")
    return previous


def resolve_batch(batch):
    """Normalize a ``batch=`` argument (``None`` -> the process default)."""
    if batch is None:
        return _DEFAULT_BATCH
    return require_positive_int(batch, "batch")


def _batch_task(item, common):
    """Pool task: one stacked batch of rows with explicit per-row seeds."""
    from repro.core.batch import batch_fgn

    start, seeds = item
    return batch_fgn(
        common["n"], common["hurst"], len(seeds),
        backend=common["backend"], variance=common["variance"],
        seeds=seeds,
    )


def batch_fgn_pool(n, hurst, count, *, backend="paxson", variance=1.0,
                   seed=0, batch=None, workers=1):
    """Synthesize ``count`` independent fGn traces, batch-per-worker.

    Returns a ``(count, n)`` array whose row ``i`` is bit-identical to
    ``batch_fgn(n, hurst, count, seed=seed)[i]`` — and hence to the
    single-trace generator under
    ``default_rng(derive_task_seed(seed, i, label="batch"))`` — for
    every ``(batch, workers)`` combination.  ``batch`` rows ride each
    pool task (``None`` uses :func:`default_batch`), so one worker
    performs one stacked FFT per task instead of one FFT per trace.
    """
    from repro.core.batch import batch_row_seeds
    from repro.par.pool import pool_map

    n = require_positive_int(n, "n")
    count = require_positive_int(count, "count")
    batch = resolve_batch(batch)
    seeds = batch_row_seeds(seed, count)
    items = [
        (start, seeds[start : start + batch])
        for start in range(0, count, batch)
    ]
    groups = pool_map(
        _batch_task, items,
        workers=workers,
        common={"n": n, "hurst": float(hurst), "variance": float(variance),
                "backend": backend},
        label="batch",
    )
    return np.concatenate(groups, axis=0)
