"""Content-addressed on-disk cache for expensive intermediates.

The hot paths recompute the same pure functions of a handful of
parameters over and over: the Davies-Harte circulant eigenvalue vector
and Paxson spectral density depend only on ``(H, n, variance)``, the
Hosking/fARIMA autocorrelation table only on ``(d, n_lags)``, and a
synthesized Star-Wars trace only on its calibration parameters and
seed.  :class:`ContentCache` persists those intermediates under a key
that *is* their content address:

    ``key = sha256(algorithm + canonical JSON of the parameters)``

Canonicalization (:func:`canonical_params`) makes the key independent
of parameter order and of numeric *type*: ``1`` and ``1.0`` and
``np.float64(1)`` are the same value and must hit the same entry, while
``0.5`` and ``0.5 + 1e-12`` are different values and must not (floats
are keyed by their exact ``float.hex`` expansion, so there is no
tolerance window to collide in).

Every payload carries a sha256 digest of its serialized bytes, and the
digest is re-verified on **every** hit; a poisoned or truncated entry
is evicted and reported as a miss, never served.  Writes are atomic
(temp file + ``os.replace``), so concurrent writers -- the
:mod:`repro.par.pool` workers share one cache directory -- can race
benignly: last writer wins with identical content.

A process-wide *active cache* (:func:`configure` / :func:`using`) lets
instrumented producers (the fGn generators, the Star Wars synthesizer)
consult the cache without plumbing a handle through every call site;
``repro ... --cache-dir PATH`` configures it from the CLI.  Forked pool
workers inherit the active cache, so a grid sweep's workers fill and
share one directory.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import threading
from contextlib import contextmanager
from pathlib import Path

import numpy as np

from repro.obs import log as obs_log
from repro.obs import metrics

__all__ = [
    "CACHE_VERSION",
    "ContentCache",
    "active_cache",
    "cache_key",
    "canonical_params",
    "configure",
    "using",
]

CACHE_VERSION = 1
"""Bump when the entry layout changes (old entries become misses)."""

_LOGGER = obs_log.get_logger("par.cache")

_OUTCOMES = {
    outcome: metrics.registry().counter(
        "repro_par_cache_total",
        help="Content-cache lookups by outcome",
        unit="lookups", labels={"outcome": outcome},
    )
    for outcome in ("hit", "miss", "evict")
}

_BYTES = {
    op: metrics.registry().counter(
        "repro_par_cache_bytes_total",
        help="Content-cache payload bytes moved, by operation",
        unit="bytes", labels={"op": op},
    )
    for op in ("read", "write")
}


def canonical_params(params):
    """Canonical, hashable form of a parameter mapping.

    - keys are sorted (parameter order cannot change the key);
    - bools stay bools; ``None`` and strings pass through;
    - every other number (int, float, numpy scalar) becomes the
      ``float.hex`` expansion of its float value, so ``2``, ``2.0`` and
      ``np.float64(2)`` canonicalize identically while any two distinct
      float values (H = 0.5 vs 0.5 + 1e-12) stay distinct;
    - ``-0.0`` folds into ``0.0``; non-finite values are rejected --
      a NaN parameter can never silently address a cache entry.
    """
    if not isinstance(params, dict):
        raise TypeError(f"params must be a dict, got {type(params).__name__}")
    out = {}
    for key in sorted(params):
        value = params[key]
        name = str(key)
        if isinstance(value, bool) or value is None or isinstance(value, str):
            out[name] = value
            continue
        if isinstance(value, (int, np.integer)):
            # Integers beyond float64's exact range (64-bit sha-derived
            # seeds) keep their exact decimal form; the "int:" prefix
            # cannot collide with a float.hex() string.  Float-exact
            # integers fall through to the float branch so 2 == 2.0.
            integral = int(value)
            try:
                exact = integral == int(float(integral))
            except OverflowError:
                exact = False
            if not exact:
                out[name] = f"int:{integral}"
                continue
        if isinstance(value, (int, float, np.integer, np.floating)):
            value = float(value)
            if not np.isfinite(value):
                raise ValueError(f"parameter {name!r} is non-finite ({value!r})")
            if value == 0.0:
                value = 0.0  # fold -0.0
            out[name] = value.hex()
            continue
        if isinstance(value, (tuple, list)):
            out[name] = [canonical_params({"v": v})["v"] for v in value]
            continue
        raise TypeError(
            f"parameter {name!r} has uncacheable type {type(value).__name__}"
        )
    return out


def cache_key(algorithm, params):
    """The sha256 content address of ``(algorithm, params)``."""
    if not algorithm or not isinstance(algorithm, str):
        raise ValueError(f"algorithm must be a non-empty string, got {algorithm!r}")
    document = {
        "version": CACHE_VERSION,
        "algorithm": algorithm,
        "params": canonical_params(params),
    }
    blob = json.dumps(document, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


class ContentCache:
    """Digest-verified ndarray cache rooted at one directory.

    Entries live at ``root/<key[:2]>/<key>.npz`` with a sidecar
    ``<key>.json`` recording the algorithm, canonical parameters and
    the sha256 digest of the payload bytes.  ``get`` re-hashes the
    payload on every hit and evicts on any mismatch; ``put`` writes
    both files atomically.

    Payloads are a single ndarray or a flat ``{name: ndarray}`` dict
    (the Star Wars trace stores frame and slice arrays together).
    """

    def __init__(self, root):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------
    def entry_paths(self, algorithm, params):
        """``(payload_path, meta_path)`` for one ``(algorithm, params)``."""
        key = cache_key(algorithm, params)
        shard_dir = self.root / key[:2]
        return shard_dir / f"{key}.npz", shard_dir / f"{key}.json"

    @staticmethod
    def _write_atomic(path, data):
        tmp = path.with_suffix(path.suffix + f".tmp{os.getpid()}")
        with open(tmp, "wb") as handle:
            handle.write(data)
        os.replace(tmp, path)

    def _evict(self, payload_path, meta_path, reason):
        for path in (payload_path, meta_path):
            try:
                path.unlink()
            except OSError:
                pass
        _OUTCOMES["evict"].inc()
        _LOGGER.warning(
            "evicted cache entry %s (%s)", payload_path.name, reason,
            extra={"entry": payload_path.name, "reason": reason},
        )

    # ------------------------------------------------------------------
    # Lookup / store
    # ------------------------------------------------------------------
    def get(self, algorithm, params):
        """The stored payload, or ``None`` on miss.

        A hit is served only after the payload bytes re-hash to the
        digest recorded at ``put`` time; any corruption (flipped bytes,
        truncation, stale schema, unreadable metadata) evicts the entry
        and returns ``None`` so the caller recomputes.
        """
        payload_path, meta_path = self.entry_paths(algorithm, params)
        if not (payload_path.exists() and meta_path.exists()):
            _OUTCOMES["miss"].inc()
            return None
        try:
            meta = json.loads(meta_path.read_text())
            blob = payload_path.read_bytes()
        except (OSError, ValueError) as exc:
            self._evict(payload_path, meta_path, f"unreadable: {exc}")
            _OUTCOMES["miss"].inc()
            return None
        if meta.get("version") != CACHE_VERSION:
            self._evict(payload_path, meta_path, "stale schema")
            _OUTCOMES["miss"].inc()
            return None
        digest = hashlib.sha256(blob).hexdigest()
        if digest != meta.get("digest"):
            self._evict(payload_path, meta_path, "digest mismatch")
            _OUTCOMES["miss"].inc()
            return None
        try:
            with np.load(io.BytesIO(blob)) as archive:
                payload = {name: archive[name] for name in archive.files}
        except Exception as exc:
            self._evict(payload_path, meta_path, f"undecodable: {exc}")
            _OUTCOMES["miss"].inc()
            return None
        _OUTCOMES["hit"].inc()
        _BYTES["read"].inc(len(blob))
        if set(payload) == {"__array__"}:
            return payload["__array__"]
        return payload

    def put(self, algorithm, params, payload):
        """Store ``payload`` (ndarray or flat dict of ndarrays)."""
        if isinstance(payload, np.ndarray):
            payload = {"__array__": payload}
        if not isinstance(payload, dict) or not payload:
            raise TypeError("payload must be an ndarray or a non-empty dict of ndarrays")
        arrays = {}
        for name, value in payload.items():
            if value is None:
                continue
            arrays[str(name)] = np.asarray(value)
        buffer = io.BytesIO()
        np.savez(buffer, **arrays)
        blob = buffer.getvalue()
        meta = {
            "version": CACHE_VERSION,
            "algorithm": algorithm,
            "params": canonical_params(params),
            "digest": hashlib.sha256(blob).hexdigest(),
            "nbytes": len(blob),
        }
        payload_path, meta_path = self.entry_paths(algorithm, params)
        with self._lock:
            payload_path.parent.mkdir(parents=True, exist_ok=True)
            self._write_atomic(payload_path, blob)
            self._write_atomic(
                meta_path, (json.dumps(meta, indent=2, sort_keys=True) + "\n").encode()
            )
        _BYTES["write"].inc(len(blob))

    def memoize(self, algorithm, params, compute):
        """``get`` or ``compute() -> put`` in one call; returns the payload."""
        cached = self.get(algorithm, params)
        if cached is not None:
            return cached
        payload = compute()
        self.put(algorithm, params, payload)
        return payload

    def entries(self):
        """All ``(algorithm, key)`` pairs currently stored (from metadata)."""
        found = []
        for meta_path in sorted(self.root.glob("*/*.json")):
            try:
                meta = json.loads(meta_path.read_text())
            except (OSError, ValueError):
                continue
            found.append((meta.get("algorithm"), meta_path.stem))
        return found

    def __repr__(self):
        return f"ContentCache({str(self.root)!r})"


# ----------------------------------------------------------------------
# Process-wide active cache (inherited by forked pool workers)
# ----------------------------------------------------------------------
_ACTIVE = None


def active_cache():
    """The configured :class:`ContentCache`, or ``None`` (caching off)."""
    return _ACTIVE


def configure(root):
    """Install (or with ``None``, remove) the process-wide cache."""
    global _ACTIVE
    _ACTIVE = None if root is None else (
        root if isinstance(root, ContentCache) else ContentCache(root)
    )
    return _ACTIVE


@contextmanager
def using(root):
    """Temporarily install a cache (tests; scoped sweeps)."""
    previous = _ACTIVE
    cache = configure(root)
    try:
        yield cache
    finally:
        configure(previous)


def memoized(algorithm, params, compute):
    """Memoize through the active cache, or just ``compute()`` if none."""
    cache = _ACTIVE
    if cache is None:
        return compute()
    return cache.memoize(algorithm, params, compute)
