"""Seeded process-pool map with deterministic results and metric merging.

:func:`pool_map` is the one parallel primitive the rest of the code
builds on: it maps a module-level function over a task list and
returns results **in task order**, with three properties the serial
code paths already promise and parallelism must not break:

**Determinism.**  Every task's seed is derived from the caller's base
seed and the task *index* via sha256 (:func:`derive_task_seed`), never
from worker identity or scheduling order, so the result list is a pure
function of ``(fn, items, base_seed)`` — identical for ``workers=1``
and ``workers=8``.  When a :class:`repro.resilience.faults.FaultPlan`
is active the map automatically degrades to the serial path, keeping
the plan's k-th-call fault counters in one process where they are
meaningful.

**Robustness.**  A worker that dies (OOM kill, injected crash) breaks
the pool; the pending tasks are transparently re-run serially in the
parent, so ``pool_map`` either returns the full deterministic result
list or raises the task's own exception — never a half-filled list.
Workers can be recycled after a fixed number of tasks
(``recycle_after``) to bound leaked state in long campaigns.

**Observability.**  The :mod:`repro.obs` metrics registry is
process-local, so counters incremented inside a worker would silently
vanish with it.  Each worker resets its (fork-inherited) registry
before a task and ships the per-task delta dump back with the result;
the parent folds it in via :func:`repro.obs.metrics.merge_dump`.  Task
counts, cache hits and histogram observations therefore survive the
pool boundary exactly.

Large read-only ndarrays shared by every task (a 171k-frame trace, a
bank of arrival processes) go through ``common=``: arrays at or above
:data:`SHM_THRESHOLD` bytes are placed in POSIX shared memory once and
attached zero-copy in each worker instead of being pickled per task.
"""

from __future__ import annotations

import hashlib
import time

import numpy as np

from repro.obs import log as obs_log
from repro.obs import metrics

__all__ = [
    "SHM_THRESHOLD",
    "derive_task_seed",
    "pool_map",
    "resolve_workers",
]

SHM_THRESHOLD = 1 << 20
"""Arrays in ``common=`` at or above this many bytes ride shared memory."""

_LOGGER = obs_log.get_logger("par.pool")

_TASKS = {
    mode: metrics.registry().counter(
        "repro_par_pool_tasks_total",
        help="Tasks completed by pool_map, by execution mode",
        unit="tasks", labels={"mode": mode},
    )
    for mode in ("parallel", "serial")
}

_FALLBACKS = {
    reason: metrics.registry().counter(
        "repro_par_pool_fallback_total",
        help="Serial fallbacks taken by pool_map, by reason",
        unit="fallbacks", labels={"reason": reason},
    )
    for reason in ("workers", "fault_plan", "broken_pool")
}

_WAIT = metrics.registry().histogram(
    "repro_par_pool_wait_seconds",
    help="Wall seconds from task dispatch to result arrival",
    unit="seconds",
)

_WIDTH = metrics.registry().gauge(
    "repro_par_pool_workers",
    help="Worker-process count of the most recent pool_map",
    unit="workers",
)


def derive_task_seed(base_seed, index, label="task"):
    """sha256-derived per-task seed: a pure function of ``(base, index)``.

    Worker identity and scheduling order never enter the derivation,
    which is what makes a parallel map's randomness reproducible and
    identical to the serial map's.
    """
    digest = hashlib.sha256(f"{int(base_seed)}:{label}:{int(index)}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


def resolve_workers(workers):
    """Normalize a ``workers=`` argument to a positive int (``None`` -> 1)."""
    if workers is None:
        return 1
    workers = int(workers)
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    return workers


def _fault_plan_active():
    # Lazy import: resilience.faults pulls in stream/core modules that
    # themselves import repro.par (cache hooks) — importing it at module
    # load would cycle.
    try:
        from repro.resilience.faults import active_plan
    except Exception:  # pragma: no cover - partial-install guard
        return False
    return active_plan() is not None


# ----------------------------------------------------------------------
# Shared-memory transfer of large common arrays
# ----------------------------------------------------------------------
class _ShmToken:
    """Picklable handle for an ndarray living in a shared-memory block."""

    __slots__ = ("name", "shape", "dtype")

    def __init__(self, name, shape, dtype):
        self.name = name
        self.shape = shape
        self.dtype = dtype


def _export_common(common):
    """Stage ``common`` for workers; big arrays go to shared memory.

    Returns ``(spec, handles)``: the picklable spec handed to worker
    initializers and the parent-owned SharedMemory handles to unlink
    once the pool is done.
    """
    from multiprocessing import shared_memory

    spec = {}
    handles = []
    for key, value in common.items():
        if isinstance(value, np.ndarray) and value.nbytes >= SHM_THRESHOLD:
            value = np.ascontiguousarray(value)
            block = shared_memory.SharedMemory(create=True, size=value.nbytes)
            np.ndarray(value.shape, dtype=value.dtype, buffer=block.buf)[...] = value
            spec[key] = _ShmToken(block.name, value.shape, str(value.dtype))
            handles.append(block)
        else:
            spec[key] = value
    return spec, handles


def _release_common(handles):
    for block in handles:
        try:
            block.close()
        except BufferError:  # a view is still alive somewhere; unlink still works
            pass
        try:
            block.unlink()
        except FileNotFoundError:
            pass


def _resolve_common(spec):
    """Worker-side: attach shared blocks, yielding read-only views."""
    from multiprocessing import shared_memory

    resolved = {}
    for key, value in spec.items():
        if isinstance(value, _ShmToken):
            # Fork-context workers share the parent's resource tracker,
            # and the tracker's name cache is a set: this attach-time
            # re-register is a no-op, and the single unregister happens
            # when the parent unlinks the segment.  (Do NOT unregister
            # here — a second worker's unregister would double-remove.)
            block = shared_memory.SharedMemory(name=value.name, create=False)
            array = np.ndarray(value.shape, dtype=value.dtype, buffer=block.buf)
            array.flags.writeable = False
            resolved[key] = array
            _ATTACHED.append(block)  # keep the mapping alive for the view
        else:
            resolved[key] = value
    return resolved


# Worker-process globals (populated by the pool initializer).
_WORKER_COMMON = None
_ATTACHED = []


def _child_init(spec):
    global _WORKER_COMMON
    _WORKER_COMMON = None if spec is None else _resolve_common(spec)


def _task_args(item, seed, common):
    args = [item]
    if seed is not None:
        args.append(seed)
    if common is not None:
        args.append(common)
    return args


def _child_call(payload):
    index, fn, item, seed = payload
    # Fork copied the parent's metric values into this process; reset so
    # the dump shipped back is exactly this task's delta.
    metrics.registry().reset()
    result = fn(*_task_args(item, seed, _WORKER_COMMON))
    return index, result, metrics.registry().to_dict()


# ----------------------------------------------------------------------
# The map
# ----------------------------------------------------------------------
def pool_map(fn, items, *, workers=1, base_seed=None, common=None,
             recycle_after=None, label="pool"):
    """Map ``fn`` over ``items`` on a seeded process pool, in task order.

    ``fn`` must be module-level (picklable) and is called with
    positional arguments ``(item[, seed][, common])``: the seed is
    present iff ``base_seed`` is given (derived per task index via
    :func:`derive_task_seed`), the common dict iff ``common`` is given.
    The result list is index-aligned with ``items`` and identical for
    every worker count.

    Serial execution is used when ``workers == 1``, when a FaultPlan is
    active (fault counters are process-local and must fire
    deterministically), and for any tasks left pending after a worker
    death breaks the pool.  ``recycle_after`` bounds how many tasks a
    worker set handles before being replaced by fresh processes.
    """
    items = list(items)
    if not items:
        return []
    workers = resolve_workers(workers)
    _WIDTH.set(workers)

    seeds = [
        None if base_seed is None else derive_task_seed(base_seed, i, label=label)
        for i in range(len(items))
    ]

    if workers == 1:
        _FALLBACKS["workers"].inc()
        return _serial_map(fn, items, seeds, range(len(items)), common)
    if _fault_plan_active():
        _FALLBACKS["fault_plan"].inc()
        _LOGGER.info(
            "fault plan active; pool_map %s running serially", label,
            extra={"label": label, "tasks": len(items)},
        )
        return _serial_map(fn, items, seeds, range(len(items)), common)

    spec, handles = (None, []) if common is None else _export_common(common)
    results = [_MISSING] * len(items)
    try:
        pending = list(range(len(items)))
        batch_size = len(pending) if recycle_after is None else max(
            1, workers * int(recycle_after)
        )
        while pending:
            batch, pending = pending[:batch_size], pending[batch_size:]
            survivors = _run_batch(fn, items, seeds, batch, spec, workers, results)
            if survivors:
                # The pool broke mid-batch (worker death).  Finish the
                # unfinished tasks — and everything not yet submitted —
                # serially in this process.
                _FALLBACKS["broken_pool"].inc()
                _LOGGER.warning(
                    "process pool broke; running %d remaining task(s) serially",
                    len(survivors) + len(pending),
                    extra={"label": label, "remaining": len(survivors) + len(pending)},
                )
                serial_common = common
                for index, value in zip(
                    survivors + pending,
                    _serial_map(fn, [items[i] for i in survivors + pending],
                                [seeds[i] for i in survivors + pending],
                                survivors + pending, serial_common),
                ):
                    results[index] = value
                pending = []
    finally:
        _release_common(handles)

    assert not any(value is _MISSING for value in results)
    return results


def _run_batch(fn, items, seeds, batch, spec, workers, results):
    """Run one executor over ``batch``; returns indexes left unfinished."""
    import multiprocessing
    from concurrent.futures import ProcessPoolExecutor
    from concurrent.futures.process import BrokenProcessPool

    context = multiprocessing.get_context("fork")
    unfinished = []
    with ProcessPoolExecutor(
        max_workers=min(workers, len(batch)),
        mp_context=context,
        initializer=_child_init,
        initargs=(spec,),
    ) as executor:
        futures = {}
        for position, index in enumerate(batch):
            payload = (index, fn, items[index], seeds[index])
            try:
                future = executor.submit(_child_call, payload)
            except BrokenProcessPool:
                unfinished.extend(batch[position:])
                break
            futures[future] = (index, time.perf_counter())
        for future, (index, submitted) in futures.items():
            try:
                got_index, value, dump = future.result()
            except BrokenProcessPool:
                unfinished.append(index)
                continue
            _WAIT.observe(time.perf_counter() - submitted)
            metrics.merge_dump(dump)
            _TASKS["parallel"].inc()
            results[got_index] = value
    return sorted(unfinished)


class _Missing:
    __slots__ = ()

    def __repr__(self):  # pragma: no cover - debugging aid
        return "<missing>"


_MISSING = _Missing()


def _serial_map(fn, items, seeds, indexes, common):
    """In-process execution path; bit-identical results, live metrics.

    ``common`` is passed straight through (no process-global state), so
    concurrent serial maps on different threads — e.g. a threaded
    campaign whose experiments each call :func:`pool_map` — cannot see
    each other's common payloads.
    """
    try:
        from repro.resilience.faults import reach
    except Exception:  # pragma: no cover - partial-install guard
        def reach(site):
            return None

    out = []
    for item, seed, index in zip(items, seeds, indexes):
        reach("par.pool:task")
        started = time.perf_counter()
        out.append(fn(*_task_args(item, seed, common)))
        _WAIT.observe(time.perf_counter() - started)
        _TASKS["serial"].inc()
    return out
