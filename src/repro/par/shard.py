"""Shard-parallel fractional-Gaussian-noise generation.

The streaming layer already generates unbounded approximate fGn by
stitching fixed-size synthesizer blocks over a cross-faded overlap
(:class:`repro.stream.sources.BlockFGNSource`).  :func:`shard_fgn`
applies the same construction *spatially*: the target length ``n`` is
cut into shards at multiples of ``shard_size``, each shard's samples
are synthesized independently by the unmodified serial generator
(Davies-Harte exact per shard, or Paxson approximate per shard) under
a seed derived from the **shard index**, and consecutive shards are
joined over the ``overlap`` window with the complementary
``cos``/``sin`` weights that preserve the Gaussian marginal exactly
(``cos^2 + sin^2 = 1``).

Because shard boundaries depend only on ``(n, shard_size)`` and shard
seeds only on ``(seed, shard index)``, the assembled path is a pure
function of ``(backend, hurst, variance, n, shard_size, overlap,
seed)`` — the worker count changes wall-clock time and nothing else.
That is the determinism contract the tier-1 test wall enforces
bit-for-bit at ``workers in {1, 2, 5}`` and odd shard boundaries.

The ``hosking`` backend is the paper's *exact* conditional recursion:
every point conditions on the entire past, so it cannot be sharded
without changing the process.  It is kept serial-exact —
``shard_fgn(..., backend="hosking")`` is byte-identical to
:func:`repro.core.hosking.hosking_farima` for the same ``(H, n,
seed)`` at any ``workers`` — and its speed comes instead from the
scratch-buffer Levinson inner loop in :mod:`repro.core.hosking` and
the fARIMA autocorrelation table served by :mod:`repro.par.cache`.
"""

from __future__ import annotations

import numpy as np

from repro._validation import (
    require_in_open_interval,
    require_positive,
    require_positive_int,
)
from repro.obs import metrics, trace
from repro.par.pool import pool_map

__all__ = ["SHARD_BACKENDS", "shard_fgn", "shard_plan", "blend_weights"]

SHARD_BACKENDS = ("hosking", "davies-harte", "paxson")

_SHARDS = metrics.registry().counter(
    "repro_par_shards_total",
    help="fGn shards synthesized by shard_fgn",
    unit="shards",
)


def shard_plan(n, shard_size):
    """``[(start, length), ...]`` shard boundaries — a function of ``(n, shard_size)`` only."""
    n = require_positive_int(n, "n")
    shard_size = require_positive_int(shard_size, "shard_size")
    return [
        (start, min(shard_size, n - start)) for start in range(0, n, shard_size)
    ]


def blend_weights(overlap):
    """The seam cross-fade weights ``(w_old, w_new)``.

    Identical to :class:`repro.stream.sources.BlockFGNSource`:
    ``w_old = cos(pi t / 2)``, ``w_new = sin(pi t / 2)`` on the interior
    grid ``t = (1..overlap) / (overlap + 1)``, so ``w_old^2 + w_new^2 = 1``
    and blending two independent Gaussians preserves the variance.
    """
    t = np.arange(1, int(overlap) + 1, dtype=float) / (int(overlap) + 1)
    return np.cos(0.5 * np.pi * t), np.sin(0.5 * np.pi * t)


def _synthesize_shard(item, task_seed):
    """Pool task: one shard's raw samples from the serial generator.

    ``item`` is ``(backend, hurst, variance, raw_len)``; the rng is
    built from the sha256-derived per-shard seed, so the draw depends
    on the shard index alone.
    """
    backend, hurst, variance, raw_len = item
    # Imported here (not at module top) so forked workers resolve the
    # generator against their own interpreter state and the par package
    # never eagerly drags core modules in at import time.
    from repro.core.daviesharte import DaviesHarteGenerator
    from repro.core.paxson import PaxsonGenerator

    cls = DaviesHarteGenerator if backend == "davies-harte" else PaxsonGenerator
    rng = np.random.default_rng(task_seed)
    raw = cls(hurst, variance=variance).generate(raw_len, rng=rng)
    _SHARDS.inc()
    return raw


def _synthesize_shard_batch(item, common):
    """Pool task: a stacked batch of equal-length shards.

    ``item`` is ``(raw_len, seeds)`` with one sha256-derived seed per
    shard; :func:`repro.core.batch.batch_fgn` guarantees each row is
    bit-identical to the single-shard call under the same seed, so
    batching shards per worker never changes the assembled path.
    """
    from repro.core.batch import batch_fgn

    raw_len, seeds = item
    rows = batch_fgn(
        raw_len, common["hurst"], len(seeds),
        backend=common["backend"], variance=common["variance"], seeds=seeds,
    )
    _SHARDS.inc(len(seeds))
    return rows


def shard_fgn(n, hurst, *, backend="paxson", variance=1.0, seed=0,
              shard_size=65_536, overlap=1_024, workers=1, batch=None):
    """Generate an fGn path of length ``n``, sharded across workers.

    Parameters
    ----------
    n, hurst, variance:
        Path length and marginal parameters (``hurst`` in the open
        stationary range ``(0, 1)``).
    backend:
        ``"paxson"`` (approximate per shard), ``"davies-harte"`` (exact
        per shard), or ``"hosking"`` (exact full-path recursion; runs
        serially regardless of ``workers``).
    seed:
        Base seed; shard ``i`` draws from
        ``default_rng(derive_task_seed(seed, i, label="shard"))``.
    shard_size, overlap:
        Shard boundary spacing and the seam cross-fade width
        (``0 <= overlap < shard_size``).  Both are part of the output's
        identity: changing either changes the path, changing
        ``workers`` never does.
    workers:
        Process count for shard synthesis (via
        :func:`repro.par.pool.pool_map`).
    batch:
        Shards synthesized per pool task as one stacked 2-D FFT
        (``None`` uses :func:`repro.par.batch.default_batch`).  Shard
        ``i`` keeps its ``derive_task_seed(seed, i, label="shard")``
        rng whatever the grouping, so ``batch`` — like ``workers`` —
        changes wall-clock time and nothing else.

    Returns the assembled float64 path of exactly ``n`` samples.
    """
    n = require_positive_int(n, "n")
    require_in_open_interval(hurst, "hurst", 0.0, 1.0)
    require_positive(variance, "variance")
    shard_size = require_positive_int(shard_size, "shard_size")
    overlap = int(overlap)
    if not 0 <= overlap < shard_size:
        raise ValueError(
            f"overlap must lie in [0, shard_size), got {overlap} with "
            f"shard_size {shard_size}"
        )
    if backend not in SHARD_BACKENDS:
        raise ValueError(f"backend must be one of {SHARD_BACKENDS}, got {backend!r}")

    if backend == "hosking":
        # Exact conditional recursion: serial by construction, identical
        # to hosking_farima(n, hurst, variance, rng=default_rng(seed)).
        from repro.core.hosking import HoskingGenerator

        with trace.span("par.shard_fgn", backend=backend, n=n, shards=1):
            rng = np.random.default_rng(int(seed))
            path = HoskingGenerator(hurst=hurst, variance=variance).generate(n, rng=rng)
        _SHARDS.inc()
        return path

    from repro.par.batch import resolve_batch

    batch = resolve_batch(batch)
    plan = shard_plan(n, shard_size)
    with trace.span("par.shard_fgn", backend=backend, n=n, shards=len(plan)):
        if batch == 1:
            items = [
                (backend, float(hurst), float(variance), length + overlap)
                for _, length in plan
            ]
            raws = pool_map(
                _synthesize_shard, items,
                workers=workers, base_seed=int(seed), label="shard",
            )
        else:
            # Group consecutive equal-length shards (every shard but a
            # short final one shares raw_len) into stacked batches; the
            # per-shard seeds ride inside the items, bit-identical to
            # the ones pool_map would derive on the batch=1 path.
            from repro.par.pool import derive_task_seed

            groups = []
            for shard_i, (_, length) in enumerate(plan):
                raw_len = length + overlap
                shard_seed = derive_task_seed(int(seed), shard_i, label="shard")
                if (groups and groups[-1][0] == raw_len
                        and len(groups[-1][1]) < batch):
                    groups[-1][1].append(shard_seed)
                else:
                    groups.append((raw_len, [shard_seed]))
            stacks = pool_map(
                _synthesize_shard_batch, groups,
                workers=workers,
                common={"hurst": float(hurst), "variance": float(variance),
                        "backend": backend},
                label="shard_batch",
            )
            raws = [row for stack in stacks for row in stack]
        w_old, w_new = blend_weights(overlap)
        out = np.empty(n)
        prev_tail = None
        for (start, length), raw in zip(plan, raws):
            head = raw[:length].copy()
            if prev_tail is not None and overlap:
                b = min(overlap, length)
                head[:b] = w_old[:b] * prev_tail[:b] + w_new[:b] * head[:b]
            prev_tail = raw[length:]
            out[start : start + length] = head
    return out
