"""Statistical verification harness for the reproduction test suite.

Three layers:

- :mod:`repro.qa.stats` -- statistical assertions with explicit error
  control: z-tests against Monte-Carlo estimators, goodness-of-fit
  wrappers (KS / chi-square / Anderson-Darling), ACF and spectral-shape
  agreement checks, Hurst-estimate confidence intervals, and
  Bonferroni/Sidak helpers so a whole suite can be held to one
  false-positive budget.
- :mod:`repro.qa.golden` -- deterministic golden-stats digests: an
  experiment result is summarized to a small JSON document (moments,
  quantiles, fitted parameters) that is compared with tolerance-aware
  diffing, so refactors are certified by digest equality instead of
  re-deriving plots.
- :mod:`repro.qa.plugin` -- the pytest plugin wiring it into the test
  run: ``tier1``/``tier2``/``tier3`` markers, the ``seeded_rng``
  fixture (rotated by ``--qa-seed``), ``statistical_retry``, the
  ``golden`` fixture and ``--update-golden``.
"""

from repro.qa.golden import (
    GoldenMismatch,
    GoldenStore,
    diff_digests,
    digests_match,
    summarize,
)
from repro.qa.stats import (
    CheckResult,
    StatisticalCheckError,
    acf_agreement_check,
    anderson_darling_check,
    bonferroni,
    chi_square_check,
    equivalence_check,
    fgn_mean_std_error,
    gph_agreement_check,
    hurst_ci_check,
    ks_check,
    mc_agreement_check,
    mc_mean_check,
    mean_check,
    require,
    sidak,
    z_test,
)

__all__ = [
    "CheckResult",
    "StatisticalCheckError",
    "acf_agreement_check",
    "anderson_darling_check",
    "bonferroni",
    "chi_square_check",
    "equivalence_check",
    "fgn_mean_std_error",
    "gph_agreement_check",
    "hurst_ci_check",
    "ks_check",
    "mc_agreement_check",
    "mc_mean_check",
    "mean_check",
    "require",
    "sidak",
    "z_test",
    "GoldenMismatch",
    "GoldenStore",
    "diff_digests",
    "digests_match",
    "summarize",
]
