"""Deterministic golden-stats digests for experiment outputs.

Re-deriving every figure to certify a refactor is slow and forces
hand-written tolerances into dozens of tests.  Instead, each
experiment result is *summarized* -- arrays become moments plus
quantiles, dataclasses become field dicts, scalars pass through -- and
the summary is stored as a small JSON digest under ``tests/golden/``.
A refactor is then certified by tolerance-aware digest comparison:
byte-stable on one machine, and robust to last-ulp BLAS differences
across machines via per-number relative/absolute tolerances.

Workflow:

- ``pytest`` compares results against the stored digests and fails
  with a field-by-field diff on drift;
- ``pytest --update-golden`` regenerates the digests (review the
  resulting ``git diff`` like any other code change).
"""

from __future__ import annotations

import dataclasses
import json
import math
import os
from pathlib import Path

import numpy as np

__all__ = [
    "DIGEST_VERSION",
    "GoldenMismatch",
    "GoldenStore",
    "diff_digests",
    "digests_match",
    "summarize",
]

DIGEST_VERSION = 1
"""Bump when the digest schema changes (forces regeneration everywhere)."""

_QUANTILES = (0.0, 0.05, 0.25, 0.5, 0.75, 0.95, 1.0)


class GoldenMismatch(AssertionError):
    """A result drifted from its stored golden digest."""


def _summarize_array(arr):
    """Moment/quantile summary of a numeric array.

    Shape and a few order statistics pin the structure; mean/std/sum
    pin the mass.  Non-finite entries are counted and excluded from
    the statistics so a stray NaN shows up as its own diff line
    rather than poisoning every number.
    """
    flat = np.asarray(arr, dtype=float).ravel()
    finite = flat[np.isfinite(flat)]
    out = {
        "__array__": True,
        "shape": list(np.asarray(arr).shape),
        "n_nonfinite": int(flat.size - finite.size),
    }
    if finite.size:
        out.update(
            mean=float(np.mean(finite)),
            std=float(np.std(finite)),
            sum=float(np.sum(finite)),
            quantiles={str(q): float(np.quantile(finite, q)) for q in _QUANTILES},
        )
    return out


def summarize(obj):
    """Reduce an arbitrary experiment result to a JSON-able digest.

    Rules: mappings and sequences recurse (keys are stringified, so
    tuple keys like ``(1, "overall", 0.0)`` work); dataclasses become
    ``{"__dataclass__": name, fields...}``; numeric arrays (and long
    numeric lists) become moment/quantile summaries; scalars pass
    through.  Unrecognized objects are recorded by type name only --
    their contents are intentionally not part of the contract.
    """
    if obj is None or isinstance(obj, (bool, str)):
        return obj
    if isinstance(obj, (int, np.integer)):
        return int(obj)
    if isinstance(obj, (float, np.floating)):
        value = float(obj)
        return value if math.isfinite(value) else repr(value)
    if isinstance(obj, np.ndarray):
        if obj.dtype.kind in "fiub":
            return _summarize_array(obj)
        return [summarize(x) for x in obj.tolist()]
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        body = {
            f.name: summarize(getattr(obj, f.name)) for f in dataclasses.fields(obj)
        }
        body["__dataclass__"] = type(obj).__name__
        return body
    if isinstance(obj, dict):
        return {str(k): summarize(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        if len(obj) > 16 and all(isinstance(x, (int, float, np.number)) for x in obj):
            return _summarize_array(np.asarray(obj, dtype=float))
        return [summarize(x) for x in obj]
    return {"__type__": type(obj).__name__}


def _numbers_close(a, b, rtol, atol):
    if math.isnan(a) and math.isnan(b):
        return True
    return abs(a - b) <= atol + rtol * abs(b)


def diff_digests(golden, current, rtol=1e-6, atol=1e-9, path="$"):
    """Tolerance-aware structural diff of two digests.

    Returns a list of human-readable mismatch lines (empty when the
    digests agree).  Numbers compare with ``atol + rtol * |golden|``;
    everything else compares exactly.
    """
    if isinstance(golden, bool) or isinstance(current, bool):
        # bool is an int subclass; compare exactly and first.
        if golden is not current:
            return [f"{path}: {golden!r} != {current!r}"]
        return []
    if isinstance(golden, (int, float)) and isinstance(current, (int, float)):
        if not _numbers_close(float(current), float(golden), rtol, atol):
            return [f"{path}: golden {golden!r} vs current {current!r}"]
        return []
    if type(golden) is not type(current):
        return [f"{path}: type {type(golden).__name__} != {type(current).__name__}"]
    if isinstance(golden, dict):
        lines = []
        for key in sorted(set(golden) - set(current)):
            lines.append(f"{path}.{key}: missing from current result")
        for key in sorted(set(current) - set(golden)):
            lines.append(f"{path}.{key}: not in golden digest")
        for key in sorted(set(golden) & set(current)):
            lines.extend(diff_digests(golden[key], current[key], rtol, atol, f"{path}.{key}"))
        return lines
    if isinstance(golden, list):
        if len(golden) != len(current):
            return [f"{path}: length {len(golden)} != {len(current)}"]
        lines = []
        for i, (g, c) in enumerate(zip(golden, current)):
            lines.extend(diff_digests(g, c, rtol, atol, f"{path}[{i}]"))
        return lines
    if golden != current:
        return [f"{path}: {golden!r} != {current!r}"]
    return []


def digests_match(golden, current, rtol=1e-6, atol=1e-9):
    """``True`` when :func:`diff_digests` finds no mismatch.

    The boolean form of the diff, for callers -- checkpoint
    verification, resume logic -- that only branch on agreement and do
    not report the individual drift lines.
    """
    return not diff_digests(golden, current, rtol=rtol, atol=atol)


class GoldenStore:
    """Load, save and compare golden digests under one directory.

    Parameters
    ----------
    root:
        Directory holding ``<name>.json`` digests (``tests/golden/``).
    update:
        When true, :meth:`check` rewrites digests instead of comparing
        (the ``pytest --update-golden`` flow).
    rtol, atol:
        Default tolerances for :func:`diff_digests`.
    """

    def __init__(self, root, update=False, rtol=1e-6, atol=1e-9):
        self.root = Path(root)
        self.update = bool(update)
        self.rtol = float(rtol)
        self.atol = float(atol)
        self.updated = []

    def path(self, name):
        return self.root / f"{name}.json"

    def save(self, name, digest):
        """Write a digest deterministically (sorted keys, fixed layout)."""
        document = {"version": DIGEST_VERSION, "name": name, "digest": digest}
        self.root.mkdir(parents=True, exist_ok=True)
        tmp = self.path(name).with_suffix(".json.tmp")
        tmp.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
        os.replace(tmp, self.path(name))
        self.updated.append(name)

    def load(self, name):
        document = json.loads(self.path(name).read_text())
        if document.get("version") != DIGEST_VERSION:
            raise GoldenMismatch(
                f"golden digest {name!r} has schema version "
                f"{document.get('version')!r}, expected {DIGEST_VERSION}; "
                f"regenerate with --update-golden"
            )
        return document["digest"]

    def check(self, name, result, rtol=None, atol=None):
        """Compare ``result`` against the stored digest (or update it).

        Raises :class:`GoldenMismatch` with a field-by-field diff when
        the digests disagree, or when no digest exists and ``update``
        is off.  Returns the digest of ``result``.
        """
        digest = summarize(result)
        if self.update:
            self.save(name, digest)
            return digest
        if not self.path(name).exists():
            raise GoldenMismatch(
                f"no golden digest {self.path(name)}; "
                f"generate it with: pytest --update-golden"
            )
        golden = self.load(name)
        lines = diff_digests(
            golden,
            digest,
            self.rtol if rtol is None else float(rtol),
            self.atol if atol is None else float(atol),
        )
        if lines:
            preview = "\n  ".join(lines[:20])
            more = f"\n  ... and {len(lines) - 20} more" if len(lines) > 20 else ""
            raise GoldenMismatch(
                f"golden digest {name!r} drifted ({len(lines)} fields):\n"
                f"  {preview}{more}\n"
                f"If the change is intended, run: pytest --update-golden"
            )
        return digest
