"""Pytest plugin: test tiers, seeded RNG rotation, golden digests.

Loaded from ``tests/conftest.py`` via
``pytest_plugins = ("repro.qa.plugin",)``.

Tiers
-----
- ``tier1``: fast and deterministic; every unmarked test gets this
  marker automatically.  The PR gate runs ``pytest -m tier1``.
- ``tier2``: statistical -- seeded through :func:`seeded_rng`,
  alpha-controlled via :mod:`repro.qa.stats`, expected to pass for
  *any* base seed (the nightly job rotates ``--qa-seed``).
- ``tier3``: long-run / 10M-sample scale checks; nightly only.

Fixtures and options
--------------------
- ``seeded_rng``: a ``numpy`` Generator whose seed mixes the
  ``--qa-seed`` base, the test's nodeid and the retry attempt, so
  every test gets an independent stream and seed rotation is a single
  command-line flag.
- ``golden``: a :class:`repro.qa.golden.GoldenStore` rooted at
  ``tests/golden/`` honouring ``--update-golden``.
- ``statistical_retry`` marker: a failing test is re-run once on a
  rotated seed before being reported as failed; retries are recorded
  in the terminal summary, so a flaky-but-passing check remains
  visible instead of silently absorbed.
"""

from __future__ import annotations

import hashlib

import numpy as np
import pytest
from _pytest.runner import runtestprotocol

TIER_MARKERS = ("tier1", "tier2", "tier3")

_MARKER_DOC = {
    "tier1": "tier1: fast, deterministic test (PR gate; default for unmarked tests)",
    "tier2": "tier2: statistical test -- seeded via seeded_rng, alpha-controlled (nightly)",
    "tier3": "tier3: long-run / multi-million-sample test (nightly)",
    "statistical_retry": (
        "statistical_retry: re-run once on a rotated seed before failing; "
        "the retry is recorded in the terminal summary"
    ),
}


def pytest_addoption(parser):
    group = parser.getgroup("repro-qa", "repro statistical QA harness")
    group.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help="regenerate golden digests under tests/golden/ instead of comparing",
    )
    group.addoption(
        "--qa-seed",
        action="store",
        type=int,
        default=0,
        help="base seed mixed into every seeded_rng fixture (nightly CI rotates it)",
    )


def pytest_configure(config):
    for line in _MARKER_DOC.values():
        config.addinivalue_line("markers", line)
    config._qa_retried_nodeids = []


def pytest_collection_modifyitems(config, items):
    """Unmarked tests are tier1 by definition (fast + deterministic)."""
    for item in items:
        if not any(item.get_closest_marker(tier) for tier in TIER_MARKERS):
            item.add_marker(pytest.mark.tier1)


def derive_seed(base_seed, nodeid, attempt=0):
    """Stable 64-bit seed from (base seed, test identity, retry attempt).

    Hash-mixed so that neighbouring base seeds or similarly named
    tests still get statistically independent streams.
    """
    digest = hashlib.sha256(
        f"{int(base_seed)}:{nodeid}:{int(attempt)}".encode()
    ).digest()
    return int.from_bytes(digest[:8], "big")


@pytest.fixture
def seeded_rng(request):
    """Deterministic, per-test, rotation-aware ``numpy`` Generator.

    The seed mixes ``--qa-seed``, the test nodeid and the
    ``statistical_retry`` attempt number; tier-2 tests must pass for
    any base seed at their declared alpha.
    """
    seed = derive_seed(
        request.config.getoption("--qa-seed"),
        request.node.nodeid,
        getattr(request.node, "_qa_retry_attempt", 0),
    )
    return np.random.default_rng(seed)


@pytest.fixture
def golden(request):
    """Golden-digest store rooted at ``tests/golden/``."""
    from repro.qa.golden import GoldenStore

    return GoldenStore(
        root=request.config.rootpath / "tests" / "golden",
        update=request.config.getoption("--update-golden"),
    )


def pytest_runtest_protocol(item, nextitem):
    """One free re-run on a rotated seed for ``statistical_retry`` tests.

    A tier-2 check with per-check alpha ``a`` fails a correct
    implementation with probability ``a``; with one independent retry
    that drops to ``a^2`` while a real regression still fails both
    runs.  The retry is logged, never silent.
    """
    if item.get_closest_marker("statistical_retry") is None:
        return None
    item.ihook.pytest_runtest_logstart(nodeid=item.nodeid, location=item.location)
    reports = runtestprotocol(item, nextitem=nextitem, log=False)
    if any(r.failed for r in reports if r.when == "call"):
        item._qa_retry_attempt = getattr(item, "_qa_retry_attempt", 0) + 1
        item.config._qa_retried_nodeids.append(item.nodeid)
        reports = runtestprotocol(item, nextitem=nextitem, log=False)
        for report in reports:
            report.user_properties.append(("qa_statistical_retry", item._qa_retry_attempt))
    for report in reports:
        item.ihook.pytest_runtest_logreport(report=report)
    item.ihook.pytest_runtest_logfinish(nodeid=item.nodeid, location=item.location)
    return True


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    retried = getattr(config, "_qa_retried_nodeids", [])
    if retried:
        terminalreporter.section("repro.qa statistical retries")
        for nodeid in retried:
            terminalreporter.line(f"retried on rotated seed: {nodeid}")
        terminalreporter.line(
            f"{len(retried)} statistical retr{'y' if len(retried) == 1 else 'ies'} "
            "-- investigate if the same test retries across many seeds"
        )
