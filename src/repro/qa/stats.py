"""Statistical assertions with explicit false-positive control.

The paper's claims are distributional -- a Gamma/Pareto marginal,
H ~ 0.8 long-range dependence, Q-C trade-off curves -- so the test
suite cannot certify them with ``assert x == y``: point equality is
flaky under seed changes, and loose ad-hoc tolerances drift silently.
Every check here instead states a null hypothesis, computes a p-value
(or an equivalence confidence interval) and takes an **explicit**
``alpha``; the suite-wide false-positive rate is then controlled by
splitting one alpha budget across checks with :func:`bonferroni` or
:func:`sidak`.

Two families of checks:

- *Significance checks* (``z_test``, ``ks_check``, ...): reject when
  the data are incompatible with the hypothesis.  Failing at level
  ``alpha`` means "a correct implementation does this with probability
  ``<= alpha``".
- *Equivalence checks* (:func:`equivalence_check`): two one-sided
  tests (TOST) that the estimand lies within an explicit margin of the
  target.  This replaces magic tolerances: the margin is a declared
  engineering band and the error rate of falsely *certifying*
  agreement is ``alpha``.

All checks return a :class:`CheckResult`; :func:`require` raises
:class:`StatisticalCheckError` (an ``AssertionError``) on failures
with a message that records statistic, p-value and alpha.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from scipy import stats as spstats

from repro._validation import as_1d_float_array, require_positive_int

__all__ = [
    "CheckResult",
    "StatisticalCheckError",
    "require",
    "bonferroni",
    "sidak",
    "z_test",
    "mean_check",
    "mc_mean_check",
    "mc_agreement_check",
    "equivalence_check",
    "ks_check",
    "chi_square_check",
    "anderson_darling_check",
    "acf_agreement_check",
    "gph_agreement_check",
    "hurst_ci_check",
    "fgn_mean_std_error",
]


class StatisticalCheckError(AssertionError):
    """A statistical check failed at its declared alpha."""


@dataclass(frozen=True)
class CheckResult:
    """Outcome of one statistical check.

    Truthiness equals ``passed``, so results compose with plain
    ``assert``; prefer :func:`require` for the richer failure message.
    """

    name: str
    """Human-readable identity of the check."""

    statistic: float
    """The test statistic (z, D, A-squared, chi-square, ...)."""

    p_value: float
    """Probability of a statistic at least this extreme under the null."""

    alpha: float
    """The significance level the check was held to."""

    passed: bool
    """Whether the check passed at ``alpha``."""

    detail: str = ""
    """Extra context (worst lag, margin, sample sizes, ...)."""

    def __bool__(self):
        return self.passed

    def message(self):
        verdict = "passed" if self.passed else "FAILED"
        extra = f" [{self.detail}]" if self.detail else ""
        return (
            f"{self.name}: {verdict} (statistic={self.statistic:.4g}, "
            f"p={self.p_value:.4g}, alpha={self.alpha:.4g}){extra}"
        )


def require(*results):
    """Assert that every :class:`CheckResult` passed.

    Raises :class:`StatisticalCheckError` listing all failures (not
    just the first), so one test run reports the full damage.
    """
    failures = [r for r in results if not r.passed]
    if failures:
        raise StatisticalCheckError(
            "; ".join(f.message() for f in failures)
        )
    return results[0] if len(results) == 1 else results


def _validated_alpha(alpha):
    alpha = float(alpha)
    if not 0.0 < alpha < 1.0:
        raise ValueError(f"alpha must lie in (0, 1), got {alpha!r}")
    return alpha


def bonferroni(alpha, n_checks):
    """Per-check alpha keeping the family-wise error rate <= ``alpha``."""
    return _validated_alpha(alpha) / require_positive_int(n_checks, "n_checks")


def sidak(alpha, n_checks):
    """Sidak's sharper per-check alpha for independent checks.

    ``1 - (1 - alpha)^(1/m)``; slightly larger (less conservative)
    than Bonferroni's ``alpha/m`` while keeping the family-wise rate
    exactly ``alpha`` under independence.
    """
    alpha = _validated_alpha(alpha)
    n_checks = require_positive_int(n_checks, "n_checks")
    return 1.0 - (1.0 - alpha) ** (1.0 / n_checks)


# ----------------------------------------------------------------------
# z-tests against analytic or Monte-Carlo standard errors
# ----------------------------------------------------------------------
def z_test(estimate, expected, std_error, alpha, name="z-test"):
    """Two-sided z-test of ``estimate == expected`` given ``std_error``.

    The standard error must come from theory (e.g. the Whittle
    estimator's asymptotic ``sqrt(6)/(pi sqrt(n))``) or from a
    Monte-Carlo replication; the check rejects when
    ``|estimate - expected| / std_error`` exceeds the two-sided
    ``alpha`` quantile of the standard Normal.
    """
    alpha = _validated_alpha(alpha)
    std_error = float(std_error)
    if not std_error > 0:
        raise ValueError(f"std_error must be positive, got {std_error!r}")
    z = (float(estimate) - float(expected)) / std_error
    p = 2.0 * float(spstats.norm.sf(abs(z)))
    return CheckResult(
        name=name,
        statistic=z,
        p_value=p,
        alpha=alpha,
        passed=p >= alpha,
        detail=f"estimate={float(estimate):.6g}, expected={float(expected):.6g}, se={std_error:.3g}",
    )


def mean_check(data, expected, alpha, std_error=None, name="mean"):
    """z-test that a sample's mean equals ``expected``.

    ``data`` may be an array or any accumulator exposing ``count``,
    ``mean`` and ``std`` (e.g. :class:`repro.stream.OnlineMoments`).
    With i.i.d.-invalid data (an LRD series), pass an analytic
    ``std_error`` -- e.g. :func:`fgn_mean_std_error` -- because the
    default ``std / sqrt(n)`` badly understates the error.
    """
    if hasattr(data, "count") and hasattr(data, "mean"):
        n, sample_mean, sample_std = int(data.count), float(data.mean), float(data.std)
    else:
        arr = as_1d_float_array(data, "data", min_length=2)
        n, sample_mean, sample_std = arr.size, float(np.mean(arr)), float(np.std(arr))
    if std_error is None:
        std_error = sample_std / math.sqrt(n)
    return z_test(sample_mean, expected, std_error, alpha, name=f"{name} (n={n})")


def _replications(values, name):
    arr = as_1d_float_array(values, name, min_length=2)
    if arr.size < 3:
        raise ValueError(f"{name} needs >= 3 Monte-Carlo replications, got {arr.size}")
    return arr


def mc_mean_check(values, expected, alpha, name="monte-carlo mean"):
    """z-test of ``E[statistic] == expected`` from replications.

    ``values`` holds one statistic per independent Monte-Carlo
    replication; the standard error is the empirical
    ``std / sqrt(R)``.  Use when no analytic SE exists (variance-time
    or R/S Hurst estimates, seam variances, ...).
    """
    arr = _replications(values, "values")
    se = float(np.std(arr, ddof=1)) / math.sqrt(arr.size)
    if se <= 0:
        raise ValueError("replications are constant; Monte-Carlo SE is zero")
    return z_test(
        float(np.mean(arr)), expected, se, alpha, name=f"{name} (R={arr.size})"
    )


def mc_agreement_check(values_a, values_b, alpha, name="monte-carlo agreement"):
    """Welch z-test that two replicated statistics share a mean.

    The canonical cross-implementation check: replicate the same
    statistic under implementation A and B and test
    ``E[A] == E[B]`` with SE ``sqrt(s_a^2/R_a + s_b^2/R_b)``.
    """
    a = _replications(values_a, "values_a")
    b = _replications(values_b, "values_b")
    se = math.sqrt(
        np.var(a, ddof=1) / a.size + np.var(b, ddof=1) / b.size
    )
    if se <= 0:
        raise ValueError("replications are constant; Monte-Carlo SE is zero")
    return z_test(
        float(np.mean(a)),
        float(np.mean(b)),
        se,
        alpha,
        name=f"{name} (R={a.size}+{b.size})",
    )


def equivalence_check(values, expected, margin, alpha, name="equivalence"):
    """TOST: certify ``|E[statistic] - expected| < margin``.

    Two one-sided z-tests on Monte-Carlo replications.  This is the
    principled replacement for ``pytest.approx(x, abs=margin)``: the
    margin is an explicit engineering band, and ``alpha`` bounds the
    probability of *certifying* agreement when the true mean is
    actually outside the band.  Passes only when both one-sided tests
    reject, i.e. the ``1 - 2 alpha`` confidence interval for the mean
    lies inside ``[expected - margin, expected + margin]``.
    """
    alpha = _validated_alpha(alpha)
    margin = float(margin)
    if margin <= 0:
        raise ValueError(f"margin must be positive, got {margin!r}")
    arr = _replications(values, "values")
    mean = float(np.mean(arr))
    se = float(np.std(arr, ddof=1)) / math.sqrt(arr.size)
    if se <= 0:
        raise ValueError("replications are constant; Monte-Carlo SE is zero")
    z_low = (mean - (float(expected) - margin)) / se
    z_high = ((float(expected) + margin) - mean) / se
    # p-value of the TOST compound test is the larger one-sided p.
    p = max(float(spstats.norm.sf(z_low)), float(spstats.norm.sf(z_high)))
    return CheckResult(
        name=f"{name} (R={arr.size})",
        statistic=(mean - float(expected)) / se,
        p_value=p,
        alpha=alpha,
        passed=p < alpha,
        detail=f"mean={mean:.6g}, expected={float(expected):.6g}+-{margin:.3g}, se={se:.3g}",
    )


# ----------------------------------------------------------------------
# Goodness-of-fit wrappers
# ----------------------------------------------------------------------
def ks_check(data, model, alpha, name="kolmogorov-smirnov"):
    """Kolmogorov-Smirnov test against a fully specified model CDF.

    ``model`` is any object with a vectorized ``cdf`` (the
    ``repro.distributions`` interface).  Exact small-sample p-value
    via ``scipy.stats.kstwo``.
    """
    alpha = _validated_alpha(alpha)
    arr = np.sort(as_1d_float_array(data, "data", min_length=8))
    n = arr.size
    cdf = np.asarray(model.cdf(arr), dtype=float)
    d_plus = float(np.max(np.arange(1, n + 1) / n - cdf))
    d_minus = float(np.max(cdf - np.arange(0, n) / n))
    d = max(d_plus, d_minus)
    p = float(spstats.kstwo.sf(d, n))
    return CheckResult(
        name=name,
        statistic=d,
        p_value=p,
        alpha=alpha,
        passed=p >= alpha,
        detail=f"n={n}",
    )


def chi_square_check(data, model, alpha, n_bins=50, name="chi-square"):
    """Chi-square goodness of fit over equiprobable model bins.

    Bins are the model's quantile intervals, so every bin has expected
    count ``n / n_bins``; the p-value uses ``n_bins - 1`` degrees of
    freedom (parameters are taken as fully specified, not refitted).
    """
    alpha = _validated_alpha(alpha)
    n_bins = require_positive_int(n_bins, "n_bins")
    arr = as_1d_float_array(data, "data", min_length=n_bins * 5)
    edges = np.asarray(model.ppf(np.linspace(0.0, 1.0, n_bins + 1)[1:-1]), dtype=float)
    counts = np.histogram(arr, bins=np.concatenate(([-np.inf], edges, [np.inf])))[0]
    expected = arr.size / n_bins
    statistic = float(np.sum((counts - expected) ** 2 / expected))
    p = float(spstats.chi2.sf(statistic, n_bins - 1))
    return CheckResult(
        name=name,
        statistic=statistic,
        p_value=p,
        alpha=alpha,
        passed=p >= alpha,
        detail=f"n={arr.size}, bins={n_bins}",
    )


def _anderson_darling_p(a_squared):
    """Asymptotic p-value of the case-0 Anderson-Darling statistic.

    Marsaglia & Marsaglia (2004) rational approximation to the
    limiting distribution for a fully specified continuous null
    (no parameters estimated from the data); accurate to ~1e-5 over
    the range any test cares about.
    """
    z = float(a_squared)
    if z <= 0:
        return 1.0
    if z < 2.0:
        cdf = (
            math.exp(-1.2337141 / z)
            / math.sqrt(z)
            * (2.00012 + (0.247105 - (0.0649821 - (0.0347962 - (0.011672 - 0.00168691 * z) * z) * z) * z) * z)
        )
    else:
        cdf = math.exp(
            -math.exp(1.0776 - (2.30695 - (0.43424 - (0.082433 - (0.008056 - 0.0003146 * z) * z) * z) * z) * z)
        )
    return min(max(1.0 - cdf, 0.0), 1.0)


def anderson_darling_check(data, model, alpha, name="anderson-darling"):
    """Anderson-Darling test against a fully specified model CDF.

    More tail-sensitive than KS -- the right tool for certifying the
    Pareto tail of the hybrid marginal.  The sample is mapped through
    the model CDF (probability integral transform) and the case-0
    ``A^2`` statistic is compared to its asymptotic distribution.
    """
    alpha = _validated_alpha(alpha)
    arr = np.sort(as_1d_float_array(data, "data", min_length=8))
    n = arr.size
    u = np.clip(np.asarray(model.cdf(arr), dtype=float), 1e-12, 1.0 - 1e-12)
    i = np.arange(1, n + 1)
    a_squared = -n - float(np.mean((2 * i - 1) * (np.log(u) + np.log1p(-u[::-1]))))
    p = _anderson_darling_p(a_squared)
    return CheckResult(
        name=name,
        statistic=a_squared,
        p_value=p,
        alpha=alpha,
        passed=p >= alpha,
        detail=f"n={n}",
    )


# ----------------------------------------------------------------------
# Dependence-structure checks (ACF, spectral shape, Hurst)
# ----------------------------------------------------------------------
def acf_agreement_check(paths_a, paths_b, max_lag, alpha, name="acf agreement"):
    """Do two generators share an autocorrelation function?

    ``paths_a`` / ``paths_b`` are sequences of independent sample
    paths from each implementation.  For every lag ``1..max_lag`` the
    per-path sample ACFs give a Monte-Carlo mean and SE per side, and
    a Welch z-test compares the sides; the per-lag level is
    Sidak-corrected so the whole check has level ``alpha``.  The
    reported statistic/p-value belong to the worst lag.
    """
    alpha = _validated_alpha(alpha)
    max_lag = require_positive_int(max_lag, "max_lag")
    from repro.analysis.correlation import autocorrelation

    def per_path_acf(paths, which):
        if len(paths) < 3:
            raise ValueError(f"{which} needs >= 3 paths, got {len(paths)}")
        return np.array([autocorrelation(p, max_lag)[1:] for p in paths])

    acf_a = per_path_acf(paths_a, "paths_a")  # (R_a, max_lag)
    acf_b = per_path_acf(paths_b, "paths_b")
    per_lag_alpha = sidak(alpha, max_lag)
    se = np.sqrt(
        np.var(acf_a, axis=0, ddof=1) / acf_a.shape[0]
        + np.var(acf_b, axis=0, ddof=1) / acf_b.shape[0]
    )
    se = np.maximum(se, 1e-12)
    z = (np.mean(acf_a, axis=0) - np.mean(acf_b, axis=0)) / se
    p = 2.0 * spstats.norm.sf(np.abs(z))
    worst = int(np.argmin(p))
    return CheckResult(
        name=name,
        statistic=float(z[worst]),
        p_value=float(p[worst]),
        alpha=per_lag_alpha,
        passed=bool(np.all(p >= per_lag_alpha)),
        detail=f"worst lag {worst + 1} of {max_lag}, per-lag alpha {per_lag_alpha:.2g}",
    )


def gph_agreement_check(paths_a, paths_b, alpha, name="periodogram slope"):
    """Do two generators share the low-frequency spectral slope?

    Computes the GPH log-periodogram estimate of ``d`` on every path
    and Welch-z-tests the two Monte-Carlo means against each other --
    the spectral-shape counterpart of :func:`acf_agreement_check`.
    """
    from repro.analysis.hurst import gph

    d_a = [gph(p, normalize=None).d for p in paths_a]
    d_b = [gph(p, normalize=None).d for p in paths_b]
    return mc_agreement_check(d_a, d_b, alpha, name=name)


def hurst_ci_check(data, expected_hurst, alpha, estimator="whittle", name=None):
    """Is ``expected_hurst`` inside the estimator's own confidence set?

    Uses the estimator's *analytic* standard error -- Whittle's
    ``sqrt(6)/(pi sqrt(n))`` or GPH's ``pi/sqrt(24 m)`` -- so the
    check needs a single path and no magic tolerance.  Only meaningful
    for series whose short-range structure matches the estimator's
    model (fARIMA for Whittle); for general series prefer the
    Monte-Carlo checks.
    """
    from repro.analysis.hurst import gph, whittle

    if estimator == "whittle":
        est = whittle(data, normalize=None)
    elif estimator == "gph":
        est = gph(data, normalize=None)
    else:
        raise ValueError(f'estimator must be "whittle" or "gph", got {estimator!r}')
    return z_test(
        est.hurst,
        expected_hurst,
        est.std_error,
        alpha,
        name=name or f"hurst ({estimator})",
    )


def fgn_mean_std_error(n_samples, hurst, variance=1.0):
    """Exact standard error of the sample mean of fGn.

    Long-range dependence inflates the error of the mean:
    ``Var(mean) = sigma^2 * n^(2H - 2)`` (exactly, from the
    self-similarity of the partial sums), against the i.i.d.
    ``sigma^2 / n``.  Use as the ``std_error`` of
    :func:`mean_check` / :func:`z_test` when testing generator output.
    """
    n_samples = require_positive_int(n_samples, "n_samples")
    hurst = float(hurst)
    if not 0.0 < hurst < 1.0:
        raise ValueError(f"hurst must lie in (0, 1), got {hurst!r}")
    variance = float(variance)
    if variance <= 0:
        raise ValueError(f"variance must be positive, got {variance!r}")
    return math.sqrt(variance) * n_samples ** (hurst - 1.0)
