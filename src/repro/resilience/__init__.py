"""Failure handling for long-running reproduction workloads.

A full campaign over the 171,000-frame trace is hours of sequential
compute; Paxson's fast-synthesis paper (PAPERS.md) motivates cheap
regeneration precisely because long self-similar runs die and must be
rerun.  This subsystem supplies the three layers that make such runs
survivable:

- :mod:`repro.resilience.faults` -- a seeded, context-manager-driven
  fault plan: NaN/Inf bursts and truncation injected into chunk
  streams, ``MemoryError``/``TimeoutError``/transient ``RuntimeError``
  raised at the k-th call of an instrumented site, and Bellcore-format
  trace files corrupted in every way a disk or transfer can manage --
  all deterministic under one seed, so every degradation path is a
  reproducible test case.
- :mod:`repro.resilience.runner` -- the campaign supervisor: each
  experiment runs in isolation (a failure becomes a structured
  :class:`~repro.resilience.runner.ExperimentFailure` and the campaign
  continues), transient faults are retried with seed rotation and
  exponential backoff, soft timeouts bound each experiment, and JSON
  checkpoints let a killed campaign resume, re-verifying completed
  results against their stored :mod:`repro.qa.golden` digests.
- Hardened edges elsewhere in the tree:
  :func:`repro.video.tracefile.load_trace` strict/lenient modes,
  :meth:`repro.stream.pipeline.Stream.guard`, and worker-death
  recovery in :class:`repro.stream.pipeline.ParallelSources`.
"""

from repro.resilience.faults import (
    FaultPlan,
    FlakyChunkSource,
    InjectedFault,
    TransientFault,
    active_plan,
    corrupt_trace_file,
    reach,
)
from repro.resilience.runner import (
    CampaignReport,
    CheckpointStore,
    ExperimentFailure,
    ExperimentRecord,
    ExperimentSpec,
    run_campaign,
)

__all__ = [
    "CampaignReport",
    "CheckpointStore",
    "ExperimentFailure",
    "ExperimentRecord",
    "ExperimentSpec",
    "FaultPlan",
    "FlakyChunkSource",
    "InjectedFault",
    "TransientFault",
    "active_plan",
    "corrupt_trace_file",
    "reach",
    "run_campaign",
]
