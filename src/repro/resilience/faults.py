"""Deterministic fault injection.

A :class:`FaultPlan` is a seeded recipe of failures.  Activated as a
context manager it becomes the ambient plan; production code carries
zero-cost :func:`reach` instrumentation hooks that consult the active
plan and raise the scheduled exception at exactly the k-th call of a
named site.  The same plan also corrupts chunk streams (NaN/Inf bursts,
truncation) and Bellcore-format trace files (truncated bytes, non-ASCII
garbage, negative/overflow counts), so every degradation path in the
repo is exercisable under the :mod:`repro.qa` seeded-rng discipline:
one ``(seed, plan)`` pair reproduces one failure scenario exactly.

Every fault that fires is recorded on ``plan.injected``, which lets a
test assert that a campaign's failure report lists *exactly* the
injected faults and nothing else.
"""

from __future__ import annotations

import dataclasses
import hashlib
import threading
from contextlib import contextmanager

import numpy as np

from repro._validation import require_positive_int
from repro.stream.sources import ChunkSource

__all__ = [
    "TransientFault",
    "InjectedFault",
    "FaultPlan",
    "FlakyChunkSource",
    "TRACE_CORRUPTIONS",
    "active_plan",
    "corrupt_trace_file",
    "reach",
]


class TransientFault(RuntimeError):
    """An injected failure that is expected to vanish on retry.

    The campaign supervisor classifies this (together with
    ``MemoryError`` and ``TimeoutError``) as retriable; everything else
    is treated as a genuine defect and fails the experiment terminally.
    """


@dataclasses.dataclass(frozen=True)
class InjectedFault:
    """Record of one fault that actually fired."""

    site: str
    call_index: int
    error_type: str
    message: str


def _derive_rng_seed(base_seed, label):
    """Stable 64-bit stream seed from (plan seed, sub-stream label).

    Mirrors :func:`repro.qa.plugin.derive_seed` (sha256 mixing) without
    importing the pytest plugin into library code.
    """
    digest = hashlib.sha256(f"{int(base_seed)}:{label}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


# The ambient plan installed by FaultPlan.active(); module-level on
# purpose so instrumented sites need no plumbing.  One active plan at a
# time -- fault-injection tests are sequential by nature.
_ACTIVE = None
_ACTIVE_LOCK = threading.Lock()


def active_plan():
    """The currently activated :class:`FaultPlan`, or ``None``."""
    return _ACTIVE


def reach(site):
    """Instrumentation hook: a named call site announces it was reached.

    No-op (one global read) unless a plan is active, so the hooks can
    stay in production code paths.  With an active plan, the site's
    call counter advances and any fault scheduled for this call fires.
    """
    plan = _ACTIVE
    if plan is not None:
        plan.check(site)


class FaultPlan:
    """A seeded, deterministic schedule of injected failures.

    Parameters
    ----------
    seed:
        Base seed; every stochastic corrupter derives its own stream
        from it, so two plans with equal seeds inject identical faults.

    Usage::

        plan = FaultPlan(seed=7)
        plan.fail_at("experiment:fig07", call=1, exc=TransientFault)
        with plan.active():
            ...   # first attempt of fig07 raises; retry succeeds

    ``plan.injected`` afterwards lists exactly the faults that fired.
    """

    def __init__(self, seed=0):
        self.seed = int(seed)
        self._scheduled = {}  # site -> {call_index: (exc_type, message)}
        self._counts = {}  # site -> calls observed so far
        self._lock = threading.Lock()
        self.injected = []

    # ------------------------------------------------------------------
    # Activation
    # ------------------------------------------------------------------
    @contextmanager
    def active(self):
        """Install this plan as the ambient plan for the enclosed block."""
        global _ACTIVE
        with _ACTIVE_LOCK:
            if _ACTIVE is not None:
                raise RuntimeError("another FaultPlan is already active")
            _ACTIVE = self
        try:
            yield self
        finally:
            with _ACTIVE_LOCK:
                _ACTIVE = None

    # ------------------------------------------------------------------
    # Site faults
    # ------------------------------------------------------------------
    def fail_at(self, site, call=1, exc=TransientFault, message=None):
        """Schedule ``exc`` to be raised at the ``call``-th reach of ``site``.

        ``exc`` is an exception *class*; ``call`` is 1-based.  A site
        may carry several scheduled faults at different call indices
        (e.g. to exhaust a retry budget).  Returns ``self`` so
        schedules chain.
        """
        call = require_positive_int(call, "call")
        if not (isinstance(exc, type) and issubclass(exc, BaseException)):
            raise TypeError(f"exc must be an exception class, got {exc!r}")
        slots = self._scheduled.setdefault(str(site), {})
        if call in slots:
            raise ValueError(f"site {site!r} already has a fault at call {call}")
        slots[call] = (exc, message)
        return self

    def check(self, site):
        """Advance ``site``'s call counter; raise any fault due now."""
        site = str(site)
        with self._lock:
            count = self._counts.get(site, 0) + 1
            self._counts[site] = count
            due = self._scheduled.get(site, {}).pop(count, None)
            if due is None:
                return
            exc_type, message = due
            if message is None:
                message = f"injected {exc_type.__name__} at {site} (call {count})"
            self.injected.append(
                InjectedFault(site, count, exc_type.__name__, message)
            )
        raise exc_type(message)

    def calls(self, site):
        """How many times ``site`` has been reached under this plan."""
        return self._counts.get(str(site), 0)

    # ------------------------------------------------------------------
    # Stream corruption
    # ------------------------------------------------------------------
    def rng(self, label=""):
        """A fresh generator on a plan-and-label-derived stream."""
        return np.random.default_rng(_derive_rng_seed(self.seed, label))

    def corrupt_chunks(self, chunks, nan_rate=0.0, inf_rate=0.0, burst=8,
                       truncate_after=None, label="chunks"):
        """Wrap a chunk iterable with deterministic value corruption.

        Each chunk is independently hit by a NaN burst with probability
        ``nan_rate`` and an Inf burst with probability ``inf_rate``
        (``burst`` consecutive samples at a random offset); with
        ``truncate_after`` the stream ends -- possibly mid-chunk --
        after that many samples, modelling a dead upstream producer.
        Fired corruptions are recorded on :attr:`injected`.
        """
        rng = self.rng(f"chunks:{label}")
        burst = require_positive_int(burst, "burst")

        def _record(kind, index, message):
            with self._lock:
                self.injected.append(
                    InjectedFault(f"chunks:{label}", index + 1, kind, message)
                )

        def _corrupted():
            emitted = 0
            for index, chunk in enumerate(chunks):
                chunk = np.array(chunk, dtype=float, copy=True)
                for rate, value, kind in (
                    (nan_rate, np.nan, "nan_burst"),
                    (inf_rate, np.inf, "inf_burst"),
                ):
                    if rate and rng.random() < rate and chunk.size:
                        start = int(rng.integers(0, chunk.size))
                        chunk[start : start + burst] = value
                        _record(kind, index,
                                f"{kind} of {min(burst, chunk.size - start)} "
                                f"sample(s) at chunk {index} offset {start}")
                if truncate_after is not None and emitted + chunk.size >= truncate_after:
                    keep = max(int(truncate_after) - emitted, 0)
                    _record("truncation", index,
                            f"stream truncated at sample {truncate_after} "
                            f"(chunk {index})")
                    if keep:
                        yield chunk[:keep]
                    return
                emitted += chunk.size
                yield chunk

        return _corrupted()

    # ------------------------------------------------------------------
    # Trace-file corruption
    # ------------------------------------------------------------------
    def corrupt_trace_file(self, path, mode, out_path=None):
        """Corrupt a Bellcore-format trace file; see :func:`corrupt_trace_file`."""
        return corrupt_trace_file(path, mode, out_path=out_path,
                                  rng=self.rng(f"file:{mode}"), plan=self)


TRACE_CORRUPTIONS = (
    "truncated",
    "non_ascii",
    "negative",
    "overflow",
    "nan",
    "garbage",
)
"""Supported trace-file corruption modes (see :func:`corrupt_trace_file`)."""


def corrupt_trace_file(path, mode, out_path=None, rng=None, plan=None):
    """Write a corrupted copy of a Bellcore-format trace file.

    Modes (``TRACE_CORRUPTIONS``):

    - ``"truncated"``: the file ends abruptly mid-line (a killed
      transfer), which for slice-resolution traces also breaks the
      lines-per-frame invariant;
    - ``"non_ascii"``: a data line gains bytes outside ASCII (bit rot,
      wrong encoding);
    - ``"negative"``: one byte count is negated;
    - ``"overflow"``: one count becomes a 400-digit integer that
      overflows to ``inf`` when parsed;
    - ``"nan"``: one line reads ``nan`` -- parseable as a float, and
      exactly the kind of silent poison strict loading must reject;
    - ``"garbage"``: one line is replaced by non-numeric text.

    The victim line is chosen by ``rng`` among the data lines.  Returns
    the output path (``out_path`` or ``path`` + ``".corrupt"``); the
    fired corruption is recorded on ``plan.injected`` when given.
    """
    if mode not in TRACE_CORRUPTIONS:
        raise ValueError(f"mode must be one of {TRACE_CORRUPTIONS}, got {mode!r}")
    if rng is None:
        rng = np.random.default_rng()
    path = str(path)
    out_path = str(out_path) if out_path is not None else path + ".corrupt"
    raw = open(path, "rb").read()
    lines = raw.split(b"\n")
    data_idx = [
        i for i, line in enumerate(lines)
        if line.strip() and not line.lstrip().startswith(b"#")
    ]
    if not data_idx:
        raise ValueError(f"{path}: no data lines to corrupt")
    victim = int(data_idx[int(rng.integers(0, len(data_idx)))])
    if mode == "truncated":
        # Cut mid-way through the victim line and drop everything after.
        head = b"\n".join(lines[:victim])
        cut = lines[victim][: max(len(lines[victim]) // 2, 1)]
        corrupted = head + (b"\n" if head else b"") + cut
        detail = f"file truncated inside data line {victim + 1}"
    else:
        replacement = {
            "non_ascii": b"27\xff\xfe791",
            "negative": b"-" + lines[victim].strip(),
            "overflow": b"9" * 400,
            "nan": b"nan",
            "garbage": b"!!corrupt!!",
        }[mode]
        lines = list(lines)
        lines[victim] = replacement
        corrupted = b"\n".join(lines)
        detail = f"data line {victim + 1} replaced ({mode})"
    with open(out_path, "wb") as handle:
        handle.write(corrupted)
    if plan is not None:
        with plan._lock:
            plan.injected.append(
                InjectedFault(f"file:{mode}", victim + 1, mode, detail)
            )
    return out_path


class FlakyChunkSource(ChunkSource):
    """Wrap a chunk source with a per-chunk fault-plan checkpoint.

    Before every chunk is delivered the wrapper reaches the plan site
    ``site``, so ``plan.fail_at(site, call=k)`` kills the source at its
    k-th chunk -- the deterministic stand-in for a worker dying inside
    :class:`repro.stream.pipeline.ParallelSources`.  Restarted
    iterations keep advancing the same site counter, so a single
    scheduled fault models a transient death and a pair of faults an
    unrecoverable source.
    """

    def __init__(self, inner, site):
        self.inner = inner
        self.site = str(site)

    def chunks(self, n, chunk_size, rng=None):
        for chunk in self.inner.chunks(n, chunk_size, rng=rng):
            reach(self.site)
            yield chunk

    def _native_chunks(self, n, rng):  # pragma: no cover - chunks() overrides
        raise NotImplementedError

    def __repr__(self):
        return f"FlakyChunkSource({self.inner!r}, site={self.site!r})"
