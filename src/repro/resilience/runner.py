"""Resilient experiment-campaign orchestration.

The reproduction's ``run_all`` is a long sequential loop: one exception
in experiment 15 of 21 used to discard hours of completed work.
:func:`run_campaign` drives an ordered list of
:class:`ExperimentSpec` through a supervisor that provides

- **isolation**: an experiment failure becomes a structured
  :class:`ExperimentFailure` (exception type, message, traceback, seed,
  wall time) and the campaign continues with the next experiment;
- **bounded retry**: transient faults (``MemoryError``,
  ``TimeoutError``, :class:`~repro.resilience.faults.TransientFault`
  and other ``RuntimeError``/``OSError``) are retried up to
  ``max_retries`` times on a rotated seed with capped exponential
  backoff; deterministic defects (``ValueError`` etc.) fail once;
- **soft timeouts**: each attempt runs on a worker thread and is
  abandoned (recorded as a ``TimeoutError`` failure) after
  ``timeout_s`` -- soft because Python cannot safely kill a thread, so
  the stale attempt finishes in the background and its result is
  discarded;
- **checkpointing**: with a ``checkpoint_dir`` every completed
  experiment is persisted (JSON metadata + pickled payload + a
  :func:`repro.qa.golden.summarize` digest) so a killed campaign
  resumes, skipping completed experiments after re-verifying each
  stored payload against its digest at :mod:`repro.qa.golden`
  tolerances.  A corrupt or stale checkpoint is simply re-run.

Determinism: attempt seeds derive from ``sha256(base_seed :
experiment_id : attempt)``, the same discipline as the
:mod:`repro.qa.plugin` ``seeded_rng`` fixture, so an interrupted and a
resumed campaign draw identical streams.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pickle
import threading
import time
import traceback as traceback_module
from pathlib import Path

from repro.obs import flight as obs_flight
from repro.obs import log as obs_log
from repro.obs import metrics, trace
from repro.qa.golden import digests_match, summarize
from repro.resilience.faults import TransientFault, active_plan, reach

__all__ = [
    "CHECKPOINT_VERSION",
    "TRANSIENT_TYPES",
    "CampaignReport",
    "CheckpointStore",
    "ExperimentFailure",
    "ExperimentRecord",
    "ExperimentSpec",
    "derive_attempt_seed",
    "leaked_threads",
    "run_campaign",
]

CHECKPOINT_VERSION = 1
"""Bump when the checkpoint schema changes (stale checkpoints re-run)."""

_LOGGER = obs_log.get_logger("resilience")

_CHECKPOINT_SAVED = metrics.registry().counter(
    "repro_checkpoint_bytes_total",
    help="Checkpoint payload bytes moved, by operation",
    unit="bytes", labels={"op": "save"},
)

_CHECKPOINT_LOADED = metrics.registry().counter(
    "repro_checkpoint_bytes_total",
    help="Checkpoint payload bytes moved, by operation",
    unit="bytes", labels={"op": "load"},
)

TRANSIENT_TYPES = (MemoryError, TimeoutError, OSError, TransientFault, RuntimeError)
"""Exception types retried by default: resource pressure, timeouts and
runtime flakes.  ``ValueError``/``TypeError`` (bad configuration or a
genuine defect) fail an experiment on the first attempt."""

_LEAKED_LOCK = threading.Lock()
_LEAKED_THREADS = set()
"""Worker threads abandoned by a soft timeout that are still running.

A soft timeout cannot preempt Python code, so the timed-out attempt
keeps executing on its daemon thread until it finishes on its own.
Each such thread is tracked here (and in the
``repro_resilience_leaked_threads`` gauge) from the moment it is
abandoned until it exits, so operators can see how much zombie work a
campaign is dragging along -- the usual cause of "the campaign is done
but the process is still hot".
"""

_LEAKED_GAUGE = metrics.registry().gauge(
    "repro_resilience_leaked_threads",
    help="Timed-out experiment threads abandoned but still running",
    unit="threads",
)


def _sync_leaked_gauge_locked():
    _LEAKED_THREADS.difference_update(
        [t for t in _LEAKED_THREADS if not t.is_alive()]
    )
    _LEAKED_GAUGE.set(len(_LEAKED_THREADS))


def _note_leak(thread):
    with _LEAKED_LOCK:
        if thread.is_alive():
            _LEAKED_THREADS.add(thread)
        _sync_leaked_gauge_locked()


def _note_leaked_exit(thread):
    with _LEAKED_LOCK:
        _LEAKED_THREADS.discard(thread)
        _sync_leaked_gauge_locked()


def leaked_threads():
    """Names of soft-timeout threads still running right now."""
    with _LEAKED_LOCK:
        _sync_leaked_gauge_locked()
        return sorted(t.name for t in _LEAKED_THREADS)


def derive_attempt_seed(base_seed, experiment_id, attempt=0):
    """Stable 64-bit seed from (campaign seed, experiment, attempt).

    Retries rotate the seed by construction, so a statistical fluke
    (or an injected fault keyed to one stream) does not repeat.
    """
    digest = hashlib.sha256(
        f"{int(base_seed)}:{experiment_id}:{int(attempt)}".encode()
    ).digest()
    return int.from_bytes(digest[:8], "big")


@dataclasses.dataclass(frozen=True)
class ExperimentSpec:
    """One experiment: a stable id plus a ``fn(seed) -> result`` thunk.

    Deterministic experiments are free to ignore ``seed``; stochastic
    ones should use it so retries explore fresh randomness.
    """

    experiment_id: str
    fn: object

    def run(self, seed):
        return self.fn(seed)


@dataclasses.dataclass(frozen=True)
class ExperimentFailure:
    """Structured record of one failed attempt.

    ``leaked_thread`` is set on soft-timeout failures: the name of the
    abandoned worker thread that was still executing the attempt when
    the supervisor gave up on it (see :func:`leaked_threads`).
    """

    experiment_id: str
    attempt: int
    error_type: str
    message: str
    traceback: str
    seed: int
    wall_time: float
    transient: bool
    leaked_thread: str | None = None

    def describe(self):
        kind = "transient" if self.transient else "terminal"
        leak = f", leaked thread {self.leaked_thread}" if self.leaked_thread else ""
        return (
            f"{self.experiment_id} attempt {self.attempt + 1}: "
            f"{self.error_type}: {self.message} ({kind}, {self.wall_time:.2f}s{leak})"
        )


@dataclasses.dataclass
class ExperimentRecord:
    """Outcome of one experiment across all its attempts."""

    experiment_id: str
    status: str  # "completed" | "resumed" | "failed"
    attempts: int
    wall_time: float
    seed: int | None = None


@dataclasses.dataclass
class CampaignReport:
    """Everything a campaign produced, including what went wrong.

    ``results`` holds the per-experiment return values (resumed ones
    restored from checkpoint); ``failures`` the terminal failures;
    ``attempt_failures`` every failed attempt including those later
    retried to success -- under an injected fault plan this lists
    exactly the injected faults.
    """

    results: dict
    records: list
    failures: list
    attempt_failures: list
    resumed: list

    @property
    def ok(self):
        return not self.failures

    def summary_lines(self):
        done = sum(1 for r in self.records if r.status in ("completed", "resumed"))
        lines = [
            f"campaign: {done}/{len(self.records)} experiments completed "
            f"({len(self.resumed)} resumed from checkpoint, "
            f"{len(self.attempt_failures)} failed attempt(s), "
            f"{len(self.failures)} terminal failure(s))"
        ]
        for failure in self.attempt_failures:
            lines.append(f"  attempt failed: {failure.describe()}")
        for record in self.records:
            if record.status == "failed":
                lines.append(f"  FAILED: {record.experiment_id} after {record.attempts} attempt(s)")
        return lines


class CheckpointStore:
    """Per-experiment checkpoints under one directory.

    Each completed experiment ``<id>`` is stored as

    - ``<id>.json``: schema version, seed, attempts, wall time and the
      :func:`repro.qa.golden.summarize` digest of the result;
    - ``<id>.pkl``: the pickled result payload.

    Both are written atomically (temp file + ``os.replace``), so a kill
    mid-write leaves either the previous checkpoint or none.  On load
    the payload is re-summarized and diffed against the stored digest
    at golden tolerances; any drift (a truncated pickle, a different
    library version changing the result) invalidates the checkpoint and
    the experiment re-runs.
    """

    def __init__(self, root, rtol=1e-6, atol=1e-9):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.rtol = float(rtol)
        self.atol = float(atol)

    def _meta_path(self, experiment_id):
        return self.root / f"{experiment_id}.json"

    def _payload_path(self, experiment_id):
        return self.root / f"{experiment_id}.pkl"

    def _write_atomic(self, path, data):
        tmp = path.with_suffix(path.suffix + ".tmp")
        with open(tmp, "wb") as handle:
            handle.write(data)
        os.replace(tmp, path)

    # ------------------------------------------------------------------
    # Manifest: guards against resuming with a different configuration
    # ------------------------------------------------------------------
    def write_manifest(self, manifest):
        document = {"version": CHECKPOINT_VERSION, "manifest": manifest}
        self._write_atomic(
            self.root / "campaign.json",
            (json.dumps(document, indent=2, sort_keys=True) + "\n").encode(),
        )

    def check_manifest(self, manifest):
        """Raise if an existing manifest disagrees with ``manifest``."""
        path = self.root / "campaign.json"
        if not path.exists():
            return
        try:
            document = json.loads(path.read_text())
        except (OSError, ValueError):
            return
        stored = document.get("manifest")
        if document.get("version") == CHECKPOINT_VERSION and stored != manifest:
            drift = sorted(
                k for k in set(stored or {}) | set(manifest or {})
                if (stored or {}).get(k) != (manifest or {}).get(k)
            )
            raise ValueError(
                f"checkpoint directory {self.root} belongs to a different campaign "
                f"(configuration drift in {drift}); point --checkpoint-dir at a "
                f"fresh directory or re-run without --resume"
            )

    # ------------------------------------------------------------------
    # Per-experiment checkpoints
    # ------------------------------------------------------------------
    def save(self, experiment_id, result, seed, attempts, wall_time):
        with trace.span("checkpoint.save", experiment=experiment_id):
            digest = summarize(result)
            payload = pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL)
            self._write_atomic(self._payload_path(experiment_id), payload)
            meta = {
                "version": CHECKPOINT_VERSION,
                "experiment": experiment_id,
                "seed": int(seed),
                "attempts": int(attempts),
                "wall_time": float(wall_time),
                "digest": digest,
            }
            self._write_atomic(
                self._meta_path(experiment_id),
                (json.dumps(meta, indent=2, sort_keys=True) + "\n").encode(),
            )
        _CHECKPOINT_SAVED.inc(len(payload))
        obs_flight.recorder().record(
            "checkpoint_saved", task_id=experiment_id, bytes=len(payload),
            attempts=int(attempts),
        )

    def load(self, experiment_id):
        """Return ``(result, meta)`` for a verified checkpoint, else ``None``.

        Missing files, unreadable JSON/pickle, schema drift, and digest
        drift beyond golden tolerances all invalidate silently -- the
        caller's remedy is identical in every case: re-run.
        """
        meta_path = self._meta_path(experiment_id)
        payload_path = self._payload_path(experiment_id)
        if not (meta_path.exists() and payload_path.exists()):
            return None
        with trace.span("checkpoint.load", experiment=experiment_id):
            try:
                meta = json.loads(meta_path.read_text())
                if meta.get("version") != CHECKPOINT_VERSION:
                    return None
                payload = payload_path.read_bytes()
                result = pickle.loads(payload)
            except Exception:
                return None
            # Round-trip through JSON so stored and fresh digests compare
            # with identical container/float types.
            fresh = json.loads(json.dumps(summarize(result)))
            if not digests_match(meta.get("digest"), fresh, rtol=self.rtol, atol=self.atol):
                return None
        _CHECKPOINT_LOADED.inc(len(payload))
        return result, meta

    def completed(self):
        """Experiment ids with a metadata file present (unverified)."""
        return sorted(p.stem for p in self.root.glob("*.json") if p.stem != "campaign")


def _call_with_timeout(spec, seed, timeout_s):
    """Run one attempt, optionally under a soft timeout.

    Contract -- the timeout is *soft*, and callers must know what that
    buys and what it does not:

    - The attempt runs on a daemon thread; on timeout a
      ``TimeoutError`` is raised here and the thread is **abandoned,
      not stopped** -- Python offers no safe preemption.  The attempt
      keeps running (and consuming CPU/memory) until it returns on its
      own; its eventual result is discarded.
    - Every abandoned-but-alive thread is tracked: the
      ``repro_resilience_leaked_threads`` gauge counts them live,
      :func:`leaked_threads` names them, and the raised
      ``TimeoutError`` carries ``.leaked_thread`` (stamped into the
      :class:`ExperimentFailure` by the supervisor) so a timeout in a
      report is distinguishable from a crash.
    - Abandonment is safe for this codebase's numeric attempts (pure
      compute, no locks held); an attempt that holds external
      resources should manage its own deadline instead.
    """
    if timeout_s is None:
        return spec.run(seed)
    box = {}

    def _target():
        try:
            box["result"] = spec.run(seed)
        except BaseException as exc:  # delivered to the supervisor thread
            box["error"] = exc
        finally:
            # If this thread was abandoned by a timeout below, its exit
            # is the leak ending; retire it from the gauge.
            _note_leaked_exit(threading.current_thread())

    worker = threading.Thread(
        target=_target, name=f"experiment-{spec.experiment_id}", daemon=True
    )
    worker.start()
    worker.join(timeout_s)
    if worker.is_alive():
        _note_leak(worker)
        _LOGGER.warning(
            "experiment %s timed out after %gs; abandoning still-running "
            "thread %s (%d leaked thread(s) live)",
            spec.experiment_id, timeout_s, worker.name, len(leaked_threads()),
            extra={"experiment": spec.experiment_id, "timeout_s": timeout_s,
                   "leaked_thread": worker.name},
        )
        error = TimeoutError(
            f"experiment {spec.experiment_id!r} exceeded the soft timeout of {timeout_s:g}s"
        )
        error.leaked_thread = worker.name
        raise error
    if "error" in box:
        raise box["error"]
    return box["result"]


@dataclasses.dataclass
class _SpecOutcome:
    """Everything one spec's execution produced, merged in spec order."""

    experiment_id: str
    record: ExperimentRecord
    result: object = None
    has_result: bool = False
    resumed: bool = False
    attempt_failures: list = dataclasses.field(default_factory=list)
    terminal_failure: object = None
    terminal_exc: object = None


def _run_spec(spec, *, store, resume, base_seed, max_retries, timeout_s,
              transient_types, backoff_base, backoff_cap, sleep, notify):
    """Run one experiment to completion/failure; no shared-state writes.

    All campaign-report mutation happens in :func:`run_campaign` in spec
    order, so this function can execute on a worker thread without
    making the report depend on scheduling.
    """
    eid = spec.experiment_id
    if store is not None and resume:
        loaded = store.load(eid)
        if loaded is not None:
            result, meta = loaded
            notify("resumed", eid)
            return _SpecOutcome(
                experiment_id=eid,
                record=ExperimentRecord(
                    eid, "resumed", int(meta.get("attempts", 1)),
                    float(meta.get("wall_time", 0.0)), meta.get("seed"),
                ),
                result=result, has_result=True, resumed=True,
            )
    notify("start", eid)
    outcome = _SpecOutcome(experiment_id=eid, record=None)
    attempts_allowed = int(max_retries) + 1
    total_wall = 0.0
    for attempt in range(attempts_allowed):
        seed = derive_attempt_seed(base_seed, eid, attempt)
        start = time.perf_counter()
        try:
            with trace.span(f"experiment.{eid}", attempt=attempt, seed=seed):
                reach(f"experiment:{eid}")
                result = _call_with_timeout(spec, seed, timeout_s)
        except (KeyboardInterrupt, SystemExit):
            raise
        except Exception as exc:
            wall = time.perf_counter() - start
            total_wall += wall
            transient = isinstance(exc, transient_types)
            failure = ExperimentFailure(
                experiment_id=eid,
                attempt=attempt,
                error_type=type(exc).__name__,
                message=str(exc),
                traceback="".join(
                    traceback_module.format_exception(type(exc), exc, exc.__traceback__)
                ),
                seed=seed,
                wall_time=wall,
                transient=transient,
                leaked_thread=getattr(exc, "leaked_thread", None),
            )
            outcome.attempt_failures.append(failure)
            if transient and attempt + 1 < attempts_allowed:
                # Emitted the moment the attempt fails, not at campaign
                # end: a live tail of the log shows the retry as it
                # happens, with the experiment and attempt attached.
                _LOGGER.warning(
                    "experiment %s attempt %d/%d failed (%s: %s); retrying",
                    eid, attempt + 1, attempts_allowed,
                    failure.error_type, failure.message,
                    extra={"experiment": eid, "attempt": attempt + 1,
                           "error_type": failure.error_type,
                           "timeout": isinstance(exc, TimeoutError),
                           "wall_s": round(wall, 3)},
                )
                obs_flight.recorder().record(
                    "task_retry", task_id=eid, node="local",
                    attempt=attempt + 1, error_type=failure.error_type,
                )
                notify("retry", eid, failure.describe())
                sleep(min(backoff_base * 2.0 ** attempt, backoff_cap))
                continue
            outcome.terminal_failure = failure
            outcome.terminal_exc = exc
            outcome.record = ExperimentRecord(eid, "failed", attempt + 1, total_wall, seed)
            _LOGGER.error(
                "experiment %s failed terminally on attempt %d/%d (%s: %s)",
                eid, attempt + 1, attempts_allowed,
                failure.error_type, failure.message,
                extra={"experiment": eid, "attempt": attempt + 1,
                       "error_type": failure.error_type,
                       "timeout": isinstance(exc, TimeoutError),
                       "wall_s": round(wall, 3)},
            )
            obs_flight.recorder().record(
                "task_failed", task_id=eid, node="local", attempt=attempt,
                seed=seed, error_type=failure.error_type,
            )
            notify("failed", eid, failure.describe())
            break
        else:
            wall = time.perf_counter() - start
            total_wall += wall
            outcome.result = result
            outcome.has_result = True
            outcome.record = ExperimentRecord(eid, "completed", attempt + 1, total_wall, seed)
            if store is not None:
                store.save(eid, result, seed, attempt + 1, total_wall)
            obs_flight.recorder().record(
                "task_completed", task_id=eid, node="local", attempt=attempt,
                seed=seed,
            )
            notify("completed", eid)
            break
    return outcome


def run_campaign(specs, *, base_seed=0, max_retries=0, timeout_s=None,
                 checkpoint_dir=None, resume=True, manifest=None,
                 transient_types=TRANSIENT_TYPES, backoff_base=0.05,
                 backoff_cap=5.0, sleep=time.sleep, fail_fast=False,
                 on_event=None, workers=1):
    """Drive ``specs`` (ordered :class:`ExperimentSpec`) to a report.

    Parameters
    ----------
    base_seed:
        Campaign seed; each attempt's seed is derived from it together
        with the experiment id and attempt number.
    max_retries:
        Extra attempts granted to *transient* failures (see
        ``transient_types``); non-transient exceptions fail terminally
        on the first attempt.
    timeout_s:
        Per-attempt soft timeout in seconds (``None`` disables).
    checkpoint_dir:
        Directory for :class:`CheckpointStore` persistence; ``None``
        disables checkpointing.
    resume:
        With a checkpoint directory, load and digest-verify existing
        checkpoints, skipping the experiments they cover.
    manifest:
        JSON-able campaign fingerprint; resuming against a directory
        whose manifest differs raises ``ValueError``.
    backoff_base, backoff_cap, sleep:
        Exponential backoff between retries:
        ``min(backoff_base * 2**attempt, backoff_cap)`` seconds, via
        ``sleep`` (injectable so tests run instantly).
    fail_fast:
        Re-raise the first terminal failure immediately instead of
        recording it and continuing (the legacy ``run_all`` contract).
    on_event:
        Optional ``fn(kind, experiment_id, detail)`` progress callback
        (kinds: ``start``, ``resumed``, ``completed``, ``retry``,
        ``failed``).
    workers:
        Concurrent experiments.  Experiment thunks close over arbitrary
        state (they are rarely picklable), so campaign concurrency uses
        *threads*; the numeric kernels underneath release the GIL.  Each
        experiment's seeds derive from its id alone and the report is
        assembled in spec order, so the results, records, failure lists
        and checkpoint digests are identical at every worker count.
        With ``workers > 1``, ``fail_fast`` still raises the first (in
        spec order) terminal failure, but later experiments may already
        have run; an active :class:`~repro.resilience.faults.FaultPlan`
        forces serial execution so k-th-call fault sites keep their
        meaning.
    """
    specs = [
        spec if isinstance(spec, ExperimentSpec) else ExperimentSpec(*spec)
        for spec in specs
    ]
    seen = set()
    for spec in specs:
        if spec.experiment_id in seen:
            raise ValueError(f"duplicate experiment id {spec.experiment_id!r}")
        seen.add(spec.experiment_id)
    store = None
    if checkpoint_dir is not None:
        store = CheckpointStore(checkpoint_dir)
        if resume:
            store.check_manifest(manifest)
        store.write_manifest(manifest)

    def _notify(kind, experiment_id, detail=""):
        if on_event is not None:
            on_event(kind, experiment_id, detail)

    report = CampaignReport(results={}, records=[], failures=[],
                            attempt_failures=[], resumed=[])

    def _merge(outcome):
        if outcome.has_result:
            report.results[outcome.experiment_id] = outcome.result
        if outcome.resumed:
            report.resumed.append(outcome.experiment_id)
        report.attempt_failures.extend(outcome.attempt_failures)
        if outcome.terminal_failure is not None:
            report.failures.append(outcome.terminal_failure)
        report.records.append(outcome.record)

    run_kwargs = dict(
        store=store, resume=resume, base_seed=base_seed,
        max_retries=max_retries, timeout_s=timeout_s,
        transient_types=transient_types, backoff_base=backoff_base,
        backoff_cap=backoff_cap, sleep=sleep, notify=_notify,
    )
    workers = int(workers) if workers is not None else 1
    if workers > 1 and active_plan() is not None:
        _LOGGER.info("fault plan active; campaign running serially")
        workers = 1
    if workers <= 1:
        for spec in specs:
            outcome = _run_spec(spec, **run_kwargs)
            _merge(outcome)
            if fail_fast and outcome.terminal_exc is not None:
                raise outcome.terminal_exc
        return report

    # Threaded campaign: every experiment's seeds derive from its id, so
    # results are scheduling-independent; the report is merged in spec
    # order, making it (and the checkpoint digests) identical to the
    # serial report.
    from concurrent.futures import ThreadPoolExecutor

    with ThreadPoolExecutor(
        max_workers=min(workers, len(specs) or 1),
        thread_name_prefix="campaign",
    ) as executor:
        outcomes = list(executor.map(lambda s: _run_spec(s, **run_kwargs), specs))
    for outcome in outcomes:
        _merge(outcome)
    if fail_fast:
        for outcome in outcomes:
            if outcome.terminal_exc is not None:
                raise outcome.terminal_exc
    return report
