"""Network queueing substrate (Section 5 of the paper).

The paper's simulated system (Fig. 13) is a single FIFO queue with a
finite buffer of ``Q`` bytes served at fixed capacity ``C``; the input
is the superposition of ``N`` copies of the VBR trace offset by random
lags.  Performance is the overall loss rate ``P_l`` or the loss rate in
the worst errored second ``P_l_WES``; resources are reported as the
maximum buffer delay ``T_max = Q / (N C)`` against the allocated
bandwidth per source ``C / N`` ("Q-C curves").

- :mod:`repro.simulation.queue` -- the finite-buffer fluid FIFO queue,
  including an exact O(n) zero-loss analysis;
- :mod:`repro.simulation.multiplex` -- random-lag superposition of
  trace copies (lags at least 1,000 frames apart, losses averaged over
  six lag draws, as in the paper);
- :mod:`repro.simulation.metrics` -- loss measures (overall, worst
  errored second, windowed);
- :mod:`repro.simulation.qc` -- capacity/buffer searches, Q-C curves,
  knee location and statistical-multiplexing-gain curves.
"""

from repro.simulation.queue import (
    QueueResult,
    simulate_queue,
    max_backlog,
    zero_loss_capacity,
)
from repro.simulation.multiplex import (
    random_lags,
    multiplex_series,
    multiplex_trace,
    multiplex_heterogeneous,
)
from repro.simulation.metrics import (
    worst_errored_second_loss,
    windowed_loss_rate,
)
from repro.simulation.cells import (
    CELL_PAYLOAD_BYTES,
    cell_arrivals,
    packetize,
    simulate_cell_queue,
)
from repro.simulation.admission import max_admissible_sources, norros_admissible_sources
from repro.simulation.norros import (
    norros_kappa,
    norros_overflow_probability,
    norros_capacity,
    norros_buffer,
)
from repro.simulation.priority import PriorityQueueResult, simulate_priority_queue
from repro.simulation.qc import (
    QCCurve,
    required_capacity,
    required_buffer,
    qc_curve,
    knee_point,
    smg_curve,
)

__all__ = [
    "CELL_PAYLOAD_BYTES",
    "cell_arrivals",
    "packetize",
    "simulate_cell_queue",
    "max_admissible_sources",
    "norros_admissible_sources",
    "norros_kappa",
    "norros_overflow_probability",
    "norros_capacity",
    "norros_buffer",
    "PriorityQueueResult",
    "simulate_priority_queue",
    "QueueResult",
    "simulate_queue",
    "max_backlog",
    "zero_loss_capacity",
    "random_lags",
    "multiplex_series",
    "multiplex_trace",
    "multiplex_heterogeneous",
    "worst_errored_second_loss",
    "windowed_loss_rate",
    "QCCurve",
    "required_capacity",
    "required_buffer",
    "qc_curve",
    "knee_point",
    "smg_curve",
]
