"""Connection admission control for VBR video sources.

The operator-facing inverse of Fig. 15's question: given a link of
capacity ``C`` with buffer ``Q`` and a loss target, *how many* VBR
video sources can be admitted?  Because the draw-averaged loss is
monotone non-decreasing in the number of multiplexed sources, the
answer is found by a doubling search followed by bisection, using the
same trace-driven machinery as the Q-C experiments.

Also provided: the Norros-formula admission count (closed form from
the fBm model) for comparison with the simulated answer -- effective-
bandwidth-style admission against trace-driven truth.
"""

from __future__ import annotations

import numpy as np

from repro._validation import (
    as_1d_float_array,
    require_in_open_interval,
    require_nonnegative,
    require_positive,
)
from repro.simulation.multiplex import multiplex_series, random_lags
from repro.simulation.qc import _mean_loss
from repro.simulation.queue import max_backlog

__all__ = ["max_admissible_sources", "norros_admissible_sources"]


def _n_feasible(series, n, capacity, buffer_bytes, target_loss, metric,
                slots_per_second, n_lag_draws, rng):
    """Whether ``n`` multiplexed copies meet the loss target."""
    if n == 1:
        arrival_sets = [series]
    else:
        if series.size < 2 * n:
            # Too few slots to place n lagged copies: feasibility is
            # simply unanswerable, and returning False here would let a
            # short trace masquerade as an admission bound.
            raise ValueError(
                f"series too short to multiplex {n} sources: need at "
                f"least {2 * n} slots, got {series.size}"
            )
        min_sep = min(1000, series.size // (2 * n))
        arrival_sets = [
            multiplex_series(series, random_lags(n, series.size, min_separation=min_sep, rng=rng))
            for _ in range(n_lag_draws)
        ]
    if target_loss == 0 and metric == "overall":
        return all(max_backlog(a, capacity) <= buffer_bytes for a in arrival_sets)
    return _mean_loss(arrival_sets, capacity, buffer_bytes, metric, slots_per_second) <= target_loss


def max_admissible_sources(
    series,
    slot_seconds,
    capacity_bps,
    buffer_bytes,
    target_loss=1e-4,
    metric="overall",
    n_lag_draws=3,
    rng=None,
    n_max=4096,
):
    """Largest N such that N multiplexed sources meet the loss target.

    Parameters
    ----------
    series:
        Single-source bytes per slot.
    slot_seconds:
        Slot duration in seconds.
    capacity_bps:
        Link capacity in bits per second.
    buffer_bytes:
        Shared buffer in bytes.
    target_loss:
        Loss-rate bound (0 for lossless).
    metric:
        ``"overall"`` or ``"wes"``.
    n_lag_draws:
        Lag combinations averaged per candidate N.

    Returns 0 when even one source violates the target.
    """
    arr = as_1d_float_array(series, "series")
    slot_seconds = require_positive(slot_seconds, "slot_seconds")
    capacity_bps = require_positive(capacity_bps, "capacity_bps")
    buffer_bytes = require_nonnegative(buffer_bytes, "buffer_bytes")
    target_loss = require_nonnegative(target_loss, "target_loss")
    if rng is None:
        rng = np.random.default_rng()
    capacity = capacity_bps / 8.0 * slot_seconds  # bytes per slot
    slots_per_second = max(int(round(1.0 / slot_seconds)), 1)
    mean = float(np.mean(arr))
    if mean <= 0:
        raise ValueError("series must have positive mean")
    # Stability bound: more sources than capacity/mean can never fit.
    # The trace-length bound keeps the search inside what
    # ``_n_feasible`` can actually answer (n lagged copies need at
    # least 2n slots).
    n_cap = min(int(capacity / mean) + 1, n_max, max(arr.size // 2, 1))
    if n_cap < 1 or not _n_feasible(
        arr, 1, capacity, buffer_bytes, target_loss, metric, slots_per_second, n_lag_draws, rng
    ):
        return 0
    lo = 1
    hi = 1
    while hi < n_cap:
        hi = min(hi * 2, n_cap)
        if not _n_feasible(
            arr, hi, capacity, buffer_bytes, target_loss, metric,
            slots_per_second, n_lag_draws, rng,
        ):
            break
        lo = hi
    else:
        return lo
    # Invariant: lo feasible, hi infeasible.
    while hi - lo > 1:
        mid = (lo + hi) // 2
        if _n_feasible(
            arr, mid, capacity, buffer_bytes, target_loss, metric,
            slots_per_second, n_lag_draws, rng,
        ):
            lo = mid
        else:
            hi = mid
    return lo


def norros_admissible_sources(
    mean_rate, variance_coeff, hurst, capacity_bps, buffer_bytes, target_loss, slot_seconds
):
    """Closed-form admission count from Norros' fBm model.

    With N homogeneous sources the aggregate has mean ``N m`` and
    variance coefficient ``a`` unchanged (variances add, so
    ``a_N = N a m / (N m) = a``); the admission bound solves
    ``norros_capacity(N m, a, b, eps, H) <= C`` for the largest integer
    N.  All rates in the same units as the simulation API
    (``capacity_bps`` in bits/second, the rest per slot).
    """
    from repro.simulation.norros import norros_capacity

    m = require_positive(mean_rate, "mean_rate")
    a = require_positive(variance_coeff, "variance_coeff")
    hurst = require_in_open_interval(hurst, "hurst", 0.0, 1.0)
    b = require_positive(buffer_bytes, "buffer_bytes")
    eps = require_in_open_interval(target_loss, "target_loss", 0.0, 1.0)
    slot_seconds = require_positive(slot_seconds, "slot_seconds")
    capacity = require_positive(capacity_bps, "capacity_bps") / 8.0 * slot_seconds
    n = 0
    while norros_capacity((n + 1) * m, a, b, eps, hurst) <= capacity:
        n += 1
        if n > 10**6:  # pragma: no cover - defensive
            break
    return n
