"""Cell-level (ATM) arrival modeling.

The paper's simulations operate on *cells*: each frame's (or slice's)
bytes are packetized into fixed-payload cells which arrive spread over
the frame interval -- "in no case do all the cells of a frame arrive
together", because a real coder is pipelined.  Both spacings the paper
examines are implemented:

- ``"uniform"``: cells are spaced evenly over the unit's sub-slots;
- ``"random"``: each cell lands in an independently uniform sub-slot.

The paper (long version) found the choice barely matters and that
slice- vs frame-granularity changes little; the ablation benchmark
``benchmarks/test_ablations_extensions.py`` verifies both claims for
this implementation, justifying the byte-fluid model used by the Q-C
machinery.
"""

from __future__ import annotations

import numpy as np

from repro._validation import require_positive, require_positive_int
from repro.video.trace import VBRTrace

__all__ = ["CELL_PAYLOAD_BYTES", "packetize", "cell_arrivals", "simulate_cell_queue"]

CELL_PAYLOAD_BYTES = 48
"""ATM cell payload (the paper's network is ATM-oriented)."""


def packetize(series_bytes, cell_payload=CELL_PAYLOAD_BYTES):
    """Cells per unit: ``ceil(bytes / payload)`` element-wise."""
    arr = np.asarray(series_bytes, dtype=float)
    if np.any(arr < 0):
        raise ValueError("byte counts must be non-negative")
    cell_payload = require_positive(cell_payload, "cell_payload")
    return np.ceil(arr / cell_payload).astype(np.int64)


def cell_arrivals(
    trace,
    unit="frame",
    subslots=30,
    spacing="uniform",
    cell_payload=CELL_PAYLOAD_BYTES,
    rng=None,
):
    """Cell arrival counts on a fine time grid.

    Each frame (or slice) is divided into ``subslots`` equal sub-slots
    and its cells are distributed across them.  Returns an integer
    array of length ``n_units * subslots`` (cells per sub-slot).

    Parameters
    ----------
    trace:
        A :class:`~repro.video.trace.VBRTrace`.
    unit:
        ``"frame"`` or ``"slice"`` -- the packetization granularity.
    subslots:
        Sub-slots per unit (the effective cell-clock resolution).
    spacing:
        ``"uniform"`` spreads cells evenly (pipelined coder);
        ``"random"`` scatters each cell independently.
    """
    if not isinstance(trace, VBRTrace):
        raise TypeError("trace must be a VBRTrace")
    subslots = require_positive_int(subslots, "subslots")
    if spacing not in ("uniform", "random"):
        raise ValueError(f'spacing must be "uniform" or "random", got {spacing!r}')
    cells = packetize(trace.series(unit), cell_payload)
    n_units = cells.size
    if spacing == "uniform":
        base = cells // subslots
        remainder = cells % subslots
        grid = np.tile(base[:, None], (1, subslots))
        # Spread the remainder over the first `remainder` sub-slots.
        ramp = np.arange(subslots)[None, :]
        grid += ramp < remainder[:, None]
    else:
        if rng is None:
            rng = np.random.default_rng()
        grid = rng.multinomial(cells, np.full(subslots, 1.0 / subslots))
    return grid.reshape(n_units * subslots)


def simulate_cell_queue(
    trace,
    capacity_bps,
    buffer_cells,
    unit="frame",
    subslots=30,
    spacing="uniform",
    cell_payload=CELL_PAYLOAD_BYTES,
    rng=None,
):
    """Finite-buffer FIFO at cell granularity.

    ``capacity_bps`` is converted to cells per sub-slot (fractional
    service is carried over, i.e. the server is a fluid of cells);
    loss is counted in cells.  Returns the
    :class:`~repro.simulation.queue.QueueResult` (quantities in cells).
    """
    from repro.simulation.queue import simulate_queue

    capacity_bps = require_positive(capacity_bps, "capacity_bps")
    arrivals = cell_arrivals(
        trace, unit=unit, subslots=subslots, spacing=spacing,
        cell_payload=cell_payload, rng=rng,
    )
    unit_seconds = trace.time_unit_ms(unit) / 1000.0
    subslot_seconds = unit_seconds / subslots
    cells_per_subslot = capacity_bps / 8.0 / cell_payload * subslot_seconds
    return simulate_queue(arrivals.astype(float), cells_per_subslot, float(buffer_cells))
