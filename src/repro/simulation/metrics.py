"""Loss-process metrics (Sections 5.1 and 5.3 of the paper).

Besides the overall loss rate ``P_l``, the paper evaluates the loss
rate in the *worst errored second* (``P_l_WES``) -- more sensitive to
loss events localized in time -- and, for Fig. 17, the running-average
loss rate over a 1,000-frame window, which exposes how differently two
systems with identical ``P_l`` can distribute their losses.
"""

from __future__ import annotations

import numpy as np

from repro._validation import as_1d_float_array, require_positive_int

__all__ = ["worst_errored_second_loss", "windowed_loss_rate"]


def worst_errored_second_loss(loss_series, arrival_series, slots_per_second):
    """Loss rate of the worst errored second, ``P_l_WES``.

    Slots are grouped into consecutive seconds (``slots_per_second``
    slots each; a trailing partial second is dropped); each second's
    loss rate is its lost bytes over its offered bytes, and the worst
    one is returned.  Seconds with no offered traffic are skipped.
    """
    loss = as_1d_float_array(loss_series, "loss_series")
    arrivals = as_1d_float_array(arrival_series, "arrival_series")
    if loss.size != arrivals.size:
        raise ValueError(
            f"loss_series and arrival_series must have equal length, "
            f"got {loss.size} and {arrivals.size}"
        )
    k = require_positive_int(slots_per_second, "slots_per_second")
    n_seconds = loss.size // k
    if n_seconds == 0:
        raise ValueError(f"series shorter than one second ({k} slots)")
    loss_per_sec = loss[: n_seconds * k].reshape(n_seconds, k).sum(axis=1)
    offered_per_sec = arrivals[: n_seconds * k].reshape(n_seconds, k).sum(axis=1)
    valid = offered_per_sec > 0
    if not np.any(valid):
        return 0.0
    return float(np.max(loss_per_sec[valid] / offered_per_sec[valid]))


def windowed_loss_rate(loss_series, arrival_series, window):
    """Running-average loss rate over a sliding window (Fig. 17).

    Returns ``(centers, rates)`` where ``rates[i]`` is the lost-to-
    offered byte ratio over the window starting at slot ``i`` and
    ``centers`` are the window-center positions.  Windows with no
    offered traffic report a rate of zero.
    """
    loss = as_1d_float_array(loss_series, "loss_series")
    arrivals = as_1d_float_array(arrival_series, "arrival_series")
    if loss.size != arrivals.size:
        raise ValueError("loss_series and arrival_series must have equal length")
    window = require_positive_int(window, "window")
    if window > loss.size:
        raise ValueError(f"window ({window}) exceeds series length ({loss.size})")
    csum_loss = np.concatenate(([0.0], np.cumsum(loss)))
    csum_arr = np.concatenate(([0.0], np.cumsum(arrivals)))
    win_loss = csum_loss[window:] - csum_loss[:-window]
    win_arr = csum_arr[window:] - csum_arr[:-window]
    rates = np.divide(win_loss, win_arr, out=np.zeros_like(win_loss), where=win_arr > 0)
    centers = np.arange(loss.size - window + 1) + (window - 1) / 2.0
    return centers, rates
