"""Statistical multiplexing of trace copies (Section 5.1 of the paper).

``N`` sources are formed by combining ``N`` copies of the trace offset
by random lags, each wrapping around so all frames are used once per
source.  Because long-range dependence keeps cross-correlations
significant even at long lags, the paper (i) forces the lags to be at
least 1,000 frames apart and (ii) averages results over six different
random lag combinations for ``N > 2``.
"""

from __future__ import annotations

import numpy as np

from repro._validation import as_1d_float_array, require_positive_int

__all__ = [
    "random_lags",
    "multiplex_series",
    "multiplex_many",
    "multiplex_fgn",
    "multiplex_trace",
    "multiplex_heterogeneous",
]


def random_lags(n_sources, n_frames, min_separation=1000, rng=None):
    """Draw source lags with pairwise circular separation constraints.

    Returns ``n_sources`` integer lags in ``[0, n_frames)`` whose
    pairwise circular distances are all at least ``min_separation``
    (the first lag is pinned to zero -- only relative offsets matter).
    Raises ``ValueError`` when the constraint is unsatisfiable
    (``n_sources * min_separation > n_frames``).

    The sampler is constructive (uniform slack plus mandatory gaps), so
    it succeeds in O(n log n) even for tightly packed configurations
    where rejection sampling would practically never terminate.
    """
    n_sources = require_positive_int(n_sources, "n_sources")
    n_frames = require_positive_int(n_frames, "n_frames")
    min_separation = int(min_separation)
    if min_separation < 0:
        raise ValueError(f"min_separation must be >= 0, got {min_separation}")
    if n_sources == 1:
        return np.zeros(1, dtype=int)
    if n_sources * min_separation > n_frames:
        raise ValueError(
            f"cannot place {n_sources} lags at least {min_separation} apart "
            f"in a {n_frames}-frame circle"
        )
    if rng is None:
        rng = np.random.default_rng()
    # Positions = sorted uniform slack + mandatory separations; every
    # consecutive gap is then >= min_separation, and the wraparound gap
    # is >= min_separation because the total slack is bounded.
    slack = n_frames - n_sources * min_separation
    offsets = np.sort(rng.integers(0, slack + 1, size=n_sources))
    positions = offsets + np.arange(n_sources) * min_separation
    return ((positions - positions[0]) % n_frames).astype(int)


def multiplex_series(series, lags):
    """Aggregate arrivals: sum of cyclically shifted copies of a series.

    ``series`` is bytes per slot for one source; each entry of ``lags``
    shifts one copy (in slots) with wraparound, and the copies are
    summed.  This is exactly the paper's construction.
    """
    arr = as_1d_float_array(series, "series")
    lags = np.asarray(lags, dtype=int)
    if lags.ndim != 1 or lags.size < 1:
        raise ValueError("lags must be a non-empty 1-D array of integers")
    out = np.zeros_like(arr)
    for lag in lags:
        out += np.roll(arr, -int(lag) % arr.size)
    return out


def _multiplex_task(lags, common):
    return multiplex_series(common["series"], lags)


def multiplex_many(series, lag_sets, workers=1):
    """Aggregate one series under several lag draws, optionally in parallel.

    Equivalent to ``[multiplex_series(series, lags) for lags in
    lag_sets]`` — and bit-identical to it at every worker count, since
    all randomness (the lag draws) happens before this call.  With
    ``workers > 1`` the series rides shared memory once and the draws
    fan out across a :func:`repro.par.pool.pool_map`.
    """
    from repro.par.pool import pool_map

    arr = as_1d_float_array(series, "series")
    lag_sets = [np.asarray(lags, dtype=int) for lags in lag_sets]
    return pool_map(
        _multiplex_task, lag_sets,
        workers=workers, common={"series": arr}, label="multiplex",
    )


def multiplex_fgn(n, hurst, n_sources, *, backend="paxson", variance=1.0,
                  seed=0, batch=None, marginal=None):
    """Aggregate arrivals from ``n_sources`` *independent* fGn sources.

    The lagged-copy construction above follows the paper exactly; this
    is the model-driven alternative the batch layer makes cheap: each
    source is a fresh fGn path (synthesized ``batch`` rows at a time
    through :func:`repro.core.batch.batch_fgn`; ``None`` uses
    :func:`repro.par.batch.default_batch`), optionally pushed through a
    marginal distribution (e.g. the paper's Gamma/Pareto hybrid via
    :func:`repro.core.transform.marginal_transform`), and the sources
    are summed.  Source ``i`` always draws from
    ``default_rng(derive_task_seed(seed, i, label="batch"))`` and the
    sum accumulates in source order, so the aggregate is **bit-identical
    for every batch size** — the tier-1 wall pins this.
    """
    from repro.core.batch import batch_fgn, batch_row_seeds
    from repro.par.batch import resolve_batch

    n = require_positive_int(n, "n")
    n_sources = require_positive_int(n_sources, "n_sources")
    batch = resolve_batch(batch)
    seeds = batch_row_seeds(seed, n_sources)
    out = np.zeros(n)
    for start in range(0, n_sources, batch):
        rows = batch_fgn(
            n, hurst, len(seeds[start : start + batch]),
            backend=backend, variance=variance,
            seeds=seeds[start : start + batch],
        )
        for row in rows:
            if marginal is not None:
                from repro.core.transform import marginal_transform

                row = marginal_transform(row, marginal)
            # Accumulate strictly in source order: any batch split then
            # performs the identical sequence of += operations.
            out += row
    return out


def multiplex_heterogeneous(series_list, lags=None, rng=None):
    """Aggregate arrivals from *different* sources (mixed workloads).

    The paper multiplexes copies of one trace; real links carry a mix
    -- e.g. several trace-driven sources plus several model-generated
    ones.  Each series is cyclically shifted by its lag (random by
    default) and the shifted copies are summed.  All series must share
    one length (generate model traffic at the trace's length first).
    """
    if not series_list:
        raise ValueError("series_list must contain at least one source")
    arrays = [as_1d_float_array(s, f"series_list[{i}]") for i, s in enumerate(series_list)]
    n = arrays[0].size
    for i, arr in enumerate(arrays):
        if arr.size != n:
            raise ValueError(
                f"all sources must share one length; series_list[{i}] has "
                f"{arr.size}, expected {n}"
            )
    if lags is None:
        if rng is None:
            rng = np.random.default_rng()
        lags = rng.integers(0, n, size=len(arrays))
    lags = np.asarray(lags, dtype=int)
    if lags.size != len(arrays):
        raise ValueError(f"need one lag per source, got {lags.size} for {len(arrays)}")
    out = np.zeros(n)
    for arr, lag in zip(arrays, lags):
        out += np.roll(arr, -int(lag) % n)
    return out


def multiplex_trace(trace, lags, unit="frame"):
    """Aggregate arrivals from a :class:`~repro.video.trace.VBRTrace`.

    Lags are expressed in *frames* regardless of the chosen unit; at
    slice resolution each lag is multiplied by the trace's
    slices-per-frame so that sources remain frame-aligned.
    """
    lags = np.asarray(lags, dtype=int)
    if unit == "frame":
        return multiplex_series(trace.frame_bytes, lags)
    if unit == "slice":
        return multiplex_series(trace.slice_bytes, lags * trace.slices_per_frame)
    raise ValueError(f'unit must be "frame" or "slice", got {unit!r}')
