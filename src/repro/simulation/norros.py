"""Norros' fractional-Brownian-storage dimensioning formulas.

Norros (1994) analysed exactly the queueing question the paper raises
for self-similar input: a storage fed by fractional Brownian traffic
``A(t) = m t + sqrt(a m) Z(t)`` (mean rate ``m``, variance coefficient
``a``, ``Z`` fBm with Hurst parameter ``H``) and drained at constant
rate ``C``.  The stationary queue tail is Weibull-ish:

    ``P(V > b) ~= exp( -(C - m)^{2H} b^{2-2H} / (2 kappa^2 a m) )``

with ``kappa = H^H (1 - H)^{1-H}``.  Inverting for the capacity that
holds the overflow probability at ``epsilon`` gives the celebrated
dimensioning formula

    ``C = m + (-2 ln(eps) kappa^2 a m)^{1/(2H)} * b^{-(1-H)/H}``.

These closed forms provide an analytical cross-check on the library's
simulation machinery: the benchmark compares the formula against the
capacity found by bisection over the fluid queue driven by synthetic
fBm-like traffic.  Note the formula's own message mirrors the paper's:
for ``H > 1/2`` the buffer exponent ``2 - 2H < 1``, so buffering is
dramatically less effective than for SRD (``H = 1/2``) traffic.
"""

from __future__ import annotations

import numpy as np

from repro._validation import require_in_open_interval, require_positive

__all__ = ["norros_kappa", "norros_overflow_probability", "norros_capacity", "norros_buffer"]


def norros_kappa(hurst):
    """``kappa(H) = H^H (1 - H)^{1 - H}``."""
    h = require_in_open_interval(hurst, "hurst", 0.0, 1.0)
    return h**h * (1.0 - h) ** (1.0 - h)


def norros_overflow_probability(mean_rate, variance_coeff, capacity, buffer_size, hurst):
    """Asymptotic ``P(V > b)`` for the fBm storage model.

    All rate quantities share one unit system (e.g. bytes/slot with the
    buffer in bytes).  ``variance_coeff`` is ``a = Var(X_1) / m`` --
    the slot-scale index of dispersion.
    """
    m = require_positive(mean_rate, "mean_rate")
    a = require_positive(variance_coeff, "variance_coeff")
    c = require_positive(capacity, "capacity")
    b = require_positive(buffer_size, "buffer_size")
    h = require_in_open_interval(hurst, "hurst", 0.0, 1.0)
    if c <= m:
        return 1.0
    kappa = norros_kappa(h)
    exponent = (c - m) ** (2 * h) * b ** (2 - 2 * h) / (2.0 * kappa**2 * a * m)
    return float(np.exp(-exponent))


def norros_capacity(mean_rate, variance_coeff, buffer_size, overflow_probability, hurst):
    """Capacity holding ``P(V > b)`` at the target (the dimensioning
    formula)."""
    m = require_positive(mean_rate, "mean_rate")
    a = require_positive(variance_coeff, "variance_coeff")
    b = require_positive(buffer_size, "buffer_size")
    eps = require_in_open_interval(overflow_probability, "overflow_probability", 0.0, 1.0)
    h = require_in_open_interval(hurst, "hurst", 0.0, 1.0)
    kappa = norros_kappa(h)
    burst = (-2.0 * np.log(eps) * kappa**2 * a * m) ** (1.0 / (2.0 * h))
    return float(m + burst * b ** (-(1.0 - h) / h))


def norros_buffer(mean_rate, variance_coeff, capacity, overflow_probability, hurst):
    """Buffer holding ``P(V > b)`` at the target for a given capacity."""
    m = require_positive(mean_rate, "mean_rate")
    a = require_positive(variance_coeff, "variance_coeff")
    c = require_positive(capacity, "capacity")
    eps = require_in_open_interval(overflow_probability, "overflow_probability", 0.0, 1.0)
    h = require_in_open_interval(hurst, "hurst", 0.0, 1.0)
    if c <= m:
        raise ValueError("capacity must exceed the mean rate for a finite buffer")
    kappa = norros_kappa(h)
    exponent = -2.0 * np.log(eps) * kappa**2 * a * m / (c - m) ** (2 * h)
    return float(exponent ** (1.0 / (2.0 - 2.0 * h)))
