"""Two-priority finite-buffer queue for layered video transport.

Implements the "layered coding with a priority queueing discipline"
referenced in Section 5.3: base-layer (high-priority) traffic is served
first, and under buffer pressure enhancement-layer (low-priority) bytes
are pushed out before any base-layer byte is dropped.

Per slot ``t``, with high/low arrivals ``(h_t, l_t)``, capacity ``c``
and shared buffer ``Q``:

1. arrivals join their backlogs;
2. the server drains up to ``c`` bytes, high priority first;
3. if the remaining total backlog exceeds ``Q``, low-priority bytes
   are dropped first (pushout), then high-priority bytes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro._validation import as_1d_float_array, require_nonnegative, require_positive

__all__ = ["PriorityQueueResult", "simulate_priority_queue"]


@dataclass(frozen=True)
class PriorityQueueResult:
    """Outcome of one two-priority simulation."""

    capacity_per_slot: float
    """Service capacity in bytes per slot."""

    buffer_bytes: float
    """Shared buffer size in bytes."""

    high_offered: float
    """Total high-priority (base-layer) bytes offered."""

    low_offered: float
    """Total low-priority (enhancement) bytes offered."""

    high_lost: float
    """High-priority bytes dropped."""

    low_lost: float
    """Low-priority bytes dropped."""

    high_served: float = 0.0
    """High-priority bytes actually transmitted."""

    low_served: float = 0.0
    """Low-priority bytes actually transmitted."""

    high_final_backlog: float = 0.0
    """High-priority bytes still queued when the series ended."""

    low_final_backlog: float = 0.0
    """Low-priority bytes still queued when the series ended.

    Together these close the byte ledger per layer:
    ``offered == served + lost + final_backlog`` exactly for integer
    arrivals (and to float rounding otherwise) -- the conservation
    property the tier-1 tests pin.
    """

    high_loss_series: np.ndarray = field(repr=False, default=None)
    """Per-slot high-priority losses (when requested)."""

    low_loss_series: np.ndarray = field(repr=False, default=None)
    """Per-slot low-priority losses (when requested)."""

    @property
    def high_loss_rate(self):
        """Base-layer byte loss rate."""
        return self.high_lost / self.high_offered if self.high_offered > 0 else 0.0

    @property
    def low_loss_rate(self):
        """Enhancement-layer byte loss rate."""
        return self.low_lost / self.low_offered if self.low_offered > 0 else 0.0

    @property
    def overall_loss_rate(self):
        """Loss rate over both layers combined."""
        total = self.high_offered + self.low_offered
        return (self.high_lost + self.low_lost) / total if total > 0 else 0.0


def simulate_priority_queue(
    high_arrivals, low_arrivals, capacity_per_slot, buffer_bytes, return_series=False
):
    """Run the two-priority finite-buffer queue.

    ``high_arrivals`` and ``low_arrivals`` are equal-length series of
    bytes per slot.  Returns a :class:`PriorityQueueResult`.
    """
    h = as_1d_float_array(high_arrivals, "high_arrivals")
    low = as_1d_float_array(low_arrivals, "low_arrivals")
    if h.size != low.size:
        raise ValueError(
            f"high and low arrival series must have equal length, got {h.size} and {low.size}"
        )
    if np.any(h < 0) or np.any(low < 0):
        raise ValueError("arrivals must be non-negative")
    c = require_positive(capacity_per_slot, "capacity_per_slot")
    q = require_nonnegative(buffer_bytes, "buffer_bytes")
    hi_series = np.zeros(h.size) if return_series else None
    lo_series = np.zeros(h.size) if return_series else None
    backlog_hi = 0.0
    backlog_lo = 0.0
    lost_hi = 0.0
    lost_lo = 0.0
    total_served_hi = 0.0
    total_served_lo = 0.0
    hs = h.tolist()
    ls = low.tolist()
    for t in range(len(hs)):
        backlog_hi += hs[t]
        backlog_lo += ls[t]
        # Strict-priority service: high first.
        served_hi = backlog_hi if backlog_hi < c else c
        backlog_hi -= served_hi
        total_served_hi += served_hi
        remaining = c - served_hi
        if remaining > 0.0:
            served_lo = backlog_lo if backlog_lo < remaining else remaining
            backlog_lo -= served_lo
            total_served_lo += served_lo
        # Pushout: drop low first, then high.
        overflow = backlog_hi + backlog_lo - q
        if overflow > 0.0:
            drop_lo = backlog_lo if backlog_lo < overflow else overflow
            backlog_lo -= drop_lo
            lost_lo += drop_lo
            overflow -= drop_lo
            if overflow > 0.0:
                backlog_hi -= overflow
                lost_hi += overflow
                if return_series:
                    hi_series[t] = overflow
            if return_series:
                lo_series[t] = drop_lo
    return PriorityQueueResult(
        capacity_per_slot=c,
        buffer_bytes=q,
        high_offered=float(h.sum()),
        low_offered=float(low.sum()),
        high_lost=lost_hi,
        low_lost=lost_lo,
        high_served=total_served_hi,
        low_served=total_served_lo,
        high_final_backlog=backlog_hi,
        low_final_backlog=backlog_lo,
        high_loss_series=hi_series,
        low_loss_series=lo_series,
    )
