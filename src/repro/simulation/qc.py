"""Q-C resource trade-off machinery (Figs. 14-16 of the paper).

For a target quality of service (a loss-rate bound), the paper studies
the trade-off between the two network resources: buffer ``Q``
(expressed as the maximum buffer delay ``T_max = Q / (N C)``) and
capacity ``C`` (expressed per source, ``C / N``).  A "Q-C curve" plots
``T_max`` against ``C/N`` for fixed ``N`` and target loss; its strong
knee is the natural operating point.  Fixing ``T_max = 2 ms`` and
scanning ``N`` gives the statistical-multiplexing-gain curve (Fig. 15):
the per-source capacity falls from near the peak rate at ``N = 1`` to
near the mean rate by ``N = 20``.

All searches exploit monotonicity: loss is non-increasing in both
``Q`` and ``C``, so bisection applies; the zero-loss cases use the
exact O(n) drawdown analysis of :func:`repro.simulation.queue.max_backlog`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro._validation import (
    as_1d_float_array,
    require_nonnegative,
    require_positive,
    require_positive_int,
)
from repro.simulation.metrics import worst_errored_second_loss
from repro.simulation.multiplex import (
    multiplex_fgn,
    multiplex_many,
    multiplex_series,
    random_lags,
)
from repro.simulation.queue import max_backlog, simulate_queue, zero_loss_capacity

__all__ = [
    "QCCurve",
    "required_capacity",
    "required_buffer",
    "qc_curve",
    "knee_point",
    "smg_curve",
]


def _measure_loss(arrivals, capacity, buffer_bytes, metric, slots_per_second):
    """Loss according to the chosen metric for one simulation run."""
    if metric == "overall":
        return simulate_queue(arrivals, capacity, buffer_bytes).loss_rate
    if metric == "wes":
        result = simulate_queue(arrivals, capacity, buffer_bytes, return_series=True)
        return worst_errored_second_loss(result.loss_series, arrivals, slots_per_second)
    raise ValueError(f'metric must be "overall" or "wes", got {metric!r}')


def _mean_loss(arrival_sets, capacity, buffer_bytes, metric, slots_per_second):
    """Loss averaged over lag draws (the paper averages six of them)."""
    losses = [
        _measure_loss(a, capacity, buffer_bytes, metric, slots_per_second)
        for a in arrival_sets
    ]
    return float(np.mean(losses))


def required_buffer(
    arrival_sets,
    capacity,
    target_loss,
    metric="overall",
    slots_per_second=None,
    rel_tol=1e-3,
):
    """Smallest buffer ``Q`` meeting the loss target at fixed capacity.

    ``arrival_sets`` is a list of aggregate arrival series (one per lag
    draw); the loss criterion is the draw-averaged loss.  For
    ``target_loss == 0`` the answer is exact: the largest drawdown over
    all draws.  Otherwise ``Q`` is found by bisection (loss is
    monotone non-increasing in ``Q``).
    """
    arrival_sets = [as_1d_float_array(a, "arrivals") for a in arrival_sets]
    if not arrival_sets:
        raise ValueError("arrival_sets must contain at least one series")
    capacity = require_positive(capacity, "capacity")
    target_loss = require_nonnegative(target_loss, "target_loss")
    q_max = max(max_backlog(a, capacity) for a in arrival_sets)
    if target_loss == 0:
        return q_max
    if _mean_loss(arrival_sets, capacity, 0.0, metric, slots_per_second) <= target_loss:
        return 0.0
    lo, hi = 0.0, q_max
    while (hi - lo) > rel_tol * max(q_max, 1.0):
        mid = 0.5 * (lo + hi)
        if _mean_loss(arrival_sets, capacity, mid, metric, slots_per_second) <= target_loss:
            hi = mid
        else:
            lo = mid
    return hi


def required_capacity(
    arrival_sets,
    buffer_bytes,
    target_loss,
    metric="overall",
    slots_per_second=None,
    rel_tol=1e-4,
):
    """Smallest capacity (bytes/slot) meeting the loss target at fixed Q."""
    arrival_sets = [as_1d_float_array(a, "arrivals") for a in arrival_sets]
    if not arrival_sets:
        raise ValueError("arrival_sets must contain at least one series")
    buffer_bytes = require_nonnegative(buffer_bytes, "buffer_bytes")
    target_loss = require_nonnegative(target_loss, "target_loss")
    if target_loss == 0 and metric == "overall":
        return max(zero_loss_capacity(a, buffer_bytes, rel_tol=rel_tol) for a in arrival_sets)
    lo = max(float(np.mean(a)) for a in arrival_sets)
    hi = max(float(np.max(a)) for a in arrival_sets)
    if _mean_loss(arrival_sets, lo, buffer_bytes, metric, slots_per_second) <= target_loss:
        return lo
    while (hi - lo) > rel_tol * hi:
        mid = 0.5 * (lo + hi)
        if _mean_loss(arrival_sets, mid, buffer_bytes, metric, slots_per_second) <= target_loss:
            hi = mid
        else:
            lo = mid
    return hi


def _fgn_arrival_sets(fgn_sources, n, n_sources, n_draws, batch, seed_label,
                      start=0):
    """Independent-source aggregate arrivals, one per draw.

    ``fgn_sources`` holds the model parameters (``hurst`` required;
    ``backend``, ``variance``, ``seed``, ``marginal`` or affine
    ``mean``/``std`` optional); each draw batch-synthesizes
    ``n_sources`` fresh fGn paths through
    :func:`repro.simulation.multiplex.multiplex_fgn` under a
    sha256-derived per-draw seed, so the sets are a pure function of
    the parameters — independent of ``batch`` and ``workers``.
    """
    from repro.par.pool import derive_task_seed

    params = dict(fgn_sources)
    try:
        hurst = params.pop("hurst")
    except KeyError:
        raise ValueError('fgn_sources must name a "hurst"') from None
    backend = params.pop("backend", "paxson")
    variance = float(params.pop("variance", 1.0))
    seed = int(params.pop("seed", 0))
    marginal = params.pop("marginal", None)
    mean = float(params.pop("mean", 0.0))
    std = float(params.pop("std", 1.0))
    if params:
        raise ValueError(f"unknown fgn_sources keys {sorted(params)}")
    sets = []
    for draw in range(n_draws):
        aggregate = multiplex_fgn(
            n, hurst, n_sources,
            backend=backend, variance=variance,
            seed=derive_task_seed(seed, start + draw, label=seed_label),
            batch=batch, marginal=marginal,
        )
        if marginal is None:
            # Affine per-source scaling commutes with the sum
            # (sum_i (mean + std x_i) = N mean + std sum_i x_i); the
            # Gaussian marginal is truncated at zero -- negative bytes
            # are unphysical and the queue rejects them.
            aggregate = np.maximum(n_sources * mean + std * aggregate, 0.0)
        sets.append(aggregate)
    return sets


def _qc_point_task(c_total, common):
    """Pool task: the minimum buffer for one capacity grid point."""
    return required_buffer(
        list(common["arrivals"]),
        c_total,
        common["target_loss"],
        metric=common["metric"],
        slots_per_second=common["slots_per_second"],
    )


@dataclass(frozen=True)
class QCCurve:
    """One Q-C trade-off curve (a single line of Fig. 14 / 16)."""

    n_sources: int
    """Number of multiplexed sources ``N``."""

    target_loss: float
    """Loss-rate target the curve satisfies."""

    metric: str
    """``"overall"`` (``P_l``) or ``"wes"`` (``P_l_WES``)."""

    slot_seconds: float
    """Duration of one simulation slot in seconds."""

    capacity_per_source: np.ndarray = field(repr=False, default=None)
    """Allocated capacity per source, bytes per slot."""

    buffer_bytes: np.ndarray = field(repr=False, default=None)
    """Required buffer ``Q`` in bytes at each capacity."""

    tmax_ms: np.ndarray = field(repr=False, default=None)
    """Maximum buffer delay ``T_max = Q / (N C)`` in milliseconds."""

    @property
    def capacity_per_source_mbps(self):
        """Per-source capacity in megabits per second."""
        return self.capacity_per_source * 8.0 / self.slot_seconds / 1e6


def qc_curve(
    series,
    slot_seconds,
    n_sources,
    target_loss=0.0,
    metric="overall",
    capacities=None,
    n_points=12,
    n_lag_draws=6,
    min_separation=1000,
    rng=None,
    capacity_span=(1.01, 1.0),
    workers=1,
    fgn_sources=None,
    batch=None,
):
    """Compute a Q-C curve for ``n_sources`` multiplexed copies.

    For each per-source capacity in a grid between just above the mean
    rate and the peak rate, the minimum buffer meeting the loss target
    is found, and reported as ``T_max = Q / (N C)``.  Following the
    paper, ``N > 2`` uses several random lag combinations (at least
    ``min_separation`` frames apart) and averages the loss over them.

    Parameters
    ----------
    series:
        Single-source bytes-per-slot series.
    slot_seconds:
        Slot duration in seconds (frame: 1/24; slice: 1/720).
    n_sources:
        ``N``.
    target_loss:
        The loss bound (0 for the zero-loss curves).
    metric:
        ``"overall"`` or ``"wes"``.
    capacities:
        Optional explicit per-source capacity grid (bytes/slot).
    n_points:
        Grid size when ``capacities`` is omitted.
    n_lag_draws:
        Number of random lag combinations (paper: 6; 1 is used when
        ``n_sources == 1``).
    capacity_span:
        ``(lo_factor, hi_factor)`` of the default grid relative to
        (mean, peak) of the single source.
    workers:
        Process count for the per-capacity buffer searches (and the lag
        multiplexing).  All randomness is drawn before the fan-out, so
        the curve is bit-identical at every worker count.
    fgn_sources:
        Replace the paper's lagged-copy multiplexing with ``n_sources``
        *independent* batch-synthesized fGn sources per draw (a dict
        for :func:`_fgn_arrival_sets`: ``hurst`` required; ``backend``,
        ``variance``, ``seed``, ``marginal`` — e.g. the Gamma/Pareto
        hybrid — or affine ``mean``/``std`` optional).  ``series``
        still anchors the capacity grid.  The caller's ``rng`` is not
        consumed: the draws are seeded from ``fgn_sources["seed"]``.
    batch:
        Rows per stacked synthesis for ``fgn_sources`` mode (``None``
        uses :func:`repro.par.batch.default_batch`); never affects the
        curve's values.
    """
    arr = as_1d_float_array(series, "series")
    slot_seconds = require_positive(slot_seconds, "slot_seconds")
    n_sources = require_positive_int(n_sources, "n_sources")
    target_loss = require_nonnegative(target_loss, "target_loss")
    if rng is None:
        rng = np.random.default_rng()
    slots_per_second = max(int(round(1.0 / slot_seconds)), 1)
    n_draws = 1 if n_sources == 1 else n_lag_draws
    if fgn_sources is not None:
        arrival_sets = _fgn_arrival_sets(
            fgn_sources, arr.size, n_sources, n_draws, batch, "qc.fgn"
        )
    else:
        lag_sets = [
            random_lags(n_sources, arr.size, min_separation=min_separation, rng=rng)
            for _ in range(n_draws)
        ]
        arrival_sets = multiplex_many(arr, lag_sets, workers=workers)
    mean_rate = float(np.mean(arr))
    peak_rate = float(np.max(arr))
    if capacities is None:
        lo = mean_rate * capacity_span[0]
        hi = peak_rate * capacity_span[1]
        capacities = np.geomspace(lo, hi, n_points)
    capacities = np.asarray(capacities, dtype=float)
    if np.any(capacities <= 0):
        raise ValueError("capacities must be positive")
    from repro.par.pool import pool_map

    # Every grid point's buffer search is independent and deterministic
    # (no rng past this line); the stacked arrival sets ride shared
    # memory once for all points.
    c_totals = [float(c) * n_sources for c in capacities]
    buffers = np.asarray(pool_map(
        _qc_point_task, c_totals,
        workers=workers,
        common={
            "arrivals": np.stack(arrival_sets),
            "target_loss": target_loss,
            "metric": metric,
            "slots_per_second": slots_per_second,
        },
        label="qc",
    ))
    # T_max = Q / (N * C) with C in bytes/second.
    tmax = buffers * slot_seconds / np.asarray(c_totals) * 1000.0
    return QCCurve(
        n_sources=n_sources,
        target_loss=target_loss,
        metric=metric,
        slot_seconds=slot_seconds,
        capacity_per_source=capacities,
        buffer_bytes=buffers,
        tmax_ms=tmax,
    )


def knee_point(curve, floor_ms=1e-3):
    """Index of the knee of a Q-C curve.

    The knee is found on normalized (log-delay, linear-capacity)
    coordinates as the point farthest from the chord joining the
    curve's endpoints -- the standard geometric knee criterion.  Points
    with delay below ``floor_ms`` are clamped to it so the zero-buffer
    end does not dominate the log scale.
    """
    if not isinstance(curve, QCCurve):
        raise TypeError("curve must be a QCCurve")
    x = np.asarray(curve.capacity_per_source, dtype=float)
    y = np.log10(np.maximum(curve.tmax_ms, floor_ms))
    if x.size < 3:
        raise ValueError("need at least 3 points to locate a knee")
    xn = (x - x.min()) / max(np.ptp(x), 1e-12)
    yn = (y - y.min()) / max(np.ptp(y), 1e-12)
    # Distance from the chord between the first and last points.
    dx, dy = xn[-1] - xn[0], yn[-1] - yn[0]
    norm = np.hypot(dx, dy)
    distance = np.abs(dy * (xn - xn[0]) - dx * (yn - yn[0])) / max(norm, 1e-12)
    return int(np.argmax(distance))


def _smg_capacity_task(item, common):
    """Pool task: bisect the per-source capacity for one value of ``N``.

    ``item`` is ``(n, lag_sets, prebuilt)``; exactly one of the last
    two is ``None``.  Lag draws (and, in ``fgn_sources`` mode, the
    prebuilt independent-source aggregates) happen in the parent, so
    this function is deterministic and the SMG curve is identical at
    every worker count.
    """
    n, lag_sets, prebuilt = item
    arr = common["series"]
    slot_seconds = common["slot_seconds"]
    slots_per_second = common["slots_per_second"]
    target_loss = common["target_loss"]
    metric = common["metric"]
    tmax_s = common["tmax_s"]
    rel_tol = common["rel_tol"]
    mean_rate = common["mean_rate"]
    peak_rate = common["peak_rate"]
    if prebuilt is not None:
        arrival_sets = list(prebuilt)
    else:
        arrival_sets = [multiplex_series(arr, lags) for lags in lag_sets]

    def feasible(c_per_source):
        c_total = c_per_source * n
        q = tmax_s * c_total / slot_seconds  # bytes
        if target_loss == 0:
            return all(max_backlog(a, c_total) <= q for a in arrival_sets)
        return (
            _mean_loss(arrival_sets, c_total, q, metric, slots_per_second)
            <= target_loss
        )

    lo, hi = mean_rate, peak_rate
    if feasible(lo):
        return lo
    if not feasible(hi):
        # Peak allocation with a nonzero buffer always suffices for
        # the overall metric; expand defensively otherwise.
        while not feasible(hi):
            hi *= 1.25
    while (hi - lo) > rel_tol * hi:
        mid = 0.5 * (lo + hi)
        if feasible(mid):
            hi = mid
        else:
            lo = mid
    return hi


def smg_curve(
    series,
    slot_seconds,
    n_values=(1, 2, 5, 10, 20),
    target_loss=0.0,
    tmax_ms=2.0,
    metric="overall",
    n_lag_draws=6,
    min_separation=1000,
    rng=None,
    rel_tol=1e-4,
    workers=1,
    fgn_sources=None,
    batch=None,
):
    """Statistical-multiplexing-gain curve (Fig. 15).

    For each ``N``, finds the smallest per-source capacity meeting the
    loss target when the buffer is sized for a fixed maximum delay:
    ``Q = T_max * N * C``.  Returns a dict with arrays
    ``"n_sources"``, ``"capacity_per_source"`` (bytes/slot),
    ``"capacity_per_source_mbps"``, plus scalars ``"mean_rate"`` and
    ``"peak_rate"`` (bytes/slot) and the achieved ``"gain_fraction"``
    per N (share of the peak-to-mean gap recovered).

    With ``workers > 1`` the per-``N`` capacity searches fan out across
    processes; every lag draw happens up front in the caller's ``rng``
    (in the same order as the serial loop), so the curve is
    bit-identical at every worker count.

    ``fgn_sources`` switches from lagged copies of ``series`` to
    independent batch-synthesized fGn sources per draw (same dict as
    :func:`qc_curve`; ``series`` still anchors the mean/peak capacity
    bracket).  Draws are seeded ``derive_task_seed(seed, draw_index,
    label="smg.fgn")`` with ``draw_index`` running across the ``N``
    values in order, and ``batch`` only groups the stacked FFTs, so the
    curve is a pure function of the dict — same at every ``batch`` and
    ``workers``.
    """
    arr = as_1d_float_array(series, "series")
    slot_seconds = require_positive(slot_seconds, "slot_seconds")
    target_loss = require_nonnegative(target_loss, "target_loss")
    tmax_ms = require_nonnegative(tmax_ms, "tmax_ms")
    if rng is None:
        rng = np.random.default_rng()
    slots_per_second = max(int(round(1.0 / slot_seconds)), 1)
    mean_rate = float(np.mean(arr))
    peak_rate = float(np.max(arr))
    tmax_s = tmax_ms / 1000.0
    items = []
    draw_index = 0
    for n in n_values:
        n = require_positive_int(n, "n_sources")
        n_draws = 1 if n == 1 else n_lag_draws
        if fgn_sources is not None:
            prebuilt = _fgn_arrival_sets(
                fgn_sources, arr.size, n, n_draws, batch, "smg.fgn",
                start=draw_index,
            )
            draw_index += n_draws
            items.append((n, None, prebuilt))
        else:
            items.append((n, [
                random_lags(n, arr.size, min_separation=min_separation, rng=rng)
                for _ in range(n_draws)
            ], None))
    from repro.par.pool import pool_map

    capacities = pool_map(
        _smg_capacity_task, items,
        workers=workers,
        common={
            "series": arr,
            "slot_seconds": slot_seconds,
            "slots_per_second": slots_per_second,
            "target_loss": target_loss,
            "metric": metric,
            "tmax_s": tmax_s,
            "rel_tol": rel_tol,
            "mean_rate": mean_rate,
            "peak_rate": peak_rate,
        },
        label="smg",
    )
    capacities = np.asarray(capacities, dtype=float)
    gain_fraction = (peak_rate - capacities) / max(peak_rate - mean_rate, 1e-12)
    return {
        "n_sources": np.asarray(list(n_values), dtype=int),
        "capacity_per_source": capacities,
        "capacity_per_source_mbps": capacities * 8.0 / slot_seconds / 1e6,
        "mean_rate": mean_rate,
        "peak_rate": peak_rate,
        "gain_fraction": gain_fraction,
        "tmax_ms": tmax_ms,
        "target_loss": target_loss,
    }
