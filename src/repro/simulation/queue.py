"""Finite-buffer FIFO queue simulation.

The queue is simulated at the granularity of the trace's time slots
(frame or slice) with fluid arrivals: during slot ``t`` the source
deposits ``a_t`` bytes, the server drains ``c`` bytes, and whatever
exceeds the buffer ``Q`` is lost:

    ``lost_t = max(0, b_{t-1} + a_t - c - Q)``
    ``b_t    = min(max(b_{t-1} + a_t - c, 0), Q)``

The paper verifies (in the long version) that uniform versus random
cell spacing inside a slot barely affects the results, so the fluid
model at slice granularity preserves the Q-C behaviour.

For the *zero-loss* requirement an exact O(n) analysis is available:
the buffer never overflows iff the maximum drawdown of the net-input
random walk is at most ``Q`` (:func:`max_backlog`), which turns the
zero-loss capacity search into a fast vectorized bisection.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro._validation import as_1d_float_array, require_nonnegative, require_positive
from repro.obs import metrics, trace
from repro.simulation.slotfluid import run_slots

__all__ = ["QueueResult", "simulate_queue", "max_backlog", "zero_loss_capacity"]

_BATCH_LABELS = {"queue": "batch"}

_SLOTS = metrics.registry().counter(
    "repro_queue_slots_total",
    help="Arrival slots folded through the queue recursion",
    unit="slots", labels=_BATCH_LABELS,
)

_LOST = metrics.registry().counter(
    "repro_queue_lost_bytes_total",
    help="Bytes dropped at the finite buffer",
    unit="bytes", labels=_BATCH_LABELS,
)


@dataclass(frozen=True)
class QueueResult:
    """Outcome of one finite-buffer FIFO simulation."""

    capacity_per_slot: float
    """Service capacity in bytes per slot."""

    buffer_bytes: float
    """Buffer size ``Q`` in bytes."""

    total_bytes: float
    """Total bytes offered by the sources."""

    lost_bytes: float
    """Total bytes lost to buffer overflow."""

    final_backlog: float
    """Bytes left in the buffer at the end of the run."""

    peak_backlog: float
    """Largest backlog observed (capped at ``Q``)."""

    loss_series: np.ndarray = field(repr=False, default=None)
    """Per-slot lost bytes (only when requested)."""

    @property
    def loss_rate(self):
        """Overall byte loss rate ``P_l``."""
        if self.total_bytes <= 0:
            return 0.0
        return self.lost_bytes / self.total_bytes


def simulate_queue(arrivals, capacity_per_slot, buffer_bytes, return_series=False,
                   kernel=None):
    """Run the finite-buffer FIFO queue over one arrival series.

    Parameters
    ----------
    arrivals:
        Bytes arriving in each slot (aggregate over all sources).
    capacity_per_slot:
        Service capacity in bytes per slot.
    buffer_bytes:
        Buffer size ``Q`` in bytes (0 gives a bufferless multiplexer).
    return_series:
        Also record per-slot lost bytes (needed for the worst-errored-
        second and windowed-loss metrics).
    kernel:
        ``"reference"`` (the pure-python fold; the default, bit-exact
        against the published goldens), ``"vectorized"`` (the numpy
        reflection-identity kernel of
        :func:`repro.simulation.slotfluid.slot_run_vectorized`;
        statistically equivalent, ~5x+ faster on long runs), or
        ``None`` for the process default
        (:func:`repro.simulation.slotfluid.default_kernel`).

    Returns a :class:`QueueResult`.
    """
    a = as_1d_float_array(arrivals, "arrivals")
    if np.any(a < 0):
        raise ValueError("arrivals must be non-negative")
    c = require_positive(capacity_per_slot, "capacity_per_slot")
    q = require_nonnegative(buffer_bytes, "buffer_bytes")
    loss_series = np.zeros(a.size) if return_series else None
    # The recursion itself lives in repro.simulation.slotfluid, shared
    # bit-for-bit with the streaming fold (repro.stream.queueing) and
    # the per-hop disciplines of repro.net.
    with trace.span("queue.simulate", n=a.size, capacity=c, buffer=q):
        backlog, lost, peak, total = run_slots(
            a, c, q, loss_series=loss_series, kernel=kernel
        )
    _SLOTS.inc(a.size)
    _LOST.inc(lost)
    return QueueResult(
        capacity_per_slot=c,
        buffer_bytes=q,
        total_bytes=total,
        lost_bytes=lost,
        final_backlog=backlog,
        peak_backlog=peak,
        loss_series=loss_series,
    )


def max_backlog(arrivals, capacity_per_slot):
    """Largest backlog of the *infinite*-buffer queue (vectorized O(n)).

    Equals the maximum drawdown of the net-input walk
    ``S_t = sum_{u<=t} (a_u - c)``: ``max_t (S_t - min(0, min_{u<=t} S_u))``.
    The finite-buffer queue with ``Q >= max_backlog`` loses nothing, so
    this is the exact zero-loss buffer requirement at capacity ``c``.
    """
    a = as_1d_float_array(arrivals, "arrivals")
    c = require_positive(capacity_per_slot, "capacity_per_slot")
    s = np.cumsum(a - c)
    running_min = np.minimum(np.minimum.accumulate(s), 0.0)
    return float(np.max(s - running_min, initial=0.0))


def zero_loss_capacity(arrivals, buffer_bytes, rel_tol=1e-4):
    """Smallest capacity (bytes/slot) with zero loss at buffer ``Q``.

    Bisection on :func:`max_backlog`, which is monotone non-increasing
    in the capacity.  The search runs between the mean rate (below
    which the queue is unstable) and the peak slot arrival (at which a
    single slot can never overflow an empty buffer, hence zero loss for
    any ``Q >= 0``).
    """
    a = as_1d_float_array(arrivals, "arrivals")
    q = require_nonnegative(buffer_bytes, "buffer_bytes")
    lo = float(np.mean(a))
    hi = float(np.max(a))
    if lo <= 0:
        raise ValueError("arrivals must have positive mean")
    if max_backlog(a, hi) <= q:
        # Tighten from the peak downwards.
        pass
    else:  # pragma: no cover - peak capacity always achieves zero loss
        raise RuntimeError("peak capacity fails to achieve zero loss")
    if max_backlog(a, lo) <= q:
        return lo
    while (hi - lo) > rel_tol * hi:
        mid = 0.5 * (lo + hi)
        if max_backlog(a, mid) <= q:
            hi = mid
        else:
            lo = mid
    return hi
