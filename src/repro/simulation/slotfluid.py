"""The canonical slot-fluid queue recursion, in exactly one place.

Three code paths run the same finite-buffer fluid recursion per time
slot -- the batch simulator (:func:`repro.simulation.queue.simulate_queue`),
the streaming fold (:class:`repro.stream.queueing.StreamingQueue`) and
every per-hop discipline in :mod:`repro.net.sched`:

    ``pre_t  = b_{t-1} + (a_t - c)``
    ``lost_t = max(0, pre_t - Q)``
    ``b_t    = min(max(pre_t, 0), Q)``

The floating-point evaluation order is part of the contract: the whole
stack promises *bit-for-bit* agreement between the batch, streaming and
network simulators, so every implementation must compute
``b + (a - c)`` (not ``(b + a) - c``) and clamp in the same order.
Keeping the loop here means the paths cannot drift.

:func:`slot_step` is the scalar one-slot update (the network simulator
advances hop state one event at a time and needs the served volume for
forwarding); :func:`fold_slots` is the tight batch loop over a list of
arrivals used by the batch and streaming simulators.  A property test
pins ``fold_slots`` to repeated ``slot_step`` applications.

:func:`slot_run_vectorized` is the numpy fast path, built on the
one-sided Skorokhod (Lindley) reflection identities.  Between barrier
*alternations* the finite-buffer trajectory coincides with a one-sided
reflection, and each one-sided map has a closed prefix form:

    drain barrier only:     ``W_t = S_t - min(0, min_{u<=t} S_u)``
    overflow barrier only:  ``W_t = S_t - max(0, max_{u<=t} (S_u - Q))``

where ``S`` is the seeded prefix sum of ``a_t - c``.  The kernel runs
``np.add.accumulate`` + ``np.minimum/maximum.accumulate`` over windows,
switching identities only when the trajectory crosses the *other*
barrier -- so a long drain-heavy stretch or a clustered burst of
overflow slots each costs a handful of vector passes, and the work
scales with barrier alternations, not with clamp events.  Where no
clamp fires the identity *is* the reference's own seeded prefix sum,
bit for bit; where clamps fire, the algebraically identical correction
term rounds differently at the last ulp, so the kernel is
statistically equivalent (pinned by the tier-2 fuzz wall in
``tests/test_qa_batch_fuzz.py``) rather than bit-identical.  For that
reason :func:`run_slots` keeps the pure-python reference as the
default kernel -- golden digests never move unless a caller opts in
via ``kernel="vectorized"``, :func:`set_default_kernel`, or
``REPRO_SLOT_KERNEL=vectorized``.
"""

from __future__ import annotations

import os

import numpy as np

__all__ = [
    "SlotFluidState",
    "clamp_backlog",
    "slot_step",
    "fold_slots",
    "slot_run_vectorized",
    "run_slots",
    "default_kernel",
    "set_default_kernel",
    "SLOT_KERNELS",
]


# State threaded through fold_slots: (backlog, lost, peak, total).
# A plain tuple, not a dataclass: the fold sits on the hottest loop in
# the repo and the callers already keep these as local floats.
SlotFluidState = tuple


def clamp_backlog(backlog, buffer_bytes):
    """Clamp a post-service backlog into ``[0, Q]``; returns ``(backlog, lost)``.

    The shared drop rule: whatever exceeds the buffer is lost, a
    negative backlog (capacity exceeded demand) is an empty queue.
    """
    if backlog > buffer_bytes:
        return buffer_bytes, backlog - buffer_bytes
    if backlog < 0.0:
        return 0.0, 0.0
    return backlog, 0.0


def slot_step(backlog, arrival, capacity, buffer_bytes):
    """One slot of the fluid recursion; returns ``(backlog, served, lost)``.

    ``served`` is the volume that leaves on the output side this slot
    (``min(b_{t-1} + a_t, c)``) -- the quantity a network hop forwards
    downstream.  The backlog and loss arithmetic is bit-identical to
    :func:`fold_slots`: the pre-clamp backlog is ``b + (a - c)``.
    """
    pre = backlog + (arrival - capacity)
    if pre > buffer_bytes:
        return buffer_bytes, capacity, pre - buffer_bytes
    if pre < 0.0:
        # The queue drains completely: everything present was served.
        return 0.0, backlog + arrival, 0.0
    return pre, capacity, 0.0


def fold_slots(values, capacity, buffer_bytes, state=(0.0, 0.0, 0.0, 0.0),
               loss_series=None):
    """Fold the recursion over ``values``; returns the advanced state.

    ``values`` is a plain list of floats (callers convert via
    ``ndarray.tolist()`` -- Python-level float ops beat per-element
    ndarray access on this loop), ``state`` is ``(backlog, lost, peak,
    total)`` and the return value is the same tuple advanced by
    ``len(values)`` slots.  The offered total accumulates in
    left-to-right order so any chunk partition reproduces every
    statistic bit-for-bit.  When ``loss_series`` (a numpy array at
    least as long as ``values``) is given, per-slot losses are written
    into it from index 0.
    """
    backlog, lost, peak, total = state
    c = capacity
    q = buffer_bytes
    if loss_series is not None:
        for t, arrival in enumerate(values):
            total += arrival
            backlog += arrival - c
            if backlog > q:
                overflow = backlog - q
                lost += overflow
                loss_series[t] = overflow
                backlog = q
            elif backlog < 0.0:
                backlog = 0.0
            if backlog > peak:
                peak = backlog
    else:
        for arrival in values:
            total += arrival
            backlog += arrival - c
            if backlog > q:
                lost += backlog - q
                backlog = q
            elif backlog < 0.0:
                backlog = 0.0
            if backlog > peak:
                peak = backlog
    return backlog, lost, peak, total


def slot_run_vectorized(values, capacity, buffer_bytes,
                        state=(0.0, 0.0, 0.0, 0.0), loss_series=None,
                        block_size=8_192):
    """Vectorized fold via the one-sided reflection identities.

    ``values`` is a 1-D float array (any array-like); the other
    arguments match :func:`fold_slots`.  Per window the kernel computes
    the raw prefix sum ``P`` of ``a_t - c`` once, then resolves the
    trajectory segment by segment: from state ``(r, b)`` the one-sided
    maps become pure functions of ``P`` --

        drain barrier:     ``W_u = P_u - min(P_r - b, min_{r<w<=u} P_w)``
        overflow barrier:  ``W_u = P_u - max(P_r - b + Q, max_{r<w<=u} P_w) + Q``

    -- so a barrier alternation costs one extremum scan and one
    subtraction over its own slice instead of a fresh prefix sum.  A
    segment absorbs an arbitrary run of its own clamps (a drain-heavy
    stretch, a clustered burst of overflow slots) in those two passes;
    cost scales with barrier *alternations*, which even heavily-loaded
    LRD workloads produce orders of magnitude less often than clamp
    events.  Where no clamp fires the identity reduces to the seeded
    prefix sum itself; where clamps fire, the algebraically identical
    correction rounds differently at the last ulp, so backlog, lost and
    peak are statistically equivalent to the reference (~1e-13
    relative, pinned by the tier-2 fuzz wall) rather than bit-identical,
    and the offered total is numpy's pairwise reduction (at least as
    accurate as the loop's sequential sum).  Alternation-dense
    stretches are delegated to :func:`fold_slots` itself.
    """
    a = np.asarray(values, dtype=float)
    backlog, lost, peak, total = state
    n = a.size
    if n == 0:
        return backlog, lost, peak, total
    c = float(capacity)
    q = float(buffer_bytes)
    max_window = max(int(block_size), 1024)
    min_scan = 256
    P = np.empty(max_window + 1)   # raw prefix sum of a_t - c
    M = np.empty(max_window + 1)   # running-extremum scan
    WB = np.empty(max_window + 1)  # reflected trajectory
    PRE = np.empty(max_window)     # per-slot spill recovery scratch
    pos = None  # slots with positive net input, for the idle skip (lazy)
    t = 0
    scan = max_window  # adaptive segment-scan length
    upper = False  # which one-sided identity currently applies
    dense = 0
    while t < n:
        if backlog == 0.0 and not upper:
            # Empty queue: slots with a_t <= c change no statistic
            # (backlog stays 0, nothing lost, peak unmoved) beyond the
            # offered total; jump to the next net-positive slot.
            if pos is None:
                pos = np.flatnonzero(a > c)
            i = int(np.searchsorted(pos, t))
            nxt = n if i == pos.size else int(pos[i])
            if nxt > t:
                total += float(np.add.reduce(a[t:nxt]))
                t = nxt
            if t == n:
                break
        end = min(t + max_window, n)
        k = end - t
        P[0] = 0.0
        np.subtract(a[t:end], c, out=P[1:1 + k])
        np.add.accumulate(P[:1 + k], out=P[:1 + k])
        # The window's offered volume falls out of the prefix for free.
        total += float(P[k]) + k * c
        r = 0  # P-index of the current segment's seed state
        while r < k:
            # Cap each extremum scan near the observed alternation
            # spacing: a crossing near the segment start then wastes
            # only a short suffix, while clean stretches grow the cap
            # back toward the full window.
            s_end = min(k, r + scan)
            save = P[r]
            if not upper:
                # Seeding the cummin scan with P_r - b folds the
                # segment's offset into the correction term.
                P[r] = save - backlog
                np.minimum.accumulate(P[r:1 + s_end], out=M[r:1 + s_end])
                P[r] = save
                W = np.subtract(P[r + 1:1 + s_end], M[r + 1:1 + s_end],
                                out=WB[r + 1:1 + s_end])
                m = float(W.max())
                if m <= q:
                    if m > peak:
                        peak = m
                    backlog = float(W[-1])
                    r = s_end
                    scan = min(scan * 4, max_window)
                    dense = 0
                    continue
                # First overflow: the prefix before it is the true
                # finite-buffer trajectory; clamp there, switch maps.
                j = int(np.argmax(W > q))
                if j > 0:
                    m = float(W[:j].max())
                    if m > peak:
                        peak = m
                overflow = float(W[j]) - q
                lost += overflow
                if loss_series is not None:
                    loss_series[t + r + j] = overflow
                backlog = q
                if q > peak:
                    peak = q
                upper = True
            else:
                # Seeding the cummax scan with P_r - b + Q makes the
                # scan itself the (shifted) correction: Ws = W - Q.
                P[r] = save - backlog + q
                np.maximum.accumulate(P[r:1 + s_end], out=M[r:1 + s_end])
                P[r] = save
                Ws = np.subtract(P[r + 1:1 + s_end], M[r + 1:1 + s_end],
                                 out=WB[r + 1:1 + s_end])
                m = float(Ws.min())
                span = s_end - r
                stop = span if m >= -q else int(np.argmax(Ws < -q))
                if stop > 0:
                    # Per-slot losses over the accepted prefix: the
                    # spill above Q is pre_u - Q = Ws_{u-1} + d_u.
                    pre = np.subtract(a[t + r:t + r + stop], c,
                                      out=PRE[:stop])
                    pre[0] += backlog - q
                    if stop > 1:
                        pre[1:] += Ws[:stop - 1]
                    if loss_series is None:
                        np.maximum(pre, 0.0, out=pre)
                        lost += float(np.add.reduce(pre))
                    else:
                        hit = np.flatnonzero(pre > 0.0)
                        if hit.size:
                            lost += float(np.add.reduce(pre[hit]))
                            loss_series[t + r + hit] = pre[hit]
                    m = float(Ws[:stop].max()) + q
                    if m > peak:
                        peak = m
                if stop == span:
                    backlog = float(Ws[-1]) + q
                    r = s_end
                    scan = min(scan * 4, max_window)
                    dense = 0
                    continue
                # The trajectory drained: clamp to empty, switch maps.
                backlog = 0.0
                upper = False
                stop += 1
                j = stop - 1
            r += j + 1
            if 2 * (j + 1) < scan:
                scan = max(min_scan, 2 * (j + 1))
            if scan > min_scan:
                dense = 0
                continue
            dense += 1
            if dense >= 8 and r < k:
                # Barrier alternations nearly every slot: tiny segment
                # scans lose to the plain loop, and the loop *is* the
                # reference -- run it for a stretch (minus its own
                # total, already counted by the window prefix above).
                stretch = min(r + 4_096, k)
                sub_loss = None
                if loss_series is not None:
                    sub_loss = loss_series[t + r:t + stretch]
                backlog, lost, peak, _ = fold_slots(
                    a[t + r:t + stretch].tolist(), c, q,
                    state=(backlog, lost, peak, 0.0), loss_series=sub_loss,
                )
                r = stretch
                dense = 0
                upper = False
                scan = min(min_scan * 4, max_window)
        t = end
    return backlog, lost, peak, total


SLOT_KERNELS = ("reference", "vectorized")
"""Selectable fold kernels: the exact pure-python loop and the
statistically-equivalent Lindley-identity fast path."""

_DEFAULT_KERNEL = os.environ.get("REPRO_SLOT_KERNEL", "reference")


def default_kernel():
    """The kernel :func:`run_slots` uses when none is requested."""
    return _DEFAULT_KERNEL


def set_default_kernel(name):
    """Select the process-wide default fold kernel; returns the previous one.

    ``"reference"`` (the pure-python loop, the bit-exact default) or
    ``"vectorized"`` (the Lindley-identity numpy fast path, exact on
    clamp-free stretches and equivalent to float-associativity rounding
    elsewhere).  The environment variable ``REPRO_SLOT_KERNEL`` sets
    the initial default.  Golden digests are computed under the
    reference kernel; switch when throughput matters more than the
    last ulp of the loss counters.
    """
    global _DEFAULT_KERNEL
    if name not in SLOT_KERNELS:
        raise ValueError(f"kernel must be one of {SLOT_KERNELS}, got {name!r}")
    previous = _DEFAULT_KERNEL
    _DEFAULT_KERNEL = name
    return previous


def run_slots(values, capacity, buffer_bytes, state=(0.0, 0.0, 0.0, 0.0),
              loss_series=None, kernel=None):
    """Fold ``values`` with the selected kernel.

    The dispatcher every array-shaped caller goes through
    (:func:`repro.simulation.queue.simulate_queue`, the streaming fold,
    the FIFO discipline's batched path).  ``kernel`` overrides the
    process default (:func:`set_default_kernel`).  The offered total is
    bit-identical under either kernel; backlog/lost/peak are
    bit-identical under ``"reference"`` and statistically equivalent
    (tier-2 pinned) under ``"vectorized"``.
    """
    if kernel is None:
        kernel = _DEFAULT_KERNEL
    if kernel == "vectorized":
        return slot_run_vectorized(
            values, capacity, buffer_bytes, state=state, loss_series=loss_series
        )
    if kernel == "reference":
        if isinstance(values, np.ndarray):
            values = values.tolist()
        return fold_slots(
            values, capacity, buffer_bytes, state=state, loss_series=loss_series
        )
    raise ValueError(f"kernel must be one of {SLOT_KERNELS}, got {kernel!r}")
