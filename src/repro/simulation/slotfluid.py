"""The canonical slot-fluid queue recursion, in exactly one place.

Three code paths run the same finite-buffer fluid recursion per time
slot -- the batch simulator (:func:`repro.simulation.queue.simulate_queue`),
the streaming fold (:class:`repro.stream.queueing.StreamingQueue`) and
every per-hop discipline in :mod:`repro.net.sched`:

    ``pre_t  = b_{t-1} + (a_t - c)``
    ``lost_t = max(0, pre_t - Q)``
    ``b_t    = min(max(pre_t, 0), Q)``

The floating-point evaluation order is part of the contract: the whole
stack promises *bit-for-bit* agreement between the batch, streaming and
network simulators, so every implementation must compute
``b + (a - c)`` (not ``(b + a) - c``) and clamp in the same order.
Keeping the loop here means the paths cannot drift.

:func:`slot_step` is the scalar one-slot update (the network simulator
advances hop state one event at a time and needs the served volume for
forwarding); :func:`fold_slots` is the tight batch loop over a list of
arrivals used by the batch and streaming simulators.  A property test
pins ``fold_slots`` to repeated ``slot_step`` applications.
"""

from __future__ import annotations

__all__ = ["SlotFluidState", "clamp_backlog", "slot_step", "fold_slots"]


# State threaded through fold_slots: (backlog, lost, peak, total).
# A plain tuple, not a dataclass: the fold sits on the hottest loop in
# the repo and the callers already keep these as local floats.
SlotFluidState = tuple


def clamp_backlog(backlog, buffer_bytes):
    """Clamp a post-service backlog into ``[0, Q]``; returns ``(backlog, lost)``.

    The shared drop rule: whatever exceeds the buffer is lost, a
    negative backlog (capacity exceeded demand) is an empty queue.
    """
    if backlog > buffer_bytes:
        return buffer_bytes, backlog - buffer_bytes
    if backlog < 0.0:
        return 0.0, 0.0
    return backlog, 0.0


def slot_step(backlog, arrival, capacity, buffer_bytes):
    """One slot of the fluid recursion; returns ``(backlog, served, lost)``.

    ``served`` is the volume that leaves on the output side this slot
    (``min(b_{t-1} + a_t, c)``) -- the quantity a network hop forwards
    downstream.  The backlog and loss arithmetic is bit-identical to
    :func:`fold_slots`: the pre-clamp backlog is ``b + (a - c)``.
    """
    pre = backlog + (arrival - capacity)
    if pre > buffer_bytes:
        return buffer_bytes, capacity, pre - buffer_bytes
    if pre < 0.0:
        # The queue drains completely: everything present was served.
        return 0.0, backlog + arrival, 0.0
    return pre, capacity, 0.0


def fold_slots(values, capacity, buffer_bytes, state=(0.0, 0.0, 0.0, 0.0),
               loss_series=None):
    """Fold the recursion over ``values``; returns the advanced state.

    ``values`` is a plain list of floats (callers convert via
    ``ndarray.tolist()`` -- Python-level float ops beat per-element
    ndarray access on this loop), ``state`` is ``(backlog, lost, peak,
    total)`` and the return value is the same tuple advanced by
    ``len(values)`` slots.  The offered total accumulates in
    left-to-right order so any chunk partition reproduces every
    statistic bit-for-bit.  When ``loss_series`` (a numpy array at
    least as long as ``values``) is given, per-slot losses are written
    into it from index 0.
    """
    backlog, lost, peak, total = state
    c = capacity
    q = buffer_bytes
    if loss_series is not None:
        for t, arrival in enumerate(values):
            total += arrival
            backlog += arrival - c
            if backlog > q:
                overflow = backlog - q
                lost += overflow
                loss_series[t] = overflow
                backlog = q
            elif backlog < 0.0:
                backlog = 0.0
            if backlog > peak:
                peak = backlog
    else:
        for arrival in values:
            total += arrival
            backlog += arrival - c
            if backlog > q:
                lost += backlog - q
                backlog = q
            elif backlog < 0.0:
                backlog = 0.0
            if backlog > peak:
                peak = backlog
    return backlog, lost, peak, total
