"""Constant-memory streaming generation, transform and queueing.

The paper's workflow -- generate fARIMA noise (Section 4), impose the
Gamma/Pareto marginal (eq. 13), feed a finite-buffer FIFO queue
(Section 5) -- is implemented batch-style everywhere else in this
library: every stage materializes the full realization, so trace
length is capped by RAM.  This subsystem runs the same pipeline over
bounded-memory chunk iterators, which is what a long-lived traffic
source (a live simulation feed, a load generator, a multi-hour
validation run) actually needs:

- :mod:`repro.stream.sources` -- chunked Gaussian sample sources: the
  resumable exact Hosking generator and constant-memory block-overlap
  Davies-Harte / Paxson approximate fGn sources;
- :mod:`repro.stream.transform` -- chunkwise marginal inversion that
  reproduces :func:`repro.core.transform.marginal_transform` to the
  last bit;
- :mod:`repro.stream.pipeline` -- the composable :class:`Stream`
  abstraction (map / scale / merge / lagged multiplexing with a
  bounded ring buffer) and a worker-pool for generating independent
  sources concurrently;
- :mod:`repro.stream.queueing` -- online finite-buffer FIFO simulation
  that folds :class:`~repro.simulation.queue.QueueResult` statistics
  over chunks, bit-for-bit equal to
  :func:`~repro.simulation.queue.simulate_queue`;
- :mod:`repro.stream.estimators` -- one-pass moments and a streaming
  variance-time Hurst estimator, so arbitrarily long runs can be
  validated without retaining the series.
"""

from repro.stream.estimators import OnlineMoments, StreamingVarianceTime
from repro.stream.pipeline import (
    ParallelSources,
    Stream,
    StreamIntegrityError,
    merge_streams,
    multiplex_lagged,
)
from repro.stream.queueing import StreamingQueue, simulate_queue_stream
from repro.stream.sources import ArraySource, BlockFGNSource, HoskingSource, make_source
from repro.stream.transform import StreamingMarginalTransform, transform_chunks

__all__ = [
    "ArraySource",
    "BlockFGNSource",
    "HoskingSource",
    "OnlineMoments",
    "ParallelSources",
    "Stream",
    "StreamIntegrityError",
    "StreamingMarginalTransform",
    "StreamingQueue",
    "StreamingVarianceTime",
    "make_source",
    "merge_streams",
    "multiplex_lagged",
    "simulate_queue_stream",
    "transform_chunks",
]
