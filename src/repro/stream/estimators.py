"""One-pass statistics for validating unbounded synthetic runs.

Two accumulators cover what the paper's validation loop needs without
retaining the series:

- :class:`OnlineMoments` -- count / mean / variance / extremes via
  Chan's parallel-merge update (numerically stable for arbitrarily
  long streams; each chunk contributes through its own mean and
  centered second moment rather than raw sums of squares).
- :class:`StreamingVarianceTime` -- the variance-time Hurst estimator
  (Fig. 11, eq. 1) evaluated online: block means at dyadic
  aggregation levels ``m = 2^j`` are folded into per-level
  :class:`OnlineMoments`, so ``Var(X^(m))`` is available at every
  level with O(levels) state.  The log-log regression then mirrors
  :func:`repro.analysis.hurst.variance_time` (same default fit range,
  same normalization by the unaggregated variance), differing only in
  that the block-size grid is dyadic rather than log-spaced.
"""

from __future__ import annotations

import numpy as np

from repro._validation import require_positive_int
from repro.analysis.hurst import VarianceTimeResult

__all__ = ["OnlineMoments", "StreamingVarianceTime"]


class OnlineMoments:
    """Streaming count, mean, variance and extremes of a sample.

    ``update(chunk)`` merges one chunk in O(chunk) time; ``merge``
    combines two accumulators (e.g. from parallel workers).  Variance
    uses the population convention (``ddof=0``) to match ``np.var``.
    """

    def __init__(self):
        self.count = 0
        self.mean = 0.0
        self._m2 = 0.0
        self.minimum = np.inf
        self.maximum = -np.inf
        self.total = 0.0

    def update(self, chunk):
        arr = np.asarray(chunk, dtype=float)
        if arr.size == 0:
            return self
        n_b = arr.size
        mean_b = float(np.mean(arr))
        m2_b = float(np.sum((arr - mean_b) ** 2))
        n_a = self.count
        if n_a == 0:
            self.mean = mean_b
            self._m2 = m2_b
        else:
            delta = mean_b - self.mean
            n = n_a + n_b
            self.mean += delta * n_b / n
            self._m2 += m2_b + delta * delta * n_a * n_b / n
        self.count += n_b
        self.total += float(np.sum(arr))
        self.minimum = min(self.minimum, float(np.min(arr)))
        self.maximum = max(self.maximum, float(np.max(arr)))
        return self

    def merge(self, other):
        """Fold another accumulator into this one (Chan's formula)."""
        if other.count == 0:
            return self
        if self.count == 0:
            self.count = other.count
            self.mean = other.mean
            self._m2 = other._m2
            self.minimum = other.minimum
            self.maximum = other.maximum
            self.total = other.total
            return self
        n_a, n_b = self.count, other.count
        delta = other.mean - self.mean
        n = n_a + n_b
        self.mean += delta * n_b / n
        self._m2 += other._m2 + delta * delta * n_a * n_b / n
        self.count = n
        self.total += other.total
        self.minimum = min(self.minimum, other.minimum)
        self.maximum = max(self.maximum, other.maximum)
        return self

    @property
    def variance(self):
        """Population variance (``ddof=0``); 0.0 until two samples."""
        if self.count < 1:
            return 0.0
        return self._m2 / self.count

    @property
    def std(self):
        return float(np.sqrt(self.variance))

    def __repr__(self):
        return (
            f"OnlineMoments(count={self.count}, mean={self.mean:.6g}, "
            f"std={self.std:.6g}, min={self.minimum:.6g}, max={self.maximum:.6g})"
        )


class StreamingVarianceTime:
    """Online variance-time Hurst estimator over dyadic block sizes.

    Parameters
    ----------
    max_level:
        Largest aggregation level tracked is ``m = 2^max_level``.
        State is O(max_level); the default covers block sizes up to
        ~4M samples, enough for multi-hour frame-rate runs.
    min_blocks:
        Smallest number of *completed* blocks for a level's variance to
        enter the regression (mirrors the batch estimator's guard).
    """

    def __init__(self, max_level=22, min_blocks=5):
        self.max_level = require_positive_int(max_level, "max_level")
        self.min_blocks = require_positive_int(min_blocks, "min_blocks")
        self._levels = [OnlineMoments() for _ in range(self.max_level + 1)]
        self._partial_sum = np.zeros(self.max_level + 1)
        self._partial_count = np.zeros(self.max_level + 1, dtype=int)

    @property
    def count(self):
        """Total samples consumed."""
        return self._levels[0].count

    def update(self, chunk):
        """Fold one chunk into every aggregation level."""
        arr = np.asarray(chunk, dtype=float)
        if arr.size == 0:
            return self
        self._levels[0].update(arr)
        for j in range(1, self.max_level + 1):
            m = 1 << j
            stats = self._levels[j]
            rest = arr
            # Finish the carried partial block first.
            if self._partial_count[j]:
                need = m - self._partial_count[j]
                take = min(need, rest.size)
                self._partial_sum[j] += float(np.sum(rest[:take]))
                self._partial_count[j] += take
                rest = rest[take:]
                if self._partial_count[j] == m:
                    stats.update(np.array([self._partial_sum[j] / m]))
                    self._partial_sum[j] = 0.0
                    self._partial_count[j] = 0
            n_blocks = rest.size // m
            if n_blocks:
                means = rest[: n_blocks * m].reshape(n_blocks, m).mean(axis=1)
                stats.update(means)
                rest = rest[n_blocks * m :]
            if rest.size:
                self._partial_sum[j] += float(np.sum(rest))
                self._partial_count[j] += rest.size
        return self

    def hurst(self, fit_range=None):
        """Fit H from the variances accumulated so far.

        Returns a :class:`~repro.analysis.hurst.VarianceTimeResult`
        with the dyadic block sizes in ``m_values``.  The default fit
        range matches the batch estimator: ``[10, max(n / 100, 20)]``.
        """
        n = self.count
        if n < 100:
            raise ValueError(f"need at least 100 samples, got {n}")
        var0 = self._levels[0].variance
        if var0 <= 0:
            raise ValueError("series is constant; variance-time analysis is undefined")
        m_values = []
        normalized = []
        for j, stats in enumerate(self._levels):
            if j and stats.count < self.min_blocks:
                continue
            m_values.append(1 << j)
            normalized.append(stats.variance / var0)
        m_values = np.asarray(m_values, dtype=int)
        normalized = np.asarray(normalized)
        if fit_range is None:
            fit_range = (10, max(n // 100, 20))
        lo, hi = fit_range
        mask = (m_values >= lo) & (m_values <= hi) & (normalized > 0)
        if mask.sum() < 2:
            raise ValueError(f"fewer than 2 usable block sizes in fit range {fit_range}")
        slope, _ = np.polyfit(np.log10(m_values[mask]), np.log10(normalized[mask]), 1)
        beta = -float(slope)
        return VarianceTimeResult(
            hurst=1.0 - beta / 2.0,
            beta=beta,
            m_values=m_values,
            normalized_variances=normalized,
            fit_mask=mask,
        )

    def __repr__(self):
        return (
            f"StreamingVarianceTime(count={self.count}, "
            f"max_level={self.max_level}, min_blocks={self.min_blocks})"
        )
