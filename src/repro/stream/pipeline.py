"""Composable bounded-memory chunk pipelines.

:class:`Stream` wraps an iterator of 1-D float chunks and supports the
operations the paper's workflow needs -- elementwise maps (marginal
transform, scaling), merging independent sources, and the paper's
lagged-copy statistical multiplexing -- all without materializing the
series.  A stream is single-use: iterating it consumes it, exactly
like the underlying generator.

:func:`multiplex_lagged` reproduces the semantics of
:func:`repro.simulation.multiplex.multiplex_series` (sum of
cyclically shifted copies of one length-``n`` series) with a bounded
ring buffer: memory is O(max lag + chunk), independent of ``n``,
because only the first ``max(lags)`` samples (for the cyclic
wraparound) and a sliding window of width ``max(lags)`` are retained.

:class:`ParallelSources` generates N *independent* sources on a
:mod:`concurrent.futures` thread pool -- the FFT work inside the block
sources releases the GIL, so aggregate throughput scales with cores --
and yields the per-chunk sum (the aggregate arrival process of N
independently multiplexed sources) or the list of per-source chunks.
"""

from __future__ import annotations

import concurrent.futures
import time

import numpy as np

from repro._validation import as_1d_float_array, require_positive_int
from repro.obs import _state
from repro.obs import log as obs_log
from repro.obs import metrics
from repro.stream.transform import StreamingMarginalTransform

__all__ = [
    "Stream",
    "StreamIntegrityError",
    "merge_streams",
    "multiplex_lagged",
    "ParallelSources",
]

_END = object()

_LOGGER = obs_log.get_logger("stream")

# Per-stage throughput buckets: inter-chunk latency upstream of the
# metered point, in seconds.
_STAGE_WAIT_BUCKETS = (
    1e-5, 1e-4, 1e-3, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0,
)


_RECOVERIES = metrics.registry().counter(
    "repro_stream_source_recoveries_total",
    help="Dead parallel sources rebuilt from their recorded seeds",
    unit="recoveries",
)

_POOL_GATHER = metrics.registry().histogram(
    "repro_stream_pool_gather_seconds",
    help="Wall time for one synchronized step across all parallel sources",
    unit="seconds", buckets=_STAGE_WAIT_BUCKETS,
)


def _stage_metrics(stage):
    reg = metrics.registry()
    return (
        reg.counter(
            "repro_stream_chunks_total",
            help="Chunks that crossed a metered pipeline stage",
            unit="chunks", labels={"stage": stage},
        ),
        reg.counter(
            "repro_stream_samples_total",
            help="Samples that crossed a metered pipeline stage",
            unit="samples", labels={"stage": stage},
        ),
        reg.histogram(
            "repro_stream_stage_wait_seconds",
            help="Time spent waiting on the upstream stage per chunk",
            unit="seconds", labels={"stage": stage},
            buckets=_STAGE_WAIT_BUCKETS,
        ),
    )


class StreamIntegrityError(ValueError):
    """A pipeline chunk failed validation.

    Carries provenance -- which stream (``source`` label), which chunk
    (``chunk_index``) and which absolute sample (``sample_offset``) --
    so a non-finite burst deep in a multi-stage pipeline is reported at
    the stage that produced it instead of surfacing as an unrelated
    numpy error several consumers later.
    """

    def __init__(self, message, source=None, chunk_index=None, sample_offset=None):
        super().__init__(message)
        self.source = source
        self.chunk_index = chunk_index
        self.sample_offset = sample_offset


def _rechunk(chunks, chunk_size):
    """Re-slice an iterable of arrays into ``chunk_size``-sample pieces."""
    pending = []
    pending_size = 0
    for piece in chunks:
        piece = np.asarray(piece, dtype=float)
        if piece.size == 0:
            continue
        pending.append(piece)
        pending_size += piece.size
        while pending_size >= chunk_size:
            merged = pending[0] if len(pending) == 1 else np.concatenate(pending)
            yield merged[:chunk_size]
            rest = merged[chunk_size:]
            pending = [rest] if rest.size else []
            pending_size = rest.size
    if pending_size:
        yield pending[0] if len(pending) == 1 else np.concatenate(pending)


class Stream:
    """A single-use iterator of 1-D float chunks with known total length.

    ``n`` is the total sample count when known (sources know it; pure
    iterators may not).  All combinators are lazy: nothing is computed
    until the stream is iterated, and peak memory is one chunk per
    pipeline stage.
    """

    def __init__(self, chunks, n=None):
        self._chunks = iter(chunks)
        self.n = None if n is None else int(n)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_source(cls, source, n, chunk_size, rng=None):
        """Stream ``n`` samples from a :class:`~repro.stream.sources.ChunkSource`."""
        return cls(source.chunks(n, chunk_size, rng=rng), n=n)

    @classmethod
    def from_array(cls, data, chunk_size=65_536):
        """Stream an in-memory series (tests, trace-driven pipelines)."""
        arr = as_1d_float_array(data, "data")
        chunk_size = require_positive_int(chunk_size, "chunk_size")
        gen = (arr[i : i + chunk_size] for i in range(0, arr.size, chunk_size))
        return cls(gen, n=arr.size)

    # ------------------------------------------------------------------
    # Combinators (lazy)
    # ------------------------------------------------------------------
    def map(self, fn):
        """Apply ``fn`` to every chunk (must be elementwise/length-preserving)."""
        return Stream((fn(chunk) for chunk in self._chunks), n=self.n)

    def scale(self, factor):
        """Multiply every sample by ``factor``."""
        factor = float(factor)
        return self.map(lambda chunk: chunk * factor)

    def shift(self, offset):
        """Add ``offset`` to every sample."""
        offset = float(offset)
        return self.map(lambda chunk: chunk + offset)

    def transform(self, target, source=None, method="exact", n_table=10_000):
        """Impose a marginal distribution chunkwise (eq. 13 of the paper)."""
        return self.map(
            StreamingMarginalTransform(target, source=source, method=method, n_table=n_table)
        )

    def rechunk(self, chunk_size):
        """Re-slice into chunks of exactly ``chunk_size`` (last may be short)."""
        chunk_size = require_positive_int(chunk_size, "chunk_size")
        return Stream(_rechunk(self._chunks, chunk_size), n=self.n)

    def metered(self, stage):
        """Meter this point of the pipeline under the stage label ``stage``.

        Chunks pass through unchanged while three metrics accumulate:
        ``repro_stream_chunks_total`` and ``repro_stream_samples_total``
        (throughput) plus the ``repro_stream_stage_wait_seconds``
        histogram, which records how long each ``next()`` on the
        upstream stage took -- i.e. where the pipeline's time actually
        goes, stage by stage.  When observability is disabled the
        chunks stream through at the cost of one flag read per chunk.
        """
        chunks_total, samples_total, wait_hist = _stage_metrics(str(stage))

        def _metered(upstream):
            iterator = iter(upstream)
            while True:
                if not _state.enabled:
                    chunk = next(iterator, _END)
                    if chunk is _END:
                        return
                    yield chunk
                    continue
                t0 = time.perf_counter()
                chunk = next(iterator, _END)
                if chunk is _END:
                    return
                wait_hist.observe(time.perf_counter() - t0)
                chunks_total.inc()
                samples_total.inc(np.asarray(chunk).size)
                yield chunk

        return Stream(_metered(self._chunks), n=self.n)

    def guard(self, label="stream"):
        """Fail fast on non-finite chunks, with provenance.

        Every chunk is checked for NaN/Inf before it continues
        downstream; a bad chunk raises :class:`StreamIntegrityError`
        naming the stream (``label``), the chunk index and the absolute
        offset of the first bad sample.  Put a guard after each
        generation stage so corruption is attributed to its producer.
        """

        def _guarded(chunks):
            offset = 0
            for index, chunk in enumerate(chunks):
                chunk = np.asarray(chunk, dtype=float)
                bad = ~np.isfinite(chunk)
                if bad.any():
                    first = int(np.argmax(bad))
                    raise StreamIntegrityError(
                        f"{label}: chunk {index} carries {int(bad.sum())} "
                        f"non-finite sample(s), first at stream offset "
                        f"{offset + first} (chunk offset {first})",
                        source=label, chunk_index=index,
                        sample_offset=offset + first,
                    )
                offset += chunk.size
                yield chunk

        return Stream(_guarded(self._chunks), n=self.n)

    def observe(self, *folders):
        """Pass chunks through unchanged, updating online accumulators.

        Each folder must expose ``update(chunk)`` (the estimators) or
        ``push(chunk)`` (the streaming queue).  Lets one pass over the
        data feed statistics while the chunks continue downstream.
        """
        updates = [getattr(f, "update", None) or f.push for f in folders]

        def _tap(chunk):
            for update in updates:
                update(chunk)
            return chunk

        return self.map(_tap)

    # ------------------------------------------------------------------
    # Consumers
    # ------------------------------------------------------------------
    def __iter__(self):
        return self._chunks

    def drain(self, *folders):
        """Consume the stream into online accumulators; returns them.

        With no folders the stream is simply exhausted (useful after
        :meth:`observe`).
        """
        updates = [getattr(f, "update", None) or f.push for f in folders]
        for chunk in self._chunks:
            for update in updates:
                update(chunk)
        return folders

    def to_array(self):
        """Materialize the whole stream -- O(n) memory, for tests only."""
        pieces = list(self._chunks)
        if not pieces:
            return np.zeros(0)
        return np.concatenate(pieces)


def merge_streams(streams, chunk_size=65_536):
    """Elementwise sum of equal-length streams (aggregate arrivals).

    Each stream is rechunked to a common ``chunk_size`` and the
    corresponding chunks are added; all streams must carry the same
    number of samples.
    """
    streams = list(streams)
    if not streams:
        raise ValueError("streams must contain at least one stream")
    lengths = {s.n for s in streams if s.n is not None}
    if len(lengths) > 1:
        raise ValueError(f"streams must share one length, got {sorted(lengths)}")

    def _merged():
        iterators = [iter(s.rechunk(chunk_size)) for s in streams]
        while True:
            pieces = [next(it, _END) for it in iterators]
            done = [piece is _END for piece in pieces]
            if all(done):
                return
            if any(done) or len({p.size for p in pieces}) > 1:
                raise ValueError("streams ended at different lengths")
            total = pieces[0].copy()
            for piece in pieces[1:]:
                total += piece
            yield total

    return Stream(_merged(), n=streams[0].n)


def multiplex_lagged(stream, lags, n=None, chunk_size=None):
    """Streaming equivalent of :func:`~repro.simulation.multiplex.multiplex_series`.

    The input stream carries one period (``n`` samples) of the source
    series; the output is the sum of ``len(lags)`` cyclically shifted
    copies, ``out[t] = sum_i x[(t + lag_i) mod n]``, emitted in chunks.
    Memory is bounded by O(max lag + chunk): a head buffer of the first
    ``max(lags)`` samples serves the cyclic wraparound and a sliding
    window covers the look-ahead ``t + lag_i``.

    ``n`` defaults to ``stream.n`` and must be known.
    """
    if n is None:
        n = stream.n
    if n is None:
        raise ValueError("the series period n must be known for cyclic multiplexing")
    n = require_positive_int(n, "n")
    lags = np.asarray(lags, dtype=int)
    if lags.ndim != 1 or lags.size < 1:
        raise ValueError("lags must be a non-empty 1-D array of integers")
    lags = lags % n
    max_lag = int(lags.max())

    def _multiplexed():
        head = np.empty(max_lag)
        head_fill = 0
        buf = np.zeros(0)
        buf_start = 0  # buf holds x[buf_start : buf_start + buf.size]
        out_pos = 0
        read = 0
        for chunk in stream:
            chunk = np.asarray(chunk, dtype=float)
            if head_fill < max_lag:
                take = min(max_lag - head_fill, chunk.size)
                head[head_fill : head_fill + take] = chunk[:take]
                head_fill += take
            buf = np.concatenate((buf, chunk))
            read += chunk.size
            if read > n:
                raise ValueError(f"stream is longer than the declared period n={n}")
            emit_hi = read - max_lag
            if emit_hi > out_pos:
                out = np.zeros(emit_hi - out_pos)
                for lag in lags:
                    lo = out_pos + int(lag) - buf_start
                    out += buf[lo : lo + out.size]
                # Drop samples below the next output index; the cyclic
                # wraparound only ever reads from the head buffer.
                buf = buf[emit_hi - buf_start :]
                buf_start = emit_hi
                out_pos = emit_hi
                yield out
        if read != n:
            raise ValueError(f"stream ended after {read} of n={n} samples")
        if out_pos < n:
            out = np.zeros(n - out_pos)
            for lag in lags:
                lag = int(lag)
                split = max(out_pos, min(n - lag, n))
                if split > out_pos:
                    lo = out_pos + lag - buf_start
                    out[: split - out_pos] += buf[lo : lo + (split - out_pos)]
                if split < n:
                    wrap_lo = split + lag - n
                    out[split - out_pos :] += head[wrap_lo : wrap_lo + (n - split)]
            yield out

    result = Stream(_multiplexed(), n=n)
    if chunk_size is not None:
        result = result.rechunk(chunk_size)
    return result


class ParallelSources:
    """Generate N independent sources concurrently on a thread pool.

    Parameters
    ----------
    sources:
        A list of :class:`~repro.stream.sources.ChunkSource` objects,
        one per traffic source.  They are driven by independent child
        generators spawned from one seed stream, so results are
        reproducible for a fixed ``rng`` and worker count does not
        affect the values.
    max_workers:
        Thread-pool width; defaults to ``len(sources)``.

    The FFT and BLAS work inside the sources releases the GIL, so the
    pool gives real parallelism for the block sources without the
    pickling constraints of process pools.
    """

    def __init__(self, sources, max_workers=None):
        self.sources = list(sources)
        if not self.sources:
            raise ValueError("sources must contain at least one source")
        self.max_workers = (
            len(self.sources) if max_workers is None
            else require_positive_int(max_workers, "max_workers")
        )
        self.recoveries = []

    def _spawn_children(self, rng, count):
        """Child generators plus the seed material to rebuild them.

        The seed sequences are spawned exactly the way ``rng.spawn``
        would, so the emitted values are identical to the pre-recovery
        implementation; keeping the sequences is what allows a dead
        source to be regenerated deterministically mid-stream.
        """
        try:
            seed_seqs = rng.bit_generator.seed_seq.spawn(count)
        except AttributeError:
            # Exotic bit generator without a seed sequence: values are
            # still reproducible, but worker death cannot be recovered.
            return rng.spawn(count), None
        bitgen_type = type(rng.bit_generator)
        children = [np.random.Generator(bitgen_type(seq)) for seq in seed_seqs]
        return children, (seed_seqs, bitgen_type)

    def chunks(self, n, chunk_size, rng=None, aggregate=True, max_restarts=1):
        """Yield per-step results across all sources.

        With ``aggregate=True`` each step yields the elementwise sum of
        every source's next chunk (the multiplexed arrival process);
        otherwise it yields the list of per-source chunks.

        A source whose worker raises mid-stream is *recovered* rather
        than deadlocking or killing the pool: its iterator is rebuilt
        from the recorded child seed, the chunks already delivered are
        regenerated and discarded (numpy streams are deterministic, so
        the replay is exact), and the step completes with the chunk the
        dead worker owed.  Each source gets ``max_restarts`` such
        recoveries per ``chunks()`` call; beyond that the original
        exception propagates.  Recovery events are appended to
        :attr:`recoveries` (reset at each call).
        """
        n = require_positive_int(n, "n")
        chunk_size = require_positive_int(chunk_size, "chunk_size")
        if rng is None:
            rng = np.random.default_rng()
        child_rngs, seed_material = self._spawn_children(rng, len(self.sources))
        iterators = [
            src.chunks(n, chunk_size, rng=child)
            for src, child in zip(self.sources, child_rngs)
        ]
        delivered = [0] * len(iterators)
        restarts = [0] * len(iterators)
        self.recoveries = []

        def _recover(index, exc):
            """Rebuild iterator ``index`` past its delivered chunks."""
            if seed_material is None or restarts[index] >= max_restarts:
                raise exc
            restarts[index] += 1
            seed_seqs, bitgen_type = seed_material
            fresh = np.random.Generator(bitgen_type(seed_seqs[index]))
            replacement = self.sources[index].chunks(n, chunk_size, rng=fresh)
            for _ in range(delivered[index]):
                next(replacement)
            self.recoveries.append({
                "source": index,
                "after_chunks": delivered[index],
                "error_type": type(exc).__name__,
                "message": str(exc),
                "restart": restarts[index],
            })
            _LOGGER.warning(
                "recovered source %d after %s: replayed %d chunk(s) (restart %d/%d)",
                index, type(exc).__name__, delivered[index],
                restarts[index], max_restarts,
                extra={"source": index, "error_type": type(exc).__name__,
                       "after_chunks": delivered[index], "restart": restarts[index]},
            )
            _RECOVERIES.inc()
            return replacement

        executor = concurrent.futures.ThreadPoolExecutor(max_workers=self.max_workers)
        try:
            while True:
                step_t0 = time.perf_counter() if _state.enabled else 0.0
                futures = [executor.submit(next, it, _END) for it in iterators]
                pieces = []
                for index, future in enumerate(futures):
                    while True:
                        try:
                            pieces.append(future.result())
                            break
                        except Exception as exc:
                            # The worker died; regenerate this source from
                            # its seed (synchronously -- recovery is the
                            # rare path) and retry the step.
                            iterators[index] = _recover(index, exc)
                            future = executor.submit(next, iterators[index], _END)
                if pieces[0] is _END:
                    if any(piece is not _END for piece in pieces):
                        raise RuntimeError("sources ended at different lengths")
                    return
                if _state.enabled:
                    _POOL_GATHER.observe(time.perf_counter() - step_t0)
                for index, piece in enumerate(pieces):
                    if piece is not _END:
                        delivered[index] += 1
                if aggregate:
                    total = pieces[0].copy()
                    for piece in pieces[1:]:
                        total += piece
                    yield total
                else:
                    yield pieces
        finally:
            executor.shutdown(wait=False, cancel_futures=True)

    def stream(self, n, chunk_size, rng=None):
        """The aggregate arrival process as a :class:`Stream`."""
        return Stream(self.chunks(n, chunk_size, rng=rng, aggregate=True), n=n)
