"""Online finite-buffer FIFO queue simulation over chunked arrivals.

:class:`StreamingQueue` folds the recursion of
:func:`repro.simulation.queue.simulate_queue` over chunks:

    ``lost_t = max(0, b_{t-1} + a_t - c - Q)``
    ``b_t    = min(max(b_{t-1} + a_t - c, 0), Q)``

The recursion is a per-slot scalar update whose state is four floats
(backlog, lost, peak, total), so chunking cannot change a single
operation: the streamed statistics are *bit-for-bit* equal to the
batch simulator for any chunk partition -- the property tests assert
exact equality over random traces and chunkings.  Memory is O(chunk),
so the queue can consume an arbitrarily long arrival stream.
"""

from __future__ import annotations

import numpy as np

from repro._validation import require_nonnegative, require_positive
from repro.obs import metrics
from repro.simulation.queue import QueueResult
from repro.simulation.slotfluid import run_slots

__all__ = ["StreamingQueue", "simulate_queue_stream"]


def _queue_metrics(queue_label):
    reg = metrics.registry()
    labels = {"queue": queue_label}
    return (
        reg.gauge(
            "repro_queue_backlog_bytes",
            help="Queue backlog after the most recent chunk (min/max track the chunk grid)",
            unit="bytes", labels=labels,
        ),
        reg.counter(
            "repro_queue_slots_total",
            help="Arrival slots folded through the queue recursion",
            unit="slots", labels=labels,
        ),
        reg.counter(
            "repro_queue_lost_bytes_total",
            help="Bytes dropped at the finite buffer",
            unit="bytes", labels=labels,
        ),
    )


class StreamingQueue:
    """Finite-buffer FIFO queue folded over arrival chunks.

    Parameters
    ----------
    capacity_per_slot:
        Service capacity in bytes per slot.
    buffer_bytes:
        Buffer size ``Q`` in bytes (0 gives a bufferless multiplexer).
    record_loss:
        Also keep per-slot lost bytes.  This grows with the stream
        (O(n) memory) -- only enable it for bounded runs that need the
        loss series for windowed metrics.
    kernel:
        ``"reference"`` (the pure-python fold; bit-for-bit equal to the
        batch simulator for any chunk partition), ``"vectorized"`` (the
        numpy reflection-identity kernel; statistically equivalent,
        much faster on large chunks), or ``None`` for the process
        default (:func:`repro.simulation.slotfluid.default_kernel`).

    Feed chunks with :meth:`push` (or via ``Stream.observe`` /
    ``Stream.drain``) and read the folded statistics with
    :meth:`result` at any point -- the result reflects the stream so
    far, exactly as if the batch simulator had been run on the
    concatenation of every pushed chunk.
    """

    def __init__(self, capacity_per_slot, buffer_bytes, record_loss=False,
                 kernel=None):
        self.capacity_per_slot = require_positive(capacity_per_slot, "capacity_per_slot")
        self.buffer_bytes = require_nonnegative(buffer_bytes, "buffer_bytes")
        self.record_loss = bool(record_loss)
        self.kernel = kernel
        self._loss_chunks = [] if record_loss else None
        self._backlog = 0.0
        self._lost = 0.0
        self._peak = 0.0
        self._total = 0.0
        self._slots = 0
        self._backlog_gauge, self._slots_counter, self._lost_counter = (
            _queue_metrics("streaming")
        )

    @property
    def slots_seen(self):
        """Number of arrival slots consumed so far."""
        return self._slots

    def push(self, chunk):
        """Fold one chunk of arrivals; returns bytes lost in this chunk."""
        a = np.asarray(chunk, dtype=float)
        if a.ndim != 1:
            raise ValueError(f"chunk must be one-dimensional, got shape {a.shape}")
        if np.any(a < 0):
            raise ValueError("arrivals must be non-negative")
        lost_before = self._lost
        loss_series = np.zeros(a.size) if self.record_loss else None
        # The shared recursion (repro.simulation.slotfluid) resumed
        # from this queue's folded state -- identical arithmetic to
        # simulate_queue's batch loop for any chunk partition.
        backlog, lost, peak, total = run_slots(
            a,
            self.capacity_per_slot,
            self.buffer_bytes,
            state=(self._backlog, self._lost, self._peak, self._total),
            loss_series=loss_series,
            kernel=self.kernel,
        )
        if self.record_loss:
            self._loss_chunks.append(loss_series)
        self._backlog = backlog
        self._lost = lost
        self._peak = peak
        self._total = total
        self._slots += a.size
        self._backlog_gauge.set(backlog)
        self._slots_counter.inc(a.size)
        self._lost_counter.inc(lost - lost_before)
        return lost - lost_before

    def result(self):
        """The folded statistics as a :class:`~repro.simulation.queue.QueueResult`."""
        loss_series = None
        if self.record_loss:
            loss_series = (
                np.concatenate(self._loss_chunks) if self._loss_chunks else np.zeros(0)
            )
        return QueueResult(
            capacity_per_slot=self.capacity_per_slot,
            buffer_bytes=self.buffer_bytes,
            total_bytes=self._total,
            lost_bytes=self._lost,
            final_backlog=self._backlog,
            peak_backlog=self._peak,
            loss_series=loss_series,
        )

    # Stream.observe / Stream.drain duck-type on update(); push is the
    # queueing-flavored alias.
    update = push

    def __repr__(self):
        return (
            f"StreamingQueue(capacity_per_slot={self.capacity_per_slot:.6g}, "
            f"buffer_bytes={self.buffer_bytes:.6g}, slots_seen={self._slots})"
        )


def simulate_queue_stream(chunks, capacity_per_slot, buffer_bytes, record_loss=False,
                          kernel=None):
    """Run the streaming queue over an iterable of chunks; returns the result."""
    queue = StreamingQueue(capacity_per_slot, buffer_bytes, record_loss=record_loss,
                           kernel=kernel)
    for chunk in chunks:
        queue.push(chunk)
    return queue.result()
