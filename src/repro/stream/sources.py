"""Chunked Gaussian sample sources for the streaming pipeline.

A *chunk source* emits a zero-mean Gaussian realization as a sequence
of numpy arrays instead of one big array.  Three sources are provided:

- :class:`HoskingSource` -- the paper's exact fARIMA(0, d, 0) process,
  resumed chunk-by-chunk through
  :meth:`~repro.core.hosking.HoskingGenerator.extend`.  Exact, but the
  Durbin-Levinson state grows as O(total samples) and each chunk costs
  O(chunk * total): right for moderate exact runs, wrong for unbounded
  ones.
- :class:`BlockFGNSource` -- constant-memory approximate fGn for
  arbitrarily long runs.  Fixed-size blocks come from an exact
  Davies-Harte or approximate Paxson synthesizer (both O(B log B) per
  block with cached spectra) and consecutive blocks are stitched over
  an ``overlap`` window with complementary ``cos/sin`` weights, which
  preserves the Gaussian marginal exactly (``cos^2 + sin^2 = 1``)
  while fading one block into the next.  Correlation is exact within a
  block and approximate across the seam -- the same trade Paxson makes
  globally -- so choose ``block_size`` well above the correlation
  scales that matter.
- :class:`ArraySource` -- replay of an in-memory array (tests, and
  trace-driven streaming).

All sources share the :meth:`ChunkSource.chunks` iteration contract,
which the :class:`repro.stream.pipeline.Stream` abstraction builds on.
"""

from __future__ import annotations

import numpy as np

from repro._validation import as_1d_float_array, require_positive, require_positive_int
from repro.core.daviesharte import DaviesHarteGenerator
from repro.core.hosking import HoskingGenerator
from repro.core.paxson import PaxsonGenerator

__all__ = [
    "ChunkSource",
    "HoskingSource",
    "BlockFGNSource",
    "ArraySource",
    "make_source",
]


class ChunkSource:
    """Base class: iterate a realization as fixed-size chunks.

    Subclasses implement :meth:`_native_chunks`, yielding arrays in
    whatever block size is natural for the algorithm (possibly forever);
    the base class re-slices that into exactly ``chunk_size``-sample
    chunks totalling ``n``.
    """

    def _native_chunks(self, n, rng):
        """Yield arrays in the algorithm's natural block size."""
        raise NotImplementedError

    def chunks(self, n, chunk_size, rng=None):
        """Yield ``ceil(n / chunk_size)`` chunks totalling ``n`` samples."""
        n = require_positive_int(n, "n")
        chunk_size = require_positive_int(chunk_size, "chunk_size")
        if rng is None:
            rng = np.random.default_rng()
        pending = []
        pending_size = 0
        emitted = 0
        native = self._native_chunks(n, rng)
        while emitted < n:
            while pending_size < min(chunk_size, n - emitted):
                piece = np.asarray(next(native), dtype=float)
                pending.append(piece)
                pending_size += piece.size
            merged = pending[0] if len(pending) == 1 else np.concatenate(pending)
            take = min(chunk_size, n - emitted)
            yield merged[:take]
            rest = merged[take:]
            pending = [rest] if rest.size else []
            pending_size = rest.size
            emitted += take


class HoskingSource(ChunkSource):
    """Exact fARIMA(0, d, 0) chunk source (resumable Hosking recursion).

    Each ``chunks()`` call starts a fresh realization.  Under a fixed
    seed the concatenated chunks are byte-identical to
    :func:`repro.core.hosking.hosking_farima` of the same total length,
    for *any* chunking (numpy's Gaussian stream is split-invariant).
    """

    def __init__(self, hurst=None, d=None, variance=1.0):
        self._generator = HoskingGenerator(hurst=hurst, d=d, variance=variance)
        self.hurst = self._generator.hurst
        self.variance = self._generator.variance

    def chunks(self, n, chunk_size, rng=None):
        n = require_positive_int(n, "n")
        chunk_size = require_positive_int(chunk_size, "chunk_size")
        if rng is None:
            rng = np.random.default_rng()
        gen = self._generator
        gen.reset()
        emitted = 0
        while emitted < n:
            take = min(chunk_size, n - emitted)
            yield gen.extend(take, rng=rng)
            emitted += take

    def _native_chunks(self, n, rng):  # pragma: no cover - chunks() overrides
        raise NotImplementedError

    def __repr__(self):
        return f"HoskingSource(hurst={self.hurst:.4g}, variance={self.variance:.4g})"


_BACKENDS = ("davies-harte", "paxson")


class BlockFGNSource(ChunkSource):
    """Constant-memory approximate fGn source via overlapped blocks.

    Parameters
    ----------
    hurst:
        Hurst parameter in (0, 1).
    variance:
        Marginal variance of the noise.
    block_size:
        Samples emitted per underlying synthesis (memory and seam
        spacing; correlation is exact within a block).
    overlap:
        Width of the cross-fade window joining consecutive blocks
        (must be < ``block_size``).
    backend:
        ``"davies-harte"`` (exact per block) or ``"paxson"``
        (approximate per block, about half the FFT work).
    batch:
        Blocks pre-synthesized per underlying FFT call, as one stacked
        2-D pass through :func:`repro.core.batch.batch_generate`
        (``None`` uses :func:`repro.par.batch.default_batch`).  The
        rows draw *sequentially* from the stream's rng, in exactly the
        order ``batch`` consecutive single-block calls would, so the
        emitted samples are **bit-identical** for every batch size —
        batching only amortizes FFT dispatch and the Gaussian draws.

    Memory is O(batch * (block_size + overlap)) regardless of run
    length; both backends cache their spectral profile for the fixed
    block size, so the steady-state cost is one stacked FFT per
    ``batch * block_size`` samples.
    """

    def __init__(self, hurst, variance=1.0, block_size=65_536, overlap=1_024,
                 backend="paxson", batch=None):
        self.block_size = require_positive_int(block_size, "block_size")
        self.overlap = int(overlap)
        if not 0 <= self.overlap < self.block_size:
            raise ValueError(
                f"overlap must lie in [0, block_size), got {overlap!r} with "
                f"block_size {self.block_size}"
            )
        if backend == "davies-harte":
            self._generator = DaviesHarteGenerator(hurst, variance=variance)
        elif backend == "paxson":
            self._generator = PaxsonGenerator(hurst, variance=variance)
        else:
            raise ValueError(f"backend must be one of {_BACKENDS}, got {backend!r}")
        self.backend = backend
        self.hurst = float(hurst)
        self.variance = require_positive(variance, "variance")
        from repro.par.batch import resolve_batch

        self.batch = resolve_batch(batch)
        # Complementary cos/sin fade weights: w_old^2 + w_new^2 = 1, so
        # blending two independent Gaussians preserves the variance.
        t = np.arange(1, self.overlap + 1, dtype=float) / (self.overlap + 1)
        self._w_old = np.cos(0.5 * np.pi * t)
        self._w_new = np.sin(0.5 * np.pi * t)

    def _native_chunks(self, n, rng):
        raw_len = self.block_size + self.overlap
        tail = None
        while True:
            if self.batch == 1:
                blocks = (self._generator.generate(raw_len, rng=rng),)
            else:
                # Shared-rng stacked synthesis: row i consumes exactly
                # the Gaussian draws single-block call i would, so the
                # stitched stream is bit-identical at any batch size.
                from repro.core.batch import batch_generate

                blocks = batch_generate(
                    self._generator, raw_len, [rng] * self.batch
                )
            for block in blocks:
                head = block[: self.block_size].copy()
                if tail is not None and self.overlap:
                    head[: self.overlap] = (
                        self._w_old * tail + self._w_new * head[: self.overlap]
                    )
                tail = block[self.block_size :]
                yield head

    def __repr__(self):
        return (
            f"BlockFGNSource(hurst={self.hurst:.4g}, variance={self.variance:.4g}, "
            f"block_size={self.block_size}, overlap={self.overlap}, "
            f"backend={self.backend!r}, batch={self.batch})"
        )


class ArraySource(ChunkSource):
    """Replay an in-memory series as chunks (tests, trace-driven runs)."""

    def __init__(self, data):
        self._data = as_1d_float_array(data, "data")

    @property
    def size(self):
        return self._data.size

    def chunks(self, n=None, chunk_size=65_536, rng=None):
        if n is None:
            n = self._data.size
        n = require_positive_int(n, "n")
        if n > self._data.size:
            raise ValueError(f"requested {n} samples but the array holds {self._data.size}")
        chunk_size = require_positive_int(chunk_size, "chunk_size")
        for start in range(0, n, chunk_size):
            yield self._data[start : min(start + chunk_size, n)]

    def _native_chunks(self, n, rng):  # pragma: no cover - chunks() overrides
        raise NotImplementedError


def make_source(backend, hurst=0.8, variance=1.0, block_size=65_536, overlap=1_024,
                batch=None):
    """Build a chunk source by backend name.

    ``"hosking"`` gives the exact resumable recursion;
    ``"davies-harte"`` and ``"paxson"`` give constant-memory
    block-overlap sources with the respective per-block synthesizer,
    pre-synthesizing ``batch`` blocks per stacked FFT (bit-identical
    output at any batch; ``batch`` is ignored by ``"hosking"``, whose
    full-path recursion cannot batch).
    """
    if backend == "hosking":
        return HoskingSource(hurst=hurst, variance=variance)
    if backend in _BACKENDS:
        return BlockFGNSource(
            hurst, variance=variance, block_size=block_size, overlap=overlap,
            backend=backend, batch=batch,
        )
    raise ValueError(
        f'backend must be "hosking", "davies-harte" or "paxson", got {backend!r}'
    )
