"""Chunkwise marginal-distribution transform (eq. 13, streamed).

The batch transform (:func:`repro.core.transform.marginal_transform`)
maps ``Y_k = Finv_target(F_Normal(X_k))`` point by point; the map is
memoryless, so streaming it is just a matter of fixing the source law
and any lookup table *once* and applying the identical elementwise
operations per chunk.  Because every operation is elementwise, the
streamed output is bit-for-bit equal to the batch output for any
chunking -- the property tests assert exact equality.

One batch convenience is deliberately absent: the batch path can fit
the source Normal from the data's sample moments, which requires
seeing the whole realization.  A stream cannot, so the source law must
be known up front -- which it is in the paper's procedure, where
Hosking's algorithm produces exact N(0, 1) marginals.
"""

from __future__ import annotations

import numpy as np

from repro._validation import require_positive_int
from repro.distributions.base import TabulatedDistribution
from repro.distributions.normal import Normal
from repro.obs import metrics, trace

__all__ = ["StreamingMarginalTransform", "transform_chunks"]

_TRANSFORMED = metrics.registry().counter(
    "repro_transform_samples_total",
    help="Samples mapped through the marginal transform (eq. 13)",
    unit="samples",
)


class StreamingMarginalTransform:
    """Stateful chunk mapper ``chunk -> Finv_target(F_source(chunk))``.

    Parameters
    ----------
    target:
        Any :class:`~repro.distributions.base.Distribution` providing
        ``ppf`` -- typically a
        :class:`~repro.distributions.hybrid.GammaParetoHybrid`.
    source:
        The Normal law of the input stream; defaults to N(0, 1), the
        exact marginal of the library's Gaussian generators.
    method:
        ``"exact"`` or ``"table"`` (the paper's 10,000-point table,
        built once at construction and reused for every chunk).
    n_table:
        Table resolution for ``method="table"``.
    """

    def __init__(self, target, source=None, method="exact", n_table=10_000):
        if source is None:
            source = Normal(0.0, 1.0)
        if not isinstance(source, Normal):
            raise TypeError(
                f"source must be a Normal distribution, got {type(source).__name__}"
            )
        self.target = target
        self.source = source
        self.method = method
        if method == "table":
            n_table = require_positive_int(n_table, "n_table")
            self._table = TabulatedDistribution.from_distribution(
                target, n_points=n_table, q_lo=1e-7, q_hi=1.0 - 1.0 / (10.0 * n_table)
            )
        elif method == "exact":
            self._table = None
        else:
            raise ValueError(f'method must be "exact" or "table", got {method!r}')

    def __call__(self, chunk):
        """Transform one chunk; same operations as the batch path."""
        arr = np.asarray(chunk, dtype=float)
        with trace.span("transform.chunk", n=arr.size, method=self.method):
            u = self.source.cdf(arr)
            tiny = np.finfo(float).tiny
            u = np.clip(u, tiny, 1.0 - np.finfo(float).epsneg)
            if self._table is None:
                result = np.asarray(self.target.ppf(u), dtype=float)
            else:
                table = self._table
                result = np.asarray(
                    table.ppf(np.clip(u, table._ppf_q[0], table._ppf_q[-1])), dtype=float
                )
        _TRANSFORMED.inc(arr.size)
        return result

    def __repr__(self):
        return (
            f"StreamingMarginalTransform(target={self.target!r}, "
            f"method={self.method!r})"
        )


def transform_chunks(chunks, target, source=None, method="exact", n_table=10_000):
    """Generator form: lazily transform an iterable of chunks."""
    mapper = StreamingMarginalTransform(
        target, source=source, method=method, n_table=n_table
    )
    for chunk in chunks:
        yield mapper(chunk)
