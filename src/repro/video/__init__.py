"""VBR video substrate: codec, procedural movies and trace synthesis.

The paper's dataset was produced by coding the movie "Star Wars" with a
simple intraframe compression code (8x8 DCT, uniform quantization,
run-length and Huffman coding -- essentially JPEG) and recording the
bytes emitted per frame and per slice.  This package rebuilds that
entire pipeline:

- :mod:`repro.video.dct`, :mod:`~repro.video.quantize`,
  :mod:`~repro.video.zigzag`, :mod:`~repro.video.rle`,
  :mod:`~repro.video.huffman`, :mod:`~repro.video.codec` -- the codec,
  implemented from scratch and exercised end-to-end;
- :mod:`repro.video.synthetic` -- a procedural movie generator (scene
  scripts rendered to luminance frames) to feed the codec, since the
  original film is proprietary;
- :mod:`repro.video.starwars` -- a calibrated scene-level synthesizer
  that produces a full two-hour, 171,000-frame bandwidth trace with the
  paper's Table 1/2 statistics, heavy-tailed marginals and H ~= 0.8;
- :mod:`repro.video.trace` / :mod:`~repro.video.tracefile` -- the trace
  container and the Bellcore-style one-integer-per-line file format.
"""

from repro.video.trace import VBRTrace
from repro.video.codec import IntraframeCodec, EncodedFrame
from repro.video.synthetic import SyntheticMovie
from repro.video.scenes import SceneScript, Scene, generate_scene_script, story_arc
from repro.video.starwars import synthesize_starwars_trace, STARWARS_PARAMETERS
from repro.video.tracefile import save_trace, load_trace
from repro.video.shaping import ClipResult, clip_peaks, leaky_bucket, cbr_smoothing_delay
from repro.video.layering import LayeredFrame, LayeredIntraframeCodec, layer_series
from repro.video.interframe import InterframeCodec, synthesize_mpeg_trace
from repro.video.ratecontrol import RateControlledCodec
from repro.video.quality import mse, psnr, blockiness, quality_report

__all__ = [
    "ClipResult",
    "clip_peaks",
    "leaky_bucket",
    "cbr_smoothing_delay",
    "LayeredFrame",
    "LayeredIntraframeCodec",
    "layer_series",
    "InterframeCodec",
    "synthesize_mpeg_trace",
    "RateControlledCodec",
    "mse",
    "psnr",
    "blockiness",
    "quality_report",
    "VBRTrace",
    "IntraframeCodec",
    "EncodedFrame",
    "SyntheticMovie",
    "SceneScript",
    "Scene",
    "generate_scene_script",
    "story_arc",
    "synthesize_starwars_trace",
    "STARWARS_PARAMETERS",
    "save_trace",
    "load_trace",
]
