"""Bit-level I/O used by the entropy coder.

:class:`BitWriter` accumulates individual bits / fixed-width fields and
packs them MSB-first into bytes; :class:`BitReader` reads them back.
The codec uses these to produce an actual decodable bitstream, so the
byte counts the trace reports are the byte counts a real transport
would carry.
"""

from __future__ import annotations

__all__ = ["BitWriter", "BitReader"]


class BitWriter:
    """Accumulate bits MSB-first and pack them into ``bytes``."""

    def __init__(self):
        self._buffer = bytearray()
        self._current = 0
        self._n_bits = 0

    def write_bits(self, value, n_bits):
        """Append the ``n_bits`` least-significant bits of ``value``."""
        if n_bits < 0:
            raise ValueError(f"n_bits must be >= 0, got {n_bits}")
        if n_bits == 0:
            return
        if value < 0 or value >= (1 << n_bits):
            raise ValueError(f"value {value} does not fit in {n_bits} bits")
        for shift in range(n_bits - 1, -1, -1):
            self._current = (self._current << 1) | ((value >> shift) & 1)
            self._n_bits += 1
            if self._n_bits == 8:
                self._buffer.append(self._current)
                self._current = 0
                self._n_bits = 0

    @property
    def bit_length(self):
        """Total number of bits written so far."""
        return len(self._buffer) * 8 + self._n_bits

    def getvalue(self):
        """The packed bytes, zero-padded to a byte boundary."""
        out = bytearray(self._buffer)
        if self._n_bits:
            out.append(self._current << (8 - self._n_bits))
        return bytes(out)


class BitReader:
    """Read bits MSB-first from a ``bytes`` object."""

    def __init__(self, data):
        self._data = bytes(data)
        self._pos = 0

    @property
    def bits_remaining(self):
        """Number of unread bits left in the stream."""
        return len(self._data) * 8 - self._pos

    def read_bit(self):
        """Read a single bit; raises ``EOFError`` at end of stream."""
        byte_index, bit_index = divmod(self._pos, 8)
        if byte_index >= len(self._data):
            raise EOFError("attempted to read past the end of the bitstream")
        self._pos += 1
        return (self._data[byte_index] >> (7 - bit_index)) & 1

    def read_bits(self, n_bits):
        """Read ``n_bits`` bits as an unsigned integer (MSB-first)."""
        if n_bits < 0:
            raise ValueError(f"n_bits must be >= 0, got {n_bits}")
        value = 0
        for _ in range(n_bits):
            value = (value << 1) | self.read_bit()
        return value
