"""The intraframe VBR video codec (Section 2 of the paper).

Pipeline per frame (essentially JPEG, as the paper notes):

1. partition the (monochrome, 8 bit/pel) frame into 8x8 blocks;
2. DCT each block;
3. uniformly quantize the coefficients with a *fixed* step size
   (constant quality, variable rate);
4. zig-zag scan, run-length code, and Huffman code the result.

The quantizer step is fixed for the whole movie, so the byte count per
frame varies with picture complexity -- this is the VBR bandwidth
process the paper studies.  Frames are divided into ``slices_per_frame``
slices (groups of blocks) whose byte counts give the finer-grained
series of Table 2.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

import numpy as np

from repro._validation import require_positive, require_positive_int
from repro.video.bitstream import BitReader, BitWriter
from repro.video.dct import blockwise_dct, blockwise_idct, dct_matrix
from repro.video.huffman import HuffmanCode
from repro.video.quantize import dequantize, quantize
from repro.video.rle import rle_decode_block, rle_encode_block
from repro.video.trace import VBRTrace
from repro.video.zigzag import zigzag_scan, zigzag_unscan

__all__ = ["IntraframeCodec", "EncodedFrame"]


@dataclass
class EncodedFrame:
    """One coded frame: bitstream, entropy table and layout metadata."""

    bitstream: bytes
    """The Huffman/amplitude bitstream for the entire frame."""

    huffman: HuffmanCode
    """The frame's Huffman table (built from its own statistics)."""

    block_symbol_counts: list
    """Number of RLE symbols in each block, in raster order."""

    slice_bytes: np.ndarray
    """Coded bytes attributed to each slice of the frame."""

    frame_shape: tuple
    """Original (unpadded) frame shape ``(height, width)``."""

    padded_shape: tuple
    """Frame shape after padding to a block multiple."""

    total_bits: int
    """Exact payload size in bits (before byte rounding)."""

    @property
    def total_bytes(self):
        """Total coded bytes for the frame (sum of slice bytes)."""
        return int(self.slice_bytes.sum())


class IntraframeCodec:
    """DCT / run-length / Huffman intraframe coder.

    Parameters
    ----------
    quant_step:
        Uniform quantizer step size applied to all DCT coefficients.
        The paper fixes this for the entire movie; smaller steps give
        higher quality and higher bandwidth.
    block_size:
        DCT block size (8, as in JPEG and the paper).
    slices_per_frame:
        How many slices each frame is partitioned into (paper: 30).
        Blocks are assigned to slices in contiguous raster-order runs.
    """

    def __init__(self, quant_step=16.0, block_size=8, slices_per_frame=30):
        self.quant_step = require_positive(quant_step, "quant_step")
        self.block_size = require_positive_int(block_size, "block_size")
        self.slices_per_frame = require_positive_int(slices_per_frame, "slices_per_frame")
        self._dct_matrix = dct_matrix(self.block_size)

    # ------------------------------------------------------------------
    # Frame-level encode / decode
    # ------------------------------------------------------------------
    def _pad(self, frame):
        frame = np.asarray(frame, dtype=float)
        if frame.ndim != 2:
            raise ValueError(f"frame must be 2-D monochrome, got shape {frame.shape}")
        if frame.shape[0] < 1 or frame.shape[1] < 1:
            raise ValueError(f"frame must be non-empty, got shape {frame.shape}")
        b = self.block_size
        pad_h = (-frame.shape[0]) % b
        pad_w = (-frame.shape[1]) % b
        if pad_h or pad_w:
            frame = np.pad(frame, ((0, pad_h), (0, pad_w)), mode="edge")
        return frame

    def encode_frame(self, frame):
        """Encode one frame; returns an :class:`EncodedFrame`.

        The frame is any 2-D array of pel values (conventionally uint8,
        0-255).  The bitstream is genuinely decodable via
        :meth:`decode_frame`.
        """
        original_shape = np.asarray(frame).shape
        padded = self._pad(frame)
        # Center pel values so the DC coefficient is small, as JPEG does.
        coeffs = blockwise_dct(padded - 128.0, self.block_size, matrix=self._dct_matrix)
        levels = quantize(coeffs, self.quant_step)
        nbh, nbw = levels.shape[:2]
        block_streams = []
        frequencies = Counter()
        for row in range(nbh):
            for col in range(nbw):
                symbols, amplitudes = rle_encode_block(zigzag_scan(levels[row, col]))
                block_streams.append((symbols, amplitudes))
                frequencies.update(symbols)
        huffman = HuffmanCode.from_frequencies(frequencies)
        writer = BitWriter()
        block_bits = np.empty(len(block_streams), dtype=np.int64)
        block_symbol_counts = []
        for i, (symbols, amplitudes) in enumerate(block_streams):
            start = writer.bit_length
            huffman.encode_to(writer, symbols)
            for bits, size in amplitudes:
                writer.write_bits(bits, size)
            block_bits[i] = writer.bit_length - start
            block_symbol_counts.append(len(symbols))
        slice_bytes = self._slice_byte_counts(block_bits)
        return EncodedFrame(
            bitstream=writer.getvalue(),
            huffman=huffman,
            block_symbol_counts=block_symbol_counts,
            slice_bytes=slice_bytes,
            frame_shape=tuple(original_shape),
            padded_shape=padded.shape,
            total_bits=int(block_bits.sum()),
        )

    def _slice_byte_counts(self, block_bits):
        """Partition per-block bit counts into slice byte counts."""
        groups = np.array_split(block_bits, self.slices_per_frame)
        return np.asarray([int(np.ceil(g.sum() / 8.0)) if g.size else 0 for g in groups])

    def decode_frame(self, encoded, clip=True):
        """Decode an :class:`EncodedFrame` back to pel values.

        Reconstruction is lossy only through quantization; the
        entropy-coding layers are exactly invertible, which the test
        suite verifies block-for-block.  ``clip=False`` skips the
        [0, 255] pel clamp -- required when the coded signal is not a
        picture but a *residual* (the interframe path), whose valid
        range after the +128 shift is wider than a pel's.
        """
        if not isinstance(encoded, EncodedFrame):
            raise TypeError("encoded must be an EncodedFrame")
        b = self.block_size
        nbh = encoded.padded_shape[0] // b
        nbw = encoded.padded_shape[1] // b
        reader = BitReader(encoded.bitstream)
        levels = np.empty((nbh, nbw, b, b), dtype=np.int64)
        index = 0
        for row in range(nbh):
            for col in range(nbw):
                n_symbols = encoded.block_symbol_counts[index]
                index += 1
                symbols = encoded.huffman.decode_from(reader, n_symbols)
                amplitudes = []
                for symbol in symbols:
                    if symbol[0] in ("DC", "AC"):
                        size = symbol[-1]
                        amplitudes.append((reader.read_bits(size), size))
                    else:
                        amplitudes.append((0, 0))
                vector = rle_decode_block(symbols, amplitudes, block_length=b * b)
                levels[row, col] = zigzag_unscan(vector, b)
        coeffs = dequantize(levels, self.quant_step)
        image = blockwise_idct(coeffs, matrix=self._dct_matrix) + 128.0
        h, w = encoded.frame_shape
        image = image[:h, :w]
        return np.clip(image, 0.0, 255.0) if clip else image

    # ------------------------------------------------------------------
    # Movie-level coding
    # ------------------------------------------------------------------
    def encode_movie(self, frames, frame_rate=24.0):
        """Code a sequence of frames into a :class:`VBRTrace`.

        ``frames`` is any iterable of 2-D arrays (e.g. a
        :class:`~repro.video.synthetic.SyntheticMovie` generator); the
        returned trace carries genuine per-slice byte counts.
        """
        frame_bytes = []
        slice_bytes = []
        for frame in frames:
            encoded = self.encode_frame(frame)
            frame_bytes.append(encoded.total_bytes)
            slice_bytes.append(encoded.slice_bytes)
        if not frame_bytes:
            raise ValueError("frames iterable is empty")
        return VBRTrace(
            np.asarray(frame_bytes, dtype=float),
            frame_rate=frame_rate,
            slices_per_frame=self.slices_per_frame,
            slice_bytes=np.concatenate(slice_bytes).astype(float),
        )

    def compression_ratio(self, frame, encoded=None):
        """Raw bytes (8 bit/pel) over coded bytes for one frame."""
        frame = np.asarray(frame)
        if encoded is None:
            encoded = self.encode_frame(frame)
        raw = frame.shape[0] * frame.shape[1]
        return raw / max(encoded.total_bytes, 1)

    def __repr__(self):
        return (
            f"IntraframeCodec(quant_step={self.quant_step:g}, "
            f"block_size={self.block_size}, slices_per_frame={self.slices_per_frame})"
        )
